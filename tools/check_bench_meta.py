#!/usr/bin/env python3
"""Verify committed BENCH_*.json files came from release builds.

Two formats appear in this repo:

  * google-benchmark JSON (BENCH_analyzer/ingest/pca): the custom bench main
    stamps ``context.flare_build_type``. The library's own
    ``library_build_type`` field describes how the *benchmark library* was
    compiled, which is irrelevant — only the stamped field is checked.
  * the hand-rolled sweep format (BENCH_replay/scale): a top-level
    ``build_type`` field.

Files predating either stamp fail: re-record them from a Release build.

Usage: tools/check_bench_meta.py [BENCH_*.json ...]   (defaults to repo root)
"""

import json
import pathlib
import sys


def build_type_of(path: pathlib.Path) -> str:
    with open(path) as f:
        report = json.load(f)
    context = report.get("context", {})
    if "flare_build_type" in context:
        return context["flare_build_type"]
    if "build_type" in report:
        return report["build_type"]
    return "<unstamped>"


def main(argv: list[str]) -> int:
    root = pathlib.Path(__file__).resolve().parent.parent
    paths = [pathlib.Path(a) for a in argv[1:]] or sorted(
        root.glob("BENCH_*.json")
    )
    if not paths:
        print("no BENCH_*.json files found", file=sys.stderr)
        return 1
    bad = []
    for path in paths:
        build_type = build_type_of(path)
        status = "ok" if build_type == "release" else "FAIL"
        print(f"{status:4}  {path.name}: {build_type}")
        if build_type != "release":
            bad.append(path.name)
    if bad:
        print(
            f"\nerror: {', '.join(bad)} not recorded from a release build.\n"
            "Re-record with: cmake -B build -DCMAKE_BUILD_TYPE=Release && "
            "cmake --build build -j && bench/run_bench.sh && "
            "build/bench/ext_replay_robustness",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
