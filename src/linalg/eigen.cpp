#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace flare::linalg {
namespace {

/// Sum of squares of off-diagonal entries (convergence measure).
double off_diagonal_norm(const Matrix& a) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (i != j) sum += a(i, j) * a(i, j);
    }
  }
  return std::sqrt(sum);
}

/// Same measure reading only the upper triangle (both halves counted).
double off_diagonal_norm_upper(const Matrix& a) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = i + 1; j < a.cols(); ++j) {
      sum += a(i, j) * a(i, j);
    }
  }
  return std::sqrt(2.0 * sum);
}

/// Validates shape + symmetry and returns the Frobenius-based scale every
/// tolerance in this file is relative to.
double validate_symmetric(const Matrix& input) {
  ensure(input.rows() == input.cols(), "symmetric_eigen: matrix must be square");
  const std::size_t n = input.rows();
  ensure(n > 0, "symmetric_eigen: matrix must be non-empty");
  const double scale = std::max(input.frobenius_norm(), 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      ensure(std::abs(input(i, j) - input(j, i)) <= 1e-8 * scale,
             "symmetric_eigen: matrix is not symmetric");
    }
  }
  return scale;
}

/// Packs the diagonal of the converged working matrix + accumulated rotations
/// into a descending-eigenvalue result.
SymmetricEigenResult pack_sorted(const Matrix& a, const Matrix& v) {
  const std::size_t n = a.rows();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return a(x, x) > a(y, y); });

  SymmetricEigenResult result;
  result.eigenvalues.resize(n);
  result.eigenvectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    result.eigenvalues[j] = a(order[j], order[j]);
    for (std::size_t i = 0; i < n; ++i) {
      result.eigenvectors(i, j) = v(i, order[j]);
    }
  }
  return result;
}

}  // namespace

SymmetricEigenResult symmetric_eigen(const Matrix& input, int max_sweeps,
                                     double tolerance, double rotation_skip) {
  ensure(rotation_skip >= 0.0, "symmetric_eigen: rotation_skip must be >= 0");
  const double scale = validate_symmetric(input);
  const std::size_t n = input.rows();

  Matrix a = input;
  Matrix v = Matrix::identity(n);
  const double skip = std::max(rotation_skip * scale, 1e-300);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm(a) <= tolerance * scale) break;
    bool rotated = false;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) <= skip) continue;
        rotated = true;
        const double app = a(p, p);
        const double aqq = a(q, q);
        // Stable rotation computation (Golub & Van Loan §8.5).
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // A <- J^T A J applied in place.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        // Accumulate eigenvectors: V <- V J.
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
    // Every remaining pivot sits below the skip threshold: further sweeps
    // cannot change anything.
    if (!rotated) break;
  }
  ensure_numeric(off_diagonal_norm(a) <= 1e-8 * scale,
                 "symmetric_eigen: Jacobi sweeps did not converge");

  return pack_sorted(a, v);
}

SymmetricEigenResult symmetric_eigen_warm(const Matrix& input, int max_sweeps,
                                          double tolerance,
                                          double rotation_skip) {
  ensure(rotation_skip >= 0.0, "symmetric_eigen_warm: rotation_skip must be >= 0");
  const double scale = validate_symmetric(input);
  const std::size_t n = input.rows();

  // Working copy keeps only the upper triangle live; the lower triangle is
  // never read or written after this point. Rotations are accumulated into
  // Vᵀ so each touches two contiguous rows instead of two strided columns.
  Matrix a = input;
  Matrix vt = Matrix::identity(n);
  const double skip = std::max(rotation_skip * scale, 1e-300);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm_upper(a) <= tolerance * scale) break;
    bool rotated = false;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) <= skip) continue;
        rotated = true;
        const double app = a(p, p);
        const double aqq = a(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Upper-triangle update of A <- Jᵀ A J: each off-pivot entry pair is
        // touched once, and the pivot is annihilated exactly.
        for (std::size_t k = 0; k < p; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = p + 1; k < q; ++k) {
          const double apk = a(p, k);
          const double akq = a(k, q);
          a(p, k) = c * apk - s * akq;
          a(k, q) = s * apk + c * akq;
        }
        for (std::size_t k = q + 1; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        a(p, p) = app - t * apq;
        a(q, q) = aqq + t * apq;
        a(p, q) = 0.0;

        // Accumulate eigenvectors: Vᵀ <- Jᵀ Vᵀ (rows p and q, contiguous).
        const std::span<double> vp = vt.row(p);
        const std::span<double> vq = vt.row(q);
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = vp[k];
          const double vkq = vq[k];
          vp[k] = c * vkp - s * vkq;
          vq[k] = s * vkp + c * vkq;
        }
      }
    }
    if (!rotated) break;
  }
  ensure_numeric(off_diagonal_norm_upper(a) <= 1e-8 * scale,
                 "symmetric_eigen_warm: Jacobi sweeps did not converge");

  // Un-transpose while sorting by descending eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return a(x, x) > a(y, y); });
  SymmetricEigenResult result;
  result.eigenvalues.resize(n);
  result.eigenvectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    result.eigenvalues[j] = a(order[j], order[j]);
    for (std::size_t i = 0; i < n; ++i) {
      result.eigenvectors(i, j) = vt(order[j], i);
    }
  }
  return result;
}

}  // namespace flare::linalg
