#include "linalg/matrix.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace flare::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  ensure(data_.size() == rows_ * cols_, "Matrix: data size does not match shape");
}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  ensure(!rows.empty(), "Matrix::from_rows: no rows");
  const std::size_t cols = rows.front().size();
  Matrix m(rows.size(), cols);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    ensure(rows[r].size() == cols, "Matrix::from_rows: ragged rows");
    m.set_row(r, rows[r]);
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at: index out of range");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at: index out of range");
  return (*this)(r, c);
}

std::span<const double> Matrix::row(std::size_t r) const {
  ensure(r < rows_, "Matrix::row: index out of range");
  return {data_.data() + r * cols_, cols_};
}

std::span<double> Matrix::row(std::size_t r) {
  ensure(r < rows_, "Matrix::row: index out of range");
  return {data_.data() + r * cols_, cols_};
}

std::vector<double> Matrix::column(std::size_t c) const {
  ensure(c < cols_, "Matrix::column: index out of range");
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::set_row(std::size_t r, std::span<const double> values) {
  ensure(r < rows_, "Matrix::set_row: index out of range");
  ensure(values.size() == cols_, "Matrix::set_row: size mismatch");
  for (std::size_t c = 0; c < cols_; ++c) (*this)(r, c) = values[c];
}

void Matrix::set_column(std::size_t c, std::span<const double> values) {
  ensure(c < cols_, "Matrix::set_column: index out of range");
  ensure(values.size() == rows_, "Matrix::set_column: size mismatch");
  for (std::size_t r = 0; r < rows_; ++r) (*this)(r, c) = values[r];
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::multiply(const Matrix& other, util::ThreadPool* pool) const {
  ensure(cols_ == other.rows_, "Matrix::multiply: inner dimension mismatch");
  Matrix out(rows_, other.cols_);
  // Transposing B makes every (i, j) inner product stream two contiguous
  // rows, which beats the strided i-k-j walk once B stops fitting in cache.
  const Matrix bt = other.transposed();
  util::maybe_parallel_for(pool, rows_, [&](std::size_t i) {
    const auto a = row(i);
    for (std::size_t j = 0; j < bt.rows_; ++j) {
      const auto b = bt.row(j);
      double sum = 0.0;
      for (std::size_t k = 0; k < cols_; ++k) sum += a[k] * b[k];
      out(i, j) = sum;
    }
  });
  return out;
}

std::vector<double> Matrix::multiply(std::span<const double> x) const {
  ensure(x.size() == cols_, "Matrix::multiply: vector size mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = dot(row(r), x);
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  ensure(rows_ == other.rows_ && cols_ == other.cols_, "Matrix::+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  ensure(rows_ == other.rows_ && cols_ == other.cols_, "Matrix::-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

double Matrix::frobenius_norm() const {
  double sum = 0.0;
  for (const double v : data_) sum += v * v;
  return std::sqrt(sum);
}

double Matrix::max_abs_diff(const Matrix& other) const {
  ensure(rows_ == other.rows_ && cols_ == other.cols_,
         "Matrix::max_abs_diff: shape mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::abs(data_[i] - other.data_[i]));
  }
  return worst;
}

Matrix Matrix::select_columns(std::span<const std::size_t> keep) const {
  Matrix out(rows_, keep.size());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < keep.size(); ++k) {
      ensure(keep[k] < cols_, "Matrix::select_columns: index out of range");
      out(r, k) = (*this)(r, keep[k]);
    }
  }
  return out;
}

Matrix Matrix::select_rows(std::span<const std::size_t> keep) const {
  Matrix out(keep.size(), cols_);
  for (std::size_t k = 0; k < keep.size(); ++k) {
    ensure(keep[k] < rows_, "Matrix::select_rows: index out of range");
    out.set_row(k, row(keep[k]));
  }
  return out;
}

double dot(std::span<const double> a, std::span<const double> b) {
  ensure(a.size() == b.size(), "dot: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

double squared_distance(std::span<const double> a, std::span<const double> b) {
  ensure(a.size() == b.size(), "squared_distance: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

}  // namespace flare::linalg
