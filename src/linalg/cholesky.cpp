#include "linalg/cholesky.hpp"

#include <cmath>

#include "util/error.hpp"

namespace flare::linalg {

Matrix cholesky_lower(const Matrix& a) {
  ensure(a.rows() == a.cols(), "cholesky_lower: matrix must be square");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        ensure_numeric(sum > 0.0, "cholesky_lower: matrix is not positive definite");
        l(i, j) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  return l;
}

std::vector<double> cholesky_solve(const Matrix& a, std::span<const double> b) {
  ensure(b.size() == a.rows(), "cholesky_solve: rhs size mismatch");
  const Matrix l = cholesky_lower(a);
  const std::size_t n = l.rows();

  // Forward substitution: L y = b.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }
  // Backward substitution: Lᵀ x = y.
  std::vector<double> x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double sum = y[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= l(k, i) * x[k];
    x[i] = sum / l(i, i);
  }
  return x;
}

}  // namespace flare::linalg
