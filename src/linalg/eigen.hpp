// Symmetric eigendecomposition via the cyclic Jacobi method.
//
// PCA (FLARE §4.3) needs all eigenpairs of a ~112 × 112 covariance matrix.
// Jacobi is exact enough (machine precision), simple, and at this size runs
// in milliseconds — no need for Householder/QR machinery.
#pragma once

#include "linalg/matrix.hpp"

namespace flare::linalg {

struct SymmetricEigenResult {
  /// Eigenvalues sorted in descending order.
  std::vector<double> eigenvalues;
  /// Column j of this matrix is the unit eigenvector for eigenvalues[j].
  Matrix eigenvectors;
};

/// Decomposes a symmetric matrix. Throws NumericalError if `a` is not square
/// or the sweep limit is exceeded (practically unreachable for symmetric
/// input), and std::invalid_argument if `a` is materially non-symmetric.
[[nodiscard]] SymmetricEigenResult symmetric_eigen(const Matrix& a,
                                                   int max_sweeps = 64,
                                                   double tolerance = 1e-12);

}  // namespace flare::linalg
