// Symmetric eigendecomposition via the cyclic Jacobi method.
//
// PCA (FLARE §4.3) needs all eigenpairs of a ~112 × 112 covariance matrix.
// Jacobi is exact enough (machine precision), simple, and at this size runs
// in milliseconds — no need for Householder/QR machinery.
#pragma once

#include "linalg/matrix.hpp"

namespace flare::linalg {

struct SymmetricEigenResult {
  /// Eigenvalues sorted in descending order.
  std::vector<double> eigenvalues;
  /// Column j of this matrix is the unit eigenvector for eigenvalues[j].
  Matrix eigenvectors;
};

/// Decomposes a symmetric matrix. Throws NumericalError if `a` is not square
/// or the sweep limit is exceeded (practically unreachable for symmetric
/// input), and std::invalid_argument if `a` is materially non-symmetric.
///
/// `rotation_skip` (relative to the Frobenius norm of `a`) skips rotations
/// whose pivot is already below that threshold. The default 0.0 rotates every
/// non-zero pivot, preserving the historical bit-exact behaviour; warm solves
/// of near-diagonal matrices (incremental PCA) pass a small value so converged
/// pivots cost a comparison instead of three O(n) row/column updates. Must be
/// well below the 1e-8 convergence acceptance or the final check throws.
[[nodiscard]] SymmetricEigenResult symmetric_eigen(const Matrix& a,
                                                   int max_sweeps = 64,
                                                   double tolerance = 1e-12,
                                                   double rotation_skip = 0.0);

/// Warm-start variant for *near-diagonal* symmetric input (e.g. a merged
/// covariance expressed in the previous eigenbasis — incremental PCA). Same
/// cyclic-Jacobi iteration, convergence acceptance, and descending-eigenvalue
/// contract as `symmetric_eigen`, but the working matrix is maintained as an
/// upper triangle with exact pivot annihilation, roughly halving the flops
/// per rotation. Results match `symmetric_eigen` up to floating-point
/// rounding, NOT bit-for-bit — callers needing the historical bit-exact
/// spectrum (the batch-fit golden path) must use `symmetric_eigen`.
[[nodiscard]] SymmetricEigenResult symmetric_eigen_warm(const Matrix& a,
                                                        int max_sweeps = 64,
                                                        double tolerance = 1e-12,
                                                        double rotation_skip = 0.0);

}  // namespace flare::linalg
