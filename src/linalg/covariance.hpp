// Sample covariance of a data matrix (rows = observations, cols = variables).
#pragma once

#include "linalg/matrix.hpp"

namespace flare::linalg {

/// Column means of a data matrix.
[[nodiscard]] std::vector<double> column_means(const Matrix& data);

/// Unbiased (n-1) sample covariance matrix; data must have >= 2 rows.
/// The rank-k update is partitioned over *output* rows, so each cov(i, j)
/// accumulates its n terms in observation order regardless of the thread
/// count — the result is bit-identical whether `pool` is null or not.
[[nodiscard]] Matrix covariance_matrix(const Matrix& data,
                                       util::ThreadPool* pool = nullptr);

}  // namespace flare::linalg
