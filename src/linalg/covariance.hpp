// Sample covariance of a data matrix (rows = observations, cols = variables).
#pragma once

#include "linalg/matrix.hpp"

namespace flare::linalg {

/// Column means of a data matrix.
[[nodiscard]] std::vector<double> column_means(const Matrix& data);

/// Unbiased (n-1) sample covariance matrix; data must have >= 2 rows.
[[nodiscard]] Matrix covariance_matrix(const Matrix& data);

}  // namespace flare::linalg
