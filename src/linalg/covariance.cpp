#include "linalg/covariance.hpp"

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace flare::linalg {

std::vector<double> column_means(const Matrix& data) {
  ensure(data.rows() > 0, "column_means: empty matrix");
  std::vector<double> means(data.cols(), 0.0);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    const auto row = data.row(r);
    for (std::size_t c = 0; c < data.cols(); ++c) means[c] += row[c];
  }
  for (double& m : means) m /= static_cast<double>(data.rows());
  return means;
}

Matrix covariance_matrix(const Matrix& data, util::ThreadPool* pool) {
  ensure(data.rows() >= 2, "covariance_matrix: need at least two observations");
  const std::vector<double> means = column_means(data);
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  const double denom = static_cast<double>(n - 1);
  Matrix cov(d, d);
  // Each task owns a band of output rows i and scans all observations for
  // them, so no partial matrices or cross-thread reductions are needed.
  util::maybe_parallel_for(pool, d, [&](std::size_t i) {
    double* out = &cov(i, i);
    const double mi = means[i];
    for (std::size_t r = 0; r < n; ++r) {
      const auto row = data.row(r);
      const double di = row[i] - mi;
      for (std::size_t j = i; j < d; ++j) {
        out[j - i] += di * (row[j] - means[j]);
      }
    }
    for (std::size_t j = i; j < d; ++j) out[j - i] /= denom;
  });
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i + 1; j < d; ++j) cov(j, i) = cov(i, j);
  }
  return cov;
}

}  // namespace flare::linalg
