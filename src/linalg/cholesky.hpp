// Cholesky factorisation — used by the simulator's correlated-noise
// generator and handy for SPD solves.
#pragma once

#include "linalg/matrix.hpp"

namespace flare::linalg {

/// Lower-triangular L with L Lᵀ = a. Throws NumericalError when `a` is not
/// (numerically) positive definite.
[[nodiscard]] Matrix cholesky_lower(const Matrix& a);

/// Solves a x = b for SPD `a` via Cholesky (forward + backward substitution).
[[nodiscard]] std::vector<double> cholesky_solve(const Matrix& a,
                                                 std::span<const double> b);

}  // namespace flare::linalg
