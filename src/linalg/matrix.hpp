// Dense row-major double matrix.
//
// FLARE's analysis stage works on a scenarios × metrics data matrix
// (~895 × ~112), so a straightforward cache-friendly dense implementation is
// the right tool — no sparse or blocked machinery needed.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace flare::util {
class ThreadPool;
}

namespace flare::linalg {

class Matrix {
 public:
  Matrix() = default;

  /// rows × cols matrix of zeros.
  Matrix(std::size_t rows, std::size_t cols);

  /// rows × cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill);

  /// Builds from row-major data; data.size() must equal rows * cols.
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data);

  /// Builds from a list of equally sized rows.
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  /// n × n identity.
  static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access (throws std::out_of_range).
  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  /// View of row `r` (contiguous in row-major layout).
  [[nodiscard]] std::span<const double> row(std::size_t r) const;
  [[nodiscard]] std::span<double> row(std::size_t r);

  /// Copies column `c` out (columns are strided).
  [[nodiscard]] std::vector<double> column(std::size_t c) const;

  void set_row(std::size_t r, std::span<const double> values);
  void set_column(std::size_t c, std::span<const double> values);

  [[nodiscard]] Matrix transposed() const;

  /// Matrix product; cols() must equal other.rows(). Works on a transposed
  /// copy of `other` so both inner loops stream contiguous memory, and
  /// optionally computes output rows in parallel on `pool` (each output
  /// element sums over k in ascending order regardless, so the result is
  /// identical for every thread count).
  [[nodiscard]] Matrix multiply(const Matrix& other,
                                util::ThreadPool* pool = nullptr) const;

  /// Matrix–vector product; x.size() must equal cols().
  [[nodiscard]] std::vector<double> multiply(std::span<const double> x) const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  [[nodiscard]] friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  [[nodiscard]] friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  [[nodiscard]] friend Matrix operator*(Matrix a, double s) { return a *= s; }
  [[nodiscard]] friend Matrix operator*(double s, Matrix a) { return a *= s; }

  [[nodiscard]] bool operator==(const Matrix& other) const = default;

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const;

  /// Max |a_ij - b_ij|; matrices must have equal shape.
  [[nodiscard]] double max_abs_diff(const Matrix& other) const;

  /// Keeps only the listed columns, in the given order.
  [[nodiscard]] Matrix select_columns(std::span<const std::size_t> keep) const;

  /// Keeps only the listed rows, in the given order.
  [[nodiscard]] Matrix select_rows(std::span<const std::size_t> keep) const;

  /// Raw row-major storage.
  [[nodiscard]] const std::vector<double>& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Dot product; sizes must match.
[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);

/// Euclidean norm.
[[nodiscard]] double norm2(std::span<const double> a);

/// Squared Euclidean distance between equally sized vectors.
[[nodiscard]] double squared_distance(std::span<const double> a,
                                      std::span<const double> b);

}  // namespace flare::linalg
