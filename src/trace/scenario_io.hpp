// Scenario-trace persistence: a ScenarioSet round-trips through a CSV with a
// cluster-trace-like schema (id, machine_type, weight, mix key), so profiled
// datacenters can be archived and re-analysed without re-simulation.
#pragma once

#include <string>
#include <vector>

#include "dcsim/scenario.hpp"

namespace flare::trace {

/// Writes the set to `path` (header + one row per scenario).
void save_scenario_set(const dcsim::ScenarioSet& set, const std::string& path);

/// Reads a set written by `save_scenario_set`. Throws flare::ParseError on
/// malformed files; validates ids are dense, weights non-negative, and the
/// shape id (machine_type) of every row non-empty — a row with no shape id
/// cannot be routed to any shard.
[[nodiscard]] dcsim::ScenarioSet load_scenario_set(const std::string& path);

/// Like load_scenario_set, and additionally requires every row's shape id to
/// name one of `valid_shapes` (a fleet's shape table) — an unknown machine
/// config must fail with a positioned ParseError instead of being silently
/// coerced into another shape's pipeline.
[[nodiscard]] dcsim::ScenarioSet load_scenario_set(
    const std::string& path, const std::vector<std::string>& valid_shapes);

/// Serialises the set to the same CSV text save_scenario_set writes — the
/// wire format `flare client ingest` ships a batch in (serve/protocol.hpp).
[[nodiscard]] std::string scenario_set_to_csv(const dcsim::ScenarioSet& set);

/// Parses CSV text produced by scenario_set_to_csv / save_scenario_set.
/// `origin` labels ParseErrors in place of a file path (e.g. the requesting
/// client), so a malformed wire batch fails with the same positioned
/// diagnostics a malformed archive does.
[[nodiscard]] dcsim::ScenarioSet parse_scenario_set_csv(
    const std::string& text, const std::string& origin);

/// Appends `batch` to an existing scenario CSV without rewriting it,
/// continuing the file's dense id sequence (the batch's own ids are
/// ignored). The file must exist and parse — the existing rows are read
/// first so the append cannot silently corrupt the id invariant.
/// With `journaled` the append is guarded by a write-ahead journal (see
/// trace/journal.hpp) so a crash mid-append can be rolled back.
void append_scenario_set(const dcsim::ScenarioSet& batch, const std::string& path,
                         bool journaled = false);

}  // namespace flare::trace
