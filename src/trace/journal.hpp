// Crash-safe appends for the trace archives (DESIGN.md §10).
//
// The append paths in scenario_io/metric_io grow a CSV in place; a crash
// mid-append leaves a torn final line that a later load would reject (or,
// worse, silently mis-parse). AppendJournal is a tiny write-ahead *undo*
// journal: before the first appended byte it durably records the target's
// pre-append size next to it (`<target>.journal`), and deletes that record
// only once the append has fully reached the file. Recovery is therefore a
// pure truncation:
//
//   AppendJournal journal(path);   // records size, fsync'd, BEFORE the append
//   ... append rows, flush ...
//   journal.commit();              // append durable -> journal deleted
//
//   // after a crash anywhere in between:
//   recover_append(path);          // truncates the torn tail, clears journal
//
// A journal that is itself torn (crash while writing it) means the append
// never started — the target is intact and recovery just clears the journal.
#pragma once

#include <cstdint>
#include <string>

namespace flare::trace {

/// What recover_append found and did.
struct JournalRecovery {
  /// A journal existed for the target and was cleared (whether or not the
  /// target needed truncation).
  bool recovered = false;
  /// The target had grown past the journaled size and was truncated back.
  bool truncated = false;
  /// The target's size after recovery (== the journaled pre-append size when
  /// a well-formed journal was found).
  std::uint64_t restored_size = 0;
};

/// RAII write-ahead journal guarding one append to `target_path`. The
/// constructor records the target's current size in `journal_path(target)`
/// and flushes it to disk before returning; the append may then proceed.
/// Destruction without commit() leaves the journal in place so a later
/// recover_append() rolls the target back — the correct outcome both after a
/// crash and after a mid-append exception (disk full, …).
class AppendJournal {
 public:
  /// Throws flare::JournalError when the target does not exist or the journal
  /// cannot be written durably. Refuses to start when an uncleared journal is
  /// already present (run recover_append first).
  explicit AppendJournal(const std::string& target_path);
  ~AppendJournal();

  AppendJournal(const AppendJournal&) = delete;
  AppendJournal& operator=(const AppendJournal&) = delete;

  /// The append fully reached the target: deletes the journal. Idempotent.
  void commit();

  /// `<target>.journal` — the sidecar file the journal lives in.
  [[nodiscard]] static std::string journal_path(const std::string& target_path);

 private:
  std::string journal_path_;
  bool committed_ = false;
};

/// Rolls back a torn append on `target_path` if its journal says one was in
/// flight: truncates the target to the journaled pre-append size and deletes
/// the journal. No journal -> no-op ({false, false, current size}). Safe to
/// call unconditionally before loading an archive.
[[nodiscard]] JournalRecovery recover_append(const std::string& target_path);

/// fsyncs the directory containing `path`, making a just-created, renamed, or
/// removed directory entry durable. File-data fsync alone does not protect
/// the *name*: a power loss can drop the journal's directory entry while
/// keeping the target's appended bytes, leaving a torn append with no undo
/// record — exactly the ordering this call closes. No-op on platforms
/// without fsync; best-effort (some filesystems refuse O_RDONLY dir fsync).
void fsync_parent_dir(const std::string& path);

}  // namespace flare::trace
