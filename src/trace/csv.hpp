// Minimal RFC-4180-ish CSV reading/writing for trace persistence.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace flare::trace {

/// Quotes a field when it contains separators, quotes or newlines.
[[nodiscard]] std::string csv_escape(const std::string& field);

/// Writes one CSV record (with trailing newline).
void write_csv_row(std::ostream& out, const std::vector<std::string>& fields);

/// Parses one CSV record (handles quoted fields with embedded commas/quotes).
/// Throws flare::ParseError on malformed quoting.
[[nodiscard]] std::vector<std::string> parse_csv_row(const std::string& line);

/// Reads all non-empty lines of a file; throws flare::ParseError when the
/// file cannot be opened.
[[nodiscard]] std::vector<std::string> read_lines(const std::string& path);

}  // namespace flare::trace
