// Minimal RFC-4180-ish CSV reading/writing for trace persistence.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace flare::trace {

/// Quotes a field when it contains separators, quotes or newlines.
[[nodiscard]] std::string csv_escape(const std::string& field);

/// Writes one CSV record (with trailing newline).
void write_csv_row(std::ostream& out, const std::vector<std::string>& fields);

/// Parses one CSV record (handles quoted fields with embedded commas/quotes).
/// Throws flare::ParseError on malformed quoting.
[[nodiscard]] std::vector<std::string> parse_csv_row(const std::string& line);

/// Position-aware variant: malformed quoting raises a ParseError carrying
/// `path`, the 1-based `line_number` and the offending line.
[[nodiscard]] std::vector<std::string> parse_csv_row(const std::string& line,
                                                     const std::string& path,
                                                     std::size_t line_number);

/// Numeric-token parsing with provenance: wraps util::parse_double /
/// util::parse_int so a bad token raises a ParseError naming the file, the
/// 1-based line number and the token itself.
[[nodiscard]] double parse_csv_double(const std::string& token,
                                      const std::string& path,
                                      std::size_t line_number);
[[nodiscard]] long long parse_csv_int(const std::string& token,
                                      const std::string& path,
                                      std::size_t line_number);

/// Reads all non-empty lines of a file; throws flare::ParseError when the
/// file cannot be opened.
[[nodiscard]] std::vector<std::string> read_lines(const std::string& path);

/// A file's non-empty lines plus whether the final line was newline-
/// terminated. Every writer in trace/ terminates the last record, so an
/// unterminated final line is the signature of a torn append — loaders must
/// reject it instead of silently parsing a half-written row.
struct CsvContent {
  std::vector<std::string> lines;
  bool complete_final_line = true;
};

/// read_lines plus torn-tail detection; throws flare::ParseError when the
/// file cannot be opened.
[[nodiscard]] CsvContent read_csv_content(const std::string& path);

}  // namespace flare::trace
