#include "trace/store_io.hpp"

#include <optional>

#include "trace/journal.hpp"
#include "trace/metric_io.hpp"

namespace flare::trace {

void save_column_store(const metrics::MetricDatabase& db, const std::string& path,
                       std::size_t block_rows) {
  metrics::create_column_store(path, db.catalog(), block_rows);
  if (db.num_rows() > 0) {
    metrics::append_column_store_rows(path, db);
  }
}

void append_column_store(const metrics::MetricDatabase& batch,
                         const std::string& path, bool journaled) {
  std::optional<AppendJournal> journal;
  if (journaled) journal.emplace(path);
  metrics::append_column_store_rows(path, batch);
  if (journal) journal->commit();
}

void csv_to_column_store(const std::string& csv_path,
                         const std::string& store_path,
                         const metrics::MetricCatalog& catalog,
                         std::size_t block_rows) {
  const metrics::MetricDatabase db = load_metric_database(csv_path, catalog);
  save_column_store(db, store_path, block_rows);
}

}  // namespace flare::trace
