#include "trace/journal.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define FLARE_HAVE_FSYNC 1
#endif

namespace flare::trace {
namespace {

constexpr const char* kMagic = "flare-append-journal v1";
constexpr const char* kBegin = "BEGIN";

/// Reads the journal's lines; empty vector when unreadable (treated as torn).
std::vector<std::string> read_journal(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  if (!in) return lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  return lines;
}

/// A journal is well-formed only when every line — including the BEGIN
/// marker, written last — made it to disk; anything else is a journal torn
/// before the guarded append started.
bool parse_journal(const std::vector<std::string>& lines, std::uint64_t* size) {
  if (lines.size() != 3 || lines[0] != kMagic || lines[2] != kBegin) return false;
  const std::string& field = lines[1];
  constexpr std::string_view kPrefix = "size ";
  if (field.rfind(kPrefix, 0) != 0) return false;
  std::uint64_t value = 0;
  for (std::size_t i = kPrefix.size(); i < field.size(); ++i) {
    const char c = field[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *size = value;
  return field.size() > kPrefix.size();
}

}  // namespace

void fsync_parent_dir(const std::string& path) {
#ifdef FLARE_HAVE_FSYNC
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;  // best-effort: an unsyncable dir is not a new failure
  ::fsync(fd);
  ::close(fd);
#else
  (void)path;
#endif
}

std::string AppendJournal::journal_path(const std::string& target_path) {
  return target_path + ".journal";
}

AppendJournal::AppendJournal(const std::string& target_path)
    : journal_path_(journal_path(target_path)) {
  std::error_code ec;
  if (std::filesystem::exists(journal_path_, ec)) {
    throw JournalError("AppendJournal: uncleared journal at " + journal_path_ +
                       " — run recover_append() before appending again");
  }
  const std::uintmax_t size = std::filesystem::file_size(target_path, ec);
  if (ec) {
    throw JournalError("AppendJournal: cannot stat append target " +
                       target_path + ": " + ec.message());
  }

  // The journal must be durable before the first appended byte, else a crash
  // could leave a torn target with no record to roll back to.
  std::FILE* out = std::fopen(journal_path_.c_str(), "wb");
  if (out == nullptr) {
    throw JournalError("AppendJournal: cannot create journal " + journal_path_);
  }
  const std::string body = std::string(kMagic) + "\nsize " +
                           std::to_string(size) + "\n" + kBegin + "\n";
  bool ok = std::fwrite(body.data(), 1, body.size(), out) == body.size();
  ok = (std::fflush(out) == 0) && ok;
#ifdef FLARE_HAVE_FSYNC
  ok = (::fsync(::fileno(out)) == 0) && ok;
#endif
  ok = (std::fclose(out) == 0) && ok;
  if (!ok) {
    std::filesystem::remove(journal_path_, ec);
    throw JournalError("AppendJournal: cannot durably write journal " +
                       journal_path_);
  }
  // The journal's *directory entry* must be durable too: fsyncing the file
  // alone leaves a power-loss window where the metadata drop loses the name
  // while the target's appended bytes survive — a torn append with no undo
  // record. Syncing the containing directory closes that ordering.
  fsync_parent_dir(journal_path_);
}

AppendJournal::~AppendJournal() {
  // Without a commit the journal stays behind on purpose: the append may have
  // partially happened (crash, disk full) and recover_append() must be able
  // to truncate the target back to the recorded size.
}

void AppendJournal::commit() {
  if (committed_) return;
  std::error_code ec;
  std::filesystem::remove(journal_path_, ec);
  if (ec) {
    throw JournalError("AppendJournal::commit: cannot clear journal " +
                       journal_path_ + ": " + ec.message());
  }
  // Make the unlink durable: a resurrected journal after power loss would
  // roll a *committed* append back on the next recover_append().
  fsync_parent_dir(journal_path_);
  committed_ = true;
}

JournalRecovery recover_append(const std::string& target_path) {
  const std::string jpath = AppendJournal::journal_path(target_path);
  JournalRecovery result;
  std::error_code ec;
  if (!std::filesystem::exists(jpath, ec)) {
    const std::uintmax_t size = std::filesystem::file_size(target_path, ec);
    result.restored_size = ec ? 0 : static_cast<std::uint64_t>(size);
    return result;
  }

  std::uint64_t journaled_size = 0;
  if (parse_journal(read_journal(jpath), &journaled_size)) {
    const std::uintmax_t current = std::filesystem::file_size(target_path, ec);
    if (!ec && current > journaled_size) {
      // The torn append grew the target: roll it back. (A target smaller than
      // the journaled size cannot be restored from an undo journal — leave it
      // for the caller's loader to reject.)
      std::filesystem::resize_file(target_path, journaled_size, ec);
      if (ec) {
        throw JournalError("recover_append: cannot truncate " + target_path +
                           " to " + std::to_string(journaled_size) +
                           " bytes: " + ec.message());
      }
      result.truncated = true;
    }
    result.restored_size = journaled_size;
  } else {
    // Journal torn mid-write: the guarded append never started (the journal
    // is fsync'd before the target is touched), so the target is intact.
    const std::uintmax_t size = std::filesystem::file_size(target_path, ec);
    result.restored_size = ec ? 0 : static_cast<std::uint64_t>(size);
  }

  std::filesystem::remove(jpath, ec);
  if (ec) {
    throw JournalError("recover_append: cannot clear journal " + jpath + ": " +
                       ec.message());
  }
  fsync_parent_dir(jpath);
  result.recovered = true;
  return result;
}

}  // namespace flare::trace
