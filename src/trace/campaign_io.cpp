#include "trace/campaign_io.hpp"

#include <fstream>

#include "trace/csv.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace flare::trace {
namespace {

constexpr const char* kMagic = "flare_campaign";
constexpr const char* kVersion = "v1";

using util::format_double_exact;

[[nodiscard]] std::string fmt(double v) { return format_double_exact(v); }

[[nodiscard]] core::CampaignStopReason parse_stop(const std::string& token,
                                                  const std::string& path,
                                                  std::size_t line_no) {
  if (token == "exhausted") return core::CampaignStopReason::kExhausted;
  if (token == "target_reached") return core::CampaignStopReason::kTargetReached;
  if (token == "budget_exhausted") {
    return core::CampaignStopReason::kBudgetExhausted;
  }
  throw ParseError("load_campaign_state: " + path + ":" +
                   std::to_string(line_no) +
                   ": unknown stop reason — offending token '" + token + "'");
}

[[nodiscard]] core::ClusterReplayStatus parse_status(const std::string& token,
                                                     const std::string& path,
                                                     std::size_t line_no) {
  if (token == "direct") return core::ClusterReplayStatus::kDirect;
  if (token == "fallback") return core::ClusterReplayStatus::kFallback;
  if (token == "quarantined") return core::ClusterReplayStatus::kQuarantined;
  throw ParseError("load_campaign_state: " + path + ":" +
                   std::to_string(line_no) +
                   ": unknown cluster status — offending token '" + token + "'");
}

void expect_fields(const std::vector<std::string>& fields, std::size_t n,
                   const char* record, const std::string& path,
                   std::size_t line_no) {
  if (fields.size() != n) {
    throw ParseError("load_campaign_state: " + path + ":" +
                     std::to_string(line_no) + ": " + record + " record needs " +
                     std::to_string(n) + " fields, got " +
                     std::to_string(fields.size()));
  }
}

void write_ledger(std::ostream& out, const char* tag,
                  const core::ReplayLedger& l) {
  write_csv_row(out, {tag, fmt(l.direct_mass), fmt(l.fallback_mass),
                      fmt(l.quarantined_mass), fmt(l.pending_mass),
                      std::to_string(l.clusters_direct),
                      std::to_string(l.clusters_fallback),
                      std::to_string(l.clusters_quarantined),
                      std::to_string(l.total_attempts),
                      std::to_string(l.failed_attempts),
                      std::to_string(l.fallback_probes),
                      fmt(l.measurement_uncertainty_pp),
                      fmt(l.quarantine_widening_pp), fmt(l.simulated_seconds)});
}

[[nodiscard]] core::ReplayLedger parse_ledger(const std::vector<std::string>& f,
                                              std::size_t first,
                                              const std::string& path,
                                              std::size_t line_no) {
  core::ReplayLedger l;
  l.direct_mass = parse_csv_double(f[first + 0], path, line_no);
  l.fallback_mass = parse_csv_double(f[first + 1], path, line_no);
  l.quarantined_mass = parse_csv_double(f[first + 2], path, line_no);
  l.pending_mass = parse_csv_double(f[first + 3], path, line_no);
  l.clusters_direct = static_cast<int>(parse_csv_int(f[first + 4], path, line_no));
  l.clusters_fallback =
      static_cast<int>(parse_csv_int(f[first + 5], path, line_no));
  l.clusters_quarantined =
      static_cast<int>(parse_csv_int(f[first + 6], path, line_no));
  l.total_attempts = static_cast<int>(parse_csv_int(f[first + 7], path, line_no));
  l.failed_attempts =
      static_cast<int>(parse_csv_int(f[first + 8], path, line_no));
  l.fallback_probes =
      static_cast<int>(parse_csv_int(f[first + 9], path, line_no));
  l.measurement_uncertainty_pp = parse_csv_double(f[first + 10], path, line_no);
  l.quarantine_widening_pp = parse_csv_double(f[first + 11], path, line_no);
  l.simulated_seconds = parse_csv_double(f[first + 12], path, line_no);
  return l;
}

}  // namespace

void save_campaign_state(const core::CampaignState& state,
                         const std::string& path) {
  std::ofstream out(path);
  ensure(static_cast<bool>(out),
         "save_campaign_state: cannot open file: " + path);
  write_csv_row(out, {kMagic, kVersion});
  write_csv_row(
      out, {"summary", state.feature_name, std::to_string(state.num_testbeds),
            std::string(to_string(state.stop)), fmt(state.target_ci_pp),
            fmt(state.budget_seconds), fmt(state.impact_pct), fmt(state.band_pp),
            std::to_string(state.units_completed),
            std::to_string(state.units_failed),
            std::to_string(state.clusters_total),
            std::to_string(state.distinct_replays), fmt(state.makespan_seconds),
            fmt(state.total_busy_seconds)});
  write_ledger(out, "ledger", state.ledger);
  for (const core::CampaignCheckpoint& cp : state.checkpoints) {
    std::vector<std::string> fields = {
        "checkpoint", std::to_string(cp.units_completed), fmt(cp.impact_pct),
        fmt(cp.band_pp), fmt(cp.measured_mass), fmt(cp.simulated_seconds),
        std::to_string(cp.attempts), fmt(cp.ledger.direct_mass),
        fmt(cp.ledger.fallback_mass), fmt(cp.ledger.quarantined_mass),
        fmt(cp.ledger.pending_mass)};
    write_csv_row(out, fields);
  }
  for (const dcsim::TestbedUtilisation& t : state.testbeds) {
    write_csv_row(out, {"testbed", std::to_string(t.testbed),
                        std::to_string(t.units), std::to_string(t.attempts),
                        fmt(t.busy_seconds), fmt(t.utilisation)});
  }
  for (const core::CampaignClusterRow& c : state.clusters) {
    write_csv_row(out, {"cluster", std::to_string(c.shard),
                        std::to_string(c.cluster), fmt(c.weight),
                        c.measured ? "1" : "0",
                        std::string(to_string(c.status)),
                        std::to_string(c.scenario_row), fmt(c.impact_pct),
                        fmt(c.ci_halfwidth_pp), fmt(c.halfwidth_pp)});
  }
  ensure(static_cast<bool>(out), "save_campaign_state: write failed: " + path);
}

core::CampaignState load_campaign_state(const std::string& path) {
  const CsvContent content = read_csv_content(path);
  if (!content.complete_final_line) {
    throw ParseError("load_campaign_state: " + path +
                     ": truncated final line (no trailing newline) — torn "
                     "write?");
  }
  const std::vector<std::string>& lines = content.lines;
  if (lines.empty()) {
    throw ParseError("load_campaign_state: " + path + ": empty file");
  }
  {
    const std::vector<std::string> head = parse_csv_row(lines[0], path, 1);
    if (head.size() != 2 || head[0] != kMagic || head[1] != kVersion) {
      throw ParseError("load_campaign_state: " + path +
                       ": not a flare_campaign v1 file");
    }
  }
  core::CampaignState state;
  bool seen_summary = false;
  bool seen_ledger = false;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::size_t line_no = i + 1;
    const std::vector<std::string> f = parse_csv_row(lines[i], path, line_no);
    ensure(!f.empty(), "load_campaign_state: empty record in " + path);
    if (f[0] == "summary") {
      expect_fields(f, 14, "summary", path, line_no);
      state.feature_name = f[1];
      state.num_testbeds =
          static_cast<std::size_t>(parse_csv_int(f[2], path, line_no));
      state.stop = parse_stop(f[3], path, line_no);
      state.target_ci_pp = parse_csv_double(f[4], path, line_no);
      state.budget_seconds = parse_csv_double(f[5], path, line_no);
      state.impact_pct = parse_csv_double(f[6], path, line_no);
      state.band_pp = parse_csv_double(f[7], path, line_no);
      state.units_completed =
          static_cast<std::size_t>(parse_csv_int(f[8], path, line_no));
      state.units_failed =
          static_cast<std::size_t>(parse_csv_int(f[9], path, line_no));
      state.clusters_total =
          static_cast<std::size_t>(parse_csv_int(f[10], path, line_no));
      state.distinct_replays =
          static_cast<std::size_t>(parse_csv_int(f[11], path, line_no));
      state.makespan_seconds = parse_csv_double(f[12], path, line_no);
      state.total_busy_seconds = parse_csv_double(f[13], path, line_no);
      seen_summary = true;
    } else if (f[0] == "ledger") {
      expect_fields(f, 14, "ledger", path, line_no);
      state.ledger = parse_ledger(f, 1, path, line_no);
      seen_ledger = true;
    } else if (f[0] == "checkpoint") {
      expect_fields(f, 11, "checkpoint", path, line_no);
      core::CampaignCheckpoint cp;
      cp.units_completed =
          static_cast<std::size_t>(parse_csv_int(f[1], path, line_no));
      cp.impact_pct = parse_csv_double(f[2], path, line_no);
      cp.band_pp = parse_csv_double(f[3], path, line_no);
      cp.measured_mass = parse_csv_double(f[4], path, line_no);
      cp.simulated_seconds = parse_csv_double(f[5], path, line_no);
      cp.attempts = static_cast<int>(parse_csv_int(f[6], path, line_no));
      cp.ledger.direct_mass = parse_csv_double(f[7], path, line_no);
      cp.ledger.fallback_mass = parse_csv_double(f[8], path, line_no);
      cp.ledger.quarantined_mass = parse_csv_double(f[9], path, line_no);
      cp.ledger.pending_mass = parse_csv_double(f[10], path, line_no);
      cp.ledger.simulated_seconds = cp.simulated_seconds;
      cp.ledger.total_attempts = cp.attempts;
      state.checkpoints.push_back(cp);
    } else if (f[0] == "testbed") {
      expect_fields(f, 6, "testbed", path, line_no);
      dcsim::TestbedUtilisation t;
      t.testbed = static_cast<std::size_t>(parse_csv_int(f[1], path, line_no));
      t.units = static_cast<std::size_t>(parse_csv_int(f[2], path, line_no));
      t.attempts = static_cast<std::size_t>(parse_csv_int(f[3], path, line_no));
      t.busy_seconds = parse_csv_double(f[4], path, line_no);
      t.utilisation = parse_csv_double(f[5], path, line_no);
      state.testbeds.push_back(t);
    } else if (f[0] == "cluster") {
      expect_fields(f, 10, "cluster", path, line_no);
      core::CampaignClusterRow c;
      c.shard = static_cast<std::size_t>(parse_csv_int(f[1], path, line_no));
      c.cluster = static_cast<std::size_t>(parse_csv_int(f[2], path, line_no));
      c.weight = parse_csv_double(f[3], path, line_no);
      c.measured = f[4] == "1";
      c.status = parse_status(f[5], path, line_no);
      c.scenario_row =
          static_cast<std::size_t>(parse_csv_int(f[6], path, line_no));
      c.impact_pct = parse_csv_double(f[7], path, line_no);
      c.ci_halfwidth_pp = parse_csv_double(f[8], path, line_no);
      c.halfwidth_pp = parse_csv_double(f[9], path, line_no);
      state.clusters.push_back(c);
    } else {
      throw ParseError("load_campaign_state: " + path + ":" +
                       std::to_string(line_no) +
                       ": unknown record type — offending token '" + f[0] + "'");
    }
  }
  if (!seen_summary || !seen_ledger) {
    throw ParseError("load_campaign_state: " + path +
                     ": missing summary or ledger record");
  }
  if (state.clusters.size() != state.clusters_total) {
    throw ParseError("load_campaign_state: " + path + ": cluster record count " +
                     std::to_string(state.clusters.size()) +
                     " does not match the summary's clusters_total " +
                     std::to_string(state.clusters_total));
  }
  return state;
}

}  // namespace flare::trace
