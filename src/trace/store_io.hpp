// Column-store persistence glue (DESIGN.md §12): crash-safe appends via the
// PR-4 write-ahead undo journal, plus conversion from the CSV archives.
//
// The column store's append path is pure file growth (the header is never
// rewritten), so the same journal that guards CSV appends guards store
// appends: record the pre-append size, append blocks, commit. A crash
// anywhere in between is rolled back by `recover_append(path)` — a pure
// truncation that leaves the store exactly as before the append.
#pragma once

#include <string>

#include "metrics/column_store.hpp"
#include "metrics/metric_database.hpp"

namespace flare::trace {

/// Writes `db` as a fresh column store at `path` (create + one append).
void save_column_store(const metrics::MetricDatabase& db, const std::string& path,
                       std::size_t block_rows = 1024);

/// Appends `batch`'s rows to an existing store. With `journaled`, the append
/// is guarded by an AppendJournal: run `recover_append(path)` before opening
/// a store that may have a torn append.
void append_column_store(const metrics::MetricDatabase& batch,
                         const std::string& path, bool journaled = false);

/// Converts a metric CSV archive (trace/metric_io.hpp format) into a column
/// store — the migration path for existing archives. Streams through an
/// in-RAM database (the CSV must be loadable anyway to be validated).
void csv_to_column_store(const std::string& csv_path,
                         const std::string& store_path,
                         const metrics::MetricCatalog& catalog,
                         std::size_t block_rows = 1024);

}  // namespace flare::trace
