// Metric-database persistence: archives a profiled database (the Profiler's
// "relational database" of §4.2) to CSV and restores it against a catalog.
#pragma once

#include <string>

#include "metrics/metric_database.hpp"

namespace flare::trace {

/// Writes the database: header is scenario_id,scenario_key,weight,<metrics…>.
void save_metric_database(const metrics::MetricDatabase& db, const std::string& path);

/// Restores a database written by `save_metric_database`. The file's metric
/// columns must exactly match `catalog`'s names and order.
[[nodiscard]] metrics::MetricDatabase load_metric_database(
    const std::string& path,
    const metrics::MetricCatalog& catalog = metrics::MetricCatalog::standard());

/// Appends `batch`'s rows to an existing metric CSV without rewriting it.
/// The file must exist and its header must match `batch`'s catalog — the
/// existing file is validated (via a load) before the append. With
/// `journaled` the append is guarded by a write-ahead journal (see
/// trace/journal.hpp): a crash mid-append is rolled back by
/// `recover_append(path)` instead of leaving a torn archive.
void append_metric_database(const metrics::MetricDatabase& batch,
                            const std::string& path, bool journaled = false);

}  // namespace flare::trace
