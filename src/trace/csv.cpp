#include "trace/csv.hpp"

#include <fstream>
#include <ostream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace flare::trace {

std::string csv_escape(const std::string& field) {
  const bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void write_csv_row(std::ostream& out, const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out << ',';
    out << csv_escape(fields[i]);
  }
  out << '\n';
}

std::vector<std::string> parse_csv_row(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      if (!current.empty()) {
        throw ParseError("parse_csv_row: quote in the middle of a bare field");
      }
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current += c;
    }
  }
  if (in_quotes) throw ParseError("parse_csv_row: unterminated quoted field");
  fields.push_back(std::move(current));
  return fields;
}

std::vector<std::string> parse_csv_row(const std::string& line,
                                       const std::string& path,
                                       std::size_t line_number) {
  try {
    return parse_csv_row(line);
  } catch (const ParseError& e) {
    throw ParseError(path + ":" + std::to_string(line_number) + ": " +
                     e.what() + " — offending line '" + line + "'");
  }
}

double parse_csv_double(const std::string& token, const std::string& path,
                        std::size_t line_number) {
  try {
    return util::parse_double(token);
  } catch (const ParseError&) {
    throw ParseError(path + ":" + std::to_string(line_number) +
                     ": not a number — offending token '" + token + "'");
  }
}

long long parse_csv_int(const std::string& token, const std::string& path,
                        std::size_t line_number) {
  try {
    return util::parse_int(token);
  } catch (const ParseError&) {
    throw ParseError(path + ":" + std::to_string(line_number) +
                     ": not an integer — offending token '" + token + "'");
  }
}

std::vector<std::string> read_lines(const std::string& path) {
  return read_csv_content(path).lines;
}

CsvContent read_csv_content(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("read_lines: cannot open file: " + path);
  CsvContent content;
  std::string line;
  while (std::getline(in, line)) {
    // getline strips '\n' but reports eof only when the stream ran out
    // *before* finding one — i.e. the final line had no terminator.
    content.complete_final_line = !in.eof();
    if (!line.empty() && line != "\r") content.lines.push_back(line);
  }
  return content;
}

}  // namespace flare::trace
