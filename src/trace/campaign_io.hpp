// Campaign-state persistence: a core::CampaignState round-trips through a
// typed-line CSV so a (possibly still-running) replay campaign can be
// inspected out of process — `flare campaign --campaign-state FILE` writes
// it, `flare report --campaign-state FILE` answers from it. Doubles are
// written with util::format_double_exact, so the anytime estimate, band, and
// mass accounting survive the round-trip bit for bit.
#pragma once

#include <string>

#include "core/campaign.hpp"

namespace flare::trace {

/// Writes the campaign state to `path` (summary, ledger, checkpoint,
/// testbed, and cluster records; the per-unit dispatch trace is not
/// persisted — it is timeline telemetry, not part of the estimate).
void save_campaign_state(const core::CampaignState& state,
                         const std::string& path);

/// Reads a state written by save_campaign_state. Throws flare::ParseError on
/// malformed files, unknown record types, or inconsistent counts.
[[nodiscard]] core::CampaignState load_campaign_state(const std::string& path);

}  // namespace flare::trace
