#include "trace/scenario_io.hpp"

#include <fstream>

#include "trace/csv.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace flare::trace {
namespace {
constexpr const char* kHeader = "scenario_id,machine_type,observation_weight,job_mix";
}

void save_scenario_set(const dcsim::ScenarioSet& set, const std::string& path) {
  std::ofstream out(path);
  ensure(static_cast<bool>(out), "save_scenario_set: cannot open file: " + path);
  out << kHeader << '\n';
  for (const dcsim::ColocationScenario& s : set.scenarios) {
    write_csv_row(out, {std::to_string(s.id), s.machine_type,
                        util::format_double_exact(s.observation_weight), s.mix.key()});
  }
  ensure(static_cast<bool>(out), "save_scenario_set: write failed: " + path);
}

dcsim::ScenarioSet load_scenario_set(const std::string& path) {
  const std::vector<std::string> lines = read_lines(path);
  if (lines.empty() || lines.front() != kHeader) {
    throw ParseError("load_scenario_set: missing or wrong header in " + path);
  }
  dcsim::ScenarioSet set;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::vector<std::string> fields = parse_csv_row(lines[i]);
    if (fields.size() != 4) {
      throw ParseError("load_scenario_set: expected 4 fields at line " +
                       std::to_string(i + 1));
    }
    dcsim::ColocationScenario s;
    s.id = static_cast<std::size_t>(util::parse_int(fields[0]));
    s.machine_type = fields[1];
    s.observation_weight = util::parse_double(fields[2]);
    if (s.observation_weight < 0.0) {
      throw ParseError("load_scenario_set: negative weight at line " +
                       std::to_string(i + 1));
    }
    s.mix = dcsim::JobMix::from_key(fields[3]);
    if (s.id != set.scenarios.size()) {
      throw ParseError("load_scenario_set: non-dense scenario ids at line " +
                       std::to_string(i + 1));
    }
    set.scenarios.push_back(std::move(s));
  }
  if (!set.scenarios.empty()) set.machine_type = set.scenarios.front().machine_type;
  return set;
}

void append_scenario_set(const dcsim::ScenarioSet& batch, const std::string& path) {
  // Validate the existing file (and learn where its id sequence ends) before
  // touching it — appending to a malformed file would only bury the problem.
  const dcsim::ScenarioSet existing = load_scenario_set(path);
  std::ofstream out(path, std::ios::app);
  ensure(static_cast<bool>(out), "append_scenario_set: cannot open file: " + path);
  std::size_t next_id = existing.scenarios.size();
  for (const dcsim::ColocationScenario& s : batch.scenarios) {
    write_csv_row(out, {std::to_string(next_id++), s.machine_type,
                        util::format_double_exact(s.observation_weight), s.mix.key()});
  }
  ensure(static_cast<bool>(out), "append_scenario_set: write failed: " + path);
}

}  // namespace flare::trace
