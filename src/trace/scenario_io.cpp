#include "trace/scenario_io.hpp"

#include <algorithm>
#include <fstream>
#include <optional>
#include <sstream>

#include "trace/csv.hpp"
#include "trace/journal.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace flare::trace {
namespace {
constexpr const char* kHeader = "scenario_id,machine_type,observation_weight,job_mix";
// Extended header for non-stationary traces (dcsim/dynamics.hpp): written
// only when some row carries a non-default dynamics tag, so stationary
// archives stay byte-identical to the historical 4-field format; the reader
// accepts both.
constexpr const char* kDynamicsHeader =
    "scenario_id,machine_type,observation_weight,job_mix,"
    "profile_version,profile_shift,anomaly_episode,anomaly_intensity";

bool any_dynamic_tagged(const dcsim::ScenarioSet& set) {
  for (const dcsim::ColocationScenario& s : set.scenarios) {
    if (s.dynamic_tagged()) return true;
  }
  return false;
}

void write_scenario_row(std::ostream& out, const dcsim::ColocationScenario& s,
                        std::size_t id, bool extended) {
  if (!extended) {
    write_csv_row(out, {std::to_string(id), s.machine_type,
                        util::format_double_exact(s.observation_weight),
                        s.mix.key()});
    return;
  }
  write_csv_row(out, {std::to_string(id), s.machine_type,
                      util::format_double_exact(s.observation_weight),
                      s.mix.key(), std::to_string(s.profile_version),
                      util::format_double_exact(s.profile_shift),
                      std::to_string(s.anomaly_episode),
                      util::format_double_exact(s.anomaly_intensity)});
}

/// First line of the file at `path` ("" when unreadable/empty).
std::string file_header(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (in && std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    return line;
  }
  return "";
}

}  // namespace

void save_scenario_set(const dcsim::ScenarioSet& set, const std::string& path) {
  std::ofstream out(path);
  ensure(static_cast<bool>(out), "save_scenario_set: cannot open file: " + path);
  const bool extended = any_dynamic_tagged(set);
  out << (extended ? kDynamicsHeader : kHeader) << '\n';
  for (const dcsim::ColocationScenario& s : set.scenarios) {
    write_scenario_row(out, s, s.id, extended);
  }
  ensure(static_cast<bool>(out), "save_scenario_set: write failed: " + path);
}

namespace {

/// Shared parsing core for the file and wire paths: `origin` labels every
/// ParseError (a path for archives, a client tag for wire batches).
dcsim::ScenarioSet parse_scenario_lines(
    const CsvContent& content, const std::string& origin,
    const std::vector<std::string>& valid_shapes) {
  const std::string& path = origin;
  if (!content.complete_final_line) {
    throw ParseError("load_scenario_set: " + path +
                     ": truncated final line (no trailing newline) — torn "
                     "append? run recover_append() / flare ingest --resume");
  }
  const std::vector<std::string>& lines = content.lines;
  bool extended = false;
  if (!lines.empty() && lines.front() == kDynamicsHeader) {
    extended = true;
  } else if (lines.empty() || lines.front() != kHeader) {
    throw ParseError("load_scenario_set: missing or wrong header in " + path);
  }
  const std::size_t num_fields = extended ? 8 : 4;
  dcsim::ScenarioSet set;
  set.scenarios.reserve(lines.size() - 1);  // one row per non-header line
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::size_t line_no = i + 1;
    const std::vector<std::string> fields = parse_csv_row(lines[i], path, line_no);
    if (fields.size() != num_fields) {
      throw ParseError("load_scenario_set: " + path + ":" +
                       std::to_string(line_no) + ": expected " +
                       std::to_string(num_fields) + " fields, got " +
                       std::to_string(fields.size()));
    }
    dcsim::ColocationScenario s;
    s.id = static_cast<std::size_t>(parse_csv_int(fields[0], path, line_no));
    s.machine_type = fields[1];
    if (s.machine_type.empty()) {
      throw ParseError("load_scenario_set: " + path + ":" +
                       std::to_string(line_no) +
                       ": shape id (machine_type) is absent — the row cannot "
                       "be routed to any shard");
    }
    if (!valid_shapes.empty() &&
        std::find(valid_shapes.begin(), valid_shapes.end(), s.machine_type) ==
            valid_shapes.end()) {
      throw ParseError("load_scenario_set: " + path + ":" +
                       std::to_string(line_no) +
                       ": shape id out of range for the fleet — offending "
                       "token '" +
                       s.machine_type + "'");
    }
    s.observation_weight = parse_csv_double(fields[2], path, line_no);
    if (s.observation_weight < 0.0) {
      throw ParseError("load_scenario_set: " + path + ":" +
                       std::to_string(line_no) +
                       ": negative weight — offending token '" + fields[2] + "'");
    }
    try {
      s.mix = dcsim::JobMix::from_key(fields[3]);
    } catch (const ParseError& e) {
      throw ParseError("load_scenario_set: " + path + ":" +
                       std::to_string(line_no) + ": " + e.what() +
                       " — offending token '" + fields[3] + "'");
    }
    if (extended) {
      const long long version = parse_csv_int(fields[4], path, line_no);
      if (version < 1) {
        throw ParseError("load_scenario_set: " + path + ":" +
                         std::to_string(line_no) +
                         ": profile_version must be >= 1 — offending token '" +
                         fields[4] + "'");
      }
      s.profile_version = static_cast<int>(version);
      s.profile_shift = parse_csv_double(fields[5], path, line_no);
      const long long episode = parse_csv_int(fields[6], path, line_no);
      if (episode < 0) {
        throw ParseError("load_scenario_set: " + path + ":" +
                         std::to_string(line_no) +
                         ": negative anomaly_episode — offending token '" +
                         fields[6] + "'");
      }
      s.anomaly_episode = static_cast<std::uint32_t>(episode);
      s.anomaly_intensity = parse_csv_double(fields[7], path, line_no);
      if (s.profile_shift < 0.0 || s.anomaly_intensity < 0.0) {
        throw ParseError("load_scenario_set: " + path + ":" +
                         std::to_string(line_no) +
                         ": negative dynamics magnitude — offending token '" +
                         (s.profile_shift < 0.0 ? fields[5] : fields[7]) + "'");
      }
    }
    if (s.id != set.scenarios.size()) {
      throw ParseError("load_scenario_set: " + path + ":" +
                       std::to_string(line_no) +
                       ": non-dense scenario ids — offending token '" +
                       fields[0] + "'");
    }
    set.scenarios.push_back(std::move(s));
  }
  if (!set.scenarios.empty()) set.machine_type = set.scenarios.front().machine_type;
  return set;
}

}  // namespace

dcsim::ScenarioSet load_scenario_set(const std::string& path) {
  return load_scenario_set(path, {});
}

dcsim::ScenarioSet load_scenario_set(const std::string& path,
                                     const std::vector<std::string>& valid_shapes) {
  return parse_scenario_lines(read_csv_content(path), path, valid_shapes);
}

std::string scenario_set_to_csv(const dcsim::ScenarioSet& set) {
  std::ostringstream out;
  const bool extended = any_dynamic_tagged(set);
  out << (extended ? kDynamicsHeader : kHeader) << '\n';
  for (const dcsim::ColocationScenario& s : set.scenarios) {
    write_scenario_row(out, s, s.id, extended);
  }
  return out.str();
}

dcsim::ScenarioSet parse_scenario_set_csv(const std::string& text,
                                          const std::string& origin) {
  CsvContent content;
  content.complete_final_line = text.empty() || text.back() == '\n';
  std::string line;
  for (const char c : text) {
    if (c == '\n') {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) content.lines.push_back(line);
      line.clear();
    } else {
      line.push_back(c);
    }
  }
  if (!line.empty()) content.lines.push_back(line);
  return parse_scenario_lines(content, origin, {});
}

void append_scenario_set(const dcsim::ScenarioSet& batch, const std::string& path,
                         bool journaled) {
  // Validate the existing file (and learn where its id sequence ends) before
  // touching it — appending to a malformed file would only bury the problem.
  const dcsim::ScenarioSet existing = load_scenario_set(path);
  // The archive's header decides the row format. A tagged batch cannot be
  // appended to a stationary 4-field archive without silently dropping its
  // tags — refuse loudly instead.
  const bool extended = file_header(path) == kDynamicsHeader;
  if (!extended && any_dynamic_tagged(batch)) {
    throw ParseError(
        "append_scenario_set: " + path +
        ": batch carries dynamics tags but the archive uses the stationary "
        "4-field format — re-save the archive (save_scenario_set) before "
        "appending non-stationary batches");
  }
  std::optional<AppendJournal> journal;
  if (journaled) journal.emplace(path);
  {
    std::ofstream out(path, std::ios::app);
    ensure(static_cast<bool>(out), "append_scenario_set: cannot open file: " + path);
    std::size_t next_id = existing.scenarios.size();
    for (const dcsim::ColocationScenario& s : batch.scenarios) {
      write_scenario_row(out, s, next_id++, extended);
    }
    out.flush();
    ensure(static_cast<bool>(out), "append_scenario_set: write failed: " + path);
  }
  if (journal) journal->commit();
}

}  // namespace flare::trace
