#include "trace/metric_io.hpp"

#include <fstream>
#include <optional>

#include "trace/csv.hpp"
#include "trace/journal.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace flare::trace {

void save_metric_database(const metrics::MetricDatabase& db, const std::string& path) {
  std::ofstream out(path);
  ensure(static_cast<bool>(out), "save_metric_database: cannot open file: " + path);

  std::vector<std::string> header = {"scenario_id", "scenario_key",
                                     "observation_weight"};
  for (const metrics::MetricInfo& m : db.catalog().metrics()) header.push_back(m.name);
  write_csv_row(out, header);

  for (const metrics::MetricRow& row : db.rows()) {
    std::vector<std::string> fields = {std::to_string(row.scenario_id),
                                       row.scenario_key,
                                       util::format_double_exact(row.observation_weight)};
    for (const double v : row.values) {
      fields.push_back(util::format_double_exact(v));
    }
    write_csv_row(out, fields);
  }
  ensure(static_cast<bool>(out), "save_metric_database: write failed: " + path);
}

metrics::MetricDatabase load_metric_database(const std::string& path,
                                             const metrics::MetricCatalog& catalog) {
  const CsvContent content = read_csv_content(path);
  if (!content.complete_final_line) {
    throw ParseError("load_metric_database: " + path +
                     ": truncated final line (no trailing newline) — torn "
                     "append? run recover_append() / flare ingest --resume");
  }
  const std::vector<std::string>& lines = content.lines;
  if (lines.empty()) throw ParseError("load_metric_database: empty file: " + path);

  const std::vector<std::string> header = parse_csv_row(lines.front(), path, 1);
  if (header.size() != 3 + catalog.size()) {
    throw ParseError("load_metric_database: " + path +
                     ": column count does not match catalog");
  }
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (header[3 + i] != catalog.info(i).name) {
      throw ParseError("load_metric_database: " + path +
                       ":1: metric column mismatch — offending token '" +
                       header[3 + i] + "'");
    }
  }

  metrics::MetricDatabase db(catalog);
  db.reserve(lines.size() - 1);  // every non-header line becomes one row
  for (std::size_t l = 1; l < lines.size(); ++l) {
    const std::size_t line_no = l + 1;
    const std::vector<std::string> fields = parse_csv_row(lines[l], path, line_no);
    if (fields.size() != header.size()) {
      throw ParseError("load_metric_database: " + path + ":" +
                       std::to_string(line_no) + ": expected " +
                       std::to_string(header.size()) + " fields, got " +
                       std::to_string(fields.size()));
    }
    metrics::MetricRow row;
    row.scenario_id =
        static_cast<std::size_t>(parse_csv_int(fields[0], path, line_no));
    row.scenario_key = fields[1];
    row.observation_weight = parse_csv_double(fields[2], path, line_no);
    row.values.reserve(catalog.size());
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      row.values.push_back(parse_csv_double(fields[3 + i], path, line_no));
    }
    db.add_row(std::move(row));
  }
  return db;
}

void append_metric_database(const metrics::MetricDatabase& batch,
                            const std::string& path, bool journaled) {
  // Validates the existing file's header against the batch's catalog (throws
  // ParseError on mismatch) so the append cannot produce a ragged archive.
  (void)load_metric_database(path, batch.catalog());
  std::optional<AppendJournal> journal;
  if (journaled) journal.emplace(path);
  {
    std::ofstream out(path, std::ios::app);
    ensure(static_cast<bool>(out),
           "append_metric_database: cannot open file: " + path);
    for (const metrics::MetricRow& row : batch.rows()) {
      std::vector<std::string> fields = {std::to_string(row.scenario_id),
                                         row.scenario_key,
                                         util::format_double_exact(row.observation_weight)};
      for (const double v : row.values) {
        fields.push_back(util::format_double_exact(v));
      }
      write_csv_row(out, fields);
    }
    out.flush();
    ensure(static_cast<bool>(out), "append_metric_database: write failed: " + path);
  }
  if (journal) journal->commit();
}

}  // namespace flare::trace
