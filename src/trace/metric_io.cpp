#include "trace/metric_io.hpp"

#include <fstream>

#include "trace/csv.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace flare::trace {

void save_metric_database(const metrics::MetricDatabase& db, const std::string& path) {
  std::ofstream out(path);
  ensure(static_cast<bool>(out), "save_metric_database: cannot open file: " + path);

  std::vector<std::string> header = {"scenario_id", "scenario_key",
                                     "observation_weight"};
  for (const metrics::MetricInfo& m : db.catalog().metrics()) header.push_back(m.name);
  write_csv_row(out, header);

  for (const metrics::MetricRow& row : db.rows()) {
    std::vector<std::string> fields = {std::to_string(row.scenario_id),
                                       row.scenario_key,
                                       util::format_double_exact(row.observation_weight)};
    for (const double v : row.values) {
      fields.push_back(util::format_double_exact(v));
    }
    write_csv_row(out, fields);
  }
  ensure(static_cast<bool>(out), "save_metric_database: write failed: " + path);
}

metrics::MetricDatabase load_metric_database(const std::string& path,
                                             const metrics::MetricCatalog& catalog) {
  const std::vector<std::string> lines = read_lines(path);
  if (lines.empty()) throw ParseError("load_metric_database: empty file: " + path);

  const std::vector<std::string> header = parse_csv_row(lines.front());
  if (header.size() != 3 + catalog.size()) {
    throw ParseError("load_metric_database: column count does not match catalog");
  }
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (header[3 + i] != catalog.info(i).name) {
      throw ParseError("load_metric_database: metric column mismatch at '" +
                       header[3 + i] + "'");
    }
  }

  metrics::MetricDatabase db(catalog);
  for (std::size_t l = 1; l < lines.size(); ++l) {
    const std::vector<std::string> fields = parse_csv_row(lines[l]);
    if (fields.size() != header.size()) {
      throw ParseError("load_metric_database: bad field count at line " +
                       std::to_string(l + 1));
    }
    metrics::MetricRow row;
    row.scenario_id = static_cast<std::size_t>(util::parse_int(fields[0]));
    row.scenario_key = fields[1];
    row.observation_weight = util::parse_double(fields[2]);
    row.values.reserve(catalog.size());
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      row.values.push_back(util::parse_double(fields[3 + i]));
    }
    db.add_row(std::move(row));
  }
  return db;
}

void append_metric_database(const metrics::MetricDatabase& batch,
                            const std::string& path) {
  // Validates the existing file's header against the batch's catalog (throws
  // ParseError on mismatch) so the append cannot produce a ragged archive.
  (void)load_metric_database(path, batch.catalog());
  std::ofstream out(path, std::ios::app);
  ensure(static_cast<bool>(out), "append_metric_database: cannot open file: " + path);
  for (const metrics::MetricRow& row : batch.rows()) {
    std::vector<std::string> fields = {std::to_string(row.scenario_id),
                                       row.scenario_key,
                                       util::format_double_exact(row.observation_weight)};
    for (const double v : row.values) {
      fields.push_back(util::format_double_exact(v));
    }
    write_csv_row(out, fields);
  }
  ensure(static_cast<bool>(out), "append_metric_database: write failed: " + path);
}

}  // namespace flare::trace
