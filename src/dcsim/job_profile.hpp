// Per-job microarchitectural profiles driving the interference model.
//
// Each profile is calibrated to the qualitative characterisations published
// for CloudSuite (Ferdman et al., ASPLOS'12) and SPEC CPU2006 (Phansalkar et
// al., ISCA'07): e.g. Web Serving/Web Search are frontend/i-cache bound,
// Graph Analytics and mcf are LLC/bandwidth hungry, libquantum streams with
// a high irreducible miss floor, memcached has a flat miss-ratio curve over
// a large random-access working set.
#pragma once

#include <string>

#include "dcsim/job_types.hpp"

namespace flare::dcsim {

struct JobProfile {
  JobType type = JobType::kDataAnalytics;
  bool high_priority = true;

  /// Software generation of this profile. 1 = the calibrated baseline below;
  /// rolling-upgrade dynamics migrate machines to higher versions whose
  /// counter behaviours shift deterministically (dcsim/dynamics.hpp
  /// upgraded_profile / apply_dynamics_overlay).
  int version = 1;

  /// Table 3 deployment blurb (threads, heap sizes, target QPS, ...).
  std::string configuration;

  // --- Container shape (the paper's resource-management policy: every
  // instance is a 4-vCPU container; bigger jobs launch more instances) ---
  int vcpus = 4;
  double dram_gb = 4.0;

  /// Average fraction of the container's vCPUs that are busy (servers with a
  /// QPS target sit well below 1.0; batch jobs pin their cores).
  double cpu_utilization = 0.9;

  // --- Core execution ---
  /// Cycles per instruction from the core pipeline alone (L1/L2 hits,
  /// branches, dependencies) — excludes LLC-miss stalls, which the
  /// interference model adds from the shared-cache state.
  double base_cpi = 1.0;
  /// Top-down fraction of pipeline slots lost to instruction-fetch stalls.
  double frontend_bound = 0.10;
  /// Top-down fraction of slots lost to mispredicted work.
  double bad_speculation = 0.06;

  // --- Shared-cache behaviour ---
  /// LLC accesses per kilo-instruction (i.e. L2 misses reaching the LLC).
  double llc_apki = 15.0;
  /// Miss-ratio curve: ratio(c) = floor + (1-floor) * (h / (h + c))^s where
  /// c is the LLC capacity allocated to this instance in MB.
  double mrc_half_mb = 8.0;    ///< h: capacity scale of the curve
  double mrc_steepness = 1.0;  ///< s: how quickly misses fall with capacity
  double min_miss_ratio = 0.1; ///< floor: irreducible (streaming) misses
  /// Cache footprint the instance can productively use; allocations beyond
  /// this are returned to the shared pool.
  double working_set_mb = 24.0;

  // --- Memory system ---
  /// Memory-level parallelism: outstanding misses overlap, dividing the
  /// exposed miss latency (prefetch-friendly streams have high MLP).
  double mlp = 2.5;

  // --- SMT behaviour ---
  /// Relative per-thread throughput when two threads share a physical core
  /// (1.0 = no loss; typical 0.55–0.70). Aggregate core throughput with SMT
  /// is 2 × smt_yield ≥ 1.
  double smt_yield = 0.62;

  // --- Ancillary counters (feed the Profiler's raw metrics) ---
  /// Fraction of retired ops that are floating-point (analytics jobs high).
  double fp_fraction = 0.10;
  /// Fraction of cycles in spin loops — the paper's jobs "are optimized to
  /// spend time in spin locks minimally", so this stays near zero.
  double spin_fraction = 0.01;
  double branch_mpki = 5.0;
  double l1i_mpki = 8.0;
  /// Nominal request service time for latency-sensitive services, measured
  /// uncontended on the baseline machine. 0 = batch job (no latency SLO).
  double base_service_ms = 0.0;
  double network_mbps = 50.0;  ///< per instance
  double disk_iops = 100.0;    ///< per instance

  /// Miss ratio of the LLC miss-ratio curve at `cache_mb` of allocated LLC.
  [[nodiscard]] double miss_ratio(double cache_mb) const;

  /// LLC misses per kilo-instruction at `cache_mb` of allocated LLC.
  [[nodiscard]] double mpki(double cache_mb) const;
};

}  // namespace flare::dcsim
