// The job population of the simulated datacenter (paper Table 3).
//
// High-Priority (HP) jobs model the eight CloudSuite services; Low-Priority
// (LP) jobs model the six SPEC CPU2006 benchmarks the paper runs on free
// quota. Every job is deployed as 4-vCPU container instances.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace flare::dcsim {

enum class JobType : std::uint8_t {
  // CloudSuite HP services.
  kDataAnalytics,      // DA  — Hadoop + Mahout
  kDataCaching,        // DC  — memcached
  kDataServing,        // DS  — Cassandra
  kGraphAnalytics,     // GA  — Spark
  kInMemoryAnalytics,  // IA  — Spark
  kMediaStreaming,     // MS  — Nginx
  kWebSearch,          // WSC — Solr
  kWebServing,         // WSV — LAMP stack
  // SPEC CPU2006 LP batch jobs (four copies per container).
  kLpPerlbench,
  kLpSjeng,
  kLpLibquantum,
  kLpXalancbmk,
  kLpOmnetpp,
  kLpMcf,
};

inline constexpr std::size_t kNumJobTypes = 14;
inline constexpr std::size_t kNumHpJobTypes = 8;

/// All job types, HP first, in stable order.
[[nodiscard]] const std::array<JobType, kNumJobTypes>& all_job_types();

/// The eight HP job types in stable order (DA, DC, DS, GA, IA, MS, WSC, WSV).
[[nodiscard]] const std::array<JobType, kNumHpJobTypes>& hp_job_types();

[[nodiscard]] constexpr std::size_t job_index(JobType type) {
  return static_cast<std::size_t>(type);
}

[[nodiscard]] constexpr bool is_high_priority(JobType type) {
  return job_index(type) < kNumHpJobTypes;
}

/// Short code used in figures: "DA", "DC", ..., "perlbench", ...
[[nodiscard]] std::string_view job_code(JobType type);

/// Human-readable name, e.g. "Data Analytics".
[[nodiscard]] std::string_view job_name(JobType type);

/// Parses a short code back to a JobType; throws ParseError on unknown codes.
[[nodiscard]] JobType job_type_from_code(std::string_view code);

}  // namespace flare::dcsim
