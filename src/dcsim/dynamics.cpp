#include "dcsim/dynamics.hpp"

#include <cmath>
#include <numbers>

#include "stats/rng.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/seed_stream.hpp"

namespace flare::dcsim {
namespace {

// Substream salts for the episode schedules and the counter overlays. The
// overlay seeds are load-bearing for trace round-trips: a tagged row's
// distortion is a pure function of (metric name, version/episode id), so
// re-profiling an archived tagged trace reproduces the same bits.
constexpr std::uint64_t kFlashScheduleSalt = 0xF1A5Cull;
constexpr std::uint64_t kAnomalyScheduleSalt = 0xA40Ful;
constexpr std::uint64_t kUpgradeOverlaySeed = 0x0B6D5EEDull;
constexpr std::uint64_t kAnomalyOverlaySeed = 0xA40FD157ull;

/// Symmetric unit deviate in [−1, 1) from a derived stream: the shared
/// per-metric distortion direction of one version / one episode.
double unit_deviate(std::string_view key, std::uint64_t seed,
                    std::uint64_t salt) {
  return 2.0 * util::uniform_from_stream(util::derive_stream(key, seed, salt)) -
         1.0;
}

bool scoped_out(const std::string& scope, std::string_view shape) {
  return !scope.empty() && scope != shape;
}

}  // namespace

bool WorkloadDynamics::any() const {
  return diurnal.enabled || flash.enabled || upgrade.enabled || anomaly.enabled;
}

WorkloadDynamics WorkloadDynamics::for_shape(std::string_view shape) const {
  WorkloadDynamics scoped = *this;
  if (scoped_out(scoped.diurnal.shape, shape)) scoped.diurnal.enabled = false;
  if (scoped_out(scoped.flash.shape, shape)) scoped.flash.enabled = false;
  if (scoped_out(scoped.upgrade.shape, shape)) scoped.upgrade.enabled = false;
  if (scoped_out(scoped.anomaly.shape, shape)) scoped.anomaly.enabled = false;
  return scoped;
}

std::vector<std::string> WorkloadDynamics::shape_scopes() const {
  std::vector<std::string> scopes;
  const auto add = [&scopes](bool enabled, const std::string& shape) {
    if (!enabled || shape.empty()) return;
    for (const std::string& s : scopes) {
      if (s == shape) return;
    }
    scopes.push_back(shape);
  };
  add(diurnal.enabled, diurnal.shape);
  add(flash.enabled, flash.shape);
  add(upgrade.enabled, upgrade.shape);
  add(anomaly.enabled, anomaly.shape);
  return scopes;
}

namespace {

struct SpecEntry {
  std::string name;
  std::vector<std::pair<std::string, std::string>> kv;
};

[[noreturn]] void spec_error(std::string_view spec, const std::string& what) {
  throw ParseError("dynamics spec '" + std::string(spec) + "': " + what);
}

double spec_number(std::string_view spec, const SpecEntry& entry,
                   const std::string& key, const std::string& value) {
  try {
    std::size_t consumed = 0;
    const double v = std::stod(value, &consumed);
    if (consumed != value.size() || !std::isfinite(v)) {
      throw std::invalid_argument(value);
    }
    return v;
  } catch (const std::exception&) {
    spec_error(spec, "entry '" + entry.name + "': bad value for '" + key +
                         "' — offending token '" + value + "'");
  }
}

SpecEntry parse_entry(std::string_view spec, std::string_view entry_text) {
  SpecEntry entry;
  std::size_t pos = 0;
  bool first = true;
  while (pos <= entry_text.size()) {
    const std::size_t colon = entry_text.find(':', pos);
    const std::string_view token = entry_text.substr(
        pos, colon == std::string_view::npos ? std::string_view::npos
                                             : colon - pos);
    if (first) {
      if (token.empty()) {
        spec_error(spec, "empty generator name — expected one of diurnal, "
                         "flash, upgrade, anomaly");
      }
      entry.name = std::string(token);
      first = false;
    } else {
      const std::size_t eq = token.find('=');
      if (eq == std::string_view::npos || eq == 0 ||
          eq == token.size() - 1) {
        spec_error(spec, "entry '" + entry.name +
                             "': expected key=value — offending token '" +
                             std::string(token) + "'");
      }
      entry.kv.emplace_back(std::string(token.substr(0, eq)),
                            std::string(token.substr(eq + 1)));
    }
    if (colon == std::string_view::npos) break;
    pos = colon + 1;
  }
  return entry;
}

}  // namespace

WorkloadDynamics parse_dynamics_spec(std::string_view spec) {
  WorkloadDynamics dynamics;
  if (spec.empty()) spec_error(spec, "spec is empty");
  bool seen_diurnal = false, seen_flash = false, seen_upgrade = false,
       seen_anomaly = false;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string_view entry_text = spec.substr(
        pos,
        comma == std::string_view::npos ? std::string_view::npos : comma - pos);
    if (entry_text.empty()) {
      spec_error(spec, "empty entry — expected name[:key=value...]");
    }
    const SpecEntry entry = parse_entry(spec, entry_text);
    const auto number = [&](const std::string& key, const std::string& value) {
      return spec_number(spec, entry, key, value);
    };
    const auto check_range = [&](bool ok, const std::string& key,
                                 const std::string& value,
                                 const std::string& expected) {
      if (!ok) {
        spec_error(spec, "entry '" + entry.name + "': '" + key + "' must be " +
                             expected + " — offending token '" + value + "'");
      }
    };
    const auto unknown_key = [&](const std::string& key) {
      spec_error(spec, "entry '" + entry.name + "': unknown key '" + key + "'");
    };
    if (entry.name == "diurnal") {
      if (seen_diurnal) spec_error(spec, "duplicate entry 'diurnal'");
      seen_diurnal = true;
      dynamics.diurnal.enabled = true;
      for (const auto& [key, value] : entry.kv) {
        if (key == "shape") {
          dynamics.diurnal.shape = value;
        } else if (key == "period") {
          dynamics.diurnal.period_hours = number(key, value);
          check_range(dynamics.diurnal.period_hours > 0.0, key, value,
                      "positive");
        } else if (key == "amp") {
          dynamics.diurnal.arrival_amplitude = number(key, value);
          check_range(dynamics.diurnal.arrival_amplitude >= 0.0 &&
                          dynamics.diurnal.arrival_amplitude < 1.0,
                      key, value, "in [0, 1)");
        } else if (key == "hp_amp") {
          dynamics.diurnal.hp_amplitude = number(key, value);
          check_range(dynamics.diurnal.hp_amplitude >= 0.0 &&
                          dynamics.diurnal.hp_amplitude <= 1.0,
                      key, value, "in [0, 1]");
        } else if (key == "phase") {
          dynamics.diurnal.phase_hours = number(key, value);
        } else {
          unknown_key(key);
        }
      }
    } else if (entry.name == "flash") {
      if (seen_flash) spec_error(spec, "duplicate entry 'flash'");
      seen_flash = true;
      dynamics.flash.enabled = true;
      for (const auto& [key, value] : entry.kv) {
        if (key == "shape") {
          dynamics.flash.shape = value;
        } else if (key == "rate") {
          dynamics.flash.episodes_per_khour = number(key, value);
          check_range(dynamics.flash.episodes_per_khour >= 0.0, key, value,
                      "non-negative");
        } else if (key == "dur") {
          dynamics.flash.duration_hours = number(key, value);
          check_range(dynamics.flash.duration_hours > 0.0, key, value,
                      "positive");
        } else if (key == "mult") {
          dynamics.flash.arrival_multiplier = number(key, value);
          check_range(dynamics.flash.arrival_multiplier >= 1.0, key, value,
                      ">= 1");
        } else if (key == "short") {
          dynamics.flash.short_job_factor = number(key, value);
          check_range(dynamics.flash.short_job_factor > 0.0 &&
                          dynamics.flash.short_job_factor <= 1.0,
                      key, value, "in (0, 1]");
        } else {
          unknown_key(key);
        }
      }
    } else if (entry.name == "upgrade") {
      if (seen_upgrade) spec_error(spec, "duplicate entry 'upgrade'");
      seen_upgrade = true;
      dynamics.upgrade.enabled = true;
      for (const auto& [key, value] : entry.kv) {
        if (key == "shape") {
          dynamics.upgrade.shape = value;
        } else if (key == "at") {
          dynamics.upgrade.at_hours = number(key, value);
          check_range(dynamics.upgrade.at_hours >= 0.0, key, value,
                      "non-negative");
        } else if (key == "frac") {
          dynamics.upgrade.migrated_fraction = number(key, value);
          check_range(dynamics.upgrade.migrated_fraction >= 0.0 &&
                          dynamics.upgrade.migrated_fraction <= 1.0,
                      key, value, "in [0, 1]");
        } else if (key == "shift") {
          dynamics.upgrade.shift = number(key, value);
          check_range(dynamics.upgrade.shift >= 0.0, key, value,
                      "non-negative");
        } else {
          unknown_key(key);
        }
      }
    } else if (entry.name == "anomaly") {
      if (seen_anomaly) spec_error(spec, "duplicate entry 'anomaly'");
      seen_anomaly = true;
      dynamics.anomaly.enabled = true;
      for (const auto& [key, value] : entry.kv) {
        if (key == "shape") {
          dynamics.anomaly.shape = value;
        } else if (key == "rate") {
          dynamics.anomaly.episodes_per_khour = number(key, value);
          check_range(dynamics.anomaly.episodes_per_khour >= 0.0, key, value,
                      "non-negative");
        } else if (key == "dur") {
          dynamics.anomaly.duration_hours = number(key, value);
          check_range(dynamics.anomaly.duration_hours > 0.0, key, value,
                      "positive");
        } else if (key == "intensity") {
          dynamics.anomaly.intensity = number(key, value);
          check_range(dynamics.anomaly.intensity >= 0.0, key, value,
                      "non-negative");
        } else if (key == "frac") {
          dynamics.anomaly.machine_fraction = number(key, value);
          check_range(dynamics.anomaly.machine_fraction > 0.0 &&
                          dynamics.anomaly.machine_fraction <= 1.0,
                      key, value, "in (0, 1]");
        } else {
          unknown_key(key);
        }
      }
    } else {
      spec_error(spec, "unknown generator '" + entry.name +
                           "' — expected diurnal, flash, upgrade, or anomaly");
    }
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  return dynamics;
}

DynamicsPlan::DynamicsPlan(const WorkloadDynamics& dynamics, int num_machines,
                           double horizon_hours)
    : dynamics_(dynamics), active_(dynamics.any()) {
  ensure(num_machines > 0, "DynamicsPlan: need machines");
  if (!active_) return;
  const double horizon = dynamics_.start_hour + horizon_hours;

  if (dynamics_.upgrade.enabled) {
    migrated_machines_ = static_cast<int>(std::lround(
        dynamics_.upgrade.migrated_fraction * static_cast<double>(num_machines)));
  }

  // Episode schedules: sequential exponential gaps from a dedicated RNG
  // seeded by dynamics.seed only, generated from absolute hour 0 — a batch
  // window starting later regenerates the identical prefix, so episode
  // timelines are consistent across streaming windows.
  const auto schedule = [&](double per_khour, double duration,
                            std::uint64_t salt, double machine_fraction,
                            std::vector<Episode>& out) {
    if (per_khour <= 0.0) return;
    stats::Rng rng(util::hash_mix(dynamics_.seed, salt));
    double t = 0.0;
    while (true) {
      t += rng.exponential(per_khour / 1000.0);
      if (t >= horizon) break;
      Episode e;
      e.start = t;
      e.end = t + duration;
      if (machine_fraction < 1.0) {
        e.machines.resize(static_cast<std::size_t>(num_machines), 0);
        int affected = 0;
        for (char& m : e.machines) {
          m = rng.uniform() < machine_fraction ? 1 : 0;
          affected += m;
        }
        // An episode that drew an empty subset still happened somewhere:
        // pin it to one machine so the 1-based episode ids stay dense in
        // observed traces at small fleets.
        if (affected == 0) e.machines[0] = 1;
      }
      out.push_back(std::move(e));
    }
  };
  if (dynamics_.flash.enabled) {
    schedule(dynamics_.flash.episodes_per_khour, dynamics_.flash.duration_hours,
             kFlashScheduleSalt, 1.0, flash_);
  }
  if (dynamics_.anomaly.enabled) {
    schedule(dynamics_.anomaly.episodes_per_khour,
             dynamics_.anomaly.duration_hours, kAnomalyScheduleSalt,
             dynamics_.anomaly.machine_fraction, anomaly_);
  }
}

double DynamicsPlan::arrival_factor(double abs_hour) const {
  double factor = 1.0;
  if (dynamics_.diurnal.enabled && dynamics_.diurnal.arrival_amplitude > 0.0) {
    const double phase = 2.0 * std::numbers::pi *
                         (abs_hour - dynamics_.diurnal.phase_hours) /
                         dynamics_.diurnal.period_hours;
    factor *= std::max(
        0.05, 1.0 + dynamics_.diurnal.arrival_amplitude * std::sin(phase));
  }
  for (const Episode& e : flash_) {
    if (abs_hour >= e.start && abs_hour < e.end) {
      factor *= dynamics_.flash.arrival_multiplier;
      break;
    }
  }
  return factor;
}

double DynamicsPlan::hp_fraction(double abs_hour, double base) const {
  if (!dynamics_.diurnal.enabled || dynamics_.diurnal.hp_amplitude <= 0.0) {
    return base;
  }
  const double phase = 2.0 * std::numbers::pi *
                       (abs_hour - dynamics_.diurnal.phase_hours) /
                       dynamics_.diurnal.period_hours;
  const double hp = base + dynamics_.diurnal.hp_amplitude * std::sin(phase);
  return std::min(1.0, std::max(0.0, hp));
}

double DynamicsPlan::duration_scale(double abs_hour) const {
  for (const Episode& e : flash_) {
    if (abs_hour >= e.start && abs_hour < e.end) {
      return dynamics_.flash.short_job_factor;
    }
  }
  return 1.0;
}

int DynamicsPlan::profile_version(double abs_hour, int machine_id) const {
  if (!dynamics_.upgrade.enabled || abs_hour < dynamics_.upgrade.at_hours ||
      machine_id >= migrated_machines_) {
    return 1;
  }
  return 2;
}

DynamicsPlan::AnomalyTag DynamicsPlan::anomaly_at(double abs_hour,
                                                  int machine_id) const {
  for (std::size_t i = 0; i < anomaly_.size(); ++i) {
    const Episode& e = anomaly_[i];
    if (abs_hour < e.start || abs_hour >= e.end) continue;
    if (!e.machines.empty() &&
        e.machines[static_cast<std::size_t>(machine_id)] == 0) {
      continue;
    }
    return AnomalyTag{static_cast<std::uint32_t>(i + 1),
                      dynamics_.anomaly.intensity};
  }
  return AnomalyTag{};
}

void apply_dynamics_overlay(std::vector<double>& sample,
                            const metrics::MetricCatalog& catalog,
                            const ColocationScenario& scenario) {
  if (!scenario.dynamic_tagged()) return;
  for (const metrics::MetricInfo& info : catalog.metrics()) {
    if (info.index >= sample.size()) continue;
    // Occupancy columns encode the mix exactly; dynamics distort behaviour
    // counters, never the mix itself.
    if (info.category == metrics::MetricCategory::kOccupancy) continue;
    double factor = 1.0;
    if (scenario.profile_version > 1 && scenario.profile_shift > 0.0) {
      factor *= std::exp(
          scenario.profile_shift *
          unit_deviate(info.name, kUpgradeOverlaySeed,
                       static_cast<std::uint64_t>(scenario.profile_version)));
    }
    if (scenario.anomaly_episode != 0 && scenario.anomaly_intensity > 0.0) {
      factor *= std::exp(
          scenario.anomaly_intensity *
          unit_deviate(info.name, kAnomalyOverlaySeed,
                       static_cast<std::uint64_t>(scenario.anomaly_episode)));
    }
    sample[info.index] *= factor;
  }
}

JobProfile upgraded_profile(const JobProfile& base, int version, double shift) {
  if (version <= 1 || shift <= 0.0) return base;
  JobProfile up = base;
  up.version = version;
  const std::uint64_t v = static_cast<std::uint64_t>(version);
  const auto bump = [&](double& field, std::string_view param) {
    // Key the deviate by job + parameter so each job's upgrade moves its own
    // way, mirroring the per-metric coherence of the row overlay.
    const std::string key =
        std::string(job_code(base.type)) + "/" + std::string(param);
    field *= std::exp(shift * unit_deviate(key, kUpgradeOverlaySeed, v));
  };
  bump(up.base_cpi, "base_cpi");
  bump(up.frontend_bound, "frontend_bound");
  bump(up.llc_apki, "llc_apki");
  bump(up.mrc_half_mb, "mrc_half_mb");
  bump(up.mlp, "mlp");
  bump(up.branch_mpki, "branch_mpki");
  bump(up.l1i_mpki, "l1i_mpki");
  return up;
}

}  // namespace flare::dcsim
