// The job-submission system (paper §5.1): simulated users submit HP and LP
// jobs as container instances with Poisson arrivals and random durations
// (≥ 30 minutes), producing the diverse colocation landscape of Fig. 3a.
//
// Running the discrete-event loop and deduplicating every observed machine
// mix yields the ScenarioSet FLARE profiles — the paper's 895 scenarios.
#pragma once

#include <cstdint>
#include <vector>

#include "dcsim/dynamics.hpp"
#include "dcsim/machine_config.hpp"
#include "dcsim/scenario.hpp"
#include "dcsim/scheduler.hpp"

namespace flare::dcsim {

struct SubmissionConfig {
  std::uint64_t seed = 7;
  int num_machines = 8;  ///< one rack reproduces behaviours; two model clients

  /// Stop once this many distinct scenarios (with ≥ 1 HP instance) exist.
  std::size_t target_distinct_scenarios = 895;
  /// Hard stop (simulated hours) even if the target was not reached.
  double max_sim_hours = 40000.0;

  double arrivals_per_hour = 13.0;
  double min_duration_hours = 0.5;        ///< "each job runs for at least 30 min"
  double mean_extra_duration_hours = 1.0; ///< exponential tail beyond the minimum
  int max_instances_per_submission = 6;   ///< scale-out copies per request

  /// Probability a submission is a High-Priority service (vs LP batch).
  double hp_fraction = 0.65;

  /// Relative submission weights. Empty -> defaults (mildly non-uniform, the
  /// way production job populations skew).
  std::vector<double> hp_type_weights;
  std::vector<double> lp_type_weights;

  PlacementPolicy policy = PlacementPolicy::kLeastUtilized;

  /// Non-stationarity layer (dcsim/dynamics.hpp). All generators default to
  /// disabled, in which case the event loop consumes the exact same RNG
  /// stream as the stationary simulator — traces stay bit-identical.
  WorkloadDynamics dynamics;
};

struct SubmissionStats {
  std::size_t submissions = 0;
  std::size_t placements = 0;
  std::size_t denials = 0;
  double simulated_hours = 0.0;
  double mean_cpu_occupancy = 0.0;  ///< time-averaged vCPU occupancy fraction
};

/// Runs the simulation and returns every distinct scenario containing at
/// least one HP instance, weighted by total observed machine-time.
/// Scenario ids are dense and ordered by first observation.
[[nodiscard]] ScenarioSet generate_scenario_set(const SubmissionConfig& config,
                                                const MachineConfig& machine,
                                                const JobCatalog& catalog =
                                                    default_job_catalog(),
                                                SubmissionStats* stats = nullptr);

/// One streaming window of a non-stationary trace: batch `index` simulates
/// absolute hours [dynamics.start_hour + index·window_hours, +window_hours)
/// under `dynamics` (episode schedules and the upgrade cutover continue
/// across windows), with a per-window decorrelated arrival seed derived from
/// config.seed and the window index.
[[nodiscard]] ScenarioSet generate_dynamics_batch(
    const SubmissionConfig& config, const MachineConfig& machine,
    const WorkloadDynamics& dynamics, int index, double window_hours,
    std::size_t target_scenarios,
    const JobCatalog& catalog = default_job_catalog(),
    SubmissionStats* stats = nullptr);

}  // namespace flare::dcsim
