// Machine shapes (paper Table 2 "Default" and Table 5 "Small").
//
// A MachineConfig carries both the *scheduling shape* (vCPU and DRAM quota
// the job-submission system packs against) and the *microarchitectural knobs*
// the interference model consumes (LLC capacity, frequency range, SMT,
// memory bandwidth/latency). Features (Table 4) mutate the knobs but never
// the scheduling shape — exactly the paper's "features which do not change
// the datacenter machine's shape" scope (§2).
#pragma once

#include <string>

namespace flare::dcsim {

struct MachineConfig {
  std::string name = "default";

  // --- Scheduling shape (fixed per machine type) ---
  int sockets = 2;
  int physical_cores_per_socket = 12;
  /// Hardware threads per core exposed to the scheduler. The paper's
  /// machines always *schedule* 2-way (24 vCPUs/socket on the Default shape)
  /// even when the SMT feature is disabled; disabling SMT makes the OS
  /// time-share vCPUs instead of changing the container packing.
  int scheduled_threads_per_core = 2;
  double dram_gb = 256.0;

  // --- Feature-adjustable knobs ---
  bool smt_enabled = true;           ///< Feature 3 toggles this
  double llc_mb_per_socket = 30.0;   ///< Feature 1 shrinks this (Intel CAT)
  double min_freq_ghz = 1.2;
  double max_freq_ghz = 2.9;         ///< Feature 2 caps this (DVFS policy)

  // --- Fixed microarchitectural parameters ---
  int mem_channels_per_socket = 4;
  double mem_bw_gbps_per_channel = 19.2;  ///< DDR4-2400: 8B × 2.4 GT/s
  double mem_latency_ns = 85.0;           ///< unloaded round trip
  double network_gbps = 10.0;
  double disk_kiops = 89.0;
  std::string cpu_model = "Intel Xeon E5-2650 v4";
  std::string dram_model = "256GB DDR4 2400MHz";
  std::string disk_model = "Intel 730 Series SSD (SATA 6Gb/s)";
  std::string nic_model = "Intel X710 10Gbps Ethernet";

  /// vCPUs the scheduler packs containers against (48 on the Default shape).
  [[nodiscard]] int scheduling_vcpus() const {
    return sockets * physical_cores_per_socket * scheduled_threads_per_core;
  }

  /// Physical cores across all sockets.
  [[nodiscard]] int total_cores() const { return sockets * physical_cores_per_socket; }

  /// Hardware contexts actually available to run threads simultaneously:
  /// 2 per core with SMT on, 1 per core with SMT off.
  [[nodiscard]] int hardware_threads() const {
    return total_cores() * (smt_enabled ? 2 : 1);
  }

  [[nodiscard]] double total_llc_mb() const { return llc_mb_per_socket * sockets; }

  [[nodiscard]] double total_mem_bw_gbps() const {
    return static_cast<double>(sockets * mem_channels_per_socket) *
           mem_bw_gbps_per_channel;
  }

  [[nodiscard]] bool operator==(const MachineConfig&) const = default;
};

/// Table 2 machine: Intel Xeon E5-2650 v4, 2 sockets × 24 vCPUs, 256 GB.
[[nodiscard]] MachineConfig default_machine();

/// Table 5 "Small" machine: Intel Xeon E5-2640 v3, 2 sockets × 16 vCPUs, 128 GB.
[[nodiscard]] MachineConfig small_machine();

/// A newer high-core-count shape (Intel Xeon Gold 6230 class, 2 sockets ×
/// 40 vCPUs, 384 GB, DDR4-2666): the third generation a real fleet mixes in.
/// Its larger LLC, wider memory system and higher clock ceiling shift every
/// microarchitectural axis the interference model reads, so its scenarios
/// must not be pooled with the older shapes' (§5.5).
[[nodiscard]] MachineConfig dense_machine();

}  // namespace flare::dcsim
