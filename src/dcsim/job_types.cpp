#include "dcsim/job_types.hpp"

#include "util/error.hpp"

namespace flare::dcsim {
namespace {

constexpr std::array<std::string_view, kNumJobTypes> kCodes = {
    "DA",        "DC",    "DS",         "GA",        "IA",      "MS",  "WSC",
    "WSV",       "perlbench", "sjeng", "libquantum", "xalancbmk", "omnetpp", "mcf"};

constexpr std::array<std::string_view, kNumJobTypes> kNames = {
    "Data Analytics",     "Data Caching",     "Data Serving",
    "Graph Analytics",    "In-memory Analytics", "Media Streaming",
    "Web Search",         "Web Serving",      "400.perlbench",
    "458.sjeng",          "462.libquantum",   "483.xalancbmk",
    "471.omnetpp",        "429.mcf"};

}  // namespace

const std::array<JobType, kNumJobTypes>& all_job_types() {
  static const std::array<JobType, kNumJobTypes> kAll = [] {
    std::array<JobType, kNumJobTypes> a{};
    for (std::size_t i = 0; i < kNumJobTypes; ++i) a[i] = static_cast<JobType>(i);
    return a;
  }();
  return kAll;
}

const std::array<JobType, kNumHpJobTypes>& hp_job_types() {
  static const std::array<JobType, kNumHpJobTypes> kHp = [] {
    std::array<JobType, kNumHpJobTypes> a{};
    for (std::size_t i = 0; i < kNumHpJobTypes; ++i) a[i] = static_cast<JobType>(i);
    return a;
  }();
  return kHp;
}

std::string_view job_code(JobType type) { return kCodes[job_index(type)]; }

std::string_view job_name(JobType type) { return kNames[job_index(type)]; }

JobType job_type_from_code(std::string_view code) {
  for (std::size_t i = 0; i < kNumJobTypes; ++i) {
    if (kCodes[i] == code) return static_cast<JobType>(i);
  }
  throw ParseError("unknown job code: '" + std::string(code) + "'");
}

}  // namespace flare::dcsim
