#include "dcsim/testbed_farm.hpp"

#include "util/error.hpp"

namespace flare::dcsim {

TestbedFarm::TestbedFarm(std::size_t num_testbeds) {
  ensure(num_testbeds >= 1, "TestbedFarm: need at least one testbed");
  slots_.resize(num_testbeds);
}

std::size_t TestbedFarm::acquire() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < slots_.size(); ++i) {
    if (slots_[i].available_at < slots_[best].available_at) best = i;
  }
  return best;
}

double TestbedFarm::commit(std::size_t testbed, double seconds,
                           std::size_t attempts, double not_before) {
  ensure(testbed < slots_.size(), "TestbedFarm::commit: no such testbed");
  ensure(seconds >= 0.0, "TestbedFarm::commit: negative replay duration");
  TestbedSlot& slot = slots_[testbed];
  const double start =
      slot.available_at > not_before ? slot.available_at : not_before;
  slot.available_at = start + seconds;
  slot.busy_seconds += seconds;
  slot.units += 1;
  slot.attempts += attempts;
  return start;
}

double TestbedFarm::makespan_seconds() const {
  double makespan = 0.0;
  for (const TestbedSlot& slot : slots_) {
    if (slot.available_at > makespan) makespan = slot.available_at;
  }
  return makespan;
}

double TestbedFarm::total_busy_seconds() const {
  double total = 0.0;
  for (const TestbedSlot& slot : slots_) total += slot.busy_seconds;
  return total;
}

std::vector<TestbedUtilisation> TestbedFarm::utilisation() const {
  const double makespan = makespan_seconds();
  std::vector<TestbedUtilisation> table(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    table[i].testbed = i;
    table[i].units = slots_[i].units;
    table[i].attempts = slots_[i].attempts;
    table[i].busy_seconds = slots_[i].busy_seconds;
    table[i].utilisation =
        makespan > 0.0 ? slots_[i].busy_seconds / makespan : 0.0;
  }
  return table;
}

}  // namespace flare::dcsim
