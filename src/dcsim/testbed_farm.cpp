#include "dcsim/testbed_farm.hpp"

#include <utility>

#include "util/error.hpp"

namespace flare::dcsim {

TestbedFarm::TestbedFarm(std::size_t num_testbeds,
                         std::vector<double> speed_factors) {
  ensure(num_testbeds >= 1, "TestbedFarm: need at least one testbed");
  ensure(speed_factors.empty() || speed_factors.size() == num_testbeds,
         "TestbedFarm: speed factor count must match the testbed count");
  for (const double factor : speed_factors) {
    ensure(factor > 0.0, "TestbedFarm: speed factors must be positive");
  }
  slots_.resize(num_testbeds);
  speed_factors_ = std::move(speed_factors);
}

double TestbedFarm::speed_factor(std::size_t testbed) const {
  ensure(testbed < slots_.size(), "TestbedFarm::speed_factor: no such testbed");
  return speed_factors_.empty() ? 1.0 : speed_factors_[testbed];
}

std::size_t TestbedFarm::acquire() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < slots_.size(); ++i) {
    if (slots_[i].available_at < slots_[best].available_at) best = i;
  }
  return best;
}

double TestbedFarm::commit(std::size_t testbed, double seconds,
                           std::size_t attempts, double not_before) {
  ensure(testbed < slots_.size(), "TestbedFarm::commit: no such testbed");
  ensure(seconds >= 0.0, "TestbedFarm::commit: negative replay duration");
  TestbedSlot& slot = slots_[testbed];
  // Occupancy scales with the slot's speed. A homogeneous farm divides by
  // exactly 1.0, which is bit-exact — the all-1.0 farm stays bit-identical
  // to the historical unscaled arithmetic.
  const double duration =
      speed_factors_.empty() ? seconds : seconds / speed_factors_[testbed];
  const double start =
      slot.available_at > not_before ? slot.available_at : not_before;
  slot.available_at = start + duration;
  slot.busy_seconds += duration;
  slot.units += 1;
  slot.attempts += attempts;
  return start;
}

double TestbedFarm::makespan_seconds() const {
  double makespan = 0.0;
  for (const TestbedSlot& slot : slots_) {
    if (slot.available_at > makespan) makespan = slot.available_at;
  }
  return makespan;
}

double TestbedFarm::total_busy_seconds() const {
  double total = 0.0;
  for (const TestbedSlot& slot : slots_) total += slot.busy_seconds;
  return total;
}

std::vector<TestbedUtilisation> TestbedFarm::utilisation() const {
  const double makespan = makespan_seconds();
  std::vector<TestbedUtilisation> table(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    table[i].testbed = i;
    table[i].units = slots_[i].units;
    table[i].attempts = slots_[i].attempts;
    table[i].busy_seconds = slots_[i].busy_seconds;
    table[i].utilisation =
        makespan > 0.0 ? slots_[i].busy_seconds / makespan : 0.0;
  }
  return table;
}

}  // namespace flare::dcsim
