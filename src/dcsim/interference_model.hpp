// Analytic colocation performance model.
//
// Given a machine configuration and a job mix, the model resolves the three
// shared-resource interactions that drive datacenter interference:
//
//   1. LLC partitioning — shared cache is divided by access-rate-weighted
//      water-filling, capped at each instance's working set; the per-instance
//      allocation feeds that job's miss-ratio curve.
//   2. Memory bandwidth contention — aggregate miss traffic loads the DRAM
//      channels; a queueing-shaped latency multiplier feeds back into per-job
//      memory stall time (fixed-point iteration).
//   3. Core/SMT contention — busy threads beyond the physical core count
//      either share cores (SMT on, per-job SMT yield) or time-share hardware
//      contexts (SMT off, plus context-switch overhead).
//
// Execution time per instruction splits into a frequency-scaled core term and
// a frequency-independent memory term, which is what makes DVFS (Feature 2)
// hurt compute-bound scenarios more than memory-bound ones — the first-order
// behaviour the paper's Feature 2 experiments rely on.
#pragma once

#include <cstdint>
#include <vector>

#include "dcsim/job_catalog.hpp"
#include "dcsim/machine_config.hpp"
#include "dcsim/scenario.hpp"

namespace flare::dcsim {

struct ModelOptions {
  /// Multiplicative lognormal measurement noise (σ of log), 0 disables.
  double noise_sigma = 0.015;
  bool enable_noise = true;
  /// Socket-aware (NUMA) resource modelling: instances are spread across
  /// sockets (balanced, deterministic) and contend for their *own* socket's
  /// LLC and memory channels instead of one pooled resource. Off by default
  /// — the pooled model is the calibrated configuration every published
  /// number uses; the ablation bench quantifies the difference.
  bool socket_aware = false;
  /// Fixed-point iterations for the bandwidth-latency feedback loop.
  int bandwidth_iterations = 4;
  /// Context-switch throughput tax when time-sharing (SMT off, oversubscribed).
  double context_switch_overhead = 0.03;
  /// Effective DRAM traffic per LLC miss, bytes (line + writeback share).
  double bytes_per_miss = 90.0;
  /// Latency multiplier ceiling under extreme bandwidth saturation.
  double max_latency_multiplier = 4.0;
};

/// Per-job-type results within one evaluated scenario (aggregated across the
/// identical instances of that type).
struct JobTypePerformance {
  JobType type = JobType::kDataAnalytics;
  int instances = 0;
  double mips_per_instance = 0.0;     ///< absolute MIPS of one 4-vCPU instance
  double ipc = 0.0;                   ///< per busy thread
  double cache_mb_per_instance = 0.0; ///< LLC allocation from water-filling
  double llc_miss_ratio = 0.0;
  double llc_mpki = 0.0;
  double mem_bw_gbps_per_instance = 0.0;
  double core_speed_factor = 1.0;     ///< SMT / time-sharing slowdown
  double effective_mem_latency_ns = 0.0;
  // Top-down pipeline-slot decomposition (sums to 1).
  double td_frontend = 0.0;
  double td_bad_speculation = 0.0;
  double td_retiring = 0.0;
  double td_backend_mem = 0.0;
  double td_backend_core = 0.0;
};

/// Full result of evaluating one scenario on one machine configuration.
struct ScenarioPerformance {
  MachineConfig machine;
  JobMix mix;
  std::vector<JobTypePerformance> jobs;  ///< one entry per present job type

  // Machine-level aggregates.
  double total_mips = 0.0;
  double hp_mips = 0.0;
  double busy_threads = 0.0;          ///< demand-weighted busy vCPUs
  double cpu_utilization = 0.0;       ///< busy threads / scheduling vCPUs
  double mem_bw_gbps = 0.0;
  double mem_bw_utilization = 0.0;    ///< demand / capacity, pre-clamp
  double mem_latency_multiplier = 1.0;
  double llc_used_mb = 0.0;
  double network_mbps = 0.0;
  double network_utilization = 0.0;
  double disk_iops = 0.0;

  /// Lookup by type; throws std::invalid_argument when absent from the mix.
  [[nodiscard]] const JobTypePerformance& job(JobType type) const;
  [[nodiscard]] bool has_job(JobType type) const;
};

class InterferenceModel {
 public:
  explicit InterferenceModel(const JobCatalog& catalog = default_job_catalog(),
                             ModelOptions options = {});

  /// Evaluates the mix on the machine. `noise_stream` selects an independent
  /// noise realisation (e.g. one per datacenter machine-observation vs. one
  /// per testbed replay); results are deterministic per
  /// (machine, mix, stream).
  [[nodiscard]] ScenarioPerformance evaluate(const MachineConfig& machine,
                                             const JobMix& mix,
                                             std::uint64_t noise_stream = 0) const;

  /// MIPS of a single instance running alone on an otherwise empty machine —
  /// the "job's inherent MIPS" used to normalise performance (§5.1).
  /// Noise-free by construction.
  [[nodiscard]] double inherent_mips(const MachineConfig& machine, JobType type) const;

  [[nodiscard]] const ModelOptions& options() const { return options_; }
  [[nodiscard]] const JobCatalog& catalog() const { return catalog_; }

 private:
  JobCatalog catalog_;
  ModelOptions options_;
};

}  // namespace flare::dcsim
