#include "dcsim/machine_config.hpp"

namespace flare::dcsim {

MachineConfig default_machine() {
  MachineConfig m;
  m.name = "default";
  m.sockets = 2;
  m.physical_cores_per_socket = 12;  // 24 vCPUs/socket with 2-way SMT
  m.scheduled_threads_per_core = 2;
  m.dram_gb = 256.0;
  m.smt_enabled = true;
  m.llc_mb_per_socket = 30.0;
  m.min_freq_ghz = 1.2;
  m.max_freq_ghz = 2.9;
  m.mem_channels_per_socket = 4;
  m.mem_bw_gbps_per_channel = 19.2;
  m.mem_latency_ns = 85.0;
  m.network_gbps = 10.0;
  m.disk_kiops = 89.0;
  m.cpu_model = "Intel Xeon E5-2650 v4";
  m.dram_model = "256GB DDR4 2400MHz";
  m.disk_model = "Intel 730 Series SSD (SATA 6Gb/s)";
  m.nic_model = "Intel X710 10Gbps Ethernet";
  return m;
}

MachineConfig small_machine() {
  MachineConfig m;
  m.name = "small";
  m.sockets = 2;
  m.physical_cores_per_socket = 8;  // 16 vCPUs/socket with 2-way SMT
  m.scheduled_threads_per_core = 2;
  m.dram_gb = 128.0;
  m.smt_enabled = true;
  m.llc_mb_per_socket = 20.0;  // E5-2640 v3
  m.min_freq_ghz = 1.2;
  m.max_freq_ghz = 2.6;
  m.mem_channels_per_socket = 4;
  m.mem_bw_gbps_per_channel = 17.0;  // DDR4-2133
  m.mem_latency_ns = 90.0;
  m.network_gbps = 10.0;
  m.disk_kiops = 90.0;
  m.cpu_model = "Intel Xeon E5-2640 v3";
  m.dram_model = "128GB DDR4 2133MHz";
  m.disk_model = "Samsung 850 SSD";
  m.nic_model = "Intel 82599ES 10Gb";
  return m;
}

MachineConfig dense_machine() {
  MachineConfig m;
  m.name = "dense";
  m.sockets = 2;
  m.physical_cores_per_socket = 20;  // 40 vCPUs/socket with 2-way SMT
  m.scheduled_threads_per_core = 2;
  m.dram_gb = 384.0;
  m.smt_enabled = true;
  m.llc_mb_per_socket = 27.5;  // Xeon Gold 6230
  m.min_freq_ghz = 1.0;
  m.max_freq_ghz = 3.2;
  m.mem_channels_per_socket = 6;
  m.mem_bw_gbps_per_channel = 21.3;  // DDR4-2666
  m.mem_latency_ns = 81.0;
  m.network_gbps = 25.0;
  m.disk_kiops = 200.0;
  m.cpu_model = "Intel Xeon Gold 6230";
  m.dram_model = "384GB DDR4 2666MHz";
  m.disk_model = "Intel P4510 NVMe SSD";
  m.nic_model = "Mellanox ConnectX-4 25Gbps";
  return m;
}

}  // namespace flare::dcsim
