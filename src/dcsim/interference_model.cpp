#include "dcsim/interference_model.hpp"

#include <algorithm>
#include <cmath>

#include "stats/rng.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace flare::dcsim {
namespace {

/// Water-filling LLC partition: capacity is split proportionally to each
/// instance's access-rate weight, but no instance receives more than its
/// working set; surplus is redistributed among the still-unsaturated ones.
/// Returns MB per instance of each present type.
std::vector<double> partition_llc(const std::vector<const JobProfile*>& profiles,
                                  const std::vector<int>& counts, double capacity_mb) {
  const std::size_t n = profiles.size();
  std::vector<double> alloc(n, 0.0);
  std::vector<bool> capped(n, false);
  double remaining = capacity_mb;

  for (std::size_t pass = 0; pass <= n; ++pass) {
    double total_weight = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (capped[i]) continue;
      total_weight += profiles[i]->llc_apki * profiles[i]->cpu_utilization *
                      static_cast<double>(counts[i]);
    }
    if (total_weight <= 0.0 || remaining <= 0.0) break;

    bool newly_capped = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (capped[i]) continue;
      const double weight = profiles[i]->llc_apki * profiles[i]->cpu_utilization *
                            static_cast<double>(counts[i]);
      const double share_per_instance =
          remaining * (weight / total_weight) / static_cast<double>(counts[i]);
      if (share_per_instance >= profiles[i]->working_set_mb) {
        alloc[i] = profiles[i]->working_set_mb;
        capped[i] = true;
        newly_capped = true;
      } else {
        alloc[i] = share_per_instance;
      }
    }
    if (newly_capped) {
      // Remove satisfied instances' capacity and redistribute the rest.
      remaining = capacity_mb;
      for (std::size_t i = 0; i < n; ++i) {
        if (capped[i]) remaining -= alloc[i] * static_cast<double>(counts[i]);
      }
      remaining = std::max(remaining, 0.0);
      continue;
    }
    break;  // proportional split fit everyone
  }
  return alloc;
}

}  // namespace

const JobTypePerformance& ScenarioPerformance::job(JobType type) const {
  for (const JobTypePerformance& j : jobs) {
    if (j.type == type) return j;
  }
  ensure(false, "ScenarioPerformance::job: job type not present in scenario");
  // Unreachable; ensure() throws.
  return jobs.front();
}

bool ScenarioPerformance::has_job(JobType type) const {
  for (const JobTypePerformance& j : jobs) {
    if (j.type == type) return true;
  }
  return false;
}

InterferenceModel::InterferenceModel(const JobCatalog& catalog, ModelOptions options)
    : catalog_(catalog), options_(options) {
  ensure(options_.bandwidth_iterations >= 1,
         "InterferenceModel: bandwidth_iterations must be >= 1");
  ensure(options_.noise_sigma >= 0.0, "InterferenceModel: noise_sigma must be >= 0");
}

ScenarioPerformance InterferenceModel::evaluate(const MachineConfig& machine,
                                                const JobMix& mix,
                                                std::uint64_t noise_stream) const {
  ensure(!mix.empty(), "InterferenceModel::evaluate: empty job mix");
  ensure(mix.vcpus() <= machine.scheduling_vcpus(),
         "InterferenceModel::evaluate: mix exceeds the machine's vCPU capacity");

  ScenarioPerformance result;
  result.machine = machine;
  result.mix = mix;

  // Gather present job types.
  std::vector<const JobProfile*> profiles;
  std::vector<int> counts;
  for (const JobType type : all_job_types()) {
    const int n = mix.count(type);
    if (n == 0) continue;
    profiles.push_back(&catalog_.profile(type));
    counts.push_back(n);
  }
  const std::size_t ntypes = profiles.size();

  // --- 1. Shared LLC partition (per resource domain) ---
  // A domain is the contention scope for LLC and memory channels: the whole
  // machine in the pooled (default, calibrated) model, or one socket in the
  // opt-in NUMA-aware model. Instances spread across sockets deterministically
  // (each to the least-loaded socket, types in enum order).
  const std::size_t num_domains =
      options_.socket_aware && machine.sockets > 1
          ? static_cast<std::size_t>(machine.sockets)
          : 1;
  std::vector<std::vector<int>> domain_counts(num_domains,
                                              std::vector<int>(ntypes, 0));
  if (num_domains == 1) {
    domain_counts[0] = counts;
  } else {
    std::vector<int> socket_vcpus(num_domains, 0);
    for (std::size_t i = 0; i < ntypes; ++i) {
      for (int k = 0; k < counts[i]; ++k) {
        std::size_t target = 0;
        for (std::size_t s = 1; s < num_domains; ++s) {
          if (socket_vcpus[s] < socket_vcpus[target]) target = s;
        }
        ++domain_counts[target][i];
        socket_vcpus[target] += profiles[i]->vcpus;
      }
    }
  }
  const double domain_llc_mb = machine.total_llc_mb() / num_domains;

  // Per (domain, type): cache allocation and the resulting miss behaviour.
  std::vector<std::vector<double>> cache_d(num_domains), mr_d(num_domains),
      mpki_d(num_domains);
  for (std::size_t d = 0; d < num_domains; ++d) {
    cache_d[d] = partition_llc(profiles, domain_counts[d], domain_llc_mb);
    mr_d[d].resize(ntypes);
    mpki_d[d].resize(ntypes);
    double used = 0.0;
    for (std::size_t i = 0; i < ntypes; ++i) {
      if (domain_counts[d][i] == 0) {
        cache_d[d][i] = 0.0;
        continue;
      }
      mr_d[d][i] = profiles[i]->miss_ratio(cache_d[d][i]);
      mpki_d[d][i] = profiles[i]->llc_apki * mr_d[d][i];
      used += cache_d[d][i] * domain_counts[d][i];
    }
    result.llc_used_mb += std::min(used, domain_llc_mb);
  }

  // --- 2. Core / SMT contention ---
  double busy_threads = 0.0;
  for (std::size_t i = 0; i < ntypes; ++i) {
    busy_threads += static_cast<double>(counts[i] * profiles[i]->vcpus) *
                    profiles[i]->cpu_utilization;
  }
  result.busy_threads = busy_threads;
  result.cpu_utilization =
      busy_threads / static_cast<double>(machine.scheduling_vcpus());

  const double cores = static_cast<double>(machine.total_cores());
  std::vector<double> core_speed(ntypes, 1.0);
  if (machine.smt_enabled) {
    if (busy_threads > cores) {
      // 2(B - C) threads run with a sibling; the rest have a core alone.
      const double shared_fraction =
          std::min(2.0 * (busy_threads - cores) / busy_threads, 1.0);
      for (std::size_t i = 0; i < ntypes; ++i) {
        core_speed[i] =
            (1.0 - shared_fraction) + shared_fraction * profiles[i]->smt_yield;
      }
    }
  } else {
    // Hardware contexts == cores. Two effects: (a) oversubscription makes
    // the OS time-slice runnable threads, and (b) even below saturation,
    // bursty thread activity queues on the reduced context count (an M/M/c
    // flavoured wait that SMT's 2× contexts would have absorbed).
    const double slice = busy_threads > cores ? cores / busy_threads : 1.0;
    const double rho = std::min(busy_threads / cores, 1.0);
    const double burst_wait = 1.0 - 0.25 * rho * rho * rho;
    const double factor =
        slice * burst_wait *
        (busy_threads > cores ? 1.0 - options_.context_switch_overhead : 1.0);
    for (double& s : core_speed) s = factor;
  }

  // --- 3. Frequency ---
  // Busy machines run at the governor ceiling; the DVFS feature lowers it.
  const double freq_hz = machine.max_freq_ghz * 1e9;

  // --- 4. Bandwidth-latency fixed point (per resource domain) ---
  const double domain_bw_capacity = machine.total_mem_bw_gbps() / num_domains;
  std::vector<double> lat_mult_d(num_domains, 1.0);
  std::vector<std::vector<double>> mips_d(num_domains,
                                          std::vector<double>(ntypes, 0.0));
  std::vector<double> demand_d(num_domains, 0.0);
  for (int iter = 0; iter < options_.bandwidth_iterations; ++iter) {
    for (std::size_t d = 0; d < num_domains; ++d) {
      demand_d[d] = 0.0;
      for (std::size_t i = 0; i < ntypes; ++i) {
        if (domain_counts[d][i] == 0) continue;
        const double core_s = profiles[i]->base_cpi / (freq_hz * core_speed[i]);
        const double mem_s = mpki_d[d][i] / 1000.0 *
                             (machine.mem_latency_ns * 1e-9 * lat_mult_d[d]) /
                             profiles[i]->mlp;
        const double per_thread_mips = 1e-6 / (core_s + mem_s);
        mips_d[d][i] = per_thread_mips * static_cast<double>(profiles[i]->vcpus) *
                       profiles[i]->cpu_utilization;
        demand_d[d] += mips_d[d][i] * 1e6 * (mpki_d[d][i] / 1000.0) *
                       options_.bytes_per_miss / 1e9 *
                       static_cast<double>(domain_counts[d][i]);
      }
      const double rho = std::min(demand_d[d] / domain_bw_capacity, 0.95);
      lat_mult_d[d] = std::min(1.0 + 0.8 * rho * rho * rho / (1.0 - rho),
                               options_.max_latency_multiplier);
    }
  }

  // Per-type aggregates across domains (identity in the pooled model).
  std::vector<double> mips(ntypes, 0.0), cache_mb(ntypes, 0.0),
      miss_ratio(ntypes, 0.0), mpki(ntypes, 0.0), lat_mult(ntypes, 1.0);
  for (std::size_t i = 0; i < ntypes; ++i) {
    double m = 0.0, c = 0.0, mr = 0.0, mp = 0.0, lm = 0.0;
    for (std::size_t d = 0; d < num_domains; ++d) {
      const double n = static_cast<double>(domain_counts[d][i]);
      m += n * mips_d[d][i];
      c += n * cache_d[d][i];
      mr += n * mr_d[d][i];
      mp += n * mpki_d[d][i];
      lm += n * lat_mult_d[d];
    }
    const double n_total = static_cast<double>(counts[i]);
    mips[i] = m / n_total;
    cache_mb[i] = c / n_total;
    miss_ratio[i] = mr / n_total;
    mpki[i] = mp / n_total;
    lat_mult[i] = lm / n_total;
  }

  double raw_demand_gbps = 0.0, demand_weighted_mult = 0.0;
  for (std::size_t d = 0; d < num_domains; ++d) {
    raw_demand_gbps += demand_d[d];
    demand_weighted_mult += demand_d[d] * lat_mult_d[d];
  }
  result.mem_bw_utilization = raw_demand_gbps / machine.total_mem_bw_gbps();
  result.mem_latency_multiplier =
      raw_demand_gbps > 0.0 ? demand_weighted_mult / raw_demand_gbps : 1.0;

  // --- 5. Network saturation (affects network-heavy services) ---
  double net_demand = 0.0;
  for (std::size_t i = 0; i < ntypes; ++i) {
    net_demand += profiles[i]->network_mbps * counts[i];
  }
  const double net_capacity_mbps = machine.network_gbps * 1000.0;
  const double net_factor =
      net_demand > net_capacity_mbps ? net_capacity_mbps / net_demand : 1.0;
  result.network_utilization = net_demand / net_capacity_mbps;

  // --- 6. Assemble per-job results (+ deterministic measurement noise) ---
  stats::Rng noise_rng(util::hash_mix(
      util::fnv1a(mix.key(), util::fnv1a(machine.name)), noise_stream));

  result.jobs.reserve(ntypes);
  for (std::size_t i = 0; i < ntypes; ++i) {
    JobTypePerformance j;
    j.type = profiles[i]->type;
    j.instances = counts[i];
    j.cache_mb_per_instance = cache_mb[i];
    j.llc_miss_ratio = miss_ratio[i];
    j.llc_mpki = mpki[i];
    j.core_speed_factor = core_speed[i];
    j.effective_mem_latency_ns =
        machine.mem_latency_ns * lat_mult[i] / profiles[i]->mlp;

    double instance_mips = mips[i];
    // Network throttling only bites jobs that move real traffic.
    if (profiles[i]->network_mbps > 100.0) instance_mips *= net_factor;
    if (options_.enable_noise && options_.noise_sigma > 0.0) {
      instance_mips *= std::exp(options_.noise_sigma * noise_rng.normal());
    }
    j.mips_per_instance = instance_mips;

    // Per-thread IPC at the effective frequency.
    const double per_thread_ips =
        instance_mips * 1e6 /
        (static_cast<double>(profiles[i]->vcpus) * profiles[i]->cpu_utilization);
    j.ipc = per_thread_ips / (freq_hz * core_speed[i]);

    // Top-down decomposition: memory share first, then the profile's
    // intrinsic frontend/bad-speculation split over the remainder; core
    // sharing surfaces as extra backend-core pressure.
    const double core_s = profiles[i]->base_cpi / (freq_hz * core_speed[i]);
    const double mem_s = mpki[i] / 1000.0 *
                         (machine.mem_latency_ns * 1e-9 * lat_mult[i]) /
                         profiles[i]->mlp;
    const double total_s = core_s + mem_s;
    j.td_backend_mem = mem_s / total_s;
    const double non_mem = 1.0 - j.td_backend_mem;
    j.td_frontend = profiles[i]->frontend_bound * non_mem;
    j.td_bad_speculation = profiles[i]->bad_speculation * non_mem;
    const double smt_tax = (1.0 - core_speed[i]) * 0.5;
    j.td_backend_core = std::min(non_mem * (0.15 + smt_tax), non_mem * 0.8);
    j.td_retiring = std::max(
        1.0 - j.td_backend_mem - j.td_frontend - j.td_bad_speculation -
            j.td_backend_core,
        0.02);

    j.mem_bw_gbps_per_instance =
        instance_mips * 1e6 * (mpki[i] / 1000.0) * options_.bytes_per_miss / 1e9;

    result.jobs.push_back(j);

    const double type_mips = instance_mips * counts[i];
    result.total_mips += type_mips;
    if (profiles[i]->high_priority) result.hp_mips += type_mips;
    result.mem_bw_gbps += j.mem_bw_gbps_per_instance * counts[i];
    result.network_mbps += profiles[i]->network_mbps * counts[i] * net_factor;
    result.disk_iops += profiles[i]->disk_iops * counts[i];
  }
  return result;
}

double InterferenceModel::inherent_mips(const MachineConfig& machine,
                                        JobType type) const {
  JobMix solo;
  solo.add(type, 1);
  InterferenceModel noiseless(catalog_, [this] {
    ModelOptions o = options_;
    o.enable_noise = false;
    return o;
  }());
  const ScenarioPerformance perf = noiseless.evaluate(machine, solo);
  return perf.jobs.front().mips_per_instance;
}

}  // namespace flare::dcsim
