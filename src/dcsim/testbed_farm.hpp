// Simulated load-testing testbed farm (the machine pool behind a replay
// campaign). A farm is N identical testbeds, each with its own simulated
// clock — a testbed is busy until the replay it is running finishes, and the
// campaign scheduler (core/campaign.hpp) always dispatches the next unit to
// the testbed that frees up first. The farm only models *time and occupancy*;
// what a replay measures is the Replayer's business, and every fault decision
// stays a pure function of (seed, scenario, feature, attempt) — never of the
// testbed id — so a campaign's measurements are placement-invariant: the same
// units produce the same readings whether the farm has 1 slot or 16 (the
// bit-identity contract `ctest -L campaign` pins).
#pragma once

#include <cstddef>
#include <vector>

namespace flare::dcsim {

/// One testbed slot's running occupancy ledger.
struct TestbedSlot {
  /// Simulated time at which this testbed finishes its current replay and
  /// can accept the next unit (0 = idle since campaign start).
  double available_at = 0.0;
  /// Simulated seconds this testbed has spent running replays (incl. the
  /// attempt loop's retries and backoff waits — a retrying testbed is busy).
  double busy_seconds = 0.0;
  /// Campaign units dispatched to this testbed.
  std::size_t units = 0;
  /// Replay attempts billed on this testbed.
  std::size_t attempts = 0;
};

/// Per-testbed utilisation telemetry, derived once the campaign settles.
struct TestbedUtilisation {
  std::size_t testbed = 0;
  std::size_t units = 0;
  std::size_t attempts = 0;
  double busy_seconds = 0.0;
  /// busy / campaign makespan; 0 when the campaign never ran a unit.
  double utilisation = 0.0;
};

/// The farm: N slots on one shared simulated timeline. acquire() implements
/// the earliest-idle-first policy (ties broken by lowest id, so dispatch is
/// deterministic); commit() charges a finished replay's duration to the slot.
///
/// Heterogeneous farms: each slot may carry a speed factor (2.0 = runs
/// replays in half the nominal time, 0.5 = twice). The factor scales how
/// long a unit occupies the slot — and therefore its billed busy seconds —
/// but never what the replay measures: measurements are placement-invariant
/// by construction. A factor of exactly 1.0 divides out bit-exactly, so a
/// farm of all-1.0 factors is bit-identical to the homogeneous farm (the
/// regression `ctest -L campaign` pins).
class TestbedFarm {
 public:
  /// `speed_factors` must be empty (homogeneous, all 1.0) or hold one
  /// positive factor per testbed.
  explicit TestbedFarm(std::size_t num_testbeds,
                       std::vector<double> speed_factors = {});

  [[nodiscard]] std::size_t size() const { return slots_.size(); }

  /// The testbed the next unit runs on: the slot with the earliest
  /// available_at, lowest id on ties.
  [[nodiscard]] std::size_t acquire() const;

  /// Charges `seconds` of *nominal* replay time (attempts + backoff waits)
  /// and `attempts` billed attempts to slot `testbed`; returns the simulated
  /// start time of the unit. The slot is occupied (and billed) for
  /// `seconds / speed_factor(testbed)`. The unit starts when the slot frees
  /// up, but never before `not_before` (a follow-up probe cannot start
  /// before its parent's result exists — the slot idles through the gap,
  /// which counts against utilisation but not against the busy-seconds
  /// bill).
  double commit(std::size_t testbed, double seconds, std::size_t attempts,
                double not_before = 0.0);

  /// This slot's speed factor (1.0 on homogeneous farms).
  [[nodiscard]] double speed_factor(std::size_t testbed) const;

  /// Campaign makespan: when the last busy testbed frees up.
  [[nodiscard]] double makespan_seconds() const;

  /// Σ busy seconds over slots — the campaign's testbed-time bill, invariant
  /// to the slot count (cost is what early stopping trims; the slot count
  /// trims the makespan).
  [[nodiscard]] double total_busy_seconds() const;

  [[nodiscard]] const std::vector<TestbedSlot>& slots() const { return slots_; }

  /// Utilisation table against the current makespan.
  [[nodiscard]] std::vector<TestbedUtilisation> utilisation() const;

 private:
  std::vector<TestbedSlot> slots_;
  std::vector<double> speed_factors_;  ///< empty = homogeneous (all 1.0)
};

}  // namespace flare::dcsim
