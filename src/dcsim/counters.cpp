#include "dcsim/counters.hpp"

#include <cmath>
#include <limits>
#include <string>
#include <unordered_map>

#include "stats/rng.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/seed_stream.hpp"

namespace flare::dcsim {
namespace {

/// Aggregated view over a subset of the scenario's jobs (all vs HP-only).
struct LevelAggregate {
  double mips = 0.0;          // M instr/s
  double cycles_per_sec = 0.0;
  double busy_threads = 0.0;
  double llc_apki = 0.0;      // instruction-weighted
  double llc_mpki = 0.0;
  double llc_miss_ratio = 0.0;
  double llc_occupancy_mb = 0.0;
  double l1d_mpki = 0.0;
  double l1i_mpki = 0.0;
  double tlb_mpki = 0.0;
  double branch_mpki = 0.0;
  double load_pki = 0.0;
  double store_pki = 0.0;
  double mem_bw_gbps = 0.0;
  double eff_mem_latency_ns = 0.0;
  double dram_gb = 0.0;
  double td_fe = 0.0, td_bs = 0.0, td_ret = 0.0, td_mem = 0.0, td_core = 0.0;
  double alu_util = 0.0;
  double fp_util = 0.0;
  double spin = 0.0;
  double uops_per_instr = 0.0;
  double prefetch_pki = 0.0;
  double br_mispred_ratio = 0.0;
  double context_switches = 0.0;
  double network_mbps = 0.0;
  double disk_iops = 0.0;
};

LevelAggregate aggregate(const ScenarioPerformance& perf, const JobCatalog& catalog,
                         const MachineConfig& machine, bool hp_only) {
  LevelAggregate a;
  const double freq_hz = machine.max_freq_ghz * 1e9;
  double instr_weight = 0.0;

  for (const JobTypePerformance& j : perf.jobs) {
    const JobProfile& p = catalog.profile(j.type);
    if (hp_only && !p.high_priority) continue;
    const double n = static_cast<double>(j.instances);
    const double type_mips = j.mips_per_instance * n;  // M instr/s
    const double w = type_mips;

    a.mips += type_mips;
    const double threads = n * static_cast<double>(p.vcpus) * p.cpu_utilization;
    a.busy_threads += threads;
    a.cycles_per_sec += threads * freq_hz * j.core_speed_factor;
    a.llc_occupancy_mb += j.cache_mb_per_instance * n;
    a.mem_bw_gbps += j.mem_bw_gbps_per_instance * n;
    a.dram_gb += p.dram_gb * n;
    a.network_mbps += p.network_mbps * n;
    a.disk_iops += p.disk_iops * n;

    // Instruction-weighted per-KI and fraction metrics.
    a.llc_apki += w * p.llc_apki;
    a.llc_mpki += w * j.llc_mpki;
    a.llc_miss_ratio += w * j.llc_miss_ratio;
    a.l1d_mpki += w * (1.2 * p.llc_apki + 0.8 * p.branch_mpki +
                       0.2 * std::sqrt(p.working_set_mb));
    a.l1i_mpki += w * p.l1i_mpki;
    a.tlb_mpki += w * 0.04 * std::pow(p.working_set_mb, 0.7);
    a.branch_mpki += w * p.branch_mpki;
    a.load_pki += w * (250.0 + 2.0 * p.llc_apki + 40.0 * p.fp_fraction);
    a.store_pki += w * (100.0 + 30.0 * (1.0 - p.fp_fraction) + 12.0 * p.branch_mpki);
    a.eff_mem_latency_ns += w * j.effective_mem_latency_ns;
    a.td_fe += w * j.td_frontend;
    a.td_bs += w * j.td_bad_speculation;
    a.td_ret += w * j.td_retiring;
    a.td_mem += w * j.td_backend_mem;
    a.td_core += w * j.td_backend_core;
    a.alu_util += w * j.td_retiring * (1.0 - p.fp_fraction);
    a.fp_util += w * j.td_retiring * p.fp_fraction;
    a.spin += w * p.spin_fraction;
    a.uops_per_instr += w * (1.05 + 0.5 * p.fp_fraction + 0.02 * p.branch_mpki);
    a.prefetch_pki += w * (0.3 * p.llc_apki * p.mlp);
    a.br_mispred_ratio += w * (p.branch_mpki / (90.0 + 60.0 * p.base_cpi));
    // Interactive services context-switch on request boundaries; batch pins.
    a.context_switches += n * (p.network_mbps * 1.2 + p.disk_iops * 0.4 +
                               1600.0 * (1.0 - p.cpu_utilization) *
                                   static_cast<double>(p.vcpus));
    instr_weight += w;
  }

  if (instr_weight > 0.0) {
    for (double* field :
         {&a.llc_apki, &a.llc_mpki, &a.llc_miss_ratio, &a.l1d_mpki, &a.l1i_mpki,
          &a.tlb_mpki, &a.branch_mpki, &a.load_pki, &a.store_pki,
          &a.eff_mem_latency_ns, &a.td_fe, &a.td_bs, &a.td_ret, &a.td_mem,
          &a.td_core, &a.alu_util, &a.fp_util, &a.spin, &a.uops_per_instr,
          &a.prefetch_pki, &a.br_mispred_ratio}) {
      *field /= instr_weight;
    }
  }
  return a;
}

/// Writes the 45 per-level base metrics for one level into `out`.
void fill_level(const LevelAggregate& a, const ScenarioPerformance& perf,
                const MachineConfig& machine, std::string_view prefix,
                std::unordered_map<std::string, double>& out) {
  const auto set = [&](const char* base, double value) {
    out[std::string(prefix) + "." + base] = value;
  };
  const double instr_per_sec = a.mips * 1e6;
  const double ipc = a.cycles_per_sec > 0.0 ? instr_per_sec / a.cycles_per_sec : 0.0;

  set("MIPS", a.mips);
  set("IPC", ipc);
  set("CPI", ipc > 0.0 ? 1.0 / ipc : 0.0);
  set("InstrPerSec", instr_per_sec);
  set("CyclesPerSec", a.cycles_per_sec);
  set("LLC_APKI", a.llc_apki);
  set("LLC_MPKI", a.llc_mpki);
  set("LLC_MissRatio", a.llc_miss_ratio);
  set("LLC_HitRatio", 1.0 - a.llc_miss_ratio);
  set("LLC_MissesPerSec", instr_per_sec * a.llc_mpki / 1000.0);
  set("LLC_AccessesPerSec", instr_per_sec * a.llc_apki / 1000.0);
  set("LLC_Occupancy_MB", a.llc_occupancy_mb);
  set("L2_MPKI", 1.15 * a.llc_apki);
  set("L1D_MPKI", a.l1d_mpki);
  set("L1I_MPKI", a.l1i_mpki);
  set("TLB_MPKI", a.tlb_mpki);
  set("Branch_MPKI", a.branch_mpki);
  set("BranchMispredRatio", a.br_mispred_ratio);
  set("LoadPKI", a.load_pki);
  set("StorePKI", a.store_pki);
  set("MemBW_GBps", a.mem_bw_gbps);
  set("MemBW_BytesPerSec", a.mem_bw_gbps * 1e9);
  set("MemReadBW_GBps", 0.7 * a.mem_bw_gbps);
  set("MemWriteBW_GBps", 0.3 * a.mem_bw_gbps);
  set("EffMemLatency_ns", a.eff_mem_latency_ns);
  set("DRAM_Used_GB", a.dram_gb);
  set("TD_FrontendBound", a.td_fe);
  set("TD_BadSpeculation", a.td_bs);
  set("TD_Retiring", a.td_ret);
  set("TD_BackendBound", a.td_mem + a.td_core);
  set("TD_BackendMem", a.td_mem);
  set("TD_BackendCore", a.td_core);
  set("CPU_UtilFrac",
      a.busy_threads / static_cast<double>(machine.scheduling_vcpus()));
  set("VCPUsBusy", a.busy_threads);
  set("ALU_UtilFrac", a.alu_util);
  set("FP_UtilFrac", a.fp_util);
  set("SpinFrac", a.spin);
  set("Network_Mbps", a.network_mbps);
  set("Disk_IOPS", a.disk_iops);
  set("IOWaitFrac", a.disk_iops / (machine.disk_kiops * 1000.0));

  // /proc-style system counters.
  const double oversub = std::max(
      perf.busy_threads / static_cast<double>(machine.hardware_threads()) - 1.0, 0.0);
  set("ContextSwitchesPerSec",
      a.context_switches + 3000.0 * oversub * a.busy_threads);
  set("PageFaultsPerSec", a.dram_gb * 25.0);
  const double irq = a.network_mbps * 12.0 + a.disk_iops * 1.5;
  set("IRQPerSec", irq);
  set("SoftIRQPerSec", 0.6 * irq);
  set("RunQueueLen",
      std::max(perf.busy_threads - static_cast<double>(machine.hardware_threads()),
               0.0) *
          (perf.busy_threads > 0.0 ? a.busy_threads / perf.busy_threads : 0.0));

  set("UopsPerInstr", a.uops_per_instr);
  set("AvgLoadLatency_cycles",
      4.0 + a.eff_mem_latency_ns * machine.max_freq_ghz * a.llc_miss_ratio);
  set("PrefetchPerKI", a.prefetch_pki);
  set("StallCycleFrac", 1.0 - a.td_ret);
  set("DispatchStallFrac", 0.05 + 0.8 * a.td_core);
  set("MemQueueOccupancy",
      a.mem_bw_gbps / machine.total_mem_bw_gbps() * perf.mem_latency_multiplier *
          24.0);
  const double kernel =
      0.015 + (a.network_mbps * 0.9 + a.disk_iops * 0.35) /
                  (a.busy_threads * 3000.0 + 1.0);
  set("KernelTimeFrac", kernel);
  set("UserTimeFrac",
      a.busy_threads / static_cast<double>(machine.scheduling_vcpus()) *
          (1.0 - kernel));
}

}  // namespace

std::vector<double> synthesize_counters(const ScenarioPerformance& perf,
                                        const JobCatalog& catalog,
                                        const metrics::MetricCatalog& schema,
                                        CounterOptions options,
                                        std::uint64_t noise_stream) {
  const MachineConfig& machine = perf.machine;
  std::unordered_map<std::string, double> values;

  const LevelAggregate machine_agg = aggregate(perf, catalog, machine, false);
  const LevelAggregate hp_agg = aggregate(perf, catalog, machine, true);
  fill_level(machine_agg, perf, machine, "Machine", values);
  fill_level(hp_agg, perf, machine, "HP", values);

  // Machine-only metrics.
  const double total_vcpu = static_cast<double>(perf.mix.vcpus());
  const double hp_vcpu = static_cast<double>(perf.mix.hp_vcpus());
  values["Machine.TotalOccupancy_vCPU"] = total_vcpu;
  values["Machine.HPOccupancy_vCPU"] = hp_vcpu;
  values["Machine.LPOccupancy_vCPU"] = total_vcpu - hp_vcpu;
  values["Machine.FreeVCPUs"] =
      static_cast<double>(machine.scheduling_vcpus()) - total_vcpu;
  values["Machine.NumContainers"] = static_cast<double>(perf.mix.total_instances());
  values["Machine.NumHPContainers"] = static_cast<double>(perf.mix.hp_instances());
  values["Machine.NumLPContainers"] = static_cast<double>(perf.mix.lp_instances());
  values["Machine.DRAM_UtilFrac"] = machine_agg.dram_gb / machine.dram_gb;
  values["Machine.MemBW_UtilFrac"] = perf.mem_bw_utilization;
  values["Machine.MemLatencyMultiplier"] = perf.mem_latency_multiplier;
  values["Machine.NetworkUtilFrac"] = perf.network_utilization;
  values["Machine.Freq_GHz"] = machine.max_freq_ghz;
  const double cores = static_cast<double>(machine.total_cores());
  values["Machine.SMTSharedFrac"] =
      machine.smt_enabled && perf.busy_threads > cores
          ? std::min(2.0 * (perf.busy_threads - cores) / perf.busy_threads, 1.0)
          : 0.0;
  const double power = 75.0 + 145.0 * perf.cpu_utilization +
                       28.0 * std::min(perf.mem_bw_utilization, 1.2) +
                       0.3 * perf.llc_used_mb;
  values["Machine.Power_W"] = power;
  const double temperature = 34.0 + 0.11 * power;
  values["Machine.Temperature_C"] = temperature;
  values["Machine.FanSpeed_RPM"] = 1800.0 + 42.0 * temperature;

  // Per-job mix occupancy (consumed only by the opt-in §5.3 schema
  // standard_with_job_mix(); unreferenced entries are simply unused).
  for (const JobType type : all_job_types()) {
    values["Machine.Mix_" + std::string(job_code(type)) + "_Instances"] =
        static_cast<double>(perf.mix.count(type));
  }

  // Order per the schema and overlay measurement noise. Structural
  // occupancy counts stay exact — a real monitor reads them losslessly.
  stats::Rng rng(util::hash_mix(
      util::fnv1a(perf.mix.key(), util::fnv1a(machine.name, 0xC0117E45u)),
      noise_stream));

  // One jitter factor per metric family (shared by the Machine and HP views
  // of the family — they observe the same underlying phase behaviour).
  constexpr std::size_t kNumCategories = 8;
  constexpr std::size_t kNumLevels = 2;
  double family_factor[kNumLevels][kNumCategories];
  for (std::size_t cat = 0; cat < kNumCategories; ++cat) {
    const bool jitter = options.enable_noise && options.family_jitter_sigma > 0.0;
    // Shared phase component (both views observe the same machine) plus a
    // level-specific component (HP-only phases vs the whole-machine blend).
    const double shared = jitter ? options.family_jitter_sigma * rng.normal() : 0.0;
    for (std::size_t lvl = 0; lvl < kNumLevels; ++lvl) {
      const double own =
          jitter ? 0.6 * options.family_jitter_sigma * rng.normal() : 0.0;
      family_factor[lvl][cat] = std::exp(shared + own);
    }
  }

  // Sub-family latents, keyed by base metric name so the Machine and HP
  // views of a counter share the same latent (preserving their correlation).
  std::vector<double> subgroup_factor(
      static_cast<std::size_t>(std::max(options.subgroup_count, 1)), 1.0);
  if (options.enable_noise && options.subgroup_jitter_sigma > 0.0) {
    for (double& f : subgroup_factor) {
      f = std::exp(options.subgroup_jitter_sigma * rng.normal());
    }
  }

  std::vector<double> row(schema.size(), 0.0);
  for (const metrics::MetricInfo& info : schema.metrics()) {
    const auto it = values.find(info.name);
    ensure(it != values.end(),
           "synthesize_counters: schema metric not produced: " + info.name);
    double v = it->second;
    if (options.enable_noise && info.category != metrics::MetricCategory::kOccupancy) {
      v *= family_factor[info.level == metrics::MetricLevel::kHpJobs ? 1 : 0]
                        [static_cast<std::size_t>(info.category)];
      v *= subgroup_factor[util::fnv1a(info.base_name) % subgroup_factor.size()];
      if (options.measurement_noise_sigma > 0.0) {
        v *= std::exp(options.measurement_noise_sigma * rng.normal());
      }
    }
    row[info.index] = v;
  }
  return row;
}

FaultOptions FaultOptions::uniform(double rate, std::uint64_t seed) {
  ensure(rate >= 0.0 && rate <= 1.0,
         "FaultOptions::uniform: rate must be in [0, 1]");
  FaultOptions options;
  options.enabled = rate > 0.0;
  options.nan_rate = rate;
  options.stuck_rate = rate;
  options.multiplex_rate = rate;
  options.sample_drop_rate = rate;
  options.row_loss_rate = rate;
  options.seed = seed;
  return options;
}

CounterFaultModel::CounterFaultModel(FaultOptions options)
    : options_(options) {
  const auto valid_rate = [](double r) { return r >= 0.0 && r <= 1.0; };
  ensure(valid_rate(options_.nan_rate) && valid_rate(options_.stuck_rate) &&
             valid_rate(options_.multiplex_rate) &&
             valid_rate(options_.sample_drop_rate) &&
             valid_rate(options_.row_loss_rate),
         "CounterFaultModel: fault rates must be in [0, 1]");
  ensure(options_.nan_rate + options_.stuck_rate + options_.multiplex_rate <=
             1.0,
         "CounterFaultModel: per-reading fault rates must sum to <= 1");
  ensure(options_.multiplex_sigma >= 0.0,
         "CounterFaultModel: multiplex_sigma must be non-negative");
  active_ = options_.enabled &&
            (options_.nan_rate > 0.0 || options_.stuck_rate > 0.0 ||
             options_.multiplex_rate > 0.0 || options_.sample_drop_rate > 0.0 ||
             options_.row_loss_rate > 0.0);
}

std::uint64_t CounterFaultModel::stream(std::string_view scenario_key,
                                        std::uint64_t salt) const {
  return util::derive_stream(scenario_key, options_.seed, salt);
}

bool CounterFaultModel::lose_row(std::string_view scenario_key) const {
  if (!active_ || options_.row_loss_rate <= 0.0) return false;
  stats::Rng rng(stream(scenario_key, 0xB01DFACEull));
  return rng.uniform() < options_.row_loss_rate;
}

bool CounterFaultModel::drop_sample(std::string_view scenario_key,
                                    int sample_index, int attempt) const {
  if (!active_ || options_.sample_drop_rate <= 0.0) return false;
  stats::Rng rng(stream(scenario_key,
                        0xD80Dull + 7919ull * static_cast<std::uint64_t>(
                                                  sample_index) +
                            static_cast<std::uint64_t>(attempt)));
  return rng.uniform() < options_.sample_drop_rate;
}

void CounterFaultModel::corrupt(std::vector<double>& sample,
                                const std::vector<double>& last_observed,
                                std::string_view scenario_key, int sample_index,
                                int attempt) const {
  if (!active_) return;
  const double glitch_rate =
      options_.nan_rate + options_.stuck_rate + options_.multiplex_rate;
  if (glitch_rate <= 0.0) return;
  ensure(last_observed.empty() || last_observed.size() == sample.size(),
         "CounterFaultModel::corrupt: last_observed size mismatch");
  stats::Rng rng(stream(scenario_key,
                        0xC0FEull + 104729ull * static_cast<std::uint64_t>(
                                                    sample_index) +
                            static_cast<std::uint64_t>(attempt)));
  for (std::size_t i = 0; i < sample.size(); ++i) {
    // One uniform draw per metric partitioned across the fault classes keeps
    // the stream layout stable when individual rates change.
    const double u = rng.uniform();
    const double flavour = rng.uniform();
    if (u < options_.nan_rate) {
      sample[i] = flavour < 0.5
                      ? std::numeric_limits<double>::quiet_NaN()
                      : (flavour < 0.75
                             ? std::numeric_limits<double>::infinity()
                             : -std::numeric_limits<double>::infinity());
    } else if (u < options_.nan_rate + options_.stuck_rate) {
      if (!last_observed.empty() && std::isfinite(last_observed[i])) {
        sample[i] = last_observed[i];
      }
    } else if (u < glitch_rate) {
      sample[i] *= std::exp(options_.multiplex_sigma *
                            (2.0 * flavour - 1.0) * 1.7320508075688772);
    }
  }
}

}  // namespace flare::dcsim
