#include "dcsim/submission.hpp"

#include <map>
#include <queue>
#include <string>

#include "stats/rng.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace flare::dcsim {
namespace {

struct Departure {
  double time = 0.0;
  std::uint64_t seq = 0;  ///< tie-break for determinism
  int machine_id = 0;
  JobType type = JobType::kDataAnalytics;

  [[nodiscard]] bool operator>(const Departure& other) const {
    if (time != other.time) return time > other.time;
    return seq > other.seq;
  }
};

/// Accumulates observed machine-time per distinct (mix, dynamics-tag) row.
class ScenarioRecorder {
 public:
  /// Credits `mix` with `duration` hours of observation under the given
  /// dynamics tags. The dedup key extends the mix key only for non-default
  /// tags, so stationary runs record exactly the historical scenario rows —
  /// while a mix observed both inside and outside an anomaly episode (or on
  /// upgraded vs. baseline machines) becomes distinct rows, which is what
  /// lets the analysis see the episode as a coherent group.
  void observe(const JobMix& mix, double duration, int profile_version = 1,
               double profile_shift = 0.0,
               DynamicsPlan::AnomalyTag anomaly = {}) {
    if (duration <= 0.0 || mix.empty()) return;
    if (mix.hp_instances() == 0) return;  // performance is defined on HP jobs
    std::string key = mix.key();
    if (profile_version != 1) key += "|v" + std::to_string(profile_version);
    if (anomaly.episode != 0) key += "|a" + std::to_string(anomaly.episode);
    auto [it, inserted] = index_.try_emplace(key, scenarios_.size());
    if (inserted) {
      ColocationScenario s;
      s.id = scenarios_.size();
      s.mix = mix;
      s.observation_weight = duration;
      s.profile_version = profile_version;
      s.profile_shift = profile_version != 1 ? profile_shift : 0.0;
      s.anomaly_episode = anomaly.episode;
      s.anomaly_intensity = anomaly.episode != 0 ? anomaly.intensity : 0.0;
      scenarios_.push_back(std::move(s));
    } else {
      scenarios_[it->second].observation_weight += duration;
    }
  }

  [[nodiscard]] std::size_t distinct() const { return scenarios_.size(); }
  [[nodiscard]] std::vector<ColocationScenario> take() { return std::move(scenarios_); }

 private:
  std::map<std::string, std::size_t> index_;
  std::vector<ColocationScenario> scenarios_;
};

std::vector<double> default_hp_weights() {
  // Mildly skewed: serving-tier services outnumber analytics in production.
  return {1.0, 1.6, 1.2, 0.8, 0.9, 1.1, 1.3, 1.5};
}

std::vector<double> default_lp_weights() { return {1.0, 0.8, 0.9, 1.0, 0.9, 1.1}; }

}  // namespace

ScenarioSet generate_scenario_set(const SubmissionConfig& config,
                                  const MachineConfig& machine,
                                  const JobCatalog& catalog, SubmissionStats* stats) {
  ensure(config.num_machines > 0, "generate_scenario_set: need machines");
  ensure(config.arrivals_per_hour > 0.0, "generate_scenario_set: need arrivals");
  ensure(config.hp_fraction >= 0.0 && config.hp_fraction <= 1.0,
         "generate_scenario_set: hp_fraction must be in [0, 1]");
  ensure(config.max_instances_per_submission >= 1,
         "generate_scenario_set: max_instances_per_submission must be >= 1");

  const std::vector<double> hp_weights = config.hp_type_weights.empty()
                                             ? default_hp_weights()
                                             : config.hp_type_weights;
  const std::vector<double> lp_weights = config.lp_type_weights.empty()
                                             ? default_lp_weights()
                                             : config.lp_type_weights;
  ensure(hp_weights.size() == kNumHpJobTypes,
         "generate_scenario_set: hp_type_weights must have 8 entries");
  ensure(lp_weights.size() == kNumJobTypes - kNumHpJobTypes,
         "generate_scenario_set: lp_type_weights must have 6 entries");

  stats::Rng rng(config.seed);
  Scheduler scheduler(machine, config.num_machines, catalog, config.policy);
  ScenarioRecorder recorder;

  // Non-stationarity plan: episode schedules come from a dedicated RNG, so
  // with every generator disabled the main arrival stream below is
  // bit-identical to the stationary simulator.
  const DynamicsPlan plan(config.dynamics, config.num_machines,
                          config.max_sim_hours);
  const bool dynamic = plan.active();
  const auto abs_hour = [&config](double t) {
    return config.dynamics.start_hour + t;
  };

  // Per-machine observation bookkeeping: when a machine's mix changes we
  // credit the old mix with the elapsed interval, tagged with the dynamics
  // state at the interval's start.
  std::vector<double> interval_start(static_cast<std::size_t>(config.num_machines), 0.0);
  std::vector<JobMix> current_mix(static_cast<std::size_t>(config.num_machines));
  std::vector<int> interval_version(static_cast<std::size_t>(config.num_machines), 1);
  std::vector<DynamicsPlan::AnomalyTag> interval_anomaly(
      static_cast<std::size_t>(config.num_machines));

  auto on_mix_change = [&](int machine_id, double now) {
    const auto idx = static_cast<std::size_t>(machine_id);
    recorder.observe(current_mix[idx], now - interval_start[idx],
                     interval_version[idx], plan.profile_shift(),
                     interval_anomaly[idx]);
    current_mix[idx] = scheduler.machine(machine_id).mix;
    interval_start[idx] = now;
    if (dynamic) {
      interval_version[idx] = plan.profile_version(abs_hour(now), machine_id);
      interval_anomaly[idx] = plan.anomaly_at(abs_hour(now), machine_id);
    }
  };

  std::priority_queue<Departure, std::vector<Departure>, std::greater<>> departures;
  std::uint64_t seq = 0;
  double now = 0.0;
  double arrival_rate = config.arrivals_per_hour;
  if (dynamic) arrival_rate *= plan.arrival_factor(abs_hour(0.0));
  double next_arrival = rng.exponential(arrival_rate);
  std::size_t submissions = 0;
  double occupancy_time_integral = 0.0;  // ∫ busy_vcpus dt
  double last_event_time = 0.0;

  const auto account_occupancy = [&](double t) {
    int busy = 0;
    for (const MachineState& m : scheduler.machines()) busy += m.used_vcpus();
    occupancy_time_integral += static_cast<double>(busy) * (t - last_event_time);
    last_event_time = t;
  };

  while (recorder.distinct() < config.target_distinct_scenarios &&
         now < config.max_sim_hours) {
    const bool depart_first =
        !departures.empty() && departures.top().time <= next_arrival;
    if (depart_first) {
      const Departure d = departures.top();
      departures.pop();
      account_occupancy(d.time);
      now = d.time;
      scheduler.remove(d.machine_id, d.type);
      on_mix_change(d.machine_id, now);
      continue;
    }

    account_occupancy(next_arrival);
    now = next_arrival;
    arrival_rate = config.arrivals_per_hour;
    if (dynamic) arrival_rate *= plan.arrival_factor(abs_hour(now));
    next_arrival = now + rng.exponential(arrival_rate);
    ++submissions;

    // Draw the job: priority class, type, scale-out width, duration — the
    // class and duration modulated by the diurnal cycle / flash short-job
    // skew when dynamics run (both collapse to the stationary constants
    // otherwise, keeping the draw stream bit-identical).
    double hp_fraction = config.hp_fraction;
    double mean_extra = config.mean_extra_duration_hours;
    if (dynamic) {
      hp_fraction = plan.hp_fraction(abs_hour(now), config.hp_fraction);
      mean_extra *= plan.duration_scale(abs_hour(now));
    }
    const bool hp = rng.uniform() < hp_fraction;
    const JobType type =
        hp ? static_cast<JobType>(rng.weighted_index(hp_weights))
           : static_cast<JobType>(kNumHpJobTypes + rng.weighted_index(lp_weights));
    const int instances = static_cast<int>(rng.uniform_int(
        1, static_cast<std::uint64_t>(config.max_instances_per_submission)));
    const double duration =
        config.min_duration_hours + rng.exponential(1.0 / mean_extra);

    for (int i = 0; i < instances; ++i) {
      const std::optional<int> placed = scheduler.place(type);
      if (!placed.has_value()) break;  // denial: drop the remaining copies
      on_mix_change(*placed, now);
      departures.push(Departure{now + duration, seq++, *placed, type});
    }
  }

  // Close the books on every machine's final interval.
  for (int m = 0; m < config.num_machines; ++m) {
    const auto idx = static_cast<std::size_t>(m);
    recorder.observe(current_mix[idx], now - interval_start[idx],
                     interval_version[idx], plan.profile_shift(),
                     interval_anomaly[idx]);
  }
  account_occupancy(now);

  if (stats != nullptr) {
    stats->submissions = submissions;
    stats->placements = scheduler.placements();
    stats->denials = scheduler.denials();
    stats->simulated_hours = now;
    const double capacity =
        static_cast<double>(config.num_machines * machine.scheduling_vcpus());
    stats->mean_cpu_occupancy =
        now > 0.0 ? occupancy_time_integral / (capacity * now) : 0.0;
  }

  ScenarioSet set;
  set.machine_type = machine.name;
  set.scenarios = recorder.take();
  // Every row carries its shape id (the machine name): the trace format
  // persists the per-row tag, and the sharded data plane routes on it.
  for (ColocationScenario& s : set.scenarios) s.machine_type = machine.name;
  return set;
}

ScenarioSet generate_dynamics_batch(const SubmissionConfig& config,
                                    const MachineConfig& machine,
                                    const WorkloadDynamics& dynamics, int index,
                                    double window_hours,
                                    std::size_t target_scenarios,
                                    const JobCatalog& catalog,
                                    SubmissionStats* stats) {
  ensure(index >= 0, "generate_dynamics_batch: index must be >= 0");
  ensure(window_hours > 0.0, "generate_dynamics_batch: need a positive window");
  ensure(target_scenarios > 0, "generate_dynamics_batch: need a target");
  SubmissionConfig windowed = config;
  windowed.dynamics = dynamics;
  // Episode schedules key off dynamics.seed and absolute time, so advancing
  // start_hour continues the same timeline; the arrival stream decorrelates
  // per window (new users arrive, the dynamics persist).
  windowed.dynamics.start_hour =
      dynamics.start_hour + static_cast<double>(index) * window_hours;
  windowed.seed =
      util::hash_mix(config.seed, static_cast<std::uint64_t>(index) + 1);
  windowed.max_sim_hours = window_hours;
  windowed.target_distinct_scenarios = target_scenarios;
  return generate_scenario_set(windowed, machine, catalog, stats);
}

}  // namespace flare::dcsim
