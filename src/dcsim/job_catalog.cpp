#include "dcsim/job_catalog.hpp"

#include "util/error.hpp"

namespace flare::dcsim {
namespace {

JobProfile make(JobType type, std::string configuration, double dram_gb,
                double cpu_utilization, double base_cpi, double frontend_bound,
                double bad_speculation, double llc_apki, double mrc_half_mb,
                double mrc_steepness, double min_miss_ratio, double working_set_mb,
                double mlp, double smt_yield, double branch_mpki, double l1i_mpki,
                double network_mbps, double disk_iops) {
  JobProfile p;
  p.type = type;
  p.high_priority = is_high_priority(type);
  p.configuration = std::move(configuration);
  p.vcpus = 4;
  p.dram_gb = dram_gb;
  p.cpu_utilization = cpu_utilization;
  p.base_cpi = base_cpi;
  p.frontend_bound = frontend_bound;
  p.bad_speculation = bad_speculation;
  p.llc_apki = llc_apki;
  p.mrc_half_mb = mrc_half_mb;
  p.mrc_steepness = mrc_steepness;
  p.min_miss_ratio = min_miss_ratio;
  p.working_set_mb = working_set_mb;
  p.mlp = mlp;
  p.smt_yield = smt_yield;
  p.branch_mpki = branch_mpki;
  p.l1i_mpki = l1i_mpki;
  p.network_mbps = network_mbps;
  p.disk_iops = disk_iops;
  return p;
}

}  // namespace

JobCatalog::JobCatalog() {
  using JT = JobType;
  // HP services (CloudSuite). Calibration notes:
  //  - WSC/WSV: large instruction footprints -> high frontend_bound & l1i_mpki.
  //  - GA/IA: Spark executors pin their cores, big LLC appetite, high MLP.
  //  - DC: memcached — random access over a 4 GB value store gives a flat
  //    miss-ratio curve (high floor) and heavy network traffic at low CPU.
  //  - MS: Nginx streaming — network-dominated, small cache footprint.
  profiles_[job_index(JT::kDataAnalytics)] = make(
      JT::kDataAnalytics,
      "Apache Hadoop with Mahout; 4 maps, 4 reduces, TrainNB phase; "
      "1 vCPU & 4GB DRAM per mapper/reducer",
      16.0, 0.90, 0.90, 0.10, 0.06, 18.0, 6.0, 1.0, 0.12, 28.0, 2.5, 0.62, 6.0,
      8.0, 40.0, 150.0);
  profiles_[job_index(JT::kDataCaching)] = make(
      JT::kDataCaching,
      "memcached; 4 threads, 4GB working set, target QPS 100K",
      4.5, 0.75, 1.10, 0.18, 0.05, 22.0, 12.0, 0.7, 0.35, 40.0, 3.5, 0.68, 4.0,
      14.0, 600.0, 20.0);
  profiles_[job_index(JT::kDataServing)] = make(
      JT::kDataServing,
      "Apache Cassandra; 20 threads, 16GB DRAM",
      16.0, 0.85, 1.00, 0.15, 0.06, 20.0, 10.0, 0.8, 0.25, 36.0, 3.0, 0.64, 5.0,
      12.0, 300.0, 800.0);
  profiles_[job_index(JT::kGraphAnalytics)] = make(
      JT::kGraphAnalytics,
      "Apache Spark; 4 vCPU & 4GB DRAM for executor",
      4.0, 0.95, 0.80, 0.07, 0.05, 30.0, 16.0, 0.9, 0.20, 48.0, 4.5, 0.60, 4.0,
      4.0, 80.0, 60.0);
  profiles_[job_index(JT::kInMemoryAnalytics)] = make(
      JT::kInMemoryAnalytics,
      "Apache Spark; 4 vCPU & 4GB DRAM for executor",
      4.0, 0.92, 0.75, 0.08, 0.06, 24.0, 10.0, 1.0, 0.15, 34.0, 4.0, 0.61, 5.0,
      5.0, 60.0, 40.0);
  profiles_[job_index(JT::kMediaStreaming)] = make(
      JT::kMediaStreaming,
      "Nginx; 4 threads, 50 connections, dataset scaled",
      3.0, 0.60, 1.30, 0.22, 0.04, 8.0, 2.0, 0.8, 0.30, 10.0, 2.0, 0.70, 3.0,
      10.0, 2000.0, 400.0);
  profiles_[job_index(JT::kWebSearch)] = make(
      JT::kWebSearch,
      "Apache Solr; 12GB DRAM, Tomcat manages # threads",
      12.0, 0.85, 1.20, 0.28, 0.07, 14.0, 8.0, 0.9, 0.15, 26.0, 2.2, 0.66, 7.0,
      22.0, 150.0, 100.0);
  profiles_[job_index(JT::kWebServing)] = make(
      JT::kWebServing,
      "MySQL, memcached, Nginx, PHP; default MySQL/Nginx with 2GB memory; "
      "2 threads & 2GB DRAM for memcached; 5 threads for PHP",
      6.0, 0.75, 1.40, 0.30, 0.08, 12.0, 4.0, 0.8, 0.20, 18.0, 1.8, 0.69, 9.0,
      25.0, 250.0, 120.0);

  // LP batch (SPEC CPU2006, four copies per 4-vCPU container).
  profiles_[job_index(JT::kLpPerlbench)] = make(
      JT::kLpPerlbench, "Four copies of 400.perlbench in a 4 vCPU container",
      1.5, 1.0, 0.65, 0.12, 0.09, 6.0, 1.5, 1.2, 0.05, 4.0, 1.8, 0.64, 11.0, 6.0,
      0.0, 5.0);
  profiles_[job_index(JT::kLpSjeng)] = make(
      JT::kLpSjeng, "Four copies of 458.sjeng in a 4 vCPU container",
      0.7, 1.0, 0.70, 0.08, 0.12, 3.0, 0.8, 1.2, 0.05, 2.0, 1.5, 0.63, 14.0, 1.0,
      0.0, 2.0);
  profiles_[job_index(JT::kLpLibquantum)] = make(
      JT::kLpLibquantum, "Four copies of 462.libquantum in a 4 vCPU container",
      0.4, 1.0, 0.55, 0.02, 0.02, 35.0, 20.0, 0.5, 0.75, 16.0, 8.0, 0.55, 2.0,
      0.5, 0.0, 2.0);
  profiles_[job_index(JT::kLpXalancbmk)] = make(
      JT::kLpXalancbmk, "Four copies of 483.xalancbmk in a 4 vCPU container",
      1.7, 1.0, 0.80, 0.15, 0.07, 16.0, 5.0, 1.0, 0.10, 10.0, 2.5, 0.62, 8.0,
      9.0, 0.0, 3.0);
  profiles_[job_index(JT::kLpOmnetpp)] = make(
      JT::kLpOmnetpp, "Four copies of 471.omnetpp in a 4 vCPU container",
      0.7, 1.0, 0.90, 0.10, 0.06, 21.0, 9.0, 0.8, 0.15, 14.0, 1.6, 0.60, 6.0,
      3.0, 0.0, 2.0);
  profiles_[job_index(JT::kLpMcf)] = make(
      JT::kLpMcf, "Four copies of 429.mcf in a 4 vCPU container",
      6.8, 1.0, 0.85, 0.03, 0.05, 45.0, 14.0, 0.7, 0.30, 36.0, 2.8, 0.55, 9.0,
      0.5, 0.0, 2.0);

  // Nominal request service times for the latency-sensitive services
  // (uncontended, baseline machine). Batch/analytics jobs keep 0 (no SLO).
  profiles_[job_index(JT::kDataCaching)].base_service_ms = 0.3;    // memcached
  profiles_[job_index(JT::kDataServing)].base_service_ms = 6.0;    // Cassandra
  profiles_[job_index(JT::kMediaStreaming)].base_service_ms = 12.0;
  profiles_[job_index(JT::kWebSearch)].base_service_ms = 25.0;
  profiles_[job_index(JT::kWebServing)].base_service_ms = 40.0;

  // Floating-point mix: the Spark analytics executors and libquantum are the
  // FP-heavy jobs of the population.
  profiles_[job_index(JT::kGraphAnalytics)].fp_fraction = 0.35;
  profiles_[job_index(JT::kInMemoryAnalytics)].fp_fraction = 0.40;
  profiles_[job_index(JT::kDataAnalytics)].fp_fraction = 0.25;
  profiles_[job_index(JT::kLpLibquantum)].fp_fraction = 0.45;
  profiles_[job_index(JT::kLpMcf)].fp_fraction = 0.02;
  profiles_[job_index(JT::kLpSjeng)].fp_fraction = 0.01;
}

const JobProfile& JobCatalog::profile(JobType type) const {
  return profiles_[job_index(type)];
}

void JobCatalog::set_profile(const JobProfile& profile) {
  profiles_[job_index(profile.type)] = profile;
}

const JobCatalog& default_job_catalog() {
  static const JobCatalog kCatalog;
  return kCatalog;
}

}  // namespace flare::dcsim
