// Testbed-side fault injection for the replay plane — the mirror of
// CounterFaultModel (dcsim/counters.hpp) on the opposite end of the pipeline.
// The Profiler's faults corrupt what the datacenter *observes*; these corrupt
// what the load-testing testbed *reconstructs*: replays hang past their
// deadline, testbed runs crash and are lost, impact readings come back with a
// transient noise spike or stuck/invalid (NaN / absurd) values, and whole
// testbed machines drop out for the duration of a campaign. All anomaly
// classes are documented for co-located datacenter workloads (Ren et al.,
// Alibaba cluster analysis); everything is off by default so the clean replay
// path — and every golden FeatureEstimate — stays bit-identical.
#pragma once

#include <cstdint>
#include <string_view>

namespace flare::dcsim {

/// Deterministic replay-fault knobs. Per-attempt rates are probabilities in
/// [0, 1] and mutually exclusive per attempt (they partition one uniform
/// draw, so streams stay layout-stable when individual rates change).
struct ReplayFaultOptions {
  bool enabled = false;
  /// Per attempt: the replay wedges (testbed livelock, overloaded antagonist)
  /// and only the Replayer's deadline watchdog ends it. The run is lost and
  /// the full deadline is billed.
  double hang_rate = 0.0;
  /// Per attempt: the testbed crashes mid-run (node reboot, OOM-kill); the
  /// run is lost after a fraction of the nominal replay time.
  double crash_rate = 0.0;
  /// Per attempt: the run completes but the impact reading is unusable —
  /// NaN, or a wildly implausible value (sign-flipped / off-scale) that the
  /// Replayer's range validation rejects. Models a stuck measurement harness.
  double invalid_rate = 0.0;
  /// Per attempt: transient measurement noise spike — the reading is finite
  /// and in range but perturbed by `noise_spike_pp` × N(0,1) percentage
  /// points. Only caught statistically (the CI-gated repeat measurement).
  double noise_spike_rate = 0.0;
  double noise_spike_pp = 3.0;
  /// Per scenario: the testbed machine hosting this reconstruction is gone
  /// for good (decommissioned, partitioned). No retry helps; the estimator
  /// must promote a fallback representative.
  double machine_loss_rate = 0.0;
  /// Replay-fault streams are seeded independently of both the measurement
  /// noise streams and the counter-fault streams, so the same replay fault
  /// pattern can overlay any profiling run.
  std::uint64_t seed = 0x5EB1A7ull;

  /// All five fault classes at the same `rate` (spike magnitude at default).
  [[nodiscard]] static ReplayFaultOptions uniform(double rate,
                                                  std::uint64_t seed = 0x5EB1A7ull);
};

/// What the fault model decided for one replay attempt.
enum class ReplayFaultKind : unsigned char {
  kNone,            ///< attempt proceeds cleanly
  kHang,            ///< run exceeds the deadline; watchdog kills it
  kCrash,           ///< run lost partway through
  kInvalidReading,  ///< reading completes but is NaN / off-scale
  kNoiseSpike,      ///< reading completes, perturbed by a noise spike
};

struct ReplayAttemptFault {
  ReplayFaultKind kind = ReplayFaultKind::kNone;
  /// kHang: duration multiplier over the nominal replay time (always large
  /// enough to trip any deadline ≥ the nominal time). kCrash: fraction of the
  /// nominal time burned before the run died. kInvalidReading /
  /// kNoiseSpike: the corrupted reading offset — see corrupt_reading().
  double magnitude = 0.0;
};

/// Seeded fault injector for the Replayer's attempt loop. Every decision is a
/// pure function of (options.seed, scenario key, feature fingerprint, attempt
/// index) — mirroring the CounterFaultModel stream discipline — so replay
/// fault patterns are bit-reproducible across runs, retries, and thread
/// schedules, and independent per (scenario × feature × attempt).
class ReplayFaultModel {
 public:
  ReplayFaultModel() = default;
  explicit ReplayFaultModel(ReplayFaultOptions options);

  /// False when injection is disabled or every rate is zero; the Replayer
  /// skips all retry/CI bookkeeping in that case, keeping the clean path
  /// bit-identical.
  [[nodiscard]] bool active() const { return active_; }

  /// Persistent testbed-machine loss: every attempt at reconstructing this
  /// scenario fails for the whole campaign.
  [[nodiscard]] bool lose_machine(std::string_view scenario_key) const;

  /// Per-attempt fault decision (mutually exclusive classes, one partitioned
  /// uniform draw). `attempt` is 0-based.
  [[nodiscard]] ReplayAttemptFault attempt_fault(std::string_view scenario_key,
                                                 std::uint64_t feature_fingerprint,
                                                 int attempt) const;

  /// Applies a kInvalidReading / kNoiseSpike fault to a clean impact reading.
  /// kNone and the run-lost kinds return the reading unchanged.
  [[nodiscard]] double corrupt_reading(double clean_impact_pct,
                                       const ReplayAttemptFault& fault) const;

  [[nodiscard]] const ReplayFaultOptions& options() const { return options_; }

 private:
  [[nodiscard]] std::uint64_t stream(std::string_view scenario_key,
                                     std::uint64_t salt) const;

  ReplayFaultOptions options_{};
  bool active_ = false;
};

}  // namespace flare::dcsim
