// Raw-counter synthesis: turns an evaluated scenario into the two-level raw
// metric row of the standard catalog — the simulated equivalent of the
// Profiler daemon reading perf counters, top-down events, and /proc.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "dcsim/interference_model.hpp"
#include "metrics/metric_catalog.hpp"

namespace flare::dcsim {

struct CounterOptions {
  /// Per-metric multiplicative measurement noise (σ of log); models sensor
  /// and sampling jitter on top of the performance model's own noise.
  double measurement_noise_sigma = 0.025;
  /// Per-scenario, per-metric-family jitter (σ of log): workload phases and
  /// input dependence move whole metric families (branching, i-cache, TLB,
  /// I/O, ...) together but independently of each other. This is what gives
  /// real monitoring data its many weakly-coupled dimensions — without it a
  /// handful of PCs would explain everything, which no datacenter shows.
  double family_jitter_sigma = 0.08;
  /// Finer-grained latent phase factors: small groups of related counters
  /// (hash-assigned) share a per-scenario factor below the family level —
  /// e.g. TLB behaviour moves with the page-walk phase, not with every cache
  /// counter. Gives the PCA spectrum its realistic long middle tail.
  double subgroup_jitter_sigma = 0.05;
  int subgroup_count = 14;
  bool enable_noise = true;
};

/// Synthesises the catalog-ordered raw metric vector for one evaluated
/// scenario. Deterministic per (performance, noise_stream).
[[nodiscard]] std::vector<double> synthesize_counters(
    const ScenarioPerformance& performance, const JobCatalog& catalog,
    const metrics::MetricCatalog& schema, CounterOptions options = {},
    std::uint64_t noise_stream = 0);

/// Deterministic counter-fault injection knobs. All rates are per-draw
/// probabilities in [0, 1]; everything is off by default so the clean
/// profiling path (and the AnalyzerGolden hash) is untouched.
struct FaultOptions {
  bool enabled = false;
  /// Per metric reading: replace the value with NaN or ±Inf (glitched MSR
  /// read, overflowed fixed counter).
  double nan_rate = 0.0;
  /// Per metric reading: report the previous sample's value again (counter
  /// stuck / not re-armed). The reading stays finite, so this class is only
  /// caught statistically — it models silent skew, not hard failure.
  double stuck_rate = 0.0;
  /// Per metric reading: event-multiplexing extrapolation error — the value
  /// is scaled by a log-uniform factor with log-stddev `multiplex_sigma`
  /// (uniform rather than normal so the per-metric draw count never depends
  /// on fault outcomes, keeping streams layout-stable).
  double multiplex_rate = 0.0;
  double multiplex_sigma = 0.35;
  /// Per sample: the whole sample never arrives (daemon descheduled, ring
  /// buffer overrun). The profiler retries with a fresh substream.
  double sample_drop_rate = 0.0;
  /// Per scenario row: the machine never reports (agent crash, network
  /// partition). No retry can help; the row is quarantined.
  double row_loss_rate = 0.0;
  /// Fault streams are seeded independently of the noise streams so the same
  /// fault pattern can be replayed over different measurement noise.
  std::uint64_t seed = 0xFA017ull;

  /// All fault classes at the same `rate` (multiplex sigma kept at default).
  [[nodiscard]] static FaultOptions uniform(double rate,
                                            std::uint64_t seed = 0xFA017ull);
};

/// Seeded fault injector layered over `synthesize_counters` output. Every
/// decision is a pure function of (options.seed, scenario key, sample index,
/// retry attempt, metric index) — mirroring the noise-stream discipline — so
/// fault patterns are bit-reproducible across runs and thread schedules.
class CounterFaultModel {
 public:
  CounterFaultModel() = default;
  explicit CounterFaultModel(FaultOptions options);

  /// False when injection is disabled or every rate is zero; callers skip all
  /// fault bookkeeping in that case, keeping the clean path bit-identical.
  [[nodiscard]] bool active() const { return active_; }

  /// Whole-row loss: the scenario's machine never reports this round.
  [[nodiscard]] bool lose_row(std::string_view scenario_key) const;

  /// Whole-sample drop for a given retry attempt (attempt 0 = first try).
  [[nodiscard]] bool drop_sample(std::string_view scenario_key,
                                 int sample_index, int attempt) const;

  /// Applies per-metric glitches in place. `last_observed` is the most recent
  /// prior reading per metric (empty on the first sample — stuck-at faults
  /// need something to stick to and are skipped without it).
  void corrupt(std::vector<double>& sample,
               const std::vector<double>& last_observed,
               std::string_view scenario_key, int sample_index,
               int attempt) const;

  [[nodiscard]] const FaultOptions& options() const { return options_; }

 private:
  [[nodiscard]] std::uint64_t stream(std::string_view scenario_key,
                                     std::uint64_t salt) const;

  FaultOptions options_{};
  bool active_ = false;
};

}  // namespace flare::dcsim
