// Raw-counter synthesis: turns an evaluated scenario into the two-level raw
// metric row of the standard catalog — the simulated equivalent of the
// Profiler daemon reading perf counters, top-down events, and /proc.
#pragma once

#include <cstdint>
#include <vector>

#include "dcsim/interference_model.hpp"
#include "metrics/metric_catalog.hpp"

namespace flare::dcsim {

struct CounterOptions {
  /// Per-metric multiplicative measurement noise (σ of log); models sensor
  /// and sampling jitter on top of the performance model's own noise.
  double measurement_noise_sigma = 0.025;
  /// Per-scenario, per-metric-family jitter (σ of log): workload phases and
  /// input dependence move whole metric families (branching, i-cache, TLB,
  /// I/O, ...) together but independently of each other. This is what gives
  /// real monitoring data its many weakly-coupled dimensions — without it a
  /// handful of PCs would explain everything, which no datacenter shows.
  double family_jitter_sigma = 0.08;
  /// Finer-grained latent phase factors: small groups of related counters
  /// (hash-assigned) share a per-scenario factor below the family level —
  /// e.g. TLB behaviour moves with the page-walk phase, not with every cache
  /// counter. Gives the PCA spectrum its realistic long middle tail.
  double subgroup_jitter_sigma = 0.05;
  int subgroup_count = 14;
  bool enable_noise = true;
};

/// Synthesises the catalog-ordered raw metric vector for one evaluated
/// scenario. Deterministic per (performance, noise_stream).
[[nodiscard]] std::vector<double> synthesize_counters(
    const ScenarioPerformance& performance, const JobCatalog& catalog,
    const metrics::MetricCatalog& schema, CounterOptions options = {},
    std::uint64_t noise_stream = 0);

}  // namespace flare::dcsim
