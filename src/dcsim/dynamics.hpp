// Non-stationary fleet dynamics (DESIGN.md §17): a seeded, composable layer
// over the §5.1 job-submission simulation that turns the stationary scenario
// stream into the regimes real datacenters exhibit —
//
//   * diurnal    — sinusoidal arrival-rate and job-mix (HP share) cycles;
//   * flash      — Poisson-triggered arrival spikes with short-job skew;
//   * upgrade    — a rolling software upgrade: a configurable fraction of
//                  machines migrates to version-2 job profiles (shifted
//                  counter behaviours) once the migration hour passes;
//   * anomaly    — Alibaba-style co-location interference episodes that
//                  corrupt a *cluster-coherent* subset of rows (one episode =
//                  one machine subset, one shared distortion direction), not
//                  i.i.d. noise.
//
// Determinism contract: with every generator disabled (the default) the
// submission loop consumes the exact same RNG stream as before this layer
// existed — archived traces and the analyzer golden hash stay bit-identical.
// Enabled generators draw episode schedules from a *separate* RNG seeded
// only by WorkloadDynamics::seed, so the same dynamics replay identically
// across streaming batch windows that advance `start_hour`.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dcsim/job_profile.hpp"
#include "dcsim/scenario.hpp"
#include "metrics/metric_catalog.hpp"

namespace flare::dcsim {

/// Sinusoidal load cycle: arrival rate × (1 + A·sin(2π(t−phase)/period)),
/// HP-share modulated with the same phase.
struct DiurnalOptions {
  bool enabled = false;
  std::string shape;  ///< restrict to one machine shape ("" = every shape)
  double period_hours = 24.0;
  /// Relative swing of the arrival rate (0.4 → ±40%); in [0, 1).
  double arrival_amplitude = 0.3;
  /// Absolute swing of the HP submission fraction (clamped into [0, 1]).
  double hp_amplitude = 0.0;
  double phase_hours = 0.0;
};

/// Poisson-triggered arrival spikes with short-job skew.
struct FlashCrowdOptions {
  bool enabled = false;
  std::string shape;
  double episodes_per_khour = 2.0;  ///< expected episodes per 1000 sim-hours
  double duration_hours = 2.0;
  double arrival_multiplier = 4.0;  ///< arrival-rate factor inside an episode
  /// Mean extra-duration multiplier inside an episode (<1 = short-job skew).
  double short_job_factor = 0.35;
};

/// Rolling software upgrade: from `at_hours` on, the first
/// round(migrated_fraction × num_machines) machines submit version-2 job
/// profiles whose counters shift by `shift` in log-scale (see
/// apply_dynamics_overlay) — a sustained behaviour change the pipeline must
/// refit for, exactly once.
struct RollingUpgradeOptions {
  bool enabled = false;
  std::string shape;
  double at_hours = 0.0;
  double migrated_fraction = 0.5;  ///< in [0, 1]
  /// Log-scale counter-shift magnitude of the version-2 profiles.
  double shift = 0.25;
};

/// Anomalous co-location interference episodes: each episode picks a machine
/// subset (machine_fraction) and corrupts every scenario row observed on it
/// while the episode runs, all rows sharing one distortion direction per
/// metric — the cluster-coherent outlier structure the episode quarantine
/// must fence as a unit.
struct AnomalyOptions {
  bool enabled = false;
  std::string shape;
  double episodes_per_khour = 1.0;
  double duration_hours = 4.0;
  /// Log-scale corruption magnitude applied to affected rows' counters.
  double intensity = 1.0;
  double machine_fraction = 0.5;  ///< in (0, 1]
};

/// The composable non-stationarity layer carried on SubmissionConfig. All
/// generators default to disabled; `any()` false means the submission loop is
/// bit-identical to the stationary simulator.
struct WorkloadDynamics {
  /// Seeds the episode schedules (flash/anomaly) and nothing else — the
  /// arrival stream keeps SubmissionConfig::seed, so batches windowed over
  /// the same dynamics replay the same absolute-time episode timeline.
  std::uint64_t seed = 0xD15EA5Eull;
  /// Absolute simulation hour this run starts at: streaming batch windows
  /// advance it so diurnal phase, upgrade cutover, and episode schedules
  /// continue across batches instead of restarting.
  double start_hour = 0.0;

  DiurnalOptions diurnal;
  FlashCrowdOptions flash;
  RollingUpgradeOptions upgrade;
  AnomalyOptions anomaly;

  /// Any generator enabled?
  [[nodiscard]] bool any() const;
  /// Copy with every generator scoped to a different shape disabled — what
  /// generate_fleet_scenario_set hands each shape's submission loop.
  [[nodiscard]] WorkloadDynamics for_shape(std::string_view shape) const;
  /// The distinct non-empty shape scopes named by enabled generators (for
  /// CLI validation against the fleet's shape table).
  [[nodiscard]] std::vector<std::string> shape_scopes() const;
};

/// Parses a `--dynamics` spec: comma-separated generator entries, each
/// `name[:key=value...]` with name ∈ {diurnal, flash, upgrade, anomaly}.
/// Keys: common `shape=`; diurnal `period= amp= hp_amp= phase=`; flash
/// `rate= dur= mult= short=`; upgrade `at= frac= shift=`; anomaly
/// `rate= dur= intensity= frac=`. Throws ParseError naming the offending
/// entry/token on unknown generators or keys, malformed numbers, duplicate
/// entries, and out-of-range values.
[[nodiscard]] WorkloadDynamics parse_dynamics_spec(std::string_view spec);

/// Runtime form of one submission run's dynamics: episode schedules are
/// precomputed (from WorkloadDynamics::seed only) up to
/// `start_hour + horizon_hours`, so factor lookups are draw-free and the
/// main arrival RNG stream is untouched. All times are absolute hours.
class DynamicsPlan {
 public:
  DynamicsPlan(const WorkloadDynamics& dynamics, int num_machines,
               double horizon_hours);

  [[nodiscard]] bool active() const { return active_; }
  /// Multiplier on the base arrival rate at `abs_hour` (diurnal × flash).
  [[nodiscard]] double arrival_factor(double abs_hour) const;
  /// HP submission fraction at `abs_hour` given the stationary `base`.
  [[nodiscard]] double hp_fraction(double abs_hour, double base) const;
  /// Multiplier on the mean extra job duration (flash short-job skew).
  [[nodiscard]] double duration_scale(double abs_hour) const;
  /// Job-profile version machine `machine_id` submits at `abs_hour`.
  [[nodiscard]] int profile_version(double abs_hour, int machine_id) const;
  /// Counter-shift magnitude rows of version ≥ 2 carry.
  [[nodiscard]] double profile_shift() const { return dynamics_.upgrade.shift; }

  struct AnomalyTag {
    std::uint32_t episode = 0;  ///< 0 = unaffected; episodes are 1-based
    double intensity = 0.0;
  };
  /// The anomaly episode (if any) covering `machine_id` at `abs_hour`.
  [[nodiscard]] AnomalyTag anomaly_at(double abs_hour, int machine_id) const;

 private:
  struct Episode {
    double start = 0.0;
    double end = 0.0;
    std::vector<char> machines;  ///< affected machines (empty = all)
  };

  WorkloadDynamics dynamics_;
  bool active_ = false;
  int migrated_machines_ = 0;
  std::vector<Episode> flash_;
  std::vector<Episode> anomaly_;
};

/// Applies the deterministic counter distortions a row's dynamics tags call
/// for: version-≥2 rows shift every non-occupancy metric by
/// exp(shift·u(metric, version)), anomaly rows by
/// exp(intensity·u(metric, episode)), with u ∈ [−1, 1) derived from the
/// metric name — so all rows of one version (or one episode) move coherently
/// in the same direction. Occupancy columns (the mix encoding) stay exact.
/// No-op for untagged rows; `sample` is indexed by `catalog`.
void apply_dynamics_overlay(std::vector<double>& sample,
                            const metrics::MetricCatalog& catalog,
                            const ColocationScenario& scenario);

/// The counter profile a migrated machine runs at `version` under a rolling
/// upgrade of log-scale magnitude `shift`: each microarchitectural parameter
/// moves by exp(shift·u(job, parameter, version)) with the same u-derivation
/// the row overlay uses, so the parameter-space shift and the synthesized
/// counter shift agree in direction. version ≤ 1 or shift ≤ 0 returns `base`
/// unchanged (stationarity preserved).
[[nodiscard]] JobProfile upgraded_profile(const JobProfile& base, int version,
                                          double shift);

}  // namespace flare::dcsim
