#include "dcsim/scheduler.hpp"

#include <limits>

#include "util/error.hpp"

namespace flare::dcsim {

Scheduler::Scheduler(const MachineConfig& machine, int num_machines,
                     const JobCatalog& catalog, PlacementPolicy policy)
    : config_(machine), catalog_(catalog), policy_(policy) {
  ensure(num_machines > 0, "Scheduler: need at least one machine");
  machines_.resize(static_cast<std::size_t>(num_machines));
  for (int i = 0; i < num_machines; ++i) machines_[static_cast<std::size_t>(i)].id = i;
}

double Scheduler::used_dram_gb(int id) const {
  const MachineState& m = machine(id);
  double used = 0.0;
  for (const JobType type : all_job_types()) {
    used += catalog_.profile(type).dram_gb * m.mix.count(type);
  }
  return used;
}

bool Scheduler::fits(int id, JobType type) const {
  const MachineState& m = machine(id);
  const JobProfile& p = catalog_.profile(type);
  if (m.used_vcpus() + p.vcpus > config_.scheduling_vcpus()) return false;
  if (used_dram_gb(id) + p.dram_gb > config_.dram_gb) return false;
  return true;
}

std::optional<int> Scheduler::place(JobType type) {
  int chosen = -1;
  double chosen_util = policy_ == PlacementPolicy::kBestFit
                           ? -1.0
                           : std::numeric_limits<double>::max();
  for (const MachineState& m : machines_) {
    if (!fits(m.id, type)) continue;
    const double util = static_cast<double>(m.used_vcpus()) /
                        static_cast<double>(config_.scheduling_vcpus());
    switch (policy_) {
      case PlacementPolicy::kLeastUtilized:
        if (util < chosen_util) {
          chosen_util = util;
          chosen = m.id;
        }
        break;
      case PlacementPolicy::kFirstFit:
        if (chosen < 0) chosen = m.id;
        break;
      case PlacementPolicy::kBestFit:
        if (util > chosen_util) {
          chosen_util = util;
          chosen = m.id;
        }
        break;
    }
    if (policy_ == PlacementPolicy::kFirstFit && chosen >= 0) break;
  }
  if (chosen < 0) {
    ++denials_;
    return std::nullopt;
  }
  machines_[static_cast<std::size_t>(chosen)].mix.add(type);
  ++placements_;
  return chosen;
}

void Scheduler::remove(int machine_id, JobType type) {
  machines_.at(static_cast<std::size_t>(machine_id)).mix.remove(type);
}

const MachineState& Scheduler::machine(int id) const {
  return machines_.at(static_cast<std::size_t>(id));
}

}  // namespace flare::dcsim
