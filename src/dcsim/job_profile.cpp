#include "dcsim/job_profile.hpp"

#include <algorithm>
#include <cmath>

namespace flare::dcsim {

double JobProfile::miss_ratio(double cache_mb) const {
  const double c = std::max(cache_mb, 0.0);
  const double shape = std::pow(mrc_half_mb / (mrc_half_mb + c), mrc_steepness);
  const double ratio = min_miss_ratio + (1.0 - min_miss_ratio) * shape;
  return std::clamp(ratio, 0.0, 1.0);
}

double JobProfile::mpki(double cache_mb) const {
  return llc_apki * miss_ratio(cache_mb);
}

}  // namespace flare::dcsim
