#include "dcsim/scenario.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace flare::dcsim {

void JobMix::remove(JobType type, int n) {
  int& slot = instances[job_index(type)];
  ensure(slot >= n, "JobMix::remove: removing more instances than present");
  slot -= n;
}

int JobMix::total_instances() const {
  int total = 0;
  for (const int n : instances) total += n;
  return total;
}

int JobMix::hp_instances() const {
  int total = 0;
  for (std::size_t i = 0; i < kNumHpJobTypes; ++i) total += instances[i];
  return total;
}

int JobMix::lp_instances() const { return total_instances() - hp_instances(); }

std::string JobMix::key() const {
  std::string out;
  for (std::size_t i = 0; i < kNumJobTypes; ++i) {
    if (instances[i] == 0) continue;
    if (!out.empty()) out += ',';
    out += job_code(static_cast<JobType>(i));
    out += ':';
    out += std::to_string(instances[i]);
  }
  return out;
}

JobMix JobMix::from_key(std::string_view key) {
  JobMix mix;
  if (util::trim(key).empty()) return mix;
  for (const std::string& part : util::split(key, ',')) {
    const std::vector<std::string> kv = util::split(part, ':');
    if (kv.size() != 2) {
      throw ParseError("JobMix::from_key: malformed entry '" + part + "'");
    }
    const JobType type = job_type_from_code(util::trim(kv[0]));
    const long long count = util::parse_int(kv[1]);
    if (count <= 0) {
      throw ParseError("JobMix::from_key: non-positive count in '" + part + "'");
    }
    mix.add(type, static_cast<int>(count));
  }
  return mix;
}

double ScenarioSet::total_weight() const {
  double total = 0.0;
  for (const ColocationScenario& s : scenarios) total += s.observation_weight;
  return total;
}

std::vector<double> ScenarioSet::normalized_weights() const {
  const double total = total_weight();
  ensure(total > 0.0, "ScenarioSet::normalized_weights: zero total weight");
  std::vector<double> weights;
  weights.reserve(scenarios.size());
  for (const ColocationScenario& s : scenarios) {
    weights.push_back(s.observation_weight / total);
  }
  return weights;
}

}  // namespace flare::dcsim
