// Job co-location scenarios — FLARE's basic unit of evaluation (§4.1):
// "every new combination of jobs [on one machine] defines a new scenario".
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "dcsim/job_types.hpp"

namespace flare::dcsim {

/// The multiset of 4-vCPU container instances sharing one machine.
struct JobMix {
  std::array<int, kNumJobTypes> instances{};  ///< count per job type

  [[nodiscard]] int count(JobType type) const { return instances[job_index(type)]; }
  void add(JobType type, int n = 1) { instances[job_index(type)] += n; }
  void remove(JobType type, int n = 1);

  [[nodiscard]] int total_instances() const;
  [[nodiscard]] int hp_instances() const;
  [[nodiscard]] int lp_instances() const;
  [[nodiscard]] bool empty() const { return total_instances() == 0; }

  /// vCPUs consumed (4 per instance).
  [[nodiscard]] int vcpus() const { return total_instances() * 4; }
  [[nodiscard]] int hp_vcpus() const { return hp_instances() * 4; }
  [[nodiscard]] int lp_vcpus() const { return lp_instances() * 4; }

  /// Canonical textual key, e.g. "DA:2,DC:1,mcf:3" — used for deduplication
  /// and trace round-trips. Empty mix yields "".
  [[nodiscard]] std::string key() const;

  /// Parses a key produced by `key()`; throws ParseError on malformed input.
  [[nodiscard]] static JobMix from_key(std::string_view key);

  [[nodiscard]] bool operator==(const JobMix&) const = default;
};

/// A deduplicated scenario observed in the (simulated) datacenter, together
/// with how often it was observed. The observation weight is the total
/// machine-time spent in the mix — scenarios seen longer/more often matter
/// more when summarising the datacenter.
struct ColocationScenario {
  std::size_t id = 0;          ///< dense index within a ScenarioSet
  JobMix mix;
  double observation_weight = 1.0;
  std::string machine_type = "default";

  // --- Non-stationarity tags (dcsim/dynamics.hpp; defaults = stationary).
  // A row whose tags differ from these defaults was observed under a rolling
  // upgrade or an anomalous co-location episode; the Profiler overlays the
  // corresponding counter distortion deterministically from the tags, so a
  // tagged trace round-trips to bit-identical metric rows.
  /// Job-profile version the submitting machine ran (1 = baseline).
  int profile_version = 1;
  /// Log-scale counter-shift magnitude for version ≥ 2 rows.
  double profile_shift = 0.0;
  /// Anomaly episode id (1-based; 0 = unaffected). Rows sharing an id were
  /// corrupted together — the cluster-coherent unit quarantine fences.
  std::uint32_t anomaly_episode = 0;
  /// Log-scale corruption magnitude of that episode.
  double anomaly_intensity = 0.0;

  /// Any tag off its stationary default?
  [[nodiscard]] bool dynamic_tagged() const {
    return profile_version != 1 || anomaly_episode != 0;
  }
};

/// The profiled population of scenarios for one machine shape.
struct ScenarioSet {
  std::vector<ColocationScenario> scenarios;
  std::string machine_type = "default";

  [[nodiscard]] std::size_t size() const { return scenarios.size(); }
  [[nodiscard]] double total_weight() const;

  /// Normalised observation weights (sum to 1).
  [[nodiscard]] std::vector<double> normalized_weights() const;
};

}  // namespace flare::dcsim
