#include "dcsim/replay_faults.hpp"

#include <cmath>
#include <limits>

#include "stats/rng.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/seed_stream.hpp"

namespace flare::dcsim {

ReplayFaultOptions ReplayFaultOptions::uniform(double rate, std::uint64_t seed) {
  ensure(rate >= 0.0 && rate <= 1.0,
         "ReplayFaultOptions::uniform: rate must be in [0, 1]");
  ReplayFaultOptions options;
  options.enabled = rate > 0.0;
  options.hang_rate = rate;
  options.crash_rate = rate;
  options.invalid_rate = rate;
  options.noise_spike_rate = rate;
  options.machine_loss_rate = rate;
  options.seed = seed;
  return options;
}

ReplayFaultModel::ReplayFaultModel(ReplayFaultOptions options)
    : options_(options) {
  const auto valid_rate = [](double r) { return r >= 0.0 && r <= 1.0; };
  ensure(valid_rate(options_.hang_rate) && valid_rate(options_.crash_rate) &&
             valid_rate(options_.invalid_rate) &&
             valid_rate(options_.noise_spike_rate) &&
             valid_rate(options_.machine_loss_rate),
         "ReplayFaultModel: fault rates must be in [0, 1]");
  ensure(options_.hang_rate + options_.crash_rate + options_.invalid_rate +
                 options_.noise_spike_rate <=
             1.0,
         "ReplayFaultModel: per-attempt fault rates must sum to <= 1");
  ensure(options_.noise_spike_pp >= 0.0,
         "ReplayFaultModel: noise_spike_pp must be non-negative");
  active_ = options_.enabled &&
            (options_.hang_rate > 0.0 || options_.crash_rate > 0.0 ||
             options_.invalid_rate > 0.0 || options_.noise_spike_rate > 0.0 ||
             options_.machine_loss_rate > 0.0);
}

std::uint64_t ReplayFaultModel::stream(std::string_view scenario_key,
                                       std::uint64_t salt) const {
  return util::derive_stream(scenario_key, options_.seed, salt);
}

bool ReplayFaultModel::lose_machine(std::string_view scenario_key) const {
  if (!active_ || options_.machine_loss_rate <= 0.0) return false;
  stats::Rng rng(stream(scenario_key, 0x70A57ull));
  return rng.uniform() < options_.machine_loss_rate;
}

ReplayAttemptFault ReplayFaultModel::attempt_fault(
    std::string_view scenario_key, std::uint64_t feature_fingerprint,
    int attempt) const {
  ReplayAttemptFault fault;
  if (!active_) return fault;
  // Each (scenario, feature, attempt) triple gets its own private stream, so
  // the per-attempt draw count never leaks across attempts and retries see
  // genuinely independent fault decisions.
  stats::Rng rng(util::hash_mix(
      stream(scenario_key, 0x4EA7ull + 104729ull *
                                           static_cast<std::uint64_t>(attempt)),
      feature_fingerprint));
  const double u = rng.uniform();
  const double v = rng.uniform();
  if (u < options_.hang_rate) {
    fault.kind = ReplayFaultKind::kHang;
    // Always comfortably past any sane deadline (watchdog territory).
    fault.magnitude = 8.0 + 24.0 * v;
  } else if (u < options_.hang_rate + options_.crash_rate) {
    fault.kind = ReplayFaultKind::kCrash;
    fault.magnitude = v;  // fraction of the nominal run time before the crash
  } else if (u < options_.hang_rate + options_.crash_rate +
                     options_.invalid_rate) {
    fault.kind = ReplayFaultKind::kInvalidReading;
    fault.magnitude = v;  // flavour selector; see corrupt_reading
  } else if (u < options_.hang_rate + options_.crash_rate +
                     options_.invalid_rate + options_.noise_spike_rate) {
    fault.kind = ReplayFaultKind::kNoiseSpike;
    fault.magnitude = options_.noise_spike_pp * rng.normal();
  }
  return fault;
}

double ReplayFaultModel::corrupt_reading(double clean_impact_pct,
                                         const ReplayAttemptFault& fault) const {
  switch (fault.kind) {
    case ReplayFaultKind::kInvalidReading:
      // Stuck / glitched measurement harness: NaN, a sign-flipped off-scale
      // value, or an absurd positive reading — all rejected by the
      // Replayer's finiteness / plausible-range validation.
      if (fault.magnitude < 0.4) return std::numeric_limits<double>::quiet_NaN();
      return fault.magnitude < 0.7 ? -1e4 : 1e4;
    case ReplayFaultKind::kNoiseSpike:
      return clean_impact_pct + fault.magnitude;
    case ReplayFaultKind::kNone:
    case ReplayFaultKind::kHang:
    case ReplayFaultKind::kCrash:
      return clean_impact_pct;
  }
  return clean_impact_pct;
}

}  // namespace flare::dcsim
