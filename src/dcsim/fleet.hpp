// Heterogeneous fleet description (paper §5.5): a shape-population table.
//
// Real datacenters mix machine generations; the paper handles this by
// partitioning the fleet by machine shape and deriving representatives per
// shape. A FleetConfig is that partition: an ordered table of
// (MachineConfig, machine count) entries. The *shape id* of a scenario row is
// the machine name (ColocationScenario::machine_type) resolved against this
// table — names are what the trace format persists, the table is what turns
// them back into machines and fan-in weights.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dcsim/machine_config.hpp"
#include "dcsim/scenario.hpp"
#include "dcsim/submission.hpp"

namespace flare::dcsim {

/// One machine shape and how many machines of it the fleet runs.
struct ShapePopulation {
  MachineConfig machine;
  int num_machines = 1;
};

/// The shape table of a heterogeneous fleet. Shape id = index in `shapes`;
/// scenario rows reference shapes by machine name.
struct FleetConfig {
  std::vector<ShapePopulation> shapes;

  [[nodiscard]] std::size_t size() const { return shapes.size(); }
  [[nodiscard]] int total_machines() const;

  /// Machine-count share per shape (Σ = 1) — the estimator's fan-in weights.
  [[nodiscard]] std::vector<double> population_weights() const;

  /// Shape names in table order (the valid shape ids for trace validation).
  [[nodiscard]] std::vector<std::string> shape_names() const;

  /// Table index of the shape named `name`, or nullopt when absent.
  [[nodiscard]] std::optional<std::size_t> index_of(std::string_view name) const;
};

/// Canonical machine registry (the shapes the CLI can name):
/// default | small | dense. Throws ParseError on unknown names.
[[nodiscard]] MachineConfig machine_shape_by_name(const std::string& name);

/// Parses a fleet spec like "default:6,small:2" — comma-separated
/// `shape[:count]` entries, shape resolved via machine_shape_by_name, count
/// defaulting to 1. Throws ParseError on malformed specs, non-positive
/// counts, or duplicate shapes.
[[nodiscard]] FleetConfig parse_fleet_spec(std::string_view spec);

/// The per-shape scenario populations of one heterogeneous fleet, in
/// FleetConfig::shapes order.
struct FleetScenarioSet {
  std::vector<ScenarioSet> per_shape;

  [[nodiscard]] std::size_t total_scenarios() const;

  /// One mixed set: per-shape populations concatenated in table order with
  /// dense global ids; every row keeps its shape tag (this is what
  /// `flare simulate --shapes` archives).
  [[nodiscard]] ScenarioSet merged() const;
};

/// Runs the §5.1 job-submission simulation once per shape: each shape's
/// sub-fleet gets its own scheduler (jobs are placed per shape — a mix
/// observed on one shape never blends into another), its own arrival stream
/// (seed derived from config.seed and the shape index) and
/// config.target_distinct_scenarios distinct scenarios. config.num_machines
/// is overridden by each shape's population. `stats`, when given, receives
/// one entry per shape.
[[nodiscard]] FleetScenarioSet generate_fleet_scenario_set(
    const SubmissionConfig& config, const FleetConfig& fleet,
    const JobCatalog& catalog = default_job_catalog(),
    std::vector<SubmissionStats>* stats = nullptr);

/// Splits a mixed shape-tagged set into per-shape sets (table order),
/// re-id'ing rows densely per shape while preserving relative row order.
/// Throws ParseError when a row's shape id is absent (empty) or names no
/// shape in the table — an unknown machine config must never be silently
/// coerced into another shape's pipeline.
[[nodiscard]] FleetScenarioSet split_by_shape(const ScenarioSet& mixed,
                                              const FleetConfig& fleet);

}  // namespace flare::dcsim
