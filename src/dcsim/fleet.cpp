#include "dcsim/fleet.hpp"

#include <numeric>
#include <utility>

#include "util/error.hpp"

namespace flare::dcsim {

int FleetConfig::total_machines() const {
  int total = 0;
  for (const ShapePopulation& s : shapes) total += s.num_machines;
  return total;
}

std::vector<double> FleetConfig::population_weights() const {
  const int total = total_machines();
  ensure(total > 0, "FleetConfig::population_weights: fleet has no machines");
  std::vector<double> weights;
  weights.reserve(shapes.size());
  for (const ShapePopulation& s : shapes) {
    weights.push_back(static_cast<double>(s.num_machines) /
                      static_cast<double>(total));
  }
  return weights;
}

std::vector<std::string> FleetConfig::shape_names() const {
  std::vector<std::string> names;
  names.reserve(shapes.size());
  for (const ShapePopulation& s : shapes) names.push_back(s.machine.name);
  return names;
}

std::optional<std::size_t> FleetConfig::index_of(std::string_view name) const {
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    if (shapes[i].machine.name == name) return i;
  }
  return std::nullopt;
}

MachineConfig machine_shape_by_name(const std::string& name) {
  if (name == "default") return default_machine();
  if (name == "small") return small_machine();
  if (name == "dense") return dense_machine();
  throw ParseError("unknown machine shape '" + name +
                   "' — expected default, small, or dense");
}

FleetConfig parse_fleet_spec(std::string_view spec) {
  FleetConfig fleet;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string_view entry =
        spec.substr(pos, comma == std::string_view::npos ? std::string_view::npos
                                                         : comma - pos);
    if (entry.empty()) {
      throw ParseError("fleet spec '" + std::string(spec) +
                       "': empty entry — expected shape[:count]");
    }
    const std::size_t colon = entry.find(':');
    const std::string name(entry.substr(0, colon));
    int count = 1;
    if (colon != std::string_view::npos) {
      const std::string count_str(entry.substr(colon + 1));
      try {
        std::size_t consumed = 0;
        count = std::stoi(count_str, &consumed);
        if (consumed != count_str.size()) throw std::invalid_argument(count_str);
      } catch (const std::exception&) {
        throw ParseError("fleet spec '" + std::string(spec) +
                         "': bad machine count '" + count_str + "' for shape '" +
                         name + "'");
      }
      if (count <= 0) {
        throw ParseError("fleet spec '" + std::string(spec) + "': shape '" +
                         name + "' needs a positive machine count");
      }
    }
    ShapePopulation pop;
    pop.machine = machine_shape_by_name(name);  // throws on unknown shape
    pop.num_machines = count;
    if (fleet.index_of(pop.machine.name).has_value()) {
      throw ParseError("fleet spec '" + std::string(spec) +
                       "': duplicate shape '" + name + "'");
    }
    fleet.shapes.push_back(std::move(pop));
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  ensure(!fleet.shapes.empty(), "parse_fleet_spec: fleet spec is empty");
  return fleet;
}

std::size_t FleetScenarioSet::total_scenarios() const {
  std::size_t total = 0;
  for (const ScenarioSet& set : per_shape) total += set.size();
  return total;
}

ScenarioSet FleetScenarioSet::merged() const {
  ScenarioSet out;
  out.machine_type = per_shape.size() == 1 ? per_shape.front().machine_type
                                           : std::string("fleet");
  out.scenarios.reserve(total_scenarios());
  for (const ScenarioSet& set : per_shape) {
    for (const ColocationScenario& s : set.scenarios) {
      ColocationScenario row = s;
      row.id = out.scenarios.size();
      out.scenarios.push_back(std::move(row));
    }
  }
  return out;
}

FleetScenarioSet generate_fleet_scenario_set(const SubmissionConfig& config,
                                             const FleetConfig& fleet,
                                             const JobCatalog& catalog,
                                             std::vector<SubmissionStats>* stats) {
  ensure(!fleet.shapes.empty(), "generate_fleet_scenario_set: empty fleet");
  if (stats != nullptr) stats->clear();
  FleetScenarioSet out;
  out.per_shape.reserve(fleet.shapes.size());
  for (std::size_t i = 0; i < fleet.shapes.size(); ++i) {
    const ShapePopulation& pop = fleet.shapes[i];
    SubmissionConfig shaped = config;
    shaped.num_machines = pop.num_machines;
    // Decorrelate the shapes' arrival streams: each shape's scheduler sees
    // its own user population, not a replay of shape 0's.
    shaped.seed = config.seed + 0x9e3779b97f4a7c15ull * (i + 1);
    // Shape-scoped dynamics: a generator naming another shape is disabled
    // for this shape's submission loop (unscoped generators hit every shape).
    shaped.dynamics = config.dynamics.for_shape(pop.machine.name);
    SubmissionStats shape_stats;
    out.per_shape.push_back(generate_scenario_set(
        shaped, pop.machine, catalog, stats != nullptr ? &shape_stats : nullptr));
    if (stats != nullptr) stats->push_back(shape_stats);
  }
  return out;
}

FleetScenarioSet split_by_shape(const ScenarioSet& mixed,
                                const FleetConfig& fleet) {
  ensure(!fleet.shapes.empty(), "split_by_shape: empty fleet");
  FleetScenarioSet out;
  out.per_shape.resize(fleet.shapes.size());
  for (std::size_t i = 0; i < fleet.shapes.size(); ++i) {
    out.per_shape[i].machine_type = fleet.shapes[i].machine.name;
  }
  for (std::size_t row = 0; row < mixed.scenarios.size(); ++row) {
    const ColocationScenario& s = mixed.scenarios[row];
    if (s.machine_type.empty()) {
      throw ParseError("scenario " + std::to_string(row) +
                       ": shape id is absent — every row of a fleet trace must "
                       "name its machine shape");
    }
    const std::optional<std::size_t> shard = fleet.index_of(s.machine_type);
    if (!shard.has_value()) {
      throw ParseError("scenario " + std::to_string(row) + ": shape id '" +
                       s.machine_type +
                       "' is not in the fleet's shape table (" +
                       [&fleet] {
                         std::string names;
                         for (const ShapePopulation& p : fleet.shapes) {
                           if (!names.empty()) names += ", ";
                           names += p.machine.name;
                         }
                         return names;
                       }() +
                       ") — refusing to coerce it into another shape's shard");
    }
    ScenarioSet& dest = out.per_shape[*shard];
    ColocationScenario copy = s;
    copy.id = dest.scenarios.size();
    dest.scenarios.push_back(std::move(copy));
  }
  return out;
}

}  // namespace flare::dcsim
