// The catalog of all job profiles (paper Table 3).
#pragma once

#include <array>

#include "dcsim/job_profile.hpp"

namespace flare::dcsim {

class JobCatalog {
 public:
  /// Builds the calibrated default catalog.
  JobCatalog();

  [[nodiscard]] const JobProfile& profile(JobType type) const;

  [[nodiscard]] const std::array<JobProfile, kNumJobTypes>& profiles() const {
    return profiles_;
  }

  /// Replaces a profile — used by tests and what-if studies.
  void set_profile(const JobProfile& profile);

 private:
  std::array<JobProfile, kNumJobTypes> profiles_;
};

/// Shared immutable default catalog (the common case throughout the library).
[[nodiscard]] const JobCatalog& default_job_catalog();

}  // namespace flare::dcsim
