// The cluster scheduler (paper §5.1): greedy least-utilised placement of
// 4-vCPU containers, no resource overcommit, denial when saturated.
#pragma once

#include <optional>
#include <vector>

#include "dcsim/job_catalog.hpp"
#include "dcsim/machine_config.hpp"
#include "dcsim/scenario.hpp"

namespace flare::dcsim {

/// One machine's live state inside the scheduler.
struct MachineState {
  int id = 0;
  JobMix mix;

  [[nodiscard]] int used_vcpus() const { return mix.vcpus(); }
};

/// Placement policies. The paper's datacenter uses least-utilised greedy
/// load balancing; the alternatives exist for the §5.6 scheduler-change
/// workflow (a new scheduler reshapes the colocation landscape).
enum class PlacementPolicy : unsigned char {
  kLeastUtilized,  ///< paper default: pick the emptiest machine
  kFirstFit,       ///< pack low machine ids first (consolidating scheduler)
  kBestFit,        ///< pick the fullest machine that still has room
};

class Scheduler {
 public:
  Scheduler(const MachineConfig& machine, int num_machines,
            const JobCatalog& catalog = default_job_catalog(),
            PlacementPolicy policy = PlacementPolicy::kLeastUtilized);

  /// Places one instance; returns the machine id, or nullopt when every
  /// machine lacks vCPU or DRAM headroom (a scheduling denial).
  [[nodiscard]] std::optional<int> place(JobType type);

  /// Removes one instance of `type` from machine `machine_id`.
  void remove(int machine_id, JobType type);

  [[nodiscard]] const std::vector<MachineState>& machines() const { return machines_; }
  [[nodiscard]] const MachineState& machine(int id) const;
  [[nodiscard]] const MachineConfig& machine_config() const { return config_; }

  [[nodiscard]] std::size_t denials() const { return denials_; }
  [[nodiscard]] std::size_t placements() const { return placements_; }

  /// Whether `type` fits on machine `id` under the no-overcommit rule
  /// (both vCPU quota and DRAM must have headroom).
  [[nodiscard]] bool fits(int id, JobType type) const;

  /// DRAM currently reserved on machine `id` (GB).
  [[nodiscard]] double used_dram_gb(int id) const;

 private:
  MachineConfig config_;
  JobCatalog catalog_;
  PlacementPolicy policy_;
  std::vector<MachineState> machines_;
  std::size_t denials_ = 0;
  std::size_t placements_ = 0;
};

}  // namespace flare::dcsim
