#include "report/barchart.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace flare::report {

BarChart::BarChart(std::string title, int max_width)
    : title_(std::move(title)), max_width_(max_width) {
  ensure(max_width_ >= 4, "BarChart: max_width too small");
}

void BarChart::add(Bar bar) { bars_.push_back(std::move(bar)); }

void BarChart::add(std::string label, double value, std::string annotation) {
  bars_.push_back(Bar{std::move(label), value, std::move(annotation)});
}

void BarChart::print(std::ostream& out) const {
  out << title_ << '\n';
  if (bars_.empty()) {
    out << "  (no data)\n";
    return;
  }
  double peak = 0.0;
  std::size_t label_width = 0;
  for (const Bar& b : bars_) {
    peak = std::max(peak, std::abs(b.value));
    label_width = std::max(label_width, b.label.size());
  }
  for (const Bar& b : bars_) {
    const int len =
        peak > 0.0 ? static_cast<int>(std::round(std::abs(b.value) / peak *
                                                 max_width_))
                   : 0;
    out << "  " << b.label << std::string(label_width - b.label.size(), ' ')
        << " |" << std::string(static_cast<std::size_t>(len), '#')
        << (b.value < 0.0 ? "  (neg) " : " ") << util::format_double(b.value, 2);
    if (!b.annotation.empty()) out << "  " << b.annotation;
    out << '\n';
  }
}

void print_series(std::ostream& out, const std::string& title,
                  const std::vector<std::pair<double, double>>& points,
                  const std::string& x_label, const std::string& y_label,
                  int decimals) {
  out << title << '\n';
  out << "  " << x_label << " -> " << y_label << '\n';
  for (const auto& [x, y] : points) {
    out << "  " << util::format_double(x, 0) << ", "
        << util::format_double(y, decimals) << '\n';
  }
}

}  // namespace flare::report
