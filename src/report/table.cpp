#include "report/table.hpp"

#include <algorithm>
#include <ostream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace flare::report {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)), alignment_(headers_.size(), Align::kRight) {
  ensure(!headers_.empty(), "AsciiTable: need at least one column");
  alignment_[0] = Align::kLeft;  // first column is usually a label
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  ensure(cells.size() == headers_.size(), "AsciiTable::add_row: cell count mismatch");
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::cell(double value, int decimals) {
  return util::format_double(value, decimals);
}

void AsciiTable::set_alignment(std::size_t column, Align align) {
  ensure(column < alignment_.size(), "AsciiTable::set_alignment: column out of range");
  alignment_[column] = align;
}

void AsciiTable::print(std::ostream& out) const {
  std::vector<std::size_t> width(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) out << "  ";
      const std::size_t pad = width[c] - cells[c].size();
      if (alignment_[c] == Align::kRight) out << std::string(pad, ' ');
      out << cells[c];
      if (alignment_[c] == Align::kLeft) out << std::string(pad, ' ');
    }
    out << '\n';
  };

  print_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : width) total += w;
  out << std::string(total + 2 * (headers_.size() - 1), '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace flare::report
