// Horizontal ASCII bar charts — terminal renderings of the paper's figures.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace flare::report {

struct Bar {
  std::string label;
  double value = 0.0;
  std::string annotation;  ///< optional suffix, e.g. "±1.2"
};

class BarChart {
 public:
  explicit BarChart(std::string title, int max_width = 50);

  void add(Bar bar);
  void add(std::string label, double value, std::string annotation = "");

  /// Renders bars scaled to the max |value|; negatives render leftward.
  void print(std::ostream& out) const;

 private:
  std::string title_;
  int max_width_;
  std::vector<Bar> bars_;
};

/// Quick one-series x/y print (for curves like Fig. 7 / Fig. 9 / Fig. 13).
void print_series(std::ostream& out, const std::string& title,
                  const std::vector<std::pair<double, double>>& points,
                  const std::string& x_label, const std::string& y_label,
                  int decimals = 3);

}  // namespace flare::report
