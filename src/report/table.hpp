// ASCII table rendering for the bench harnesses (the "same rows the paper
// reports" output format).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace flare::report {

enum class Align : unsigned char { kLeft, kRight };

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  /// Appends a row; must have as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `decimals` digits.
  static std::string cell(double value, int decimals = 2);

  void set_alignment(std::size_t column, Align align);

  /// Renders with a header rule and column padding.
  void print(std::ostream& out) const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> alignment_;
};

}  // namespace flare::report
