#include "metrics/metric_catalog.hpp"

#include <unordered_map>

#include "util/error.hpp"

namespace flare::metrics {
namespace {

struct BaseMetricSpec {
  const char* name;
  MetricCategory category;
  const char* unit;
};

/// Metrics collected at BOTH levels (Machine and HP). Order defines column
/// order. Several entries are deliberate near-duplicates of others (marked)
/// to exercise the refinement step.
constexpr BaseMetricSpec kPerLevelMetrics[] = {
    {"MIPS", MetricCategory::kCpu, "Minstr/s"},
    {"IPC", MetricCategory::kCpu, "instr/cycle"},
    {"CPI", MetricCategory::kCpu, "cycle/instr"},
    {"InstrPerSec", MetricCategory::kCpu, "instr/s"},          // dup: MIPS*1e6
    {"CyclesPerSec", MetricCategory::kCpu, "cycle/s"},
    {"LLC_APKI", MetricCategory::kCache, "acc/Kinstr"},
    {"LLC_MPKI", MetricCategory::kCache, "miss/Kinstr"},
    {"LLC_MissRatio", MetricCategory::kCache, "ratio"},
    {"LLC_HitRatio", MetricCategory::kCache, "ratio"},         // dup: 1 - MissRatio
    {"LLC_MissesPerSec", MetricCategory::kCache, "miss/s"},
    {"LLC_AccessesPerSec", MetricCategory::kCache, "acc/s"},
    {"LLC_Occupancy_MB", MetricCategory::kCache, "MB"},
    {"L2_MPKI", MetricCategory::kCache, "miss/Kinstr"},        // dup: APKI scaled
    {"L1D_MPKI", MetricCategory::kCache, "miss/Kinstr"},
    {"L1I_MPKI", MetricCategory::kCache, "miss/Kinstr"},
    {"TLB_MPKI", MetricCategory::kCache, "miss/Kinstr"},
    {"Branch_MPKI", MetricCategory::kCpu, "miss/Kinstr"},
    {"BranchMispredRatio", MetricCategory::kCpu, "ratio"},
    {"LoadPKI", MetricCategory::kCpu, "loads/Kinstr"},
    {"StorePKI", MetricCategory::kCpu, "stores/Kinstr"},
    {"MemBW_GBps", MetricCategory::kMemory, "GB/s"},
    {"MemBW_BytesPerSec", MetricCategory::kMemory, "B/s"},     // dup: GBps*1e9
    {"MemReadBW_GBps", MetricCategory::kMemory, "GB/s"},       // dup: 0.7*GBps
    {"MemWriteBW_GBps", MetricCategory::kMemory, "GB/s"},      // dup: 0.3*GBps
    {"EffMemLatency_ns", MetricCategory::kMemory, "ns"},
    {"DRAM_Used_GB", MetricCategory::kMemory, "GB"},
    {"TD_FrontendBound", MetricCategory::kTopdown, "frac"},
    {"TD_BadSpeculation", MetricCategory::kTopdown, "frac"},
    {"TD_Retiring", MetricCategory::kTopdown, "frac"},
    {"TD_BackendBound", MetricCategory::kTopdown, "frac"},     // dup: Mem + Core
    {"TD_BackendMem", MetricCategory::kTopdown, "frac"},
    {"TD_BackendCore", MetricCategory::kTopdown, "frac"},
    {"CPU_UtilFrac", MetricCategory::kCpu, "frac"},
    {"VCPUsBusy", MetricCategory::kCpu, "vCPUs"},              // dup: Util*capacity
    {"ALU_UtilFrac", MetricCategory::kCpu, "frac"},
    {"FP_UtilFrac", MetricCategory::kCpu, "frac"},
    {"SpinFrac", MetricCategory::kCpu, "frac"},
    {"Network_Mbps", MetricCategory::kNetwork, "Mb/s"},
    {"Disk_IOPS", MetricCategory::kDisk, "IO/s"},
    {"IOWaitFrac", MetricCategory::kDisk, "frac"},
    {"ContextSwitchesPerSec", MetricCategory::kSystem, "1/s"},
    {"PageFaultsPerSec", MetricCategory::kSystem, "1/s"},
    {"IRQPerSec", MetricCategory::kSystem, "1/s"},
    {"SoftIRQPerSec", MetricCategory::kSystem, "1/s"},         // dup: IRQ scaled
    {"RunQueueLen", MetricCategory::kSystem, "threads"},
    {"UopsPerInstr", MetricCategory::kCpu, "uops/instr"},
    {"AvgLoadLatency_cycles", MetricCategory::kMemory, "cycles"},
    {"PrefetchPerKI", MetricCategory::kCache, "pref/Kinstr"},
    {"StallCycleFrac", MetricCategory::kTopdown, "frac"},      // dup: 1 - Retiring
    {"DispatchStallFrac", MetricCategory::kTopdown, "frac"},   // dup: BackendCore
    {"MemQueueOccupancy", MetricCategory::kMemory, "entries"},
    {"KernelTimeFrac", MetricCategory::kSystem, "frac"},
    {"UserTimeFrac", MetricCategory::kCpu, "frac"},
};

/// Metrics that only exist at machine scope.
constexpr BaseMetricSpec kMachineOnlyMetrics[] = {
    {"TotalOccupancy_vCPU", MetricCategory::kOccupancy, "vCPUs"},
    {"HPOccupancy_vCPU", MetricCategory::kOccupancy, "vCPUs"},
    {"LPOccupancy_vCPU", MetricCategory::kOccupancy, "vCPUs"}, // dup: Total - HP
    {"FreeVCPUs", MetricCategory::kOccupancy, "vCPUs"},        // dup: cap - Total
    {"NumContainers", MetricCategory::kOccupancy, "count"},    // dup: Total / 4
    {"NumHPContainers", MetricCategory::kOccupancy, "count"},  // dup: HP / 4
    {"NumLPContainers", MetricCategory::kOccupancy, "count"},  // dup: LP / 4
    {"DRAM_UtilFrac", MetricCategory::kMemory, "frac"},
    {"MemBW_UtilFrac", MetricCategory::kMemory, "frac"},
    {"MemLatencyMultiplier", MetricCategory::kMemory, "x"},
    {"NetworkUtilFrac", MetricCategory::kNetwork, "frac"},
    {"Freq_GHz", MetricCategory::kCpu, "GHz"},
    {"SMTSharedFrac", MetricCategory::kCpu, "frac"},
    {"Power_W", MetricCategory::kSystem, "W"},
    {"Temperature_C", MetricCategory::kSystem, "C"},           // dup: affine(Power)
    {"FanSpeed_RPM", MetricCategory::kSystem, "RPM"},          // dup: affine(Temp)
};

}  // namespace

std::string_view to_string(MetricLevel level) {
  switch (level) {
    case MetricLevel::kMachine: return "Machine";
    case MetricLevel::kHpJobs: return "HP";
  }
  return "?";
}

std::string_view to_string(MetricCategory category) {
  switch (category) {
    case MetricCategory::kCpu: return "CPU";
    case MetricCategory::kCache: return "Cache";
    case MetricCategory::kMemory: return "Memory";
    case MetricCategory::kTopdown: return "Topdown";
    case MetricCategory::kNetwork: return "Network";
    case MetricCategory::kDisk: return "Disk";
    case MetricCategory::kSystem: return "System";
    case MetricCategory::kOccupancy: return "Occupancy";
  }
  return "?";
}

MetricCatalog::MetricCatalog(std::vector<MetricInfo> metrics)
    : metrics_(std::move(metrics)) {
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    ensure(metrics_[i].index == i, "MetricCatalog: indices must be dense and ordered");
    index_.emplace(metrics_[i].name, i);
  }
}

const MetricCatalog& MetricCatalog::standard() {
  static const MetricCatalog kStandard = [] {
    std::vector<MetricInfo> metrics;
    std::size_t index = 0;
    for (const MetricLevel level : {MetricLevel::kMachine, MetricLevel::kHpJobs}) {
      for (const BaseMetricSpec& spec : kPerLevelMetrics) {
        MetricInfo m;
        m.index = index++;
        m.base_name = spec.name;
        m.name = std::string(to_string(level)) + "." + spec.name;
        m.level = level;
        m.category = spec.category;
        m.unit = spec.unit;
        metrics.push_back(std::move(m));
      }
    }
    for (const BaseMetricSpec& spec : kMachineOnlyMetrics) {
      MetricInfo m;
      m.index = index++;
      m.base_name = spec.name;
      m.name = std::string("Machine.") + spec.name;
      m.level = MetricLevel::kMachine;
      m.category = spec.category;
      m.unit = spec.unit;
      metrics.push_back(std::move(m));
    }
    return MetricCatalog(std::move(metrics));
  }();
  return kStandard;
}

const MetricCatalog& MetricCatalog::standard_with_job_mix() {
  static const MetricCatalog kCatalog = [] {
    std::vector<MetricInfo> metrics = standard().metrics();
    // Job codes are fixed by dcsim's catalog; keep the dependency one-way by
    // naming the columns here and letting the counter synthesizer fill them
    // from the scenario mix.
    static constexpr const char* kJobCodes[] = {
        "DA",  "DC",    "DS",         "GA",        "IA",      "MS", "WSC",
        "WSV", "perlbench", "sjeng", "libquantum", "xalancbmk", "omnetpp", "mcf"};
    for (const char* code : kJobCodes) {
      MetricInfo m;
      m.index = metrics.size();
      m.base_name = std::string("Mix_") + code + "_Instances";
      m.name = "Machine." + m.base_name;
      m.level = MetricLevel::kMachine;
      m.category = MetricCategory::kOccupancy;
      m.unit = "count";
      metrics.push_back(std::move(m));
    }
    return MetricCatalog(std::move(metrics));
  }();
  return kCatalog;
}

MetricCatalog MetricCatalog::with_temporal_stddev(const MetricCatalog& base) {
  std::vector<MetricInfo> metrics = base.metrics();
  const std::size_t original = metrics.size();
  for (std::size_t i = 0; i < original; ++i) {
    ensure(!is_stddev_column(metrics[i]),
           "with_temporal_stddev: catalog is already enriched");
    MetricInfo m = metrics[i];
    m.index = metrics.size();
    m.base_name += "_Std";
    m.name += "_Std";
    metrics.push_back(std::move(m));
  }
  return MetricCatalog(std::move(metrics));
}

bool MetricCatalog::is_stddev_column(const MetricInfo& info) {
  constexpr std::string_view kSuffix = "_Std";
  return info.name.size() > kSuffix.size() &&
         info.name.compare(info.name.size() - kSuffix.size(), kSuffix.size(),
                           kSuffix) == 0;
}

const MetricInfo& MetricCatalog::info(std::size_t index) const {
  ensure(index < metrics_.size(), "MetricCatalog::info: index out of range");
  return metrics_[index];
}

std::optional<std::size_t> MetricCatalog::index_of(std::string_view name) const {
  const auto it = index_.find(std::string(name));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::size_t MetricCatalog::count_at_level(MetricLevel level) const {
  std::size_t count = 0;
  for (const MetricInfo& m : metrics_) {
    if (m.level == level) ++count;
  }
  return count;
}

}  // namespace flare::metrics
