// The "relational database" of §4.2: one row of raw metrics per profiled
// job co-location scenario.
#pragma once

#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "metrics/metric_catalog.hpp"

namespace flare::metrics {

/// One profiled scenario: its identity plus its raw metric row.
struct MetricRow {
  std::size_t scenario_id = 0;
  std::string scenario_key;       ///< JobMix::key() of the scenario
  double observation_weight = 1.0;
  std::vector<double> values;     ///< catalog-ordered raw metrics
};

class MetricDatabase {
 public:
  explicit MetricDatabase(const MetricCatalog& catalog = MetricCatalog::standard());

  /// Appends a row; `values` must match the catalog size (validated here, at
  /// the point of append, so a malformed row fails fast with its counts
  /// instead of blowing up later in to_matrix()).
  void add_row(MetricRow row);

  /// Bulk-appends every row of `other` (the incremental-ingestion path).
  /// Both databases must use the same catalog: the pointer-identical one, or
  /// one with identical metric names in identical order.
  void append(const MetricDatabase& other);

  /// Overwrites the per-row observation weights in row order (e.g. to sync a
  /// scheduler-change reweighting back into the archive before a refit).
  void set_observation_weights(const std::vector<double>& weights);

  /// Pre-allocates row storage. Bulk producers that know their row count up
  /// front (CSV loaders count lines, column-store blocks carry row counts)
  /// call this so a large ingest is one allocation instead of a geometric
  /// growth sequence that peaks at ~1.5× the final footprint.
  void reserve(std::size_t rows) { rows_.reserve(rows); }

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t num_metrics() const { return catalog_->size(); }
  [[nodiscard]] const MetricCatalog& catalog() const { return *catalog_; }

  [[nodiscard]] const MetricRow& row(std::size_t index) const;
  /// Mutable row access — the imputation path rewrites NaN cells in place.
  [[nodiscard]] MetricRow& row_mutable(std::size_t index);
  [[nodiscard]] const std::vector<MetricRow>& rows() const { return rows_; }

  /// Dense scenarios × metrics matrix (analysis input).
  [[nodiscard]] linalg::Matrix to_matrix() const;

  /// One metric across all rows, by fully qualified name.
  [[nodiscard]] std::vector<double> column(std::string_view name) const;

  /// Observation weights in row order.
  [[nodiscard]] std::vector<double> weights() const;

 private:
  const MetricCatalog* catalog_;  ///< non-owning; catalogs are long-lived
  std::vector<MetricRow> rows_;
};

}  // namespace flare::metrics
