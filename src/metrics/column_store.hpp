// Out-of-core columnar metric store (DESIGN.md §12).
//
// The in-RAM MetricDatabase holds every profiled scenario as a vector of
// MetricRow — perfect at the paper's n≈895, hopeless at the 10^5–10^7 rows a
// production fleet accumulates. ColumnStore is the mmap-backed alternative:
// rows live in a single append-only binary file as fixed-capacity *blocks*
// (columnar within each block), the OS pages data in on demand, and the
// analysis stages stream blocks through a reusable scratch matrix instead of
// ever materialising the n × d dense matrix.
//
// File layout (host-endian, like every other FLARE binary artifact):
//
//   header:  magic "FLARECS1" | u64 block_rows | u64 num_metrics
//            | u64 catalog_hash
//   block*:  u64 payload_bytes | u64 first_row | u64 rows
//            | u64 ids[rows] | f64 weights[rows]
//            | f64 values[num_metrics][rows]      (column-major in the block)
//            | { u32 len, char[len] } keys[rows]
//
// Blocks are self-delimiting (`payload_bytes` covers everything after
// itself), so appends are pure file growth — exactly the shape the PR-4
// write-ahead undo journal protects (see trace/store_io.hpp for the
// journaled append; a torn tail is rolled back by truncation). The header is
// never rewritten: the row count is the sum of the block directory scanned
// at open, which keeps journal rollback a pure truncate.
//
// Random row access (representative lookups) goes through a small fixed-size
// LRU of decoded blocks; bulk reads (`for_each_block`) bypass the cache and
// decode into one reusable scratch buffer. With `sequential_drop`, consumed
// pages are madvise(MADV_DONTNEED)'d behind the streaming cursor so peak RSS
// stays bounded by a few blocks regardless of n.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <span>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "metrics/metric_database.hpp"

namespace flare::metrics {

/// Stable hash of a catalog's metric names (order-sensitive) — stored in the
/// header so a store is never silently read against the wrong schema.
[[nodiscard]] std::uint64_t catalog_hash(const MetricCatalog& catalog);

struct ColumnStoreOptions {
  /// Decoded-block LRU capacity for random row access.
  std::size_t cache_blocks = 4;
  /// Drop consumed pages behind the streaming cursor (MADV_DONTNEED) so a
  /// full-store scan keeps peak RSS at a few blocks. Off by default: repeated
  /// scans of a store that fits in memory should stay page-cache warm.
  bool sequential_drop = false;
  /// mmap the file (default). Off = read the whole file into RAM once —
  /// the portable fallback, also used automatically when mmap fails.
  bool use_mmap = true;
};

/// Creates an empty store file for `catalog` (truncates any existing file).
/// `block_rows` is the capacity of each appended block.
void create_column_store(const std::string& path, const MetricCatalog& catalog,
                         std::size_t block_rows = 1024);

/// Appends `batch`'s rows to an existing store as new blocks. NOT crash-safe
/// on its own — callers wanting rollback of torn appends must guard with
/// trace::AppendJournal (see trace/store_io.hpp, which wraps exactly that).
/// Throws ParseError when the store's schema does not match `batch`'s
/// catalog.
void append_column_store_rows(const std::string& path,
                              const MetricDatabase& batch);

/// Read-only view of a column store file.
class ColumnStore {
 public:
  /// Opens and validates the store. The catalog must match the one the store
  /// was created with (names and order — checked via the stored hash).
  /// Throws ParseError on malformed files, including torn block tails (run
  /// trace::recover_append first to roll back a crashed append).
  explicit ColumnStore(const std::string& path, const MetricCatalog& catalog,
                       ColumnStoreOptions options = {});
  ~ColumnStore();

  ColumnStore(const ColumnStore&) = delete;
  ColumnStore& operator=(const ColumnStore&) = delete;

  [[nodiscard]] std::size_t num_rows() const { return num_rows_; }
  [[nodiscard]] std::size_t num_metrics() const { return num_metrics_; }
  [[nodiscard]] std::size_t num_blocks() const { return blocks_.size(); }
  [[nodiscard]] std::size_t block_rows() const { return block_rows_; }
  [[nodiscard]] const MetricCatalog& catalog() const { return *catalog_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] bool mapped() const { return mapped_; }

  /// Structural signature of the file: header, size, and the block
  /// directory, plus the raw bytes of the first and last block. Changes on
  /// every append; cheap (does not fault in the middle of the file). Used as
  /// the first-level spill-cache key — the streaming pass additionally
  /// fingerprints the full content it reads (see core/out_of_core.hpp).
  [[nodiscard]] std::uint64_t structural_signature() const { return signature_; }

  /// Streams every block in row order as a row-major rows × num_metrics
  /// matrix plus the per-row observation weights. The matrix and span are
  /// only valid inside the callback (one scratch buffer is reused). With
  /// `sequential_drop`, pages behind the cursor are released as they are
  /// consumed.
  void for_each_block(
      const std::function<void(std::size_t first_row, const linalg::Matrix& values,
                               std::span<const double> weights)>& visit) const;

  /// Random row access through the decoded-block LRU (representative
  /// scenario lookups). Not thread-safe — the cache mutates.
  [[nodiscard]] MetricRow row(std::size_t index) const;

  /// Observation weights in row order (streamed; O(n) but only 8n bytes).
  [[nodiscard]] std::vector<double> weights() const;

  /// Materialises the dense matrix — convenience for tests and small stores;
  /// defeats the point at scale.
  [[nodiscard]] linalg::Matrix to_matrix() const;

  /// Rehydrates the whole store into an in-RAM MetricDatabase (small stores,
  /// tests, and CLI paths that need MetricDatabase semantics).
  [[nodiscard]] MetricDatabase to_database() const;

  /// LRU bookkeeping (tests assert the cache is actually bounded).
  [[nodiscard]] std::size_t cache_hits() const { return cache_hits_; }
  [[nodiscard]] std::size_t cache_misses() const { return cache_misses_; }

 private:
  struct BlockInfo {
    std::uint64_t offset = 0;    ///< file offset of the payload_bytes field
    std::uint64_t payload = 0;   ///< bytes after the payload_bytes field
    std::size_t first_row = 0;
    std::size_t rows = 0;
  };

  /// One decoded block in the random-access LRU.
  struct DecodedBlock {
    std::size_t index = 0;
    std::vector<std::uint64_t> ids;
    std::vector<double> weights;
    linalg::Matrix values;  ///< row-major rows × num_metrics
    std::vector<std::string> keys;
  };

  [[nodiscard]] const std::byte* bytes() const;
  void decode_block(std::size_t block_index, DecodedBlock& out) const;
  [[nodiscard]] const DecodedBlock& cached_block(std::size_t block_index) const;
  [[nodiscard]] std::size_t block_of_row(std::size_t row_index) const;

  std::string path_;
  const MetricCatalog* catalog_;  ///< non-owning; catalogs are long-lived
  ColumnStoreOptions options_;
  std::size_t block_rows_ = 0;
  std::size_t num_metrics_ = 0;
  std::size_t num_rows_ = 0;
  std::uint64_t signature_ = 0;
  std::vector<BlockInfo> blocks_;

  // Backing bytes: either an mmap'ed region or an owned in-RAM copy.
  void* map_ = nullptr;
  std::size_t map_size_ = 0;
  bool mapped_ = false;
  std::vector<std::byte> fallback_;

  // Decoded-block LRU (front = most recent). Mutable: row() is logically
  // const but warms the cache, mirroring how page caches behave.
  mutable std::list<DecodedBlock> lru_;
  mutable std::size_t cache_hits_ = 0;
  mutable std::size_t cache_misses_ = 0;
};

}  // namespace flare::metrics
