#include "metrics/metric_database.hpp"

#include "util/error.hpp"

namespace flare::metrics {

MetricDatabase::MetricDatabase(const MetricCatalog& catalog) : catalog_(&catalog) {}

void MetricDatabase::add_row(MetricRow row) {
  ensure(row.values.size() == catalog_->size(),
         "MetricDatabase::add_row: value count does not match catalog");
  rows_.push_back(std::move(row));
}

const MetricRow& MetricDatabase::row(std::size_t index) const {
  ensure(index < rows_.size(), "MetricDatabase::row: index out of range");
  return rows_[index];
}

linalg::Matrix MetricDatabase::to_matrix() const {
  ensure(!rows_.empty(), "MetricDatabase::to_matrix: empty database");
  linalg::Matrix m(rows_.size(), catalog_->size());
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    m.set_row(r, rows_[r].values);
  }
  return m;
}

std::vector<double> MetricDatabase::column(std::string_view name) const {
  const auto index = catalog_->index_of(name);
  ensure(index.has_value(), "MetricDatabase::column: unknown metric name");
  std::vector<double> out;
  out.reserve(rows_.size());
  for (const MetricRow& r : rows_) out.push_back(r.values[*index]);
  return out;
}

std::vector<double> MetricDatabase::weights() const {
  std::vector<double> out;
  out.reserve(rows_.size());
  for (const MetricRow& r : rows_) out.push_back(r.observation_weight);
  return out;
}

}  // namespace flare::metrics
