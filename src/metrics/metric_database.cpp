#include "metrics/metric_database.hpp"

#include "util/error.hpp"

namespace flare::metrics {

MetricDatabase::MetricDatabase(const MetricCatalog& catalog) : catalog_(&catalog) {}

void MetricDatabase::add_row(MetricRow row) {
  ensure(row.values.size() == catalog_->size(),
         "MetricDatabase::add_row: row has " + std::to_string(row.values.size()) +
             " values but the catalog has " + std::to_string(catalog_->size()) +
             " metrics");
  rows_.push_back(std::move(row));
}

void MetricDatabase::append(const MetricDatabase& other) {
  if (other.catalog_ != catalog_) {
    ensure(other.catalog_->size() == catalog_->size(),
           "MetricDatabase::append: catalog size mismatch");
    for (std::size_t i = 0; i < catalog_->size(); ++i) {
      ensure(other.catalog_->info(i).name == catalog_->info(i).name,
             "MetricDatabase::append: catalog metric mismatch at '" +
                 catalog_->info(i).name + "'");
    }
  }
  rows_.reserve(rows_.size() + other.rows_.size());
  for (const MetricRow& row : other.rows_) add_row(row);
}

void MetricDatabase::set_observation_weights(const std::vector<double>& weights) {
  ensure(weights.size() == rows_.size(),
         "MetricDatabase::set_observation_weights: weight count must match rows");
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    ensure(weights[i] >= 0.0,
           "MetricDatabase::set_observation_weights: weights must be non-negative");
    rows_[i].observation_weight = weights[i];
  }
}

const MetricRow& MetricDatabase::row(std::size_t index) const {
  ensure(index < rows_.size(), "MetricDatabase::row: index out of range");
  return rows_[index];
}

MetricRow& MetricDatabase::row_mutable(std::size_t index) {
  ensure(index < rows_.size(), "MetricDatabase::row_mutable: index out of range");
  return rows_[index];
}

linalg::Matrix MetricDatabase::to_matrix() const {
  ensure(!rows_.empty(), "MetricDatabase::to_matrix: empty database");
  linalg::Matrix m(rows_.size(), catalog_->size());
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    m.set_row(r, rows_[r].values);
  }
  return m;
}

std::vector<double> MetricDatabase::column(std::string_view name) const {
  const auto index = catalog_->index_of(name);
  ensure(index.has_value(), "MetricDatabase::column: unknown metric name");
  std::vector<double> out;
  out.reserve(rows_.size());
  for (const MetricRow& r : rows_) out.push_back(r.values[*index]);
  return out;
}

std::vector<double> MetricDatabase::weights() const {
  std::vector<double> out;
  out.reserve(rows_.size());
  for (const MetricRow& r : rows_) out.push_back(r.observation_weight);
  return out;
}

}  // namespace flare::metrics
