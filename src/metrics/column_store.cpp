#include "metrics/column_store.hpp"

#include <cstdio>
#include <cstring>
#include <string>

#include "util/error.hpp"
#include "util/hash.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define FLARE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace flare::metrics {
namespace {

constexpr char kMagic[8] = {'F', 'L', 'A', 'R', 'E', 'C', 'S', '1'};
constexpr std::size_t kHeaderBytes = 8 + 3 * sizeof(std::uint64_t);
// Raw bytes of the first/last block folded into the structural signature.
constexpr std::size_t kSignatureBlockBytes = 4096;

/// RAII stdio handle (the writer paths; the reader maps or slurps).
struct File {
  std::FILE* f = nullptr;
  explicit File(const std::string& path, const char* mode)
      : f(std::fopen(path.c_str(), mode)) {}
  ~File() {
    if (f != nullptr) std::fclose(f);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;
};

void write_bytes(std::FILE* f, const void* data, std::size_t bytes,
                 const std::string& path) {
  if (std::fwrite(data, 1, bytes, f) != bytes) {
    throw ParseError("column store: short write to " + path);
  }
}

void write_u64(std::FILE* f, std::uint64_t v, const std::string& path) {
  write_bytes(f, &v, sizeof(v), path);
}

template <typename T>
T read_pod(const std::byte* base, std::size_t size, std::size_t offset,
           const std::string& path) {
  if (offset + sizeof(T) > size) {
    throw ParseError("column store " + path +
                     ": truncated file (torn append? run recover_append)");
  }
  T v;
  std::memcpy(&v, base + offset, sizeof(T));
  return v;
}

}  // namespace

std::uint64_t catalog_hash(const MetricCatalog& catalog) {
  std::uint64_t h = util::kFnvOffsetBasis;
  for (const MetricInfo& info : catalog.metrics()) {
    h = util::fnv1a(info.name, h);
    h = util::fnv1a("\n", h);
  }
  return h;
}

void create_column_store(const std::string& path, const MetricCatalog& catalog,
                         std::size_t block_rows) {
  ensure(block_rows > 0, "create_column_store: block_rows must be positive");
  ensure(catalog.size() > 0, "create_column_store: empty catalog");
  File file(path, "wb");
  if (file.f == nullptr) {
    throw ParseError("create_column_store: cannot create " + path);
  }
  write_bytes(file.f, kMagic, sizeof(kMagic), path);
  write_u64(file.f, block_rows, path);
  write_u64(file.f, catalog.size(), path);
  write_u64(file.f, catalog_hash(catalog), path);
  if (std::fflush(file.f) != 0) {
    throw ParseError("create_column_store: cannot flush " + path);
  }
}

void append_column_store_rows(const std::string& path,
                              const MetricDatabase& batch) {
  // Validate the header against the batch's catalog, and find the current
  // row count by scanning the self-delimiting block directory — the header
  // is immutable so a journal rollback stays a pure truncate.
  std::uint64_t block_rows = 0;
  std::uint64_t next_row = 0;
  {
    File file(path, "rb");
    if (file.f == nullptr) {
      throw ParseError("append_column_store_rows: cannot open " + path);
    }
    char magic[8];
    std::uint64_t header[3];
    if (std::fread(magic, 1, sizeof(magic), file.f) != sizeof(magic) ||
        std::fread(header, sizeof(std::uint64_t), 3, file.f) != 3 ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
      throw ParseError("append_column_store_rows: " + path +
                       " is not a column store");
    }
    block_rows = header[0];
    if (header[1] != batch.num_metrics() ||
        header[2] != catalog_hash(batch.catalog())) {
      throw ParseError("append_column_store_rows: catalog mismatch for " + path);
    }
    std::uint64_t payload = 0;
    while (std::fread(&payload, sizeof(payload), 1, file.f) == 1) {
      std::uint64_t first_row = 0, rows = 0;
      if (std::fread(&first_row, sizeof(first_row), 1, file.f) != 1 ||
          std::fread(&rows, sizeof(rows), 1, file.f) != 1 ||
          std::fseek(file.f,
                     static_cast<long>(payload - 2 * sizeof(std::uint64_t)),
                     SEEK_CUR) != 0) {
        throw ParseError("append_column_store_rows: torn block tail in " +
                         path + " — run recover_append first");
      }
      next_row = first_row + rows;
    }
  }

  File file(path, "ab");
  if (file.f == nullptr) {
    throw ParseError("append_column_store_rows: cannot append to " + path);
  }
  const std::size_t d = batch.num_metrics();
  for (std::size_t start = 0; start < batch.num_rows(); start += block_rows) {
    const std::size_t rows = std::min<std::size_t>(block_rows,
                                                   batch.num_rows() - start);
    std::size_t key_bytes = 0;
    for (std::size_t r = 0; r < rows; ++r) {
      key_bytes += sizeof(std::uint32_t) +
                   batch.row(start + r).scenario_key.size();
    }
    const std::uint64_t payload = 2 * sizeof(std::uint64_t) +  // first_row, rows
                                  rows * sizeof(std::uint64_t) +
                                  rows * sizeof(double) +
                                  rows * d * sizeof(double) + key_bytes;
    write_u64(file.f, payload, path);
    write_u64(file.f, next_row + start, path);
    write_u64(file.f, rows, path);
    for (std::size_t r = 0; r < rows; ++r) {
      write_u64(file.f, batch.row(start + r).scenario_id, path);
    }
    for (std::size_t r = 0; r < rows; ++r) {
      const double w = batch.row(start + r).observation_weight;
      write_bytes(file.f, &w, sizeof(w), path);
    }
    // Column-major within the block: one metric's values are contiguous.
    std::vector<double> column(rows);
    for (std::size_t c = 0; c < d; ++c) {
      for (std::size_t r = 0; r < rows; ++r) {
        column[r] = batch.row(start + r).values[c];
      }
      write_bytes(file.f, column.data(), rows * sizeof(double), path);
    }
    for (std::size_t r = 0; r < rows; ++r) {
      const std::string& key = batch.row(start + r).scenario_key;
      const std::uint32_t len = static_cast<std::uint32_t>(key.size());
      write_bytes(file.f, &len, sizeof(len), path);
      write_bytes(file.f, key.data(), key.size(), path);
    }
  }
  if (std::fflush(file.f) != 0) {
    throw ParseError("append_column_store_rows: cannot flush " + path);
  }
}

ColumnStore::ColumnStore(const std::string& path, const MetricCatalog& catalog,
                         ColumnStoreOptions options)
    : path_(path), catalog_(&catalog), options_(options) {
#if FLARE_HAVE_MMAP
  if (options_.use_mmap) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      throw ParseError("ColumnStore: cannot open " + path);
    }
    struct stat st{};
    if (::fstat(fd, &st) == 0 && st.st_size > 0) {
      void* map = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                         PROT_READ, MAP_PRIVATE, fd, 0);
      if (map != MAP_FAILED) {
        map_ = map;
        map_size_ = static_cast<std::size_t>(st.st_size);
        mapped_ = true;
      }
    }
    ::close(fd);
  }
#endif
  if (!mapped_) {
    File file(path, "rb");
    if (file.f == nullptr) {
      throw ParseError("ColumnStore: cannot open " + path);
    }
    std::fseek(file.f, 0, SEEK_END);
    const long size = std::ftell(file.f);
    std::fseek(file.f, 0, SEEK_SET);
    fallback_.resize(size > 0 ? static_cast<std::size_t>(size) : 0);
    if (!fallback_.empty() &&
        std::fread(fallback_.data(), 1, fallback_.size(), file.f) !=
            fallback_.size()) {
      throw ParseError("ColumnStore: short read of " + path);
    }
    map_size_ = fallback_.size();
  }

  const std::byte* base = bytes();
  if (map_size_ < kHeaderBytes ||
      std::memcmp(base, kMagic, sizeof(kMagic)) != 0) {
    throw ParseError("ColumnStore: " + path + " is not a column store");
  }
  block_rows_ = read_pod<std::uint64_t>(base, map_size_, 8, path_);
  num_metrics_ = read_pod<std::uint64_t>(base, map_size_, 16, path_);
  const std::uint64_t stored_hash =
      read_pod<std::uint64_t>(base, map_size_, 24, path_);
  if (num_metrics_ != catalog.size() || stored_hash != catalog_hash(catalog)) {
    throw ParseError("ColumnStore: catalog mismatch for " + path +
                     " — the store was created with a different metric schema");
  }
  ensure(block_rows_ > 0, "ColumnStore: corrupt header (block_rows = 0)");

  // Scan the block directory and fold the structural signature.
  std::uint64_t sig = util::hash_mix(stored_hash, map_size_);
  std::size_t offset = kHeaderBytes;
  while (offset < map_size_) {
    BlockInfo info;
    info.offset = offset;
    info.payload = read_pod<std::uint64_t>(base, map_size_, offset, path_);
    const std::size_t body = offset + sizeof(std::uint64_t);
    if (body + info.payload > map_size_ ||
        info.payload < 2 * sizeof(std::uint64_t)) {
      throw ParseError("ColumnStore: torn block tail in " + path_ +
                       " — run trace::recover_append to roll it back");
    }
    info.first_row = read_pod<std::uint64_t>(base, map_size_, body, path_);
    info.rows = read_pod<std::uint64_t>(base, map_size_, body + 8, path_);
    if (info.first_row != num_rows_ || info.rows == 0 ||
        info.rows > block_rows_) {
      throw ParseError("ColumnStore: corrupt block directory in " + path_);
    }
    num_rows_ += info.rows;
    sig = util::hash_mix(sig, info.payload);
    sig = util::hash_mix(sig, info.rows);
    blocks_.push_back(info);
    offset = body + info.payload;
  }
  for (const BlockInfo* edge :
       {blocks_.empty() ? nullptr : &blocks_.front(),
        blocks_.size() < 2 ? nullptr : &blocks_.back()}) {
    if (edge == nullptr) continue;
    const std::size_t take =
        std::min<std::size_t>(kSignatureBlockBytes, edge->payload);
    sig = util::fnv1a(
        std::string_view(
            reinterpret_cast<const char*>(base + edge->offset + 8), take),
        sig);
  }
  signature_ = sig;

#if FLARE_HAVE_MMAP
  if (mapped_) {
    ::madvise(map_, map_size_,
              options_.sequential_drop ? MADV_SEQUENTIAL : MADV_NORMAL);
  }
#endif
}

ColumnStore::~ColumnStore() {
#if FLARE_HAVE_MMAP
  if (mapped_ && map_ != nullptr) {
    ::munmap(map_, map_size_);
  }
#endif
}

const std::byte* ColumnStore::bytes() const {
  return mapped_ ? static_cast<const std::byte*>(map_) : fallback_.data();
}

void ColumnStore::decode_block(std::size_t block_index, DecodedBlock& out) const {
  const BlockInfo& info = blocks_[block_index];
  const std::byte* base = bytes();
  std::size_t offset = info.offset + sizeof(std::uint64_t) + 16;  // skip header
  out.index = block_index;
  out.ids.resize(info.rows);
  std::memcpy(out.ids.data(), base + offset, info.rows * sizeof(std::uint64_t));
  offset += info.rows * sizeof(std::uint64_t);
  out.weights.resize(info.rows);
  std::memcpy(out.weights.data(), base + offset, info.rows * sizeof(double));
  offset += info.rows * sizeof(double);
  // Transpose the column-major payload into a row-major scratch matrix.
  if (out.values.rows() != info.rows || out.values.cols() != num_metrics_) {
    out.values = linalg::Matrix(info.rows, num_metrics_);
  }
  std::vector<double> column(info.rows);
  for (std::size_t c = 0; c < num_metrics_; ++c) {
    std::memcpy(column.data(), base + offset, info.rows * sizeof(double));
    offset += info.rows * sizeof(double);
    for (std::size_t r = 0; r < info.rows; ++r) {
      out.values(r, c) = column[r];
    }
  }
  out.keys.resize(info.rows);
  for (std::size_t r = 0; r < info.rows; ++r) {
    const std::uint32_t len =
        read_pod<std::uint32_t>(base, map_size_, offset, path_);
    offset += sizeof(std::uint32_t);
    if (offset + len > map_size_) {
      throw ParseError("ColumnStore: corrupt key section in " + path_);
    }
    out.keys[r].assign(reinterpret_cast<const char*>(base + offset), len);
    offset += len;
  }
}

void ColumnStore::for_each_block(
    const std::function<void(std::size_t, const linalg::Matrix&,
                             std::span<const double>)>& visit) const {
  DecodedBlock scratch;
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    decode_block(b, scratch);
    visit(blocks_[b].first_row, scratch.values,
          std::span<const double>(scratch.weights));
#if FLARE_HAVE_MMAP
    if (mapped_ && options_.sequential_drop) {
      // Release fully consumed pages behind the cursor: round the block's
      // byte range down/up to page boundaries and drop whole pages only.
      const long page = ::sysconf(_SC_PAGESIZE);
      if (page > 0) {
        const std::size_t p = static_cast<std::size_t>(page);
        const std::size_t lo = (blocks_[b].offset / p) * p;
        const std::size_t end = blocks_[b].offset + 8 + blocks_[b].payload;
        const std::size_t hi = (end / p) * p;
        if (hi > lo) {
          ::madvise(static_cast<std::byte*>(map_) + lo, hi - lo,
                    MADV_DONTNEED);
        }
      }
    }
#endif
  }
}

std::size_t ColumnStore::block_of_row(std::size_t row_index) const {
  ensure(row_index < num_rows_, "ColumnStore::row: index out of range");
  // Blocks other than the append tails are full, so a direct guess is almost
  // always right; fall back to a linear walk for ragged layouts.
  std::size_t guess = std::min(row_index / block_rows_, blocks_.size() - 1);
  while (guess > 0 && blocks_[guess].first_row > row_index) --guess;
  while (guess + 1 < blocks_.size() &&
         blocks_[guess].first_row + blocks_[guess].rows <= row_index) {
    ++guess;
  }
  return guess;
}

const ColumnStore::DecodedBlock& ColumnStore::cached_block(
    std::size_t block_index) const {
  for (auto it = lru_.begin(); it != lru_.end(); ++it) {
    if (it->index == block_index) {
      ++cache_hits_;
      lru_.splice(lru_.begin(), lru_, it);
      return lru_.front();
    }
  }
  ++cache_misses_;
  lru_.emplace_front();
  decode_block(block_index, lru_.front());
  const std::size_t cap = std::max<std::size_t>(1, options_.cache_blocks);
  while (lru_.size() > cap) lru_.pop_back();
  return lru_.front();
}

MetricRow ColumnStore::row(std::size_t index) const {
  const std::size_t b = block_of_row(index);
  const DecodedBlock& block = cached_block(b);
  const std::size_t local = index - blocks_[b].first_row;
  MetricRow row;
  row.scenario_id = block.ids[local];
  row.scenario_key = block.keys[local];
  row.observation_weight = block.weights[local];
  const std::span<const double> values = block.values.row(local);
  row.values.assign(values.begin(), values.end());
  return row;
}

std::vector<double> ColumnStore::weights() const {
  std::vector<double> out;
  out.reserve(num_rows_);
  const std::byte* base = bytes();
  for (const BlockInfo& info : blocks_) {
    const std::size_t offset = info.offset + sizeof(std::uint64_t) + 16 +
                               info.rows * sizeof(std::uint64_t);
    const std::size_t prev = out.size();
    out.resize(prev + info.rows);
    std::memcpy(out.data() + prev, base + offset, info.rows * sizeof(double));
  }
  return out;
}

linalg::Matrix ColumnStore::to_matrix() const {
  linalg::Matrix out(num_rows_, num_metrics_);
  for_each_block([&](std::size_t first_row, const linalg::Matrix& values,
                     std::span<const double>) {
    for (std::size_t r = 0; r < values.rows(); ++r) {
      out.set_row(first_row + r, values.row(r));
    }
  });
  return out;
}

MetricDatabase ColumnStore::to_database() const {
  MetricDatabase db(*catalog_);
  db.reserve(num_rows_);
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    DecodedBlock block;
    decode_block(b, block);
    for (std::size_t r = 0; r < blocks_[b].rows; ++r) {
      MetricRow row;
      row.scenario_id = block.ids[r];
      row.scenario_key = std::move(block.keys[r]);
      row.observation_weight = block.weights[r];
      const std::span<const double> values = block.values.row(r);
      row.values.assign(values.begin(), values.end());
      db.add_row(std::move(row));
    }
  }
  return db;
}

}  // namespace flare::metrics
