// The raw performance/resource metric schema (paper Fig. 6).
//
// Metrics are collected at two levels (§4.2): whole-machine aggregates
// ("Machine.*", every job's contribution) and High-Priority-job aggregates
// ("HP.*", the jobs whose performance the operator manages). The two-level
// scheme is what lets the analysis see both the jobs of interest and the
// environment they run in — e.g. the paper's PC10 ("HP memory-bound on a
// non-backend-bound machine").
//
// The catalog deliberately contains redundant metrics (memory bandwidth in
// GB/s *and* bytes/s, hit ratio *and* miss ratio, ...) because real
// monitoring stacks do; the Analyzer's correlation refinement is expected to
// prune them (100+ -> ~85 in the paper).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace flare::metrics {

enum class MetricLevel : std::uint8_t {
  kMachine,  ///< aggregated over every job on the machine
  kHpJobs,   ///< aggregated over High-Priority jobs only
};

enum class MetricCategory : std::uint8_t {
  kCpu,
  kCache,
  kMemory,
  kTopdown,
  kNetwork,
  kDisk,
  kSystem,
  kOccupancy,
};

[[nodiscard]] std::string_view to_string(MetricLevel level);
[[nodiscard]] std::string_view to_string(MetricCategory category);

struct MetricInfo {
  std::size_t index = 0;     ///< dense column index in the database
  std::string name;          ///< fully qualified, e.g. "HP.LLC_MPKI"
  std::string base_name;     ///< e.g. "LLC_MPKI"
  MetricLevel level = MetricLevel::kMachine;
  MetricCategory category = MetricCategory::kCpu;
  std::string unit;
};

/// Immutable metric schema. `standard()` is the catalog the simulated
/// Profiler fills; tests may build reduced catalogs via the constructor.
class MetricCatalog {
 public:
  explicit MetricCatalog(std::vector<MetricInfo> metrics);

  /// The full two-level schema used throughout the reproduction.
  [[nodiscard]] static const MetricCatalog& standard();

  /// `standard()` plus one "Machine.Mix_<job>_Instances" occupancy column per
  /// job type — the paper's §5.3 suggestion for improving *per-job* estimates
  /// ("including the per-job metrics in our method would greatly improve the
  /// estimation accuracy for the job"), offered as an opt-in because adding
  /// per-job dimensions can dilute the general clustering.
  [[nodiscard]] static const MetricCatalog& standard_with_job_mix();

  /// Appends a "<name>_Std" column after every metric of `base` — the §4.1
  /// note about enriching rows with temporal information ("one may include
  /// standard deviations (e.g., IPC: 1.4±0.5)"). The Profiler fills these
  /// with the stddev across its sampling periods.
  [[nodiscard]] static MetricCatalog with_temporal_stddev(const MetricCatalog& base);

  /// True when this metric is a derived temporal-stddev column.
  [[nodiscard]] static bool is_stddev_column(const MetricInfo& info);

  [[nodiscard]] std::size_t size() const { return metrics_.size(); }
  [[nodiscard]] const MetricInfo& info(std::size_t index) const;
  [[nodiscard]] const std::vector<MetricInfo>& metrics() const { return metrics_; }

  /// Column index by fully qualified name.
  [[nodiscard]] std::optional<std::size_t> index_of(std::string_view name) const;

  /// Count of metrics at a given level.
  [[nodiscard]] std::size_t count_at_level(MetricLevel level) const;

 private:
  std::vector<MetricInfo> metrics_;
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace flare::metrics
