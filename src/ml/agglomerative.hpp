// Agglomerative (hierarchical) clustering with Ward linkage.
//
// FLARE §4.4 notes that "alternatives (e.g., hierarchical clustering of
// [74, 80]) can also be applied" in place of K-means; this implementation
// backs that claim and serves as an ablation comparator.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace flare::ml {

enum class Linkage : unsigned char {
  kWard,      ///< minimises within-cluster variance increase (default)
  kAverage,   ///< UPGMA mean pairwise distance
  kComplete,  ///< farthest-pair distance
  kSingle,    ///< nearest-pair distance
};

struct AgglomerativeResult {
  std::vector<std::size_t> assignment;  ///< cluster id per row, ids in [0, k)
  std::vector<std::size_t> cluster_sizes;
  /// Centroid (mean) of each cluster — lets callers reuse the K-means
  /// representative-selection machinery unchanged.
  linalg::Matrix centroids;
};

/// Cuts the merge tree at `k` clusters. Lance–Williams updates, O(n²) memory
/// and O(n³) time worst case — fine for ≤ a few thousand scenarios.
[[nodiscard]] AgglomerativeResult agglomerative_cluster(const linalg::Matrix& data,
                                                        std::size_t k,
                                                        Linkage linkage = Linkage::kWard);

}  // namespace flare::ml
