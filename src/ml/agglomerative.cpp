#include "ml/agglomerative.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/error.hpp"

namespace flare::ml {
namespace {

/// Lance–Williams coefficients give each linkage as an update rule:
/// d(i∪j, k) = αi d(i,k) + αj d(j,k) + β d(i,j) + γ |d(i,k) − d(j,k)|.
struct LanceWilliams {
  double ai, aj, beta, gamma;
};

LanceWilliams coefficients(Linkage linkage, double ni, double nj, double nk) {
  switch (linkage) {
    case Linkage::kWard: {
      const double total = ni + nj + nk;
      return {(ni + nk) / total, (nj + nk) / total, -nk / total, 0.0};
    }
    case Linkage::kAverage:
      return {ni / (ni + nj), nj / (ni + nj), 0.0, 0.0};
    case Linkage::kComplete:
      return {0.5, 0.5, 0.0, 0.5};
    case Linkage::kSingle:
      return {0.5, 0.5, 0.0, -0.5};
  }
  ensure(false, "agglomerative: unknown linkage");
  return {};
}

}  // namespace

AgglomerativeResult agglomerative_cluster(const linalg::Matrix& data, std::size_t k,
                                          Linkage linkage) {
  const std::size_t n = data.rows();
  ensure(k >= 1 && k <= n, "agglomerative_cluster: invalid cluster count");

  // Active cluster bookkeeping. Each row starts as its own cluster.
  std::vector<bool> active(n, true);
  std::vector<double> size(n, 1.0);
  std::vector<std::vector<std::size_t>> members(n);
  for (std::size_t i = 0; i < n; ++i) members[i] = {i};

  // Pairwise squared distances (Ward works on squared Euclidean).
  linalg::Matrix dist(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = linalg::squared_distance(data.row(i), data.row(j));
      dist(i, j) = d;
      dist(j, i) = d;
    }
  }

  std::size_t clusters = n;
  while (clusters > k) {
    // Find the closest active pair.
    double best = std::numeric_limits<double>::max();
    std::size_t bi = 0, bj = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      for (std::size_t j = i + 1; j < n; ++j) {
        if (!active[j]) continue;
        if (dist(i, j) < best) {
          best = dist(i, j);
          bi = i;
          bj = j;
        }
      }
    }

    // Merge bj into bi; update distances via Lance–Williams.
    for (std::size_t m = 0; m < n; ++m) {
      if (!active[m] || m == bi || m == bj) continue;
      const LanceWilliams lw = coefficients(linkage, size[bi], size[bj], size[m]);
      const double updated = lw.ai * dist(bi, m) + lw.aj * dist(bj, m) +
                             lw.beta * dist(bi, bj) +
                             lw.gamma * std::abs(dist(bi, m) - dist(bj, m));
      dist(bi, m) = updated;
      dist(m, bi) = updated;
    }
    size[bi] += size[bj];
    members[bi].insert(members[bi].end(), members[bj].begin(), members[bj].end());
    members[bj].clear();
    active[bj] = false;
    --clusters;
  }

  // Compact to ids [0, k) in first-seen order for determinism.
  AgglomerativeResult result;
  result.assignment.assign(n, 0);
  result.cluster_sizes.clear();
  result.centroids = linalg::Matrix(k, data.cols());
  std::size_t next_id = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!active[i]) continue;
    for (const std::size_t row : members[i]) result.assignment[row] = next_id;
    result.cluster_sizes.push_back(members[i].size());
    for (const std::size_t row : members[i]) {
      const auto r = data.row(row);
      for (std::size_t c = 0; c < data.cols(); ++c) {
        result.centroids(next_id, c) += r[c];
      }
    }
    for (std::size_t c = 0; c < data.cols(); ++c) {
      result.centroids(next_id, c) /= static_cast<double>(members[i].size());
    }
    ++next_id;
  }
  return result;
}

}  // namespace flare::ml
