// Clustering quality measures used to choose the cluster count
// (FLARE §4.4 / Fig. 9): Sum of Squared Errors (elbow) and Silhouette Score.
#pragma once

#include "linalg/matrix.hpp"

namespace flare::ml {

/// Sum over points of squared distance to the centroid of their cluster.
[[nodiscard]] double sum_squared_errors(const linalg::Matrix& data,
                                        const linalg::Matrix& centroids,
                                        const std::vector<std::size_t>& assignment);

/// Mean silhouette over all points, in [-1, 1]. Points in singleton clusters
/// contribute 0 (the standard convention). O(n²) pairwise distances — fine
/// for the ~895-scenario scale this library targets.
[[nodiscard]] double silhouette_score(const linalg::Matrix& data,
                                      const std::vector<std::size_t>& assignment,
                                      std::size_t num_clusters);

/// Per-point silhouette values (same conventions as silhouette_score).
[[nodiscard]] std::vector<double> silhouette_samples(
    const linalg::Matrix& data, const std::vector<std::size_t>& assignment,
    std::size_t num_clusters);

}  // namespace flare::ml
