// Clustering quality measures used to choose the cluster count
// (FLARE §4.4 / Fig. 9): Sum of Squared Errors (elbow) and Silhouette Score.
//
// The silhouette is O(n²) in pairwise distances. A k-sweep evaluates it for
// every candidate k over the SAME fixed point set, so the distances can be
// computed once (`pairwise_distances`) and shared across the sweep — that
// single reuse removes the dominant cost of the Fig. 9 curve. All entry
// points accept an optional ThreadPool; parallel and serial runs produce
// bit-identical values (points are independent; means reduce in index order).
#pragma once

#include <cstdint>

#include "linalg/matrix.hpp"

namespace flare::ml {

/// Precomputed n×n Euclidean (not squared) distance matrix, shared across a
/// cluster-count sweep. Symmetric with a zero diagonal.
class PairwiseDistances {
 public:
  PairwiseDistances() = default;

  [[nodiscard]] std::size_t size() const { return d_.rows(); }
  [[nodiscard]] double operator()(std::size_t i, std::size_t j) const {
    return d_(i, j);
  }
  [[nodiscard]] const linalg::Matrix& matrix() const { return d_; }

 private:
  friend PairwiseDistances pairwise_distances(const linalg::Matrix& data,
                                              util::ThreadPool* pool);
  explicit PairwiseDistances(linalg::Matrix d) : d_(std::move(d)) {}

  linalg::Matrix d_;
};

/// Computes all pairwise Euclidean distances (upper triangle in parallel,
/// then mirrored). Each entry equals sqrt(squared_distance(row_i, row_j)) —
/// the exact value the uncached silhouette computes on the fly.
[[nodiscard]] PairwiseDistances pairwise_distances(const linalg::Matrix& data,
                                                   util::ThreadPool* pool = nullptr);

/// Sum over points of squared distance to the centroid of their cluster.
[[nodiscard]] double sum_squared_errors(const linalg::Matrix& data,
                                        const linalg::Matrix& centroids,
                                        const std::vector<std::size_t>& assignment);

/// Mean silhouette over all points, in [-1, 1]. Points in singleton clusters
/// contribute 0 (the standard convention). O(n²) pairwise distances — use
/// the PairwiseDistances overload when scoring several clusterings of the
/// same points (e.g. the Fig. 9 k-sweep).
[[nodiscard]] double silhouette_score(const linalg::Matrix& data,
                                      const std::vector<std::size_t>& assignment,
                                      std::size_t num_clusters,
                                      util::ThreadPool* pool = nullptr);

/// Silhouette score over a precomputed distance matrix; bit-identical to the
/// raw-data overload on the matrix `distances` was built from.
[[nodiscard]] double silhouette_score(const PairwiseDistances& distances,
                                      const std::vector<std::size_t>& assignment,
                                      std::size_t num_clusters,
                                      util::ThreadPool* pool = nullptr);

/// Per-point silhouette values (same conventions as silhouette_score).
[[nodiscard]] std::vector<double> silhouette_samples(
    const linalg::Matrix& data, const std::vector<std::size_t>& assignment,
    std::size_t num_clusters, util::ThreadPool* pool = nullptr);

/// Per-point silhouettes over a precomputed distance matrix.
[[nodiscard]] std::vector<double> silhouette_samples(
    const PairwiseDistances& distances, const std::vector<std::size_t>& assignment,
    std::size_t num_clusters, util::ThreadPool* pool = nullptr);

/// Sampled silhouette estimator for the out-of-core regime: restricts the
/// computation to `sample_size` rows drawn without replacement (seeded,
/// deterministic) and scores the induced sub-clustering with the exact
/// kernel — O(s²·d) instead of O(n²·d), and no n×n distance cache. Degrades
/// to the exact score when n ≤ sample_size. Callers must surface that the
/// value is an estimate (see core::ClusterQualityPoint::silhouette_estimated).
[[nodiscard]] double silhouette_score_sampled(
    const linalg::Matrix& data, const std::vector<std::size_t>& assignment,
    std::size_t num_clusters, std::size_t sample_size, std::uint64_t seed,
    util::ThreadPool* pool = nullptr);

}  // namespace flare::ml
