#include "ml/pca.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/covariance.hpp"
#include "linalg/eigen.hpp"
#include "util/error.hpp"

namespace flare::ml {

void Pca::fit(const linalg::Matrix& data, util::ThreadPool* pool) {
  ensure(data.rows() >= 2, "Pca::fit: need at least two observations");
  ensure(data.cols() >= 1, "Pca::fit: need at least one variable");

  mean_ = linalg::column_means(data);
  const linalg::Matrix cov = linalg::covariance_matrix(data, pool);
  linalg::SymmetricEigenResult eig = linalg::symmetric_eigen(cov);

  // Covariance matrices are PSD; clamp tiny negative round-off.
  for (double& ev : eig.eigenvalues) ev = std::max(ev, 0.0);

  // Fix eigenvector sign for determinism: largest-|loading| entry positive.
  for (std::size_t j = 0; j < eig.eigenvectors.cols(); ++j) {
    std::size_t arg_max = 0;
    double best = 0.0;
    for (std::size_t i = 0; i < eig.eigenvectors.rows(); ++i) {
      const double mag = std::abs(eig.eigenvectors(i, j));
      if (mag > best) {
        best = mag;
        arg_max = i;
      }
    }
    if (eig.eigenvectors(arg_max, j) < 0.0) {
      for (std::size_t i = 0; i < eig.eigenvectors.rows(); ++i) {
        eig.eigenvectors(i, j) = -eig.eigenvectors(i, j);
      }
    }
  }

  components_ = std::move(eig.eigenvectors);
  eigenvalues_ = std::move(eig.eigenvalues);

  double total = 0.0;
  for (const double ev : eigenvalues_) total += ev;
  explained_ratio_.assign(eigenvalues_.size(), 0.0);
  if (total > 0.0) {
    for (std::size_t i = 0; i < eigenvalues_.size(); ++i) {
      explained_ratio_[i] = eigenvalues_[i] / total;
    }
  }
}

linalg::Matrix Pca::transform(const linalg::Matrix& data) const {
  return transform(data, dimension());
}

linalg::Matrix Pca::transform(const linalg::Matrix& data, std::size_t k) const {
  ensure(fitted(), "Pca::transform: not fitted");
  ensure(data.cols() == dimension(), "Pca::transform: column mismatch");
  ensure(k >= 1 && k <= dimension(), "Pca::transform: invalid component count");
  linalg::Matrix scores(data.rows(), k);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    for (std::size_t j = 0; j < k; ++j) {
      double s = 0.0;
      for (std::size_t i = 0; i < dimension(); ++i) {
        s += (data(r, i) - mean_[i]) * components_(i, j);
      }
      scores(r, j) = s;
    }
  }
  return scores;
}

linalg::Matrix Pca::inverse_transform(const linalg::Matrix& scores) const {
  ensure(fitted(), "Pca::inverse_transform: not fitted");
  const std::size_t k = scores.cols();
  ensure(k >= 1 && k <= dimension(),
         "Pca::inverse_transform: invalid component count");
  linalg::Matrix out(scores.rows(), dimension());
  for (std::size_t r = 0; r < scores.rows(); ++r) {
    for (std::size_t i = 0; i < dimension(); ++i) {
      double x = mean_[i];
      for (std::size_t j = 0; j < k; ++j) {
        x += scores(r, j) * components_(i, j);
      }
      out(r, i) = x;
    }
  }
  return out;
}

const std::vector<double>& Pca::explained_variance_ratio() const {
  ensure(fitted(), "Pca::explained_variance_ratio: not fitted");
  return explained_ratio_;
}

double Pca::cumulative_explained_variance(std::size_t k) const {
  ensure(fitted(), "Pca::cumulative_explained_variance: not fitted");
  ensure(k <= explained_ratio_.size(),
         "Pca::cumulative_explained_variance: k out of range");
  double sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) sum += explained_ratio_[i];
  return sum;
}

std::size_t Pca::num_components_for(double target) const {
  ensure(fitted(), "Pca::num_components_for: not fitted");
  ensure(target > 0.0 && target <= 1.0,
         "Pca::num_components_for: target must be in (0, 1]");
  double sum = 0.0;
  for (std::size_t i = 0; i < explained_ratio_.size(); ++i) {
    sum += explained_ratio_[i];
    if (sum >= target - 1e-12) return i + 1;
  }
  return explained_ratio_.size();
}

double Pca::loading(std::size_t var, std::size_t comp) const {
  ensure(fitted(), "Pca::loading: not fitted");
  ensure(var < dimension() && comp < dimension(), "Pca::loading: index out of range");
  return components_(var, comp);
}

const linalg::Matrix& Pca::components() const {
  ensure(fitted(), "Pca::components: not fitted");
  return components_;
}

const std::vector<double>& Pca::eigenvalues() const {
  ensure(fitted(), "Pca::eigenvalues: not fitted");
  return eigenvalues_;
}

}  // namespace flare::ml
