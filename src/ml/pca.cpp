#include "ml/pca.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/covariance.hpp"
#include "linalg/eigen.hpp"
#include "ml/standardizer.hpp"
#include "util/error.hpp"

namespace flare::ml {
namespace {

/// Fix eigenvector sign for determinism: largest-|loading| entry positive.
void fix_component_signs(linalg::Matrix& vectors) {
  for (std::size_t j = 0; j < vectors.cols(); ++j) {
    std::size_t arg_max = 0;
    double best = 0.0;
    for (std::size_t i = 0; i < vectors.rows(); ++i) {
      const double mag = std::abs(vectors(i, j));
      if (mag > best) {
        best = mag;
        arg_max = i;
      }
    }
    if (vectors(arg_max, j) < 0.0) {
      for (std::size_t i = 0; i < vectors.rows(); ++i) {
        vectors(i, j) = -vectors(i, j);
      }
    }
  }
}

/// Pivot threshold (relative to Frobenius scale) for the warm Jacobi solve in
/// update(): the merged covariance is expressed in the previous eigenbasis and
/// is near-diagonal, so most pivots are converged before the first rotation.
/// 1e-10 keeps the solve two decades below the 1e-8 convergence acceptance
/// while skipping the sub-noise rotations that dominate late sweeps; measured
/// eigenvalue deviation vs a zero-skip solve is ~3e-13 at the paper scale,
/// five decades inside the property-tested 1e-8 explained-variance bound.
constexpr double kWarmRotationSkip = 1e-10;

/// Gram matrix YᵀY exploiting symmetry: accumulates the upper triangle row by
/// row and mirrors it, roughly halving the flops of a general multiply (and
/// skipping the explicit transpose copy).
linalg::Matrix gram_matrix(const linalg::Matrix& y) {
  const std::size_t rows = y.rows();
  const std::size_t d = y.cols();
  linalg::Matrix m(d, d);
  for (std::size_t r = 0; r < rows; ++r) {
    const auto row = y.row(r);
    for (std::size_t i = 0; i < d; ++i) {
      const double yi = row[i];
      if (yi == 0.0) continue;
      for (std::size_t j = i; j < d; ++j) m(i, j) += yi * row[j];
    }
  }
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i + 1; j < d; ++j) m(j, i) = m(i, j);
  }
  return m;
}

}  // namespace

void Pca::fit(const linalg::Matrix& data, util::ThreadPool* pool) {
  ensure(data.rows() >= 2, "Pca::fit: need at least two observations");
  ensure(data.cols() >= 1, "Pca::fit: need at least one variable");
  ensure_numeric(data.rows() >= data.cols(),
                 "Pca::fit: fewer rows than columns — the sample covariance is "
                 "rank-deficient and trailing eigenpairs are unidentifiable; "
                 "collect at least as many observations as variables");

  mean_ = linalg::column_means(data);
  const linalg::Matrix cov = linalg::covariance_matrix(data, pool);
  linalg::SymmetricEigenResult eig = linalg::symmetric_eigen(cov);

  // Covariance matrices are PSD; clamp tiny negative round-off.
  for (double& ev : eig.eigenvalues) ev = std::max(ev, 0.0);

  fix_component_signs(eig.eigenvectors);

  components_ = std::move(eig.eigenvectors);
  eigenvalues_ = std::move(eig.eigenvalues);
  count_ = data.rows();
  anchor_ = linalg::Matrix();
  drift_ = 0.0;
  recompute_ratios();
}

void Pca::fit_from_covariance(std::vector<double> mean,
                              const linalg::Matrix& covariance,
                              std::size_t count) {
  ensure(covariance.rows() == covariance.cols(),
         "Pca::fit_from_covariance: covariance must be square");
  ensure(mean.size() == covariance.rows(),
         "Pca::fit_from_covariance: mean/covariance dimension mismatch");
  ensure(count >= 2, "Pca::fit_from_covariance: need at least two observations");
  ensure_numeric(count >= covariance.rows(),
                 "Pca::fit_from_covariance: fewer rows than variables — the "
                 "sample covariance is rank-deficient and trailing eigenpairs "
                 "are unidentifiable");

  linalg::SymmetricEigenResult eig = linalg::symmetric_eigen(covariance);
  for (double& ev : eig.eigenvalues) ev = std::max(ev, 0.0);
  fix_component_signs(eig.eigenvectors);

  mean_ = std::move(mean);
  components_ = std::move(eig.eigenvectors);
  eigenvalues_ = std::move(eig.eigenvalues);
  count_ = count;
  anchor_ = linalg::Matrix();
  drift_ = 0.0;
  recompute_ratios();
}

PcaUpdateStats Pca::update(const linalg::Matrix& batch,
                           const Standardizer& batch_moments,
                           util::ThreadPool* pool) {
  ensure(fitted(), "Pca::update: not fitted");
  const std::size_t d = dimension();
  ensure(batch.rows() >= 1, "Pca::update: batch must have at least one row");
  ensure(batch.cols() == d, "Pca::update: column mismatch");
  ensure(batch_moments.fitted() && batch_moments.means().size() == d,
         "Pca::update: batch moments dimension mismatch");
  ensure(batch_moments.count() == batch.rows(),
         "Pca::update: batch moments must cover exactly the batch rows");

  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(batch.rows());
  const double n = n1 + n2;
  const std::vector<double>& mu2 = batch_moments.means();

  PcaUpdateStats stats;
  stats.batch_rows = batch.rows();

  // Batch deviations about the batch mean, rotated into the eigenbasis:
  // Y = (X₂ − 1μ₂ᵀ)·V.
  linalg::Matrix centered(batch.rows(), d);
  for (std::size_t r = 0; r < batch.rows(); ++r) {
    for (std::size_t c = 0; c < d; ++c) {
      centered(r, c) = batch(r, c) - mu2[c];
    }
  }
  const linalg::Matrix y = centered.multiply(components_, pool);

  // Mean-shift direction in the eigenbasis: z = Vᵀ(μ₂ − μ₁).
  std::vector<double> delta(d);
  double shift_sq = 0.0;
  for (std::size_t i = 0; i < d; ++i) {
    delta[i] = mu2[i] - mean_[i];
    shift_sq += delta[i] * delta[i];
  }
  stats.mean_shift = std::sqrt(shift_sq);
  std::vector<double> z(d, 0.0);
  for (std::size_t i = 0; i < d; ++i) {
    const double di = delta[i];
    if (di == 0.0) continue;
    for (std::size_t j = 0; j < d; ++j) z[j] += di * components_(i, j);
  }

  // Merged sample covariance in eigenbasis coordinates (Chan's scatter merge,
  // the matrix analogue of Standardizer::merge):
  //   M = [(n₁−1)·diag(λ) + YᵀY + (n₁n₂/n)·zzᵀ] / (n−1).
  // VᵀC₁V = diag(λ) exactly, so M is near-diagonal and the Jacobi solve below
  // is warm. Eigenvectors of the merged covariance are then V·W.
  linalg::Matrix m = gram_matrix(y);
  const double cross = n1 * n2 / n;
  const double denom = n - 1.0;
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      double value = m(i, j) + cross * z[i] * z[j];
      if (i == j) value += (n1 - 1.0) * eigenvalues_[i];
      m(i, j) = value / denom;
    }
  }

  linalg::SymmetricEigenResult eig =
      linalg::symmetric_eigen_warm(m, 64, 1e-12, kWarmRotationSkip);
  for (double& ev : eig.eigenvalues) ev = std::max(ev, 0.0);

  linalg::Matrix rotated = components_.multiply(eig.eigenvectors, pool);
  fix_component_signs(rotated);
  components_ = std::move(rotated);
  eigenvalues_ = std::move(eig.eigenvalues);
  for (std::size_t i = 0; i < d; ++i) {
    mean_[i] = (n1 * mean_[i] + n2 * mu2[i]) / n;
  }
  count_ = static_cast<std::size_t>(n);
  recompute_ratios();

  drift_ = drift_against_anchor();
  stats.total_rows = count_;
  stats.subspace_drift = drift_;
  return stats;
}

PcaUpdateStats Pca::update(const linalg::Matrix& batch, util::ThreadPool* pool) {
  Standardizer moments;
  moments.fit(batch);
  return update(batch, moments, pool);
}

void Pca::set_drift_anchor(std::size_t k) {
  ensure(fitted(), "Pca::set_drift_anchor: not fitted");
  ensure(k >= 1 && k <= dimension(),
         "Pca::set_drift_anchor: invalid component count");
  anchor_ = linalg::Matrix(dimension(), k);
  for (std::size_t i = 0; i < dimension(); ++i) {
    for (std::size_t j = 0; j < k; ++j) anchor_(i, j) = components_(i, j);
  }
  drift_ = 0.0;
}

double Pca::drift_against_anchor() const {
  const std::size_t k = anchor_.cols();
  if (k == 0) return 0.0;
  // Overlap of the anchored subspace with the current leading-k basis:
  // A = anchorᵀ·V_k (k×k). The singular values of A are the cosines of the
  // principal angles, so sin(θ_max) = √(1 − λ_min(AᵀA)).
  linalg::Matrix a(k, k);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      double dot = 0.0;
      for (std::size_t r = 0; r < anchor_.rows(); ++r) {
        dot += anchor_(r, i) * components_(r, j);
      }
      a(i, j) = dot;
    }
  }
  linalg::Matrix gram(k, k);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      double dot = 0.0;
      for (std::size_t r = 0; r < k; ++r) dot += a(r, i) * a(r, j);
      gram(i, j) = dot;
    }
  }
  const linalg::SymmetricEigenResult eig = linalg::symmetric_eigen(gram);
  const double cos_sq = std::clamp(eig.eigenvalues.back(), 0.0, 1.0);
  return std::sqrt(1.0 - cos_sq);
}

void Pca::recompute_ratios() {
  double total = 0.0;
  for (const double ev : eigenvalues_) total += ev;
  explained_ratio_.assign(eigenvalues_.size(), 0.0);
  if (total > 0.0) {
    for (std::size_t i = 0; i < eigenvalues_.size(); ++i) {
      explained_ratio_[i] = eigenvalues_[i] / total;
    }
  }
}

linalg::Matrix Pca::transform(const linalg::Matrix& data) const {
  return transform(data, dimension());
}

linalg::Matrix Pca::transform(const linalg::Matrix& data, std::size_t k) const {
  ensure(fitted(), "Pca::transform: not fitted");
  ensure(data.cols() == dimension(), "Pca::transform: column mismatch");
  ensure(k >= 1 && k <= dimension(), "Pca::transform: invalid component count");
  linalg::Matrix scores(data.rows(), k);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    for (std::size_t j = 0; j < k; ++j) {
      double s = 0.0;
      for (std::size_t i = 0; i < dimension(); ++i) {
        s += (data(r, i) - mean_[i]) * components_(i, j);
      }
      scores(r, j) = s;
    }
  }
  return scores;
}

linalg::Matrix Pca::inverse_transform(const linalg::Matrix& scores) const {
  ensure(fitted(), "Pca::inverse_transform: not fitted");
  const std::size_t k = scores.cols();
  ensure(k >= 1 && k <= dimension(),
         "Pca::inverse_transform: invalid component count");
  linalg::Matrix out(scores.rows(), dimension());
  for (std::size_t r = 0; r < scores.rows(); ++r) {
    for (std::size_t i = 0; i < dimension(); ++i) {
      double x = mean_[i];
      for (std::size_t j = 0; j < k; ++j) {
        x += scores(r, j) * components_(i, j);
      }
      out(r, i) = x;
    }
  }
  return out;
}

const std::vector<double>& Pca::explained_variance_ratio() const {
  ensure(fitted(), "Pca::explained_variance_ratio: not fitted");
  return explained_ratio_;
}

double Pca::cumulative_explained_variance(std::size_t k) const {
  ensure(fitted(), "Pca::cumulative_explained_variance: not fitted");
  ensure(k <= explained_ratio_.size(),
         "Pca::cumulative_explained_variance: k out of range");
  double sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) sum += explained_ratio_[i];
  return sum;
}

std::size_t Pca::num_components_for(double target) const {
  ensure(fitted(), "Pca::num_components_for: not fitted");
  ensure(target > 0.0 && target <= 1.0,
         "Pca::num_components_for: target must be in (0, 1]");
  double sum = 0.0;
  for (std::size_t i = 0; i < explained_ratio_.size(); ++i) {
    sum += explained_ratio_[i];
    if (sum >= target - 1e-12) return i + 1;
  }
  return explained_ratio_.size();
}

double Pca::loading(std::size_t var, std::size_t comp) const {
  ensure(fitted(), "Pca::loading: not fitted");
  ensure(var < dimension() && comp < dimension(), "Pca::loading: index out of range");
  return components_(var, comp);
}

const linalg::Matrix& Pca::components() const {
  ensure(fitted(), "Pca::components: not fitted");
  return components_;
}

const std::vector<double>& Pca::eigenvalues() const {
  ensure(fitted(), "Pca::eigenvalues: not fitted");
  return eigenvalues_;
}

}  // namespace flare::ml
