// Whitening of PC scores (FLARE §4.4: "normalize all the selected PCs to have
// zero mean and unit variance ... to make each PC retain the same amount of
// information" before clustering). Since PC scores are already zero-mean and
// uncorrelated, whitening reduces to per-column scaling by 1/σ — but we keep
// a full fit/transform API so the pipeline stays explicit and testable.
#pragma once

#include "linalg/matrix.hpp"

namespace flare::ml {

class Whitener {
 public:
  void fit(const linalg::Matrix& scores);

  [[nodiscard]] linalg::Matrix transform(const linalg::Matrix& scores) const;
  [[nodiscard]] linalg::Matrix fit_transform(const linalg::Matrix& scores);
  [[nodiscard]] linalg::Matrix inverse_transform(const linalg::Matrix& white) const;

  [[nodiscard]] bool fitted() const { return !means_.empty(); }
  [[nodiscard]] const std::vector<double>& means() const { return means_; }
  [[nodiscard]] const std::vector<double>& scales() const { return scales_; }

 private:
  std::vector<double> means_;
  std::vector<double> scales_;
};

}  // namespace flare::ml
