#include "ml/standardizer.hpp"

#include <cmath>
#include <string>

#include "linalg/covariance.hpp"
#include "util/error.hpp"

namespace flare::ml {

void Standardizer::fit(const linalg::Matrix& data) {
  ensure(data.rows() >= 1, "Standardizer::fit: empty data");
  // Non-finite cells would silently poison every moment (NaN means, NaN
  // scales, and from there the whole PCA). Faulty rows must be imputed or
  // quarantined before fitting; reaching here with one is a caller bug.
  for (std::size_t r = 0; r < data.rows(); ++r) {
    for (std::size_t c = 0; c < data.cols(); ++c) {
      if (!std::isfinite(data(r, c))) {
        throw FaultError("Standardizer::fit: non-finite value at row " +
                         std::to_string(r) + ", column " + std::to_string(c) +
                         " — impute or quarantine before fitting");
      }
    }
  }
  means_ = linalg::column_means(data);
  scales_.assign(data.cols(), 1.0);
  m2_.assign(data.cols(), 0.0);
  count_ = data.rows();
  if (data.rows() < 2) return;  // single row: keep unit scales
  for (std::size_t c = 0; c < data.cols(); ++c) {
    double sum_sq = 0.0;
    for (std::size_t r = 0; r < data.rows(); ++r) {
      const double d = data(r, c) - means_[c];
      sum_sq += d * d;
    }
    m2_[c] = sum_sq;
    const double sd = std::sqrt(sum_sq / static_cast<double>(data.rows() - 1));
    scales_[c] = sd > 0.0 ? sd : 1.0;
  }
}

Standardizer Standardizer::from_moments(std::vector<double> means,
                                        std::vector<double> m2,
                                        std::size_t count) {
  ensure(!means.empty(), "Standardizer::from_moments: empty moments");
  ensure(means.size() == m2.size(),
         "Standardizer::from_moments: mean/M2 size mismatch");
  ensure(count >= 1, "Standardizer::from_moments: need at least one row");
  for (std::size_t c = 0; c < means.size(); ++c) {
    if (!std::isfinite(means[c]) || !std::isfinite(m2[c]) || m2[c] < 0.0) {
      throw FaultError("Standardizer::from_moments: non-finite or negative "
                       "moment in column " + std::to_string(c));
    }
  }
  Standardizer s;
  s.means_ = std::move(means);
  s.m2_ = std::move(m2);
  s.count_ = count;
  s.scales_.assign(s.means_.size(), 1.0);
  if (count >= 2) {
    for (std::size_t c = 0; c < s.means_.size(); ++c) {
      const double sd = std::sqrt(s.m2_[c] / static_cast<double>(count - 1));
      s.scales_[c] = sd > 0.0 ? sd : 1.0;
    }
  }
  return s;
}

void Standardizer::merge(const Standardizer& other) {
  ensure(fitted() && other.fitted(), "Standardizer::merge: both sides must be fitted");
  ensure(means_.size() == other.means_.size(),
         "Standardizer::merge: column mismatch");
  for (std::size_t c = 0; c < other.means_.size(); ++c) {
    if (!std::isfinite(other.means_[c]) || !std::isfinite(other.m2_[c])) {
      throw FaultError(
          "Standardizer::merge: non-finite moments in column " +
          std::to_string(c) + " — the batch was fitted on unclean data");
    }
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  for (std::size_t c = 0; c < means_.size(); ++c) {
    const double delta = other.means_[c] - means_[c];
    m2_[c] += other.m2_[c] + delta * delta * n1 * n2 / n;
    means_[c] = (n1 * means_[c] + n2 * other.means_[c]) / n;
    if (count_ + other.count_ >= 2) {
      const double sd = std::sqrt(m2_[c] / (n - 1.0));
      scales_[c] = sd > 0.0 ? sd : 1.0;
    }
  }
  count_ += other.count_;
}

linalg::Matrix Standardizer::transform(const linalg::Matrix& data) const {
  ensure(fitted(), "Standardizer::transform: not fitted");
  ensure(data.cols() == means_.size(), "Standardizer::transform: column mismatch");
  linalg::Matrix out(data.rows(), data.cols());
  for (std::size_t r = 0; r < data.rows(); ++r) {
    for (std::size_t c = 0; c < data.cols(); ++c) {
      out(r, c) = (data(r, c) - means_[c]) / scales_[c];
    }
  }
  return out;
}

linalg::Matrix Standardizer::fit_transform(const linalg::Matrix& data) {
  fit(data);
  return transform(data);
}

linalg::Matrix Standardizer::inverse_transform(const linalg::Matrix& data) const {
  ensure(fitted(), "Standardizer::inverse_transform: not fitted");
  ensure(data.cols() == means_.size(),
         "Standardizer::inverse_transform: column mismatch");
  linalg::Matrix out(data.rows(), data.cols());
  for (std::size_t r = 0; r < data.rows(); ++r) {
    for (std::size_t c = 0; c < data.cols(); ++c) {
      out(r, c) = data(r, c) * scales_[c] + means_[c];
    }
  }
  return out;
}

}  // namespace flare::ml
