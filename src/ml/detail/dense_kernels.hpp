// Internal dense-distance kernels shared by the pruned K-means and the
// pairwise-distance/silhouette paths. Exact twins of
// linalg::squared_distance's loop: same operations in the same order, so
// every value they produce matches the library kernel bit for bit.
#pragma once

#include <cstddef>

namespace flare::ml::detail {

/// linalg::squared_distance's exact loop over raw row pointers. The hot
/// paths make millions of distance calls on ~18-wide rows, where the span
/// construction, bounds checks and call overhead cost as much as the
/// arithmetic; this inline twin removes that overhead.
inline double dist2_raw(const double* a, const double* b, std::size_t dim) {
  double sum = 0.0;
  for (std::size_t j = 0; j < dim; ++j) {
    const double d = a[j] - b[j];
    sum += d * d;
  }
  return sum;
}

/// Two independent dist2_raw evaluations with interleaved accumulators.
/// Each sum performs exactly dist2_raw's operations in dist2_raw's order —
/// both results are bit-identical to two separate calls — but the two FP
/// dependency chains overlap in the pipeline, hiding most of the add
/// latency that makes a single ~18-wide chain latency-bound (the chain
/// cannot be reordered internally without changing the rounding, so pairing
/// independent distances is the only way to buy throughput exactly).
inline void dist2_raw2(const double* a0, const double* b0, const double* a1,
                       const double* b1, std::size_t dim, double& out0,
                       double& out1) {
  double s0 = 0.0;
  double s1 = 0.0;
  for (std::size_t j = 0; j < dim; ++j) {
    const double d0 = a0[j] - b0[j];
    const double d1 = a1[j] - b1[j];
    s0 += d0 * d0;
    s1 += d1 * d1;
  }
  out0 = s0;
  out1 = s1;
}

}  // namespace flare::ml::detail
