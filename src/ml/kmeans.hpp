// K-means clustering (FLARE §4.4) with k-means++ seeding and best-of-N
// restarts. The paper groups 895 whitened scenario vectors into 18 clusters
// and takes the member nearest each centroid as the representative scenario.
//
// The assignment step prunes with the triangle inequality (Elkan/Hamerly
// style): centroid c cannot beat the best centroid found so far for a point
// when the centroid–centroid distance already proves it, so most of the k
// distance evaluations per point are skipped. Pruning only ever skips
// provably-losing candidates, so the output is bit-identical to the naive
// scan (`KMeansParams::prune` toggles it for verification/benchmarks).
#pragma once

#include <cstdint>
#include <optional>

#include "linalg/matrix.hpp"

namespace flare::ml {

enum class KMeansInit : std::uint8_t {
  kKMeansPlusPlus,  ///< D² weighted seeding (default; the robust choice)
  kRandomPoints,    ///< uniform sample of data points (ablation baseline)
};

struct KMeansParams {
  std::size_t k = 8;
  int max_iterations = 300;
  int restarts = 8;              ///< independent inits; the lowest-SSE run wins
  double tolerance = 1e-7;       ///< stop when centroid movement² falls below
  std::uint64_t seed = 42;
  KMeansInit init = KMeansInit::kKMeansPlusPlus;
  /// Triangle-inequality pruning of the assignment step. Output is identical
  /// with or without it; off exists for tests and speedup benchmarks.
  bool prune = true;
  /// Optional warm start: when this holds exactly `k` rows, restart 0 skips
  /// the seeding policy and starts Lloyd from these centroids verbatim (the
  /// remaining restarts seed as usual, so a poor warm start can only lose
  /// the best-of-N race, never degrade it). Any other row count — including
  /// empty, the default — is ignored, so a caller can set one seed while
  /// sweeping several k.
  linalg::Matrix initial_centroids;
  /// Optional per-point weights (e.g. scenario observation time). Empty =
  /// unweighted (the paper's design). When set, centroids are weighted means,
  /// SSE is weighted, and k-means++ seeding draws by weight × D².
  std::vector<double> weights;
};

struct KMeansResult {
  linalg::Matrix centroids;            ///< k × dim
  std::vector<std::size_t> assignment; ///< cluster id per input row
  std::vector<std::size_t> cluster_sizes;
  /// Squared distance from each point to its winning centroid, as computed
  /// by the final assignment pass. Lets nearest_member/members_by_distance
  /// answer without rescanning the data.
  std::vector<double> point_distances;
  double sse = 0.0;                    ///< sum of squared point-to-centroid distances
  int iterations = 0;                  ///< Lloyd iterations of the winning restart
  bool converged = false;

  /// Indices of the rows belonging to cluster `c`.
  [[nodiscard]] std::vector<std::size_t> members_of(std::size_t c) const;

  /// Row index of the member nearest the centroid of cluster `c` —
  /// FLARE's representative scenario for that cluster. Uses the cached
  /// `point_distances` when present; `data` is only touched as a fallback
  /// (e.g. results adapted from other algorithms).
  [[nodiscard]] std::size_t nearest_member(const linalg::Matrix& data,
                                           std::size_t c) const;

  /// Members of `c` ordered by increasing distance from its centroid —
  /// used by the per-job estimator's "next nearest scenario" walk (§5.3).
  [[nodiscard]] std::vector<std::size_t> members_by_distance(
      const linalg::Matrix& data, std::size_t c) const;
};

/// Runs Lloyd's algorithm. Throws std::invalid_argument when k is zero or
/// exceeds the number of rows. Empty clusters are repaired by re-seeding the
/// centroid at the point farthest from its assigned centroid.
///
/// With a `pool`, restarts run concurrently (each restart forks its own
/// deterministic RNG stream, so the winner is thread-count-independent);
/// a single restart instead parallelises the assignment step over points.
/// Results are bit-identical for every thread count, including pool == null.
[[nodiscard]] KMeansResult kmeans(const linalg::Matrix& data, const KMeansParams& params,
                                  util::ThreadPool* pool = nullptr);

}  // namespace flare::ml
