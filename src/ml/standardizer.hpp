// Zero-mean / unit-variance standardisation (FLARE §4.3: "we first normalize
// each metric to have zero mean and unit variance, eliminating the biases
// from the metrics' inherent magnitudes").
#pragma once

#include "linalg/matrix.hpp"

namespace flare::ml {

class Standardizer {
 public:
  /// Learns per-column mean and standard deviation. Constant columns get a
  /// unit scale so they map to exactly zero instead of NaN.
  void fit(const linalg::Matrix& data);

  /// (x - mean) / std, column-wise. Requires fit() first.
  [[nodiscard]] linalg::Matrix transform(const linalg::Matrix& data) const;

  /// fit() followed by transform() on the same data.
  [[nodiscard]] linalg::Matrix fit_transform(const linalg::Matrix& data);

  /// Maps standardised data back to the original scale.
  [[nodiscard]] linalg::Matrix inverse_transform(const linalg::Matrix& data) const;

  [[nodiscard]] bool fitted() const { return !means_.empty(); }
  [[nodiscard]] const std::vector<double>& means() const { return means_; }
  [[nodiscard]] const std::vector<double>& scales() const { return scales_; }

 private:
  std::vector<double> means_;
  std::vector<double> scales_;
};

}  // namespace flare::ml
