// Zero-mean / unit-variance standardisation (FLARE §4.3: "we first normalize
// each metric to have zero mean and unit variance, eliminating the biases
// from the metrics' inherent magnitudes").
#pragma once

#include "linalg/matrix.hpp"

namespace flare::ml {

class Standardizer {
 public:
  /// Learns per-column mean and standard deviation. Constant columns get a
  /// unit scale so they map to exactly zero instead of NaN.
  void fit(const linalg::Matrix& data);

  /// (x - mean) / std, column-wise. Requires fit() first.
  [[nodiscard]] linalg::Matrix transform(const linalg::Matrix& data) const;

  /// fit() followed by transform() on the same data.
  [[nodiscard]] linalg::Matrix fit_transform(const linalg::Matrix& data);

  /// Maps standardised data back to the original scale.
  [[nodiscard]] linalg::Matrix inverse_transform(const linalg::Matrix& data) const;

  /// Folds another fitted Standardizer (over a disjoint batch of rows) into
  /// this one via Chan's parallel-moments update of the Welford statistics:
  /// the merged mean/variance equal those of a fit over the concatenated
  /// rows up to FP rounding. Column counts must match. Enables streamed
  /// batches to maintain standardisation moments without re-reading old rows.
  void merge(const Standardizer& other);

  /// Rebuilds a fitted Standardizer from externally accumulated Welford
  /// moments (per-column mean, M2 = Σ(x-mean)², row count) — the out-of-core
  /// path streams blocks through one moments pass and never holds the data
  /// this would otherwise be fit() on. Scales follow fit()'s conventions:
  /// sd = sqrt(M2 / (count-1)), constant columns get unit scale, and a
  /// single-row count keeps unit scales.
  [[nodiscard]] static Standardizer from_moments(std::vector<double> means,
                                                 std::vector<double> m2,
                                                 std::size_t count);

  [[nodiscard]] bool fitted() const { return !means_.empty(); }
  [[nodiscard]] const std::vector<double>& means() const { return means_; }
  [[nodiscard]] const std::vector<double>& scales() const { return scales_; }
  /// Rows seen by fit()/merge().
  [[nodiscard]] std::size_t count() const { return count_; }

 private:
  std::vector<double> means_;
  std::vector<double> scales_;
  std::vector<double> m2_;   ///< per-column Σ(x-mean)² (Welford's M2)
  std::size_t count_ = 0;    ///< rows behind the moments
};

}  // namespace flare::ml
