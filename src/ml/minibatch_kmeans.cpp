#include "ml/minibatch_kmeans.hpp"

#include <algorithm>
#include <map>

#include "stats/rng.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace flare::ml {

Coreset build_coreset(const linalg::Matrix& data, const CoresetParams& params,
                      const std::vector<double>& point_weights) {
  const std::size_t n = data.rows();
  const std::size_t d = data.cols();
  ensure(n > 0, "build_coreset: empty data");
  ensure(params.size > 0, "build_coreset: coreset size must be positive");
  ensure(point_weights.empty() || point_weights.size() == n,
         "build_coreset: weight count must match rows");
  const auto weight_of = [&](std::size_t i) {
    return point_weights.empty() ? 1.0 : point_weights[i];
  };

  // Weighted mean and per-point squared distance to it — the sensitivity
  // proxy of the lightweight construction.
  std::vector<double> mean(d, 0.0);
  double total_weight = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = weight_of(i);
    ensure(w >= 0.0, "build_coreset: weights must be non-negative");
    total_weight += w;
    const std::span<const double> row = data.row(i);
    for (std::size_t c = 0; c < d; ++c) mean[c] += w * row[c];
  }
  ensure(total_weight > 0.0, "build_coreset: zero total weight");
  for (double& m : mean) m /= total_weight;

  std::vector<double> dist_sq(n, 0.0);
  double total_dist = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    dist_sq[i] = linalg::squared_distance(data.row(i), mean);
    total_dist += weight_of(i) * dist_sq[i];
  }

  // q(x) ∝ ½ w/W + ½ w·d²/Σwd², as a prefix-sum table for O(log n) draws.
  // Degenerate data (all rows at the mean) collapses to the uniform half.
  std::vector<double> cumulative(n);
  double running = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = weight_of(i);
    double q = 0.5 * w / total_weight;
    if (total_dist > 0.0) {
      q += 0.5 * w * dist_sq[i] / total_dist;
    } else {
      q += 0.5 * w / total_weight;
    }
    running += q;
    cumulative[i] = running;
  }

  // Sample with replacement; merge duplicates (their estimator weights add).
  stats::Rng rng(params.seed);
  const double m = static_cast<double>(params.size);
  std::map<std::size_t, double> merged;  // ordered: deterministic row order
  for (std::size_t s = 0; s < params.size; ++s) {
    const double u = rng.uniform() * running;
    const std::size_t i = static_cast<std::size_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), u) -
        cumulative.begin());
    const std::size_t idx = std::min(i, n - 1);
    const double q = (idx == 0 ? cumulative[0]
                               : cumulative[idx] - cumulative[idx - 1]) /
                     running;
    merged[idx] += weight_of(idx) / (m * q);
  }

  Coreset coreset;
  coreset.points = linalg::Matrix(merged.size(), d);
  coreset.weights.reserve(merged.size());
  coreset.source_rows.reserve(merged.size());
  std::size_t r = 0;
  for (const auto& [idx, weight] : merged) {
    coreset.points.set_row(r, data.row(idx));
    coreset.weights.push_back(weight);
    coreset.source_rows.push_back(idx);
    ++r;
  }
  return coreset;
}

KMeansResult minibatch_kmeans(const linalg::Matrix& data,
                              const MiniBatchKMeansParams& params,
                              util::ThreadPool* pool) {
  const std::size_t k = params.kmeans.k;
  ensure(k > 0, "minibatch_kmeans: k must be positive");
  ensure(k <= data.rows(), "minibatch_kmeans: k exceeds the number of rows");

  CoresetParams coreset_params = params.coreset;
  coreset_params.size = std::max(coreset_params.size, 8 * k);
  if (data.rows() <= coreset_params.size) {
    // The data is already coreset-sized — the exact solver IS the cheap path.
    return kmeans(data, params.kmeans, pool);
  }

  const Coreset coreset =
      build_coreset(data, coreset_params, params.kmeans.weights);
  if (coreset.points.rows() < k) {
    // Pathologically duplicated data collapsed the coreset below k distinct
    // rows; the exact solver on the full data is the only sound answer.
    return kmeans(data, params.kmeans, pool);
  }

  // Exact weighted solve on the coreset: restarts/seeding/pruning inherited.
  KMeansParams coreset_solve = params.kmeans;
  coreset_solve.weights = coreset.weights;
  coreset_solve.initial_centroids = linalg::Matrix();  // coreset seeds itself
  const KMeansResult sketch = kmeans(coreset.points, coreset_solve, pool);

  // Full-data refinement through the Elkan/Hamerly solver: warm-start from
  // the coreset centroids, few iterations, single restart (a fresh k-means++
  // restart here would cost exactly the full-data solve we are avoiding).
  KMeansParams refine = params.kmeans;
  refine.initial_centroids = sketch.centroids;
  refine.restarts = 1;
  refine.max_iterations = std::max(1, params.refine_iterations);
  return kmeans(data, refine, pool);
}

double comembership_agreement(const std::vector<std::size_t>& a,
                              const std::vector<std::size_t>& b,
                              std::size_t sample_pairs, std::uint64_t seed) {
  ensure(a.size() == b.size(),
         "comembership_agreement: assignments must cover the same rows");
  const std::size_t n = a.size();
  if (n < 2) return 1.0;
  const auto agree = [&](std::size_t i, std::size_t j) {
    return (a[i] == a[j]) == (b[i] == b[j]);
  };
  const std::size_t total_pairs = n * (n - 1) / 2;
  std::size_t agreeing = 0;
  if (total_pairs <= sample_pairs) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        if (agree(i, j)) ++agreeing;
      }
    }
    return static_cast<double>(agreeing) / static_cast<double>(total_pairs);
  }
  stats::Rng rng(seed);
  for (std::size_t s = 0; s < sample_pairs; ++s) {
    const std::size_t i = rng.uniform_int(0, n - 1);
    std::size_t j = rng.uniform_int(0, n - 2);
    if (j >= i) ++j;  // uniform over j ≠ i
    if (agree(i, j)) ++agreeing;
  }
  return static_cast<double>(agreeing) / static_cast<double>(sample_pairs);
}

}  // namespace flare::ml
