// Redundant-metric elimination (FLARE §4.2 "Refinement"): drop metrics that
// are near-duplicates of an already kept metric (|Pearson r| above a
// threshold), e.g. memory bandwidth == LLC misses × line size.
#pragma once

#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace flare::ml {

struct CorrelationDrop {
  std::size_t dropped_column = 0;  ///< column index in the original matrix
  std::size_t kept_column = 0;     ///< the column it duplicates
  double correlation = 0.0;        ///< the offending |r| (signed value stored)
};

struct CorrelationFilterResult {
  std::vector<std::size_t> kept_columns;  ///< surviving columns, original order
  std::vector<CorrelationDrop> drops;     ///< audit trail of eliminations
};

class CorrelationFilter {
 public:
  /// `threshold` is the |r| at or above which a column counts as a duplicate.
  explicit CorrelationFilter(double threshold = 0.95);

  /// Greedy scan in column order: a column is kept unless it correlates at or
  /// above the threshold with a previously kept column. Deterministic, and
  /// keeps the earliest (schema-order) member of each duplicate family, which
  /// matches how an engineer would curate the metric list.
  [[nodiscard]] CorrelationFilterResult fit(const linalg::Matrix& data) const;

  /// Convenience: fit + select surviving columns.
  [[nodiscard]] linalg::Matrix apply(const linalg::Matrix& data,
                                     CorrelationFilterResult* report = nullptr) const;

  /// Same greedy scan over a precomputed correlation matrix (d × d,
  /// symmetric, unit diagonal) — the out-of-core path derives it from one
  /// streaming comoment pass instead of materialising columns. Matches
  /// fit()'s keep/drop decisions whenever corr(i, j) equals the pairwise
  /// Pearson r of the underlying data.
  [[nodiscard]] CorrelationFilterResult fit_from_correlation(
      const linalg::Matrix& corr) const;

  [[nodiscard]] double threshold() const { return threshold_; }

 private:
  double threshold_;
};

}  // namespace flare::ml
