#include "ml/cluster_quality.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ml/detail/dense_kernels.hpp"
#include "stats/rng.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace flare::ml {
namespace {

/// Shared silhouette kernel over an abstract distance lookup, so the cached
/// and uncached paths cannot drift apart. `row_fn(i)` returns a callable
/// `dist` with `dist(j)` = Euclidean distance between points i and j — the
/// indirection lets each path hoist its per-row state (matrix row pointer,
/// row span) out of the O(n) inner loop. Each point is independent, so the
/// outer loop parallelises without changing any value.
template <typename RowFn>
std::vector<double> silhouette_impl(std::size_t n, const RowFn& row_fn,
                                    const std::vector<std::size_t>& assignment,
                                    std::size_t num_clusters,
                                    util::ThreadPool* pool) {
  ensure(assignment.size() == n, "silhouette_samples: assignment size");
  ensure(num_clusters >= 2, "silhouette_samples: need at least two clusters");

  std::vector<std::size_t> sizes(num_clusters, 0);
  for (const std::size_t c : assignment) {
    ensure(c < num_clusters, "silhouette_samples: bad cluster id");
    ++sizes[c];
  }

  std::vector<double> scores(n, 0.0);
  util::maybe_parallel_for(pool, n, [&](std::size_t i) {
    if (sizes[assignment[i]] <= 1) {
      scores[i] = 0.0;  // singleton convention
      return;
    }
    // Accumulate this point's mean distance to every cluster. Splitting at
    // j == i removes the per-element branch; the accumulation order over j
    // is unchanged.
    const auto dist = row_fn(i);
    std::vector<double> cluster_dist(num_clusters, 0.0);
    for (std::size_t j = 0; j < i; ++j) {
      cluster_dist[assignment[j]] += dist(j);
    }
    for (std::size_t j = i + 1; j < n; ++j) {
      cluster_dist[assignment[j]] += dist(j);
    }
    const std::size_t own = assignment[i];
    const double a = cluster_dist[own] / static_cast<double>(sizes[own] - 1);
    double b = std::numeric_limits<double>::max();
    for (std::size_t c = 0; c < num_clusters; ++c) {
      if (c == own || sizes[c] == 0) continue;
      b = std::min(b, cluster_dist[c] / static_cast<double>(sizes[c]));
    }
    const double denom = std::max(a, b);
    scores[i] = denom > 0.0 ? (b - a) / denom : 0.0;
  });
  return scores;
}

double mean_of(const std::vector<double>& samples) {
  double sum = 0.0;
  for (const double s : samples) sum += s;
  return samples.empty() ? 0.0 : sum / static_cast<double>(samples.size());
}

}  // namespace

PairwiseDistances pairwise_distances(const linalg::Matrix& data,
                                     util::ThreadPool* pool) {
  const std::size_t n = data.rows();
  const std::size_t dim = data.cols();
  const double* points = data.data().data();
  linalg::Matrix d(n, n);
  // Upper triangle first (rows are independent), mirror after the barrier.
  // Consecutive j's are paired so their FP chains overlap (dist2_raw2);
  // every entry still equals sqrt(squared_distance(row_i, row_j)) bit for
  // bit.
  util::maybe_parallel_for(pool, n, [&](std::size_t i) {
    const double* a = points + i * dim;
    double* out = &d(i, 0);
    std::size_t j = i + 1;
    for (; j + 1 < n; j += 2) {
      double d0;
      double d1;
      detail::dist2_raw2(a, points + j * dim, a, points + (j + 1) * dim, dim,
                         d0, d1);
      out[j] = std::sqrt(d0);
      out[j + 1] = std::sqrt(d1);
    }
    if (j < n) {
      out[j] = std::sqrt(detail::dist2_raw(a, points + j * dim, dim));
    }
  });
  util::maybe_parallel_for(pool, n, [&](std::size_t i) {
    for (std::size_t j = 0; j < i; ++j) d(i, j) = d(j, i);
  });
  return PairwiseDistances(std::move(d));
}

double sum_squared_errors(const linalg::Matrix& data, const linalg::Matrix& centroids,
                          const std::vector<std::size_t>& assignment) {
  ensure(assignment.size() == data.rows(), "sum_squared_errors: assignment size");
  double sse = 0.0;
  for (std::size_t i = 0; i < data.rows(); ++i) {
    ensure(assignment[i] < centroids.rows(), "sum_squared_errors: bad cluster id");
    sse += linalg::squared_distance(data.row(i), centroids.row(assignment[i]));
  }
  return sse;
}

std::vector<double> silhouette_samples(const linalg::Matrix& data,
                                       const std::vector<std::size_t>& assignment,
                                       std::size_t num_clusters,
                                       util::ThreadPool* pool) {
  return silhouette_impl(
      data.rows(),
      [&](std::size_t i) {
        const auto a = data.row(i);
        return [&data, a](std::size_t j) {
          return std::sqrt(linalg::squared_distance(a, data.row(j)));
        };
      },
      assignment, num_clusters, pool);
}

std::vector<double> silhouette_samples(const PairwiseDistances& distances,
                                       const std::vector<std::size_t>& assignment,
                                       std::size_t num_clusters,
                                       util::ThreadPool* pool) {
  return silhouette_impl(
      distances.size(),
      [&](std::size_t i) {
        const double* row =
            distances.matrix().data().data() + i * distances.size();
        return [row](std::size_t j) { return row[j]; };
      },
      assignment, num_clusters, pool);
}

double silhouette_score(const linalg::Matrix& data,
                        const std::vector<std::size_t>& assignment,
                        std::size_t num_clusters, util::ThreadPool* pool) {
  return mean_of(silhouette_samples(data, assignment, num_clusters, pool));
}

double silhouette_score(const PairwiseDistances& distances,
                        const std::vector<std::size_t>& assignment,
                        std::size_t num_clusters, util::ThreadPool* pool) {
  return mean_of(silhouette_samples(distances, assignment, num_clusters, pool));
}

double silhouette_score_sampled(const linalg::Matrix& data,
                                const std::vector<std::size_t>& assignment,
                                std::size_t num_clusters,
                                std::size_t sample_size, std::uint64_t seed,
                                util::ThreadPool* pool) {
  ensure(sample_size >= 2, "silhouette_score_sampled: need a sample of >= 2");
  ensure(assignment.size() == data.rows(),
         "silhouette_score_sampled: assignment size");
  if (data.rows() <= sample_size) {
    return silhouette_score(data, assignment, num_clusters, pool);
  }
  // A sorted without-replacement sample keeps row gathering cache-friendly
  // and makes the estimate a pure function of (data, assignment, seed).
  stats::Rng rng(seed);
  std::vector<std::size_t> sample =
      rng.sample_without_replacement(data.rows(), sample_size);
  std::sort(sample.begin(), sample.end());
  const linalg::Matrix subset = data.select_rows(sample);
  std::vector<std::size_t> sub_assignment(sample.size());
  for (std::size_t i = 0; i < sample.size(); ++i) {
    sub_assignment[i] = assignment[sample[i]];
  }
  return silhouette_score(subset, sub_assignment, num_clusters, pool);
}

}  // namespace flare::ml
