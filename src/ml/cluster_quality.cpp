#include "ml/cluster_quality.hpp"

#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace flare::ml {

double sum_squared_errors(const linalg::Matrix& data, const linalg::Matrix& centroids,
                          const std::vector<std::size_t>& assignment) {
  ensure(assignment.size() == data.rows(), "sum_squared_errors: assignment size");
  double sse = 0.0;
  for (std::size_t i = 0; i < data.rows(); ++i) {
    ensure(assignment[i] < centroids.rows(), "sum_squared_errors: bad cluster id");
    sse += linalg::squared_distance(data.row(i), centroids.row(assignment[i]));
  }
  return sse;
}

std::vector<double> silhouette_samples(const linalg::Matrix& data,
                                       const std::vector<std::size_t>& assignment,
                                       std::size_t num_clusters) {
  const std::size_t n = data.rows();
  ensure(assignment.size() == n, "silhouette_samples: assignment size");
  ensure(num_clusters >= 2, "silhouette_samples: need at least two clusters");

  std::vector<std::size_t> sizes(num_clusters, 0);
  for (const std::size_t c : assignment) {
    ensure(c < num_clusters, "silhouette_samples: bad cluster id");
    ++sizes[c];
  }

  std::vector<double> scores(n, 0.0);
  // For each point, accumulate its mean distance to every cluster.
  std::vector<double> cluster_dist(num_clusters);
  for (std::size_t i = 0; i < n; ++i) {
    if (sizes[assignment[i]] <= 1) {
      scores[i] = 0.0;  // singleton convention
      continue;
    }
    std::fill(cluster_dist.begin(), cluster_dist.end(), 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      cluster_dist[assignment[j]] +=
          std::sqrt(linalg::squared_distance(data.row(i), data.row(j)));
    }
    const std::size_t own = assignment[i];
    const double a = cluster_dist[own] / static_cast<double>(sizes[own] - 1);
    double b = std::numeric_limits<double>::max();
    for (std::size_t c = 0; c < num_clusters; ++c) {
      if (c == own || sizes[c] == 0) continue;
      b = std::min(b, cluster_dist[c] / static_cast<double>(sizes[c]));
    }
    const double denom = std::max(a, b);
    scores[i] = denom > 0.0 ? (b - a) / denom : 0.0;
  }
  return scores;
}

double silhouette_score(const linalg::Matrix& data,
                        const std::vector<std::size_t>& assignment,
                        std::size_t num_clusters) {
  const std::vector<double> samples = silhouette_samples(data, assignment, num_clusters);
  double sum = 0.0;
  for (const double s : samples) sum += s;
  return samples.empty() ? 0.0 : sum / static_cast<double>(samples.size());
}

}  // namespace flare::ml
