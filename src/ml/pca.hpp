// Principal Component Analysis (FLARE §4.3).
//
// The paper standardises the refined metrics, extracts PCs via the covariance
// eigendecomposition, keeps enough components to explain 95 % of variance
// (18 in their datacenter), and then *interprets* each PC through its signed
// loadings (Fig. 8). This class exposes exactly those pieces: scores,
// explained-variance ratios, and per-component loadings.
#pragma once

#include "linalg/matrix.hpp"

namespace flare::ml {

class Pca {
 public:
  /// Fits on a data matrix (rows = observations). The input is expected to be
  /// standardised already (the Analyzer composes Standardizer -> Pca).
  /// `pool` parallelises the covariance rank-k update; results are identical
  /// for every thread count (see linalg::covariance_matrix).
  void fit(const linalg::Matrix& data, util::ThreadPool* pool = nullptr);

  /// Projects data onto the principal axes: scores = (x - mean) · V.
  /// Returns all components; callers slice with `num_components_for`.
  [[nodiscard]] linalg::Matrix transform(const linalg::Matrix& data) const;

  /// Projects onto the first `k` components only.
  [[nodiscard]] linalg::Matrix transform(const linalg::Matrix& data,
                                         std::size_t k) const;

  /// Reconstructs data from the first `k` components (lossy if k < dim).
  [[nodiscard]] linalg::Matrix inverse_transform(const linalg::Matrix& scores) const;

  /// Fraction of total variance captured by each component, descending.
  [[nodiscard]] const std::vector<double>& explained_variance_ratio() const;

  /// Cumulative explained variance after the first `k` components.
  [[nodiscard]] double cumulative_explained_variance(std::size_t k) const;

  /// Smallest k whose cumulative explained variance reaches `target`
  /// (e.g. 0.95 -> 18 components in the paper).
  [[nodiscard]] std::size_t num_components_for(double target) const;

  /// Loading of original variable `var` on component `comp` — the signed
  /// weight used for Fig. 8-style interpretation.
  [[nodiscard]] double loading(std::size_t var, std::size_t comp) const;

  /// Full loading matrix (variables × components, columns are unit vectors).
  [[nodiscard]] const linalg::Matrix& components() const;

  /// Raw eigenvalues of the covariance matrix, descending.
  [[nodiscard]] const std::vector<double>& eigenvalues() const;

  [[nodiscard]] std::size_t dimension() const { return mean_.size(); }
  [[nodiscard]] bool fitted() const { return !mean_.empty(); }

 private:
  std::vector<double> mean_;
  linalg::Matrix components_;  // dim × dim, column j = j-th axis
  std::vector<double> eigenvalues_;
  std::vector<double> explained_ratio_;
};

}  // namespace flare::ml
