// Principal Component Analysis (FLARE §4.3).
//
// The paper standardises the refined metrics, extracts PCs via the covariance
// eigendecomposition, keeps enough components to explain 95 % of variance
// (18 in their datacenter), and then *interprets* each PC through its signed
// loadings (Fig. 8). This class exposes exactly those pieces: scores,
// explained-variance ratios, and per-component loadings.
//
// Beyond the batch fit, `update()` folds fresh rows into the fitted basis
// with a block Brand-style eigenbasis update (see DESIGN.md §9): the merged
// covariance is assembled *in the current eigenbasis*, where it is
// near-diagonal, so a warm Jacobi solve converges in a couple of sweeps
// instead of re-reading every historical row. The update is algebraically
// exact — up to floating-point rounding it matches a from-scratch fit over
// the concatenated rows — and the class tracks the principal angle between
// the current basis and a caller-chosen *anchor* subspace so the ingest path
// can gate a full refit on accumulated drift.
#pragma once

#include "linalg/matrix.hpp"

namespace flare::ml {

class Standardizer;

/// Telemetry for one incremental eigenbasis update.
struct PcaUpdateStats {
  std::size_t batch_rows = 0;   ///< rows folded in by this call
  std::size_t total_rows = 0;   ///< observations behind the basis afterwards
  double mean_shift = 0.0;      ///< ‖batch mean − running mean‖₂ before folding
  double subspace_drift = 0.0;  ///< sin(max principal angle) vs anchor afterwards
};

class Pca {
 public:
  /// Fits on a data matrix (rows = observations). The input is expected to be
  /// standardised already (the Analyzer composes Standardizer -> Pca).
  /// `pool` parallelises the covariance rank-k update; results are identical
  /// for every thread count (see linalg::covariance_matrix).
  /// Throws util::NumericalError when rows < cols: the sample covariance is
  /// then rank-deficient and the trailing eigenpairs are unidentifiable.
  void fit(const linalg::Matrix& data, util::ThreadPool* pool = nullptr);

  /// Folds a batch of fresh rows (same coordinate frame as the fit data) into
  /// the eigenbasis without revisiting historical rows. `batch_moments` must
  /// be a Standardizer fitted over exactly `batch`'s rows — the same Welford
  /// moments `Standardizer::merge` folds, so streamed ingest maintains both
  /// structures from one profiling pass. Matches a from-scratch fit over the
  /// concatenated rows up to floating-point rounding (property-tested bound:
  /// subspace angle ≤ 1e-6, explained-variance ratios within 1e-8 after ≥ 8
  /// batches). Cost is O((n_batch + d)·d²) versus O(n_total·d²) plus a cold
  /// eigensolve for a refit.
  PcaUpdateStats update(const linalg::Matrix& batch,
                        const Standardizer& batch_moments,
                        util::ThreadPool* pool = nullptr);

  /// Convenience overload that fits the batch moments internally.
  PcaUpdateStats update(const linalg::Matrix& batch,
                        util::ThreadPool* pool = nullptr);

  /// Fits from an externally accumulated covariance instead of raw rows —
  /// the out-of-core path assembles the covariance of the standardised kept
  /// columns (their correlation matrix) in one streaming comoment pass and
  /// never materialises the data fit() would need. `mean` is the per-variable
  /// mean of the (virtual) fit data and `count` its row count; eigensolve,
  /// sign fixing and ratio bookkeeping match fit() exactly.
  void fit_from_covariance(std::vector<double> mean,
                           const linalg::Matrix& covariance, std::size_t count);

  /// Projects data onto the principal axes: scores = (x - mean) · V.
  /// Returns all components; callers slice with `num_components_for`.
  [[nodiscard]] linalg::Matrix transform(const linalg::Matrix& data) const;

  /// Projects onto the first `k` components only.
  [[nodiscard]] linalg::Matrix transform(const linalg::Matrix& data,
                                         std::size_t k) const;

  /// Reconstructs data from the first `k` components (lossy if k < dim).
  [[nodiscard]] linalg::Matrix inverse_transform(const linalg::Matrix& scores) const;

  /// Fraction of total variance captured by each component, descending.
  [[nodiscard]] const std::vector<double>& explained_variance_ratio() const;

  /// Cumulative explained variance after the first `k` components.
  [[nodiscard]] double cumulative_explained_variance(std::size_t k) const;

  /// Smallest k whose cumulative explained variance reaches `target`
  /// (e.g. 0.95 -> 18 components in the paper).
  [[nodiscard]] std::size_t num_components_for(double target) const;

  /// Loading of original variable `var` on component `comp` — the signed
  /// weight used for Fig. 8-style interpretation.
  [[nodiscard]] double loading(std::size_t var, std::size_t comp) const;

  /// Full loading matrix (variables × components, columns are unit vectors).
  [[nodiscard]] const linalg::Matrix& components() const;

  /// Raw eigenvalues of the covariance matrix, descending.
  [[nodiscard]] const std::vector<double>& eigenvalues() const;

  /// Anchors the current leading-`k` subspace as the drift reference — the
  /// projection basis a caller keeps using while updates accumulate. Resets
  /// subspace_drift() to zero; call again after any refit ("rebase").
  void set_drift_anchor(std::size_t k);

  [[nodiscard]] bool has_drift_anchor() const { return anchor_.cols() > 0; }
  [[nodiscard]] std::size_t drift_anchor_components() const {
    return anchor_.cols();
  }

  /// sin of the largest principal angle between the anchored subspace and the
  /// current leading-k eigenbasis (0 when unanchored). A small value means
  /// scores projected through the anchor remain faithful to the updated
  /// covariance; core/drift.cpp gates warm refits on it.
  [[nodiscard]] double subspace_drift() const { return drift_; }

  /// Observations behind the fitted moments (fit sets it, update accumulates).
  [[nodiscard]] std::size_t observations() const { return count_; }

  /// Per-variable mean of every observation folded in so far.
  [[nodiscard]] const std::vector<double>& mean() const { return mean_; }

  [[nodiscard]] std::size_t dimension() const { return mean_.size(); }
  [[nodiscard]] bool fitted() const { return !mean_.empty(); }

 private:
  void recompute_ratios();
  [[nodiscard]] double drift_against_anchor() const;

  std::vector<double> mean_;
  linalg::Matrix components_;  // dim × dim, column j = j-th axis
  std::vector<double> eigenvalues_;
  std::vector<double> explained_ratio_;
  std::size_t count_ = 0;   ///< rows behind the moments
  linalg::Matrix anchor_;   ///< dim × k reference subspace for drift tracking
  double drift_ = 0.0;      ///< cached drift_against_anchor() after updates
};

}  // namespace flare::ml
