// Sublinear K-means for the million-scenario regime (DESIGN.md §12).
//
// The exact Elkan/Hamerly solver (ml/kmeans.hpp) is O(n·k·d) per Lloyd
// iteration times restarts — linear passes over all n rows that the Fig. 9
// k-sweep repeats for every candidate k. At n ≈ 10^5–10^6 that dominates the
// pipeline. The sublinear path decouples the sweep cost from n:
//
//   1. *Lightweight coreset* (sensitivity sampling, Bachem et al.): sample m
//      rows with replacement from q(x) ∝ ½·w_x/W + ½·w_x·d(x, μ)²/Σ w d²
//      (μ = weighted mean) and give each sampled row weight w_x/(m·q(x)).
//      One O(n·d) pass; the coreset is an unbiased estimator of the full
//      weighted SSE objective for ANY candidate centroid set.
//   2. Run the existing exact weighted solver on the m-point coreset
//      (restarts, k-means++, pruning — all inherited), m ≪ n.
//   3. *Refinement*: a few full-data Lloyd iterations via the same
//      Elkan/Hamerly solver, warm-started from the coreset centroids, so the
//      final centroids/assignment are anchored to the real population.
//
// Total cost ~O(n·d · refine_iters + m²-ish solver work) instead of
// O(n·k·d · iters · restarts) per sweep point. Everything is seeded and
// deterministic; co-membership against the exact solver is certified by the
// property harness (tests/scale/).
#pragma once

#include <cstdint>

#include "ml/kmeans.hpp"

namespace flare::ml {

struct CoresetParams {
  /// Target coreset size m (sampled with replacement; duplicates merge, so
  /// the matrix can come out slightly smaller). Clamped to ≥ 8·k by
  /// minibatch_kmeans so tiny coresets cannot starve the solver.
  std::size_t size = 2048;
  std::uint64_t seed = 42;
};

struct Coreset {
  linalg::Matrix points;                 ///< m′ × d (m′ ≤ requested size)
  std::vector<double> weights;           ///< Σ ≈ Σ point_weights (or n)
  std::vector<std::size_t> source_rows;  ///< row in the original data
};

/// Builds a lightweight coreset by sensitivity sampling. `point_weights`
/// empty = unweighted (every row weight 1). O(n·d) one pass + O(m log n)
/// sampling via a prefix-sum table.
[[nodiscard]] Coreset build_coreset(const linalg::Matrix& data,
                                    const CoresetParams& params,
                                    const std::vector<double>& point_weights = {});

struct MiniBatchKMeansParams {
  /// Solver parameters for the coreset solve (k, restarts, seeding, pruning)
  /// and the refinement pass (which forces restarts = 1 + warm start).
  KMeansParams kmeans;
  CoresetParams coreset;
  /// Full-data Lloyd polish iterations after the coreset solve. 0 = assign
  /// only (centroids stay the coreset optimum).
  int refine_iterations = 2;
};

/// Coreset + refine K-means (see file comment). Falls back to the exact
/// solver when the data is already coreset-sized. The result has full-data
/// assignment/point_distances/SSE, so representative extraction and the
/// estimator work unchanged.
[[nodiscard]] KMeansResult minibatch_kmeans(const linalg::Matrix& data,
                                            const MiniBatchKMeansParams& params,
                                            util::ThreadPool* pool = nullptr);

/// Pair-sampled co-membership agreement between two clusterings of the same
/// rows (Rand-index style): the fraction of sampled pairs (i, j) on which
/// the two assignments agree about "same cluster vs different cluster".
/// Enumerates all pairs exactly when there are at most `sample_pairs` of
/// them. 1.0 = identical partitions (up to label permutation).
[[nodiscard]] double comembership_agreement(const std::vector<std::size_t>& a,
                                            const std::vector<std::size_t>& b,
                                            std::size_t sample_pairs = 200000,
                                            std::uint64_t seed = 42);

}  // namespace flare::ml
