#include "ml/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "stats/rng.hpp"
#include "util/error.hpp"

namespace flare::ml {
namespace {

using linalg::Matrix;
using linalg::squared_distance;

/// Picks initial centroids with the k-means++ D² distribution (optionally
/// weighted by per-point importance).
Matrix init_kmeanspp(const Matrix& data, std::size_t k,
                     const std::vector<double>& weights, stats::Rng& rng) {
  const std::size_t n = data.rows();
  Matrix centroids(k, data.cols());
  std::vector<double> d2(n, std::numeric_limits<double>::max());
  const auto w = [&](std::size_t i) { return weights.empty() ? 1.0 : weights[i]; };

  std::size_t first = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
  if (!weights.empty()) first = rng.weighted_index(weights);
  centroids.set_row(0, data.row(first));
  for (std::size_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      d2[i] = std::min(d2[i], squared_distance(data.row(i), centroids.row(c - 1)));
      total += d2[i] * w(i);
    }
    std::size_t chosen = 0;
    if (total > 0.0) {
      double target = rng.uniform() * total;
      for (std::size_t i = 0; i < n; ++i) {
        target -= d2[i] * w(i);
        if (target <= 0.0) {
          chosen = i;
          break;
        }
      }
    } else {
      // All points identical to existing centroids; any choice works.
      chosen = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    }
    centroids.set_row(c, data.row(chosen));
  }
  return centroids;
}

/// Picks k distinct random data points as initial centroids.
Matrix init_random(const Matrix& data, std::size_t k, stats::Rng& rng) {
  const std::vector<std::size_t> picks = rng.sample_without_replacement(data.rows(), k);
  Matrix centroids(k, data.cols());
  for (std::size_t c = 0; c < k; ++c) centroids.set_row(c, data.row(picks[c]));
  return centroids;
}

struct LloydOutcome {
  Matrix centroids;
  std::vector<std::size_t> assignment;
  double sse = 0.0;
  int iterations = 0;
  bool converged = false;
};

LloydOutcome run_lloyd(const Matrix& data, Matrix centroids, const KMeansParams& params) {
  const std::size_t n = data.rows();
  const std::size_t k = params.k;
  const std::size_t dim = data.cols();
  const auto w = [&](std::size_t i) {
    return params.weights.empty() ? 1.0 : params.weights[i];
  };

  LloydOutcome out;
  out.assignment.assign(n, 0);

  for (int iter = 0; iter < params.max_iterations; ++iter) {
    // Assignment step.
    out.sse = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double d = squared_distance(data.row(i), centroids.row(c));
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      out.assignment[i] = best_c;
      out.sse += best * w(i);
    }

    // Update step (weighted means when point weights are given).
    Matrix next(k, dim);
    std::vector<std::size_t> counts(k, 0);
    std::vector<double> mass(k, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t c = out.assignment[i];
      ++counts[c];
      mass[c] += w(i);
      const auto row = data.row(i);
      for (std::size_t j = 0; j < dim; ++j) next(c, j) += row[j] * w(i);
    }

    // Repair empty clusters: move their centroid to the point currently
    // farthest from its assigned centroid (splits the worst-fit region).
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] > 0 && mass[c] > 0.0) {
        for (std::size_t j = 0; j < dim; ++j) {
          next(c, j) /= mass[c];
        }
        continue;
      }
      double worst = -1.0;
      std::size_t worst_i = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const double d =
            squared_distance(data.row(i), centroids.row(out.assignment[i]));
        if (d > worst) {
          worst = d;
          worst_i = i;
        }
      }
      next.set_row(c, data.row(worst_i));
    }

    // Convergence: total squared centroid movement.
    double movement = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      movement += squared_distance(next.row(c), centroids.row(c));
    }
    centroids = std::move(next);
    out.iterations = iter + 1;
    if (movement <= params.tolerance) {
      out.converged = true;
      break;
    }
  }

  // Final assignment against the final centroids (keeps sse consistent).
  out.sse = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::max();
    std::size_t best_c = 0;
    for (std::size_t c = 0; c < k; ++c) {
      const double d = squared_distance(data.row(i), centroids.row(c));
      if (d < best) {
        best = d;
        best_c = c;
      }
    }
    out.assignment[i] = best_c;
    out.sse += best * w(i);
  }
  out.centroids = std::move(centroids);
  return out;
}

}  // namespace

std::vector<std::size_t> KMeansResult::members_of(std::size_t c) const {
  std::vector<std::size_t> members;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i] == c) members.push_back(i);
  }
  return members;
}

std::size_t KMeansResult::nearest_member(const linalg::Matrix& data,
                                         std::size_t c) const {
  ensure(c < centroids.rows(), "KMeansResult::nearest_member: cluster out of range");
  double best = std::numeric_limits<double>::max();
  std::size_t best_i = assignment.size();  // sentinel
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i] != c) continue;
    const double d = squared_distance(data.row(i), centroids.row(c));
    if (d < best) {
      best = d;
      best_i = i;
    }
  }
  ensure(best_i < assignment.size(), "KMeansResult::nearest_member: empty cluster");
  return best_i;
}

std::vector<std::size_t> KMeansResult::members_by_distance(const linalg::Matrix& data,
                                                           std::size_t c) const {
  std::vector<std::size_t> members = members_of(c);
  std::vector<double> dist(members.size());
  for (std::size_t m = 0; m < members.size(); ++m) {
    dist[m] = squared_distance(data.row(members[m]), centroids.row(c));
  }
  std::vector<std::size_t> order(members.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return dist[a] < dist[b]; });
  std::vector<std::size_t> sorted(members.size());
  for (std::size_t m = 0; m < members.size(); ++m) sorted[m] = members[order[m]];
  return sorted;
}

KMeansResult kmeans(const linalg::Matrix& data, const KMeansParams& params) {
  ensure(params.k >= 1, "kmeans: k must be at least 1");
  ensure(data.rows() >= params.k, "kmeans: k exceeds the number of points");
  ensure(params.max_iterations > 0, "kmeans: max_iterations must be positive");
  ensure(params.restarts > 0, "kmeans: restarts must be positive");
  ensure(params.weights.empty() || params.weights.size() == data.rows(),
         "kmeans: weights must be empty or match the point count");
  for (const double w : params.weights) {
    ensure(w >= 0.0, "kmeans: weights must be non-negative");
  }

  stats::Rng rng(params.seed);
  std::optional<LloydOutcome> best;
  for (int r = 0; r < params.restarts; ++r) {
    stats::Rng restart_rng = rng.fork(static_cast<std::uint64_t>(r));
    Matrix init = params.init == KMeansInit::kKMeansPlusPlus
                      ? init_kmeanspp(data, params.k, params.weights, restart_rng)
                      : init_random(data, params.k, restart_rng);
    LloydOutcome outcome = run_lloyd(data, std::move(init), params);
    if (!best.has_value() || outcome.sse < best->sse) best = std::move(outcome);
  }

  KMeansResult result;
  result.centroids = std::move(best->centroids);
  result.assignment = std::move(best->assignment);
  result.sse = best->sse;
  result.iterations = best->iterations;
  result.converged = best->converged;
  result.cluster_sizes.assign(params.k, 0);
  for (const std::size_t c : result.assignment) ++result.cluster_sizes[c];
  return result;
}

}  // namespace flare::ml
