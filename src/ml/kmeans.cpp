#include "ml/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "ml/detail/dense_kernels.hpp"
#include "stats/rng.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace flare::ml {
namespace {

using detail::dist2_raw;
using detail::dist2_raw2;
using linalg::Matrix;
using linalg::squared_distance;

/// Skip margin for the triangle-inequality prune: centroid c provably cannot
/// beat the current best when d(best_c, c) >= 2·d(x, best_c), i.e.
/// cdist2 >= 4·best in squared terms. The 1e-9 relative slack dwarfs the
/// ~1e-15 rounding error of squared_distance, so every skip is proven
/// *strictly* — a skipped candidate's true distance always exceeds `best`,
/// never ties it — and pruned results match the naive scan bit for bit.
constexpr double kPruneMargin = 4.0 + 1e-9;

/// Picks initial centroids with the k-means++ D² distribution (optionally
/// weighted by per-point importance). With `prune`, the D² refresh skips
/// points whose nearest centroid already proves the new centroid is farther
/// (min unchanged), leaving every d2 value — and thus the sampling
/// distribution — exactly as in the naive refresh.
///
/// `seed_hint_out`, when given, receives each point's nearest centroid among
/// the first k-1 picks (the last pick never runs a refresh). run_lloyd's
/// first pruned pass seeds its scans with it: a near-optimal anchor makes
/// the triangle skips fire immediately, where seeding everything at centroid
/// 0 forces the first pass to compute most of the k candidate distances.
/// It is only a hint — every assignment is still proven exactly — so it
/// changes no output.
Matrix init_kmeanspp(const Matrix& data, std::size_t k,
                     const std::vector<double>& weights, stats::Rng& rng,
                     bool prune,
                     std::vector<std::size_t>* seed_hint_out = nullptr) {
  const std::size_t n = data.rows();
  Matrix centroids(k, data.cols());
  std::vector<double> d2(n, std::numeric_limits<double>::max());
  std::vector<std::size_t> nearest(n, 0);  ///< argmin centroid behind d2
  Matrix cdist2(k, k);                     ///< centroid–centroid, grown per pick
  const auto w = [&](std::size_t i) { return weights.empty() ? 1.0 : weights[i]; };

  const std::size_t dim = data.cols();
  const double* points = data.data().data();
  const double* cents = centroids.data().data();

  std::size_t first = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
  if (!weights.empty()) first = rng.weighted_index(weights);
  centroids.set_row(0, data.row(first));
  for (std::size_t c = 1; c < k; ++c) {
    const std::size_t fresh = c - 1;  // centroid added by the previous round
    const double* fresh_row = cents + fresh * dim;
    if (prune) {
      for (std::size_t p = 0; p < fresh; ++p) {
        const double d = dist2_raw(cents + p * dim, fresh_row, dim);
        cdist2(p, fresh) = d;
        cdist2(fresh, p) = d;
      }
    }
    double total = 0.0;
    if (prune) {
      // Refresh pass first, totals after: per-point updates are independent,
      // so splitting the loops changes no value and lets two surviving
      // points' distance chains run interleaved (dist2_raw2).
      std::size_t pending = n;  ///< first survivor of an unfinished pair
      for (std::size_t i = 0; i < n; ++i) {
        if (fresh > 0 && cdist2(nearest[i], fresh) >= d2[i] * kPruneMargin) {
          continue;  // nearest centroid proves the fresh one is farther
        }
        if (pending == n) {
          pending = i;
          continue;
        }
        double dp;
        double di;
        dist2_raw2(points + pending * dim, fresh_row, points + i * dim,
                   fresh_row, dim, dp, di);
        if (dp < d2[pending]) {
          d2[pending] = dp;
          nearest[pending] = fresh;
        }
        if (di < d2[i]) {
          d2[i] = di;
          nearest[i] = fresh;
        }
        pending = n;
      }
      if (pending != n) {
        const double d = dist2_raw(points + pending * dim, fresh_row, dim);
        if (d < d2[pending]) {
          d2[pending] = d;
          nearest[pending] = fresh;
        }
      }
      for (std::size_t i = 0; i < n; ++i) total += d2[i] * w(i);
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        const double d = squared_distance(data.row(i), centroids.row(fresh));
        if (d < d2[i]) {
          d2[i] = d;
          nearest[i] = fresh;
        }
        total += d2[i] * w(i);
      }
    }
    std::size_t chosen = 0;
    if (total > 0.0) {
      double target = rng.uniform() * total;
      for (std::size_t i = 0; i < n; ++i) {
        target -= d2[i] * w(i);
        if (target <= 0.0) {
          chosen = i;
          break;
        }
      }
    } else {
      // All points identical to existing centroids; any choice works.
      chosen = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
    }
    centroids.set_row(c, data.row(chosen));
  }
  if (seed_hint_out != nullptr) *seed_hint_out = nearest;
  return centroids;
}

/// Picks k distinct random data points as initial centroids.
Matrix init_random(const Matrix& data, std::size_t k, stats::Rng& rng) {
  const std::vector<std::size_t> picks = rng.sample_without_replacement(data.rows(), k);
  Matrix centroids(k, data.cols());
  for (std::size_t c = 0; c < k; ++c) centroids.set_row(c, data.row(picks[c]));
  return centroids;
}

struct LloydOutcome {
  Matrix centroids;
  std::vector<std::size_t> assignment;
  std::vector<double> dist2;  ///< squared distance to the assigned centroid
  double sse = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Conservative scaling for bounds kept in real-distance (sqrt) space: the
/// 1e-12 relative slack dwarfs the ≤ ~1e-14 accumulated rounding error of a
/// sqrt + a handful of adds, so "loosened" lower bounds stay true lower
/// bounds and "inflated" upper bounds stay true upper bounds under FP.
double lower(double d) { return d * (1.0 - 1e-12); }
double upper(double d) { return d * (1.0 + 1e-12); }

/// Assigns every point to its nearest centroid, filling `assignment` and
/// `dist2`, and returns the (weighted) SSE. The naive scan walks candidates
/// in index order with a running strict-< best, so ties resolve to the
/// lowest centroid index.
///
/// The pruned scan produces the naive result bit for bit while skipping most
/// distance evaluations; every skip is *strictly* proven (margins leave no
/// room for an exact tie, so tie-breaking can never diverge):
///  - the scan seeds `best` with the point's previous assignment (Lloyd
///    moves centroids little per iteration, so the bound is tight at once);
///  - `ub` (Hamerly) carries a per-point upper bound on the distance to the
///    assigned centroid across iterations (inflated by that centroid's
///    movement in run_lloyd): lb > ub proves the assignment unchanged
///    without computing any distance at all. `dist2` then keeps its stale
///    value; `stale` records that, and run_lloyd recomputes exact distances
///    for stale points in the rare case it needs them (empty-cluster
///    repair). The final pass runs with ub == nullptr, so every reported
///    distance is exact. assignment[i] only changes in an exact scan, so
///    the centroid sums — and every output — are unaffected by the skip;
///  - `lb` (Hamerly) carries a per-point lower bound on the distance to
///    every OTHER centroid across iterations (decayed by the largest
///    centroid movement in run_lloyd): lb > d(x, seed) proves no candidate
///    can win and the whole scan is skipped;
///  - otherwise candidate c is skipped when the triangle inequality proves
///    d(x, c) > best via centroid–centroid distances (see kPruneMargin);
///    exact ties among computed candidates resolve toward the lower index —
///    the same winner the naive scan picks. The triangle skips need
///    best > 0 when the current best index sits above c: at best == 0 a
///    duplicate centroid could tie rather than lose.
/// dist2 stays exact in every path (the winning distance is always computed,
/// never bounded). Points are independent, and the SSE is reduced serially
/// in point order, so the result is also identical for every thread count.
double assign_points(const Matrix& data, const Matrix& centroids,
                     const KMeansParams& params, util::ThreadPool* pool,
                     std::vector<std::size_t>& assignment,
                     std::vector<double>& dist2, std::vector<double>* lb,
                     std::vector<double>* ub = nullptr,
                     std::vector<unsigned char>* stale = nullptr) {
  const std::size_t n = data.rows();
  const std::size_t k = centroids.rows();
  const std::size_t dim = data.cols();
  const bool prune = params.prune && k > 1;
  const double* points = data.data().data();
  const double* cents = centroids.data().data();
  Matrix cdist2;
  Matrix cdist_lo;                 ///< lower(sqrt(cdist2)): real-distance bound
  std::vector<double> min_cd2;     ///< per centroid: nearest other centroid
  std::vector<double> min_cd_lo;   ///< lower(sqrt(min_cd2))
  // Per centroid s: the other centroids ordered by ascending cdist2(s, ·).
  // A point's scan walks its seed's list and stops at the first candidate
  // the seed-anchored triangle test rejects — every later candidate is even
  // farther from the seed, so the whole tail is rejected by the same proof.
  std::vector<std::uint32_t> order;
  if (prune) {
    cdist2 = Matrix(k, k);
    cdist_lo = Matrix(k, k);
    min_cd2.assign(k, std::numeric_limits<double>::max());
    min_cd_lo.assign(k, 0.0);
    for (std::size_t a = 0; a < k; ++a) {
      for (std::size_t b = a + 1; b < k; ++b) {
        const double d = dist2_raw(cents + a * dim, cents + b * dim, dim);
        cdist2(a, b) = d;
        cdist2(b, a) = d;
        const double lo = lower(std::sqrt(d));
        cdist_lo(a, b) = lo;
        cdist_lo(b, a) = lo;
        min_cd2[a] = std::min(min_cd2[a], d);
        min_cd2[b] = std::min(min_cd2[b], d);
      }
    }
    for (std::size_t c = 0; c < k; ++c) min_cd_lo[c] = lower(std::sqrt(min_cd2[c]));
    order.resize(k * (k - 1));
    for (std::size_t s = 0; s < k; ++s) {
      std::uint32_t* row = order.data() + s * (k - 1);
      std::size_t m = 0;
      for (std::size_t c = 0; c < k; ++c) {
        if (c != s) row[m++] = static_cast<std::uint32_t>(c);
      }
      const double* cd = &cdist2(s, 0);
      std::sort(row, row + (k - 1), [cd](std::uint32_t a, std::uint32_t b) {
        return cd[a] < cd[b] || (cd[a] == cd[b] && a < b);
      });
    }
  }
  if (prune) {
    // Carried-bound (tier-0) check: proves the assignment unchanged without
    // computing any distance. dist2[i] is then stale (see run_lloyd).
    const auto bounds_skip = [&](std::size_t i) -> bool {
      if (ub != nullptr && (*lb)[i] > (*ub)[i]) {
        (*stale)[i] = 1;
        (*lb)[i] = std::max((*lb)[i], min_cd_lo[assignment[i]] - (*ub)[i]);
        return true;
      }
      return false;
    };
    // Everything after the seed distance `sd0` = d²(x, assignment[i]).
    const auto finish = [&](std::size_t i, double sd0) {
      const double* point = points + i * dim;
      const std::size_t seed = assignment[i];  // 0/hint on the first iteration
      double best = sd0;
      std::size_t best_c = seed;
      const double seed_ub = upper(std::sqrt(best));  ///< real-distance bound
      if (ub != nullptr) {
        (*ub)[i] = seed_ub;
        (*stale)[i] = 0;
      }
      if ((*lb)[i] > seed_ub) {
        // Every other centroid is strictly farther than the seed: keep it.
        // s(c) can only tighten the carried bound.
        (*lb)[i] = std::max((*lb)[i], min_cd_lo[seed] - seed_ub);
      } else if (min_cd2[seed] >= best * kPruneMargin && best > 0.0) {
        // Even the NEAREST other centroid is strictly too far (s(c) test):
        // for any c != seed, d(x, c) >= d(seed, c) - d(x, seed).
        (*lb)[i] = min_cd_lo[seed] - seed_ub;
      } else {
        const double sd = best;  ///< d²(x, seed): the fixed anchor for breaks
        const std::uint32_t* ord = order.data() + seed * (k - 1);
        double second = std::numeric_limits<double>::max();  // exact, squared
        double skipped_lo = std::numeric_limits<double>::max();  // real-distance
        double best_ub = seed_ub;  ///< tracks upper(sqrt(best)) as best improves
        // Walks the sorted candidate list from position m to the next
        // candidate whose distance must be computed, or returns k when the
        // list is exhausted / tail-rejected. Skips are strict-loss proofs:
        //  - seed-anchored: d(x, c) >= d(seed, c) - d(x, seed) strictly
        //    exceeds d(x, seed) >= the final best; the list is sorted by
        //    cdist2(seed, ·), so the same proof rejects the whole remaining
        //    tail. (Strict >, so at sd == 0 exact duplicates of the seed are
        //    still visited and tie-break toward the lowest index exactly as
        //    the naive scan does.)
        //  - best-anchored triangle proof (kPruneMargin), which also yields
        //    a lower bound for the carry-over:
        //    d(x, c) >= d(best_c, c) - d(x, best_c).
        auto next_compute = [&](std::size_t& m, bool& done) -> std::size_t {
          while (m < k - 1) {
            const std::size_t c = ord[m];
            if (cdist2(seed, c) > sd * kPruneMargin) {
              skipped_lo = std::min(skipped_lo, cdist_lo(seed, c) - seed_ub);
              done = true;
              return k;
            }
            ++m;
            if (cdist2(best_c, c) >= best * kPruneMargin &&
                (c > best_c || best > 0.0)) {
              skipped_lo = std::min(skipped_lo, cdist_lo(best_c, c) - best_ub);
              continue;
            }
            return c;
          }
          done = true;
          return k;
        };
        // Folds a computed distance in. Computed candidates are applied in
        // list order; best/best_c track the lexicographic min of (d, c), so
        // the winner — and the tie-break toward the lowest index — matches
        // the naive ascending scan no matter which candidates were skipped.
        const auto apply = [&](double d, std::size_t c) {
          if (d < best || (d == best && c < best_c)) {
            second = std::min(second, best);
            best = d;
            best_c = c;
            best_ub = upper(std::sqrt(best));
          } else {
            second = std::min(second, d);
          }
        };
        // Candidates are computed in pairs (dist2_raw2) so their FP chains
        // overlap. The partner is selected before the first distance is
        // folded in, i.e. with a slightly staler `best` — that only makes
        // the skip tests more conservative (compute instead of skip), and a
        // computed distance can only tighten `second`; the outputs are
        // unchanged.
        std::size_t m = 0;
        bool done = false;
        while (!done) {
          const std::size_t c0 = next_compute(m, done);
          if (c0 == k) break;
          const std::size_t c1 = next_compute(m, done);
          if (c1 == k) {
            apply(dist2_raw(point, cents + c0 * dim, dim), c0);
            break;
          }
          double d0;
          double d1;
          dist2_raw2(point, cents + c0 * dim, point, cents + c1 * dim, dim,
                     d0, d1);
          apply(d0, c0);
          apply(d1, c1);
        }
        (*lb)[i] = std::min(lower(std::sqrt(second)), skipped_lo);
        if (ub != nullptr) (*ub)[i] = best_ub;
      }
      assignment[i] = best_c;
      dist2[i] = best;
    };
    // Points are processed in adjacent pairs so the two seed-distance FP
    // chains overlap (dist2_raw2). Points stay fully independent — the
    // pairing, like the thread-pool chunking, changes no value.
    const std::size_t pairs = (n + 1) / 2;
    util::maybe_parallel_for(pool, pairs, [&](std::size_t p) {
      const std::size_t i0 = 2 * p;
      const std::size_t i1 = i0 + 1;
      const bool need0 = !bounds_skip(i0);
      const bool need1 = i1 < n && !bounds_skip(i1);
      if (need0 && need1) {
        double s0;
        double s1;
        dist2_raw2(points + i0 * dim, cents + assignment[i0] * dim,
                   points + i1 * dim, cents + assignment[i1] * dim, dim, s0,
                   s1);
        finish(i0, s0);
        finish(i1, s1);
      } else if (need0) {
        finish(i0,
               dist2_raw(points + i0 * dim, cents + assignment[i0] * dim, dim));
      } else if (need1) {
        finish(i1,
               dist2_raw(points + i1 * dim, cents + assignment[i1] * dim, dim));
      }
    });
  } else {
    util::maybe_parallel_for(pool, n, [&](std::size_t i) {
      const auto point = data.row(i);
      double best = std::numeric_limits<double>::max();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double d = squared_distance(point, centroids.row(c));
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      assignment[i] = best_c;
      dist2[i] = best;
    });
  }
  double sse = 0.0;
  if (params.weights.empty()) {
    for (std::size_t i = 0; i < n; ++i) sse += dist2[i];
  } else {
    for (std::size_t i = 0; i < n; ++i) sse += dist2[i] * params.weights[i];
  }
  return sse;
}

LloydOutcome run_lloyd(const Matrix& data, Matrix centroids,
                       const KMeansParams& params, util::ThreadPool* pool,
                       std::vector<std::size_t> seed_hint = {}) {
  const std::size_t n = data.rows();
  const std::size_t k = params.k;
  const std::size_t dim = data.cols();
  const auto w = [&](std::size_t i) {
    return params.weights.empty() ? 1.0 : params.weights[i];
  };

  LloydOutcome out;
  // The hint only seeds the first pruned scan's anchors (see init_kmeanspp);
  // with no hint every point starts at centroid 0, as the naive scan does.
  if (seed_hint.size() == n) {
    out.assignment = std::move(seed_hint);
  } else {
    out.assignment.assign(n, 0);
  }
  out.dist2.assign(n, 0.0);
  std::vector<std::size_t> previous;  ///< assignment before the current pass
  bool repaired = false;              ///< did the last update re-seed a centroid?
  // Hamerly bounds (see assign_points); lb = -inf ("know nothing") makes the
  // first pass compute like the naive scan. stale[i] marks a dist2 entry the
  // carried bounds let a pass skip; such entries are recomputed on demand
  // below before the repair step reads them.
  std::vector<double> lb(n, -std::numeric_limits<double>::infinity());
  std::vector<double> ub(n, 0.0);
  std::vector<unsigned char> stale(n, 0);

  for (int iter = 0; iter < params.max_iterations; ++iter) {
    previous = out.assignment;
    out.sse = assign_points(data, centroids, params, pool, out.assignment,
                            out.dist2, &lb, &ub, &stale);

    // Membership unchanged and the current centroids are plain means of that
    // membership (iter > 0, no repair): recomputing the update would rebuild
    // the exact same sums, so movement is exactly 0 — converged. (A repaired
    // centroid is not a mean, so its re-repair could pick a different point.)
    if (iter > 0 && !repaired && params.tolerance >= 0.0 &&
        out.assignment == previous) {
      out.iterations = iter + 1;
      out.converged = true;
      break;
    }

    // Update step (weighted means when point weights are given; the
    // unweighted loop skips the ×1.0, which changes no bit).
    Matrix next(k, dim);
    std::vector<std::size_t> counts(k, 0);
    std::vector<double> mass(k, 0.0);
    const double* points = data.data().data();
    if (params.weights.empty()) {
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t c = out.assignment[i];
        ++counts[c];
        const double* row = points + i * dim;
        double* acc = &next(c, 0);
        for (std::size_t j = 0; j < dim; ++j) acc[j] += row[j];
      }
      for (std::size_t c = 0; c < k; ++c) mass[c] = static_cast<double>(counts[c]);
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t c = out.assignment[i];
        ++counts[c];
        mass[c] += w(i);
        const double* row = points + i * dim;
        double* acc = &next(c, 0);
        for (std::size_t j = 0; j < dim; ++j) acc[j] += row[j] * w(i);
      }
    }

    // Repair empty clusters: move their centroid to the point currently
    // farthest from its assigned centroid (splits the worst-fit region).
    // The argmax must see the exact distances the naive pass would have
    // produced, so stale (bound-skipped) entries are recomputed first.
    bool any_empty = false;
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0 || !(mass[c] > 0.0)) any_empty = true;
    }
    if (any_empty) {
      const double* cents = centroids.data().data();
      for (std::size_t i = 0; i < n; ++i) {
        if (!stale[i]) continue;
        out.dist2[i] =
            dist2_raw(points + i * dim, cents + out.assignment[i] * dim, dim);
        stale[i] = 0;
      }
    }
    repaired = false;
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] > 0 && mass[c] > 0.0) {
        for (std::size_t j = 0; j < dim; ++j) {
          next(c, j) /= mass[c];
        }
        continue;
      }
      double worst = -1.0;
      std::size_t worst_i = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (out.dist2[i] > worst) {
          worst = out.dist2[i];
          worst_i = i;
        }
      }
      next.set_row(c, data.row(worst_i));
      repaired = true;
    }

    // Convergence: total squared centroid movement.
    double movement = 0.0;
    double max_move2 = 0.0;
    std::vector<double> move_hi(k, 0.0);  ///< upper(real move) per centroid
    for (std::size_t c = 0; c < k; ++c) {
      const double m2 = squared_distance(next.row(c), centroids.row(c));
      movement += m2;
      max_move2 = std::max(max_move2, m2);
      move_hi[c] = m2 > 0.0 ? upper(std::sqrt(m2)) : 0.0;
    }
    // Centroids moved: every upper bound grows by its own centroid's
    // movement and every lower bound decays by the largest movement among
    // the OTHER centroids — lb only bounds distances to centroids the point
    // is not assigned to, so a point assigned to the biggest mover decays by
    // the runner-up instead (Hamerly's refinement). Inflating the
    // adjustments (move_hi is upper(real move)) keeps the bounds
    // conservative under FP.
    if (max_move2 > 0.0) {
      std::size_t biggest = 0;
      double decay1 = 0.0;  ///< largest move_hi
      double decay2 = 0.0;  ///< second-largest move_hi
      for (std::size_t c = 0; c < k; ++c) {
        if (move_hi[c] > decay1) {
          decay2 = decay1;
          decay1 = move_hi[c];
          biggest = c;
        } else {
          decay2 = std::max(decay2, move_hi[c]);
        }
      }
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t c = out.assignment[i];
        lb[i] -= c == biggest ? decay2 : decay1;
        ub[i] += move_hi[c];
      }
    }
    centroids = std::move(next);
    out.iterations = iter + 1;
    if (movement <= params.tolerance) {
      out.converged = true;
      break;
    }
  }

  // Final assignment against the final centroids (keeps sse consistent).
  out.sse =
      assign_points(data, centroids, params, pool, out.assignment, out.dist2, &lb);
  out.centroids = std::move(centroids);
  return out;
}

}  // namespace

std::vector<std::size_t> KMeansResult::members_of(std::size_t c) const {
  std::vector<std::size_t> members;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i] == c) members.push_back(i);
  }
  return members;
}

std::size_t KMeansResult::nearest_member(const linalg::Matrix& data,
                                         std::size_t c) const {
  ensure(c < centroids.rows(), "KMeansResult::nearest_member: cluster out of range");
  const bool cached = point_distances.size() == assignment.size();
  double best = std::numeric_limits<double>::max();
  std::size_t best_i = assignment.size();  // sentinel
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i] != c) continue;
    const double d = cached ? point_distances[i]
                            : squared_distance(data.row(i), centroids.row(c));
    if (d < best) {
      best = d;
      best_i = i;
    }
  }
  ensure(best_i < assignment.size(), "KMeansResult::nearest_member: empty cluster");
  return best_i;
}

std::vector<std::size_t> KMeansResult::members_by_distance(const linalg::Matrix& data,
                                                           std::size_t c) const {
  const bool cached = point_distances.size() == assignment.size();
  std::vector<std::size_t> members = members_of(c);
  std::vector<double> dist(members.size());
  for (std::size_t m = 0; m < members.size(); ++m) {
    dist[m] = cached
                  ? point_distances[members[m]]
                  : squared_distance(data.row(members[m]), centroids.row(c));
  }
  std::vector<std::size_t> order(members.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return dist[a] < dist[b]; });
  std::vector<std::size_t> sorted(members.size());
  for (std::size_t m = 0; m < members.size(); ++m) sorted[m] = members[order[m]];
  return sorted;
}

KMeansResult kmeans(const linalg::Matrix& data, const KMeansParams& params,
                    util::ThreadPool* pool) {
  ensure(params.k >= 1, "kmeans: k must be at least 1");
  ensure(data.rows() >= params.k, "kmeans: k exceeds the number of points");
  ensure(params.max_iterations > 0, "kmeans: max_iterations must be positive");
  ensure(params.restarts > 0, "kmeans: restarts must be positive");
  ensure(params.weights.empty() || params.weights.size() == data.rows(),
         "kmeans: weights must be empty or match the point count");
  for (const double w : params.weights) {
    ensure(w >= 0.0, "kmeans: weights must be non-negative");
  }
  const bool warm = params.initial_centroids.rows() == params.k;
  ensure(!warm || params.initial_centroids.cols() == data.cols(),
         "kmeans: initial_centroids dimension mismatch");

  // Degrade to serial instead of deadlocking when a caller forwards the pool
  // from inside one of its own tasks (e.g. a per-k sweep worker).
  if (pool != nullptr && pool->on_worker_thread()) pool = nullptr;

  const stats::Rng rng(params.seed);
  const std::size_t restarts = static_cast<std::size_t>(params.restarts);
  std::vector<LloydOutcome> outcomes(restarts);
  const auto run_restart = [&](std::size_t r, util::ThreadPool* inner) {
    if (r == 0 && warm) {
      // Warm start: no seeding run, no seed hint (the first pruned pass
      // anchors every point at centroid 0, as a hintless cold start does).
      outcomes[r] = run_lloyd(data, params.initial_centroids, params, inner);
      return;
    }
    stats::Rng restart_rng = rng.fork(static_cast<std::uint64_t>(r));
    std::vector<std::size_t> seed_hint;
    Matrix init = params.init == KMeansInit::kKMeansPlusPlus
                      ? init_kmeanspp(data, params.k, params.weights, restart_rng,
                                      params.prune, &seed_hint)
                      : init_random(data, params.k, restart_rng);
    outcomes[r] =
        run_lloyd(data, std::move(init), params, inner, std::move(seed_hint));
  };
  if (pool != nullptr && restarts > 1) {
    // Restarts are fully independent (forked RNG streams), so they are the
    // natural parallel grain; each Lloyd then runs serially in its worker.
    util::parallel_for(*pool, restarts,
                       [&](std::size_t r) { run_restart(r, nullptr); });
  } else {
    for (std::size_t r = 0; r < restarts; ++r) run_restart(r, pool);
  }

  // Lowest SSE wins; scanning in restart order makes ties resolve to the
  // first restart, matching the serial loop regardless of thread count.
  std::size_t winner = 0;
  for (std::size_t r = 1; r < restarts; ++r) {
    if (outcomes[r].sse < outcomes[winner].sse) winner = r;
  }
  LloydOutcome& best = outcomes[winner];

  KMeansResult result;
  result.centroids = std::move(best.centroids);
  result.assignment = std::move(best.assignment);
  result.point_distances = std::move(best.dist2);
  result.sse = best.sse;
  result.iterations = best.iterations;
  result.converged = best.converged;
  result.cluster_sizes.assign(params.k, 0);
  for (const std::size_t c : result.assignment) ++result.cluster_sizes[c];
  return result;
}

}  // namespace flare::ml
