// Per-metric median imputation for partially-faulty profiled rows.
//
// The fault-tolerant profiler (core/profiler.hpp) leaves NaN in cells where
// no valid reading survived the retries. Before those rows can enter the
// standardize → PCA → cluster chain they must be filled with something
// neutral; the per-metric median over the healthy population is robust to
// the very outliers that caused the gaps (the same choice the KPI-clustering
// literature makes for missing monitoring data).
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace flare::ml {

/// Per-column medians over the *finite* cells of `data`, skipping the listed
/// rows entirely (quarantined rows must not influence the fill values).
/// Columns with no usable finite cell fall back to the median over all rows'
/// finite cells, and to 0.0 if the column is non-finite everywhere.
[[nodiscard]] std::vector<double> finite_column_medians(
    const linalg::Matrix& data,
    const std::vector<std::size_t>& exclude_rows = {});

/// Replaces every non-finite cell of `data` with `fill[column]` in place and
/// returns the number of cells rewritten. `fill` must be column-count wide
/// and finite (use finite_column_medians).
std::size_t impute_non_finite(linalg::Matrix& data,
                              const std::vector<double>& fill);

}  // namespace flare::ml
