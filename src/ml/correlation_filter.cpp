#include "ml/correlation_filter.hpp"

#include <cmath>

#include "stats/correlation.hpp"
#include "util/error.hpp"

namespace flare::ml {

CorrelationFilter::CorrelationFilter(double threshold) : threshold_(threshold) {
  ensure(threshold > 0.0 && threshold <= 1.0,
         "CorrelationFilter: threshold must be in (0, 1]");
}

CorrelationFilterResult CorrelationFilter::fit(const linalg::Matrix& data) const {
  ensure(data.rows() >= 2, "CorrelationFilter::fit: need at least two rows");
  CorrelationFilterResult result;
  std::vector<std::vector<double>> kept_data;  // cache of kept column vectors

  for (std::size_t c = 0; c < data.cols(); ++c) {
    const std::vector<double> candidate = data.column(c);
    bool duplicate = false;
    for (std::size_t k = 0; k < result.kept_columns.size(); ++k) {
      const double r = stats::pearson(kept_data[k], candidate);
      if (std::abs(r) >= threshold_) {
        result.drops.push_back(
            CorrelationDrop{c, result.kept_columns[k], r});
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      result.kept_columns.push_back(c);
      kept_data.push_back(candidate);
    }
  }
  return result;
}

CorrelationFilterResult CorrelationFilter::fit_from_correlation(
    const linalg::Matrix& corr) const {
  ensure(corr.rows() == corr.cols(),
         "CorrelationFilter::fit_from_correlation: matrix must be square");
  ensure(corr.rows() >= 1,
         "CorrelationFilter::fit_from_correlation: empty matrix");
  CorrelationFilterResult result;
  for (std::size_t c = 0; c < corr.cols(); ++c) {
    bool duplicate = false;
    for (const std::size_t k : result.kept_columns) {
      const double r = corr(k, c);
      if (std::abs(r) >= threshold_) {
        result.drops.push_back(CorrelationDrop{c, k, r});
        duplicate = true;
        break;
      }
    }
    if (!duplicate) result.kept_columns.push_back(c);
  }
  return result;
}

linalg::Matrix CorrelationFilter::apply(const linalg::Matrix& data,
                                        CorrelationFilterResult* report) const {
  CorrelationFilterResult result = fit(data);
  linalg::Matrix filtered = data.select_columns(result.kept_columns);
  if (report != nullptr) *report = std::move(result);
  return filtered;
}

}  // namespace flare::ml
