#include "ml/whitener.hpp"

#include <cmath>

#include "linalg/covariance.hpp"
#include "util/error.hpp"

namespace flare::ml {

void Whitener::fit(const linalg::Matrix& scores) {
  ensure(scores.rows() >= 2, "Whitener::fit: need at least two rows");
  ensure_numeric(scores.rows() >= scores.cols(),
                 "Whitener::fit: fewer rows than columns — per-component "
                 "variances are not identifiable from a rank-deficient score "
                 "matrix; reduce components or collect more rows");
  means_ = linalg::column_means(scores);
  scales_.assign(scores.cols(), 1.0);
  for (std::size_t c = 0; c < scores.cols(); ++c) {
    double sum_sq = 0.0;
    for (std::size_t r = 0; r < scores.rows(); ++r) {
      const double d = scores(r, c) - means_[c];
      sum_sq += d * d;
    }
    const double sd = std::sqrt(sum_sq / static_cast<double>(scores.rows() - 1));
    scales_[c] = sd > 0.0 ? sd : 1.0;
  }
}

linalg::Matrix Whitener::transform(const linalg::Matrix& scores) const {
  ensure(fitted(), "Whitener::transform: not fitted");
  ensure(scores.cols() == means_.size(), "Whitener::transform: column mismatch");
  linalg::Matrix out(scores.rows(), scores.cols());
  for (std::size_t r = 0; r < scores.rows(); ++r) {
    for (std::size_t c = 0; c < scores.cols(); ++c) {
      out(r, c) = (scores(r, c) - means_[c]) / scales_[c];
    }
  }
  return out;
}

linalg::Matrix Whitener::fit_transform(const linalg::Matrix& scores) {
  fit(scores);
  return transform(scores);
}

linalg::Matrix Whitener::inverse_transform(const linalg::Matrix& white) const {
  ensure(fitted(), "Whitener::inverse_transform: not fitted");
  ensure(white.cols() == means_.size(), "Whitener::inverse_transform: column mismatch");
  linalg::Matrix out(white.rows(), white.cols());
  for (std::size_t r = 0; r < white.rows(); ++r) {
    for (std::size_t c = 0; c < white.cols(); ++c) {
      out(r, c) = white(r, c) * scales_[c] + means_[c];
    }
  }
  return out;
}

}  // namespace flare::ml
