#include "ml/impute.hpp"

#include <cmath>
#include <string>
#include <unordered_set>

#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace flare::ml {

std::vector<double> finite_column_medians(
    const linalg::Matrix& data, const std::vector<std::size_t>& exclude_rows) {
  ensure(!data.empty(), "finite_column_medians: empty matrix");
  std::unordered_set<std::size_t> excluded(exclude_rows.begin(),
                                           exclude_rows.end());
  std::vector<double> medians(data.cols(), 0.0);
  std::vector<double> cells;
  cells.reserve(data.rows());
  for (std::size_t c = 0; c < data.cols(); ++c) {
    cells.clear();
    for (std::size_t r = 0; r < data.rows(); ++r) {
      if (excluded.count(r) != 0) continue;
      const double v = data(r, c);
      if (std::isfinite(v)) cells.push_back(v);
    }
    if (cells.empty()) {
      // All healthy rows are blind on this metric; fall back to whatever
      // finite evidence exists anywhere, then to zero.
      for (std::size_t r = 0; r < data.rows(); ++r) {
        const double v = data(r, c);
        if (std::isfinite(v)) cells.push_back(v);
      }
    }
    medians[c] = cells.empty() ? 0.0 : stats::median(cells);
  }
  return medians;
}

std::size_t impute_non_finite(linalg::Matrix& data,
                              const std::vector<double>& fill) {
  ensure(fill.size() == data.cols(),
         "impute_non_finite: fill must be column-count wide");
  for (std::size_t c = 0; c < fill.size(); ++c) {
    if (!std::isfinite(fill[c])) {
      throw FaultError("impute_non_finite: non-finite fill value in column " +
                       std::to_string(c));
    }
  }
  std::size_t imputed = 0;
  for (std::size_t r = 0; r < data.rows(); ++r) {
    for (std::size_t c = 0; c < data.cols(); ++c) {
      if (!std::isfinite(data(r, c))) {
        data(r, c) = fill[c];
        ++imputed;
      }
    }
  }
  return imputed;
}

}  // namespace flare::ml
