#include "baselines/sampling_evaluator.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"
#include "stats/rng.hpp"
#include "util/error.hpp"

namespace flare::baselines {
namespace {

SamplingResult finalize(SamplingResult result, double true_impact_pct) {
  result.true_impact_pct = true_impact_pct;
  result.distribution = stats::box_summary(result.trial_estimates);
  // The 95% band a single sampling campaign lands in (Fig. 12b's error bars):
  // the [2.5%, 97.5%] percentiles of the trial estimates.
  result.ci95.lower = stats::percentile(result.trial_estimates, 0.025);
  result.ci95.upper = stats::percentile(result.trial_estimates, 0.975);
  result.mean_estimate = stats::mean(result.trial_estimates);
  result.ci95.point = result.mean_estimate;
  std::vector<double> abs_errors;
  abs_errors.reserve(result.trial_estimates.size());
  for (const double e : result.trial_estimates) {
    abs_errors.push_back(std::abs(e - true_impact_pct));
  }
  result.max_abs_error = stats::max_value(abs_errors);
  result.p95_abs_error = stats::percentile(abs_errors, 0.95);
  return result;
}

}  // namespace

RandomSamplingEvaluator::RandomSamplingEvaluator(const core::ImpactModel& impact,
                                                 const dcsim::ScenarioSet& set)
    : impact_(&impact), set_(&set) {
  ensure(!set.scenarios.empty(), "RandomSamplingEvaluator: empty scenario set");
}

SamplingResult RandomSamplingEvaluator::evaluate(const core::Feature& feature,
                                                 const SamplingConfig& config,
                                                 double true_impact_pct) const {
  ensure(config.sample_size >= 1, "RandomSamplingEvaluator: sample_size must be >= 1");
  ensure(config.trials >= 1, "RandomSamplingEvaluator: trials must be >= 1");
  ensure(config.with_replacement || config.sample_size <= set_->scenarios.size(),
         "RandomSamplingEvaluator: sample larger than population");

  // Cache per-scenario impacts: a trial re-uses the measured value, exactly
  // as re-sampling the same machine would re-read the same number.
  std::vector<double> impact_cache(set_->scenarios.size());
  for (std::size_t i = 0; i < set_->scenarios.size(); ++i) {
    impact_cache[i] = impact_->scenario_impact_pct(
        set_->scenarios[i].mix, feature, core::MeasurementContext::kTestbed);
  }
  const std::vector<double> weights = set_->normalized_weights();

  stats::Rng rng(config.seed);
  SamplingResult result;
  result.feature_name = feature.name();
  result.config = config;
  result.scenario_evaluations_per_trial = config.sample_size;
  result.trial_estimates.reserve(static_cast<std::size_t>(config.trials));

  for (int t = 0; t < config.trials; ++t) {
    double sum = 0.0;
    if (config.with_replacement) {
      for (std::size_t s = 0; s < config.sample_size; ++s) {
        sum += impact_cache[rng.weighted_index(weights)];
      }
    } else {
      const std::vector<std::size_t> picks =
          rng.sample_without_replacement(set_->scenarios.size(), config.sample_size);
      for (const std::size_t p : picks) sum += impact_cache[p];
    }
    result.trial_estimates.push_back(sum / static_cast<double>(config.sample_size));
  }
  return finalize(std::move(result), true_impact_pct);
}

SamplingResult RandomSamplingEvaluator::evaluate_job(const core::Feature& feature,
                                                     dcsim::JobType job,
                                                     const SamplingConfig& config,
                                                     double true_impact_pct) const {
  // Restrict the population to scenarios containing the job (the sampler
  // keeps drawing machines until it has n with the job of interest).
  std::vector<double> impact_cache;
  std::vector<double> weights;
  for (const dcsim::ColocationScenario& s : set_->scenarios) {
    const int count = s.mix.count(job);
    if (count == 0) continue;
    impact_cache.push_back(impact_->job_impact_pct(
        job, s.mix, feature, core::MeasurementContext::kTestbed));
    weights.push_back(s.observation_weight * static_cast<double>(count));
  }
  ensure(!impact_cache.empty(),
         "RandomSamplingEvaluator::evaluate_job: job never appears");
  ensure(config.with_replacement || config.sample_size <= impact_cache.size(),
         "RandomSamplingEvaluator::evaluate_job: sample larger than population");

  stats::Rng rng(config.seed);
  SamplingResult result;
  result.feature_name = feature.name();
  result.config = config;
  result.scenario_evaluations_per_trial = config.sample_size;
  result.trial_estimates.reserve(static_cast<std::size_t>(config.trials));

  for (int t = 0; t < config.trials; ++t) {
    double sum = 0.0;
    if (config.with_replacement) {
      for (std::size_t s = 0; s < config.sample_size; ++s) {
        sum += impact_cache[rng.weighted_index(weights)];
      }
    } else {
      const std::vector<std::size_t> picks =
          rng.sample_without_replacement(impact_cache.size(), config.sample_size);
      for (const std::size_t p : picks) sum += impact_cache[p];
    }
    result.trial_estimates.push_back(sum / static_cast<double>(config.sample_size));
  }
  return finalize(std::move(result), true_impact_pct);
}

}  // namespace flare::baselines
