// Conventional (co-location-unaware) load-testing baseline (paper §3.1,
// Fig. 2): "we populate instances of each service on a single machine and
// measure the feature's impact on it". The machine runs ONLY the service
// under test — no interference from other jobs — which is exactly why its
// estimates diverge from in-datacenter reality.
#pragma once

#include <string>

#include "core/feature.hpp"
#include "core/impact.hpp"

namespace flare::baselines {

struct LoadTestResult {
  std::string feature_name;
  dcsim::JobType job = dcsim::JobType::kDataAnalytics;
  int instances = 0;           ///< copies populated on the test machine
  double baseline_mips = 0.0;  ///< per instance
  double feature_mips = 0.0;   ///< per instance
  double impact_pct = 0.0;     ///< MIPS reduction, percent
};

class LoadTestingEvaluator {
 public:
  explicit LoadTestingEvaluator(const core::ImpactModel& impact);

  /// Fills the machine with as many instances of `job` as the vCPU quota
  /// allows (the paper's "populate instances") and measures the feature's
  /// per-instance MIPS reduction.
  [[nodiscard]] LoadTestResult evaluate_job(const core::Feature& feature,
                                            dcsim::JobType job) const;

  /// How many instances of `job` the load test populates.
  [[nodiscard]] int populated_instances(dcsim::JobType job) const;

 private:
  const core::ImpactModel* impact_;  ///< non-owning
};

}  // namespace flare::baselines
