// Canary-cluster baseline, after WSMeter (Lee et al., ASPLOS'18) — the
// "statistical approach to construct a small canary cluster" the paper's
// introduction positions FLARE against.
//
// The canary sizes itself: a pilot batch of randomly drawn machine
// observations estimates the impact variance, the classic sample-size formula
// n = (z·σ / target)² decides how many observations a target confidence-
// interval half-width requires, and the canary grows to that size. Accuracy
// is tunable, but the cost scales with the datacenter's inherent variance —
// which is exactly why FLARE's 18 hand-picked representatives beat it.
#pragma once

#include <cstdint>
#include <string>

#include "core/feature.hpp"
#include "core/impact.hpp"
#include "dcsim/scenario.hpp"

namespace flare::baselines {

struct CanaryConfig {
  /// Desired 95% CI half-width of the impact estimate, in percentage points.
  double target_ci_halfwidth_pp = 0.5;
  /// Observations measured up-front to estimate the variance.
  std::size_t pilot_size = 12;
  /// Hard cap on the canary size (you cannot canary the whole fleet).
  std::size_t max_size = 2000;
  std::uint64_t seed = 77;
};

struct CanaryResult {
  std::string feature_name;
  double impact_pct = 0.0;       ///< the canary's estimate
  std::size_t canary_size = 0;   ///< observations measured (the cost)
  double pilot_stddev = 0.0;     ///< σ estimated from the pilot
  double achieved_ci_halfwidth = 0.0;  ///< z·s/√n at the final size
  bool target_met = false;       ///< false when max_size capped the growth
};

class CanaryClusterEvaluator {
 public:
  CanaryClusterEvaluator(const core::ImpactModel& impact,
                         const dcsim::ScenarioSet& set);
  CanaryClusterEvaluator(core::ImpactModel&&, const dcsim::ScenarioSet&) = delete;

  /// Builds a self-sizing canary for `feature` and returns its estimate.
  /// Observations are machine draws, i.e. scenarios sampled with replacement
  /// proportionally to observation weight.
  [[nodiscard]] CanaryResult evaluate(const core::Feature& feature,
                                      const CanaryConfig& config) const;

 private:
  const core::ImpactModel* impact_;  ///< non-owning
  const dcsim::ScenarioSet* set_;    ///< non-owning
};

}  // namespace flare::baselines
