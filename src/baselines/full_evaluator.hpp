// Ground truth: evaluate the feature on every scenario of the datacenter,
// weighted by observation time. This is the "Datacenter" series of
// Figs. 2/12 — accurate but with cost proportional to the scenario count.
#pragma once

#include <string>
#include <vector>

#include "core/feature.hpp"
#include "core/impact.hpp"
#include "dcsim/scenario.hpp"

namespace flare::baselines {

struct FullEvaluationResult {
  std::string feature_name;
  double impact_pct = 0.0;                 ///< weight-averaged HP MIPS reduction
  std::vector<double> per_scenario_impact; ///< in scenario order (Fig. 3b)
  double impact_stddev = 0.0;              ///< weighted spread across scenarios
  std::size_t scenario_evaluations = 0;    ///< the evaluation cost (= set size)
};

struct FullJobEvaluationResult {
  std::string feature_name;
  dcsim::JobType job = dcsim::JobType::kDataAnalytics;
  double impact_pct = 0.0;   ///< instance-weighted mean across scenarios
  double impact_stddev = 0.0;
  std::size_t scenarios_with_job = 0;
};

class FullDatacenterEvaluator {
 public:
  FullDatacenterEvaluator(const core::ImpactModel& impact,
                          const dcsim::ScenarioSet& set);

  /// All-HP-job impact measured in the live datacenter.
  [[nodiscard]] FullEvaluationResult evaluate(const core::Feature& feature) const;

  /// Per-job impact, instance-count × observation-time weighted.
  [[nodiscard]] FullJobEvaluationResult evaluate_job(const core::Feature& feature,
                                                     dcsim::JobType job) const;

 private:
  const core::ImpactModel* impact_;  ///< non-owning
  const dcsim::ScenarioSet* set_;    ///< non-owning
};

}  // namespace flare::baselines
