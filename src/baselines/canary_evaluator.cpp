#include "baselines/canary_evaluator.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"
#include "stats/rng.hpp"
#include "util/error.hpp"

namespace flare::baselines {
namespace {
constexpr double kZ95 = 1.959964;  // two-sided 95% normal quantile
}

CanaryClusterEvaluator::CanaryClusterEvaluator(const core::ImpactModel& impact,
                                               const dcsim::ScenarioSet& set)
    : impact_(&impact), set_(&set) {
  ensure(!set.scenarios.empty(), "CanaryClusterEvaluator: empty scenario set");
}

CanaryResult CanaryClusterEvaluator::evaluate(const core::Feature& feature,
                                              const CanaryConfig& config) const {
  ensure(config.target_ci_halfwidth_pp > 0.0,
         "CanaryClusterEvaluator: target CI half-width must be positive");
  ensure(config.pilot_size >= 2,
         "CanaryClusterEvaluator: pilot needs at least two observations");
  ensure(config.max_size >= config.pilot_size,
         "CanaryClusterEvaluator: max_size must cover the pilot");

  // Per-scenario impacts are cached: re-observing a machine in the same mix
  // re-reads the same measurement.
  std::vector<double> impact_cache(set_->scenarios.size());
  for (std::size_t i = 0; i < set_->scenarios.size(); ++i) {
    impact_cache[i] = impact_->scenario_impact_pct(
        set_->scenarios[i].mix, feature, core::MeasurementContext::kTestbed);
  }
  const std::vector<double> weights = set_->normalized_weights();
  stats::Rng rng(config.seed);

  // Pilot phase: estimate the variance.
  stats::RunningStats observations;
  for (std::size_t i = 0; i < config.pilot_size; ++i) {
    observations.add(impact_cache[rng.weighted_index(weights)]);
  }
  CanaryResult result;
  result.feature_name = feature.name();
  result.pilot_stddev = observations.stddev();

  // Size the canary: n = (z σ / h)², at least the pilot, at most the cap.
  const double required = std::pow(
      kZ95 * result.pilot_stddev / config.target_ci_halfwidth_pp, 2.0);
  const std::size_t target_n = std::clamp<std::size_t>(
      static_cast<std::size_t>(std::ceil(required)), config.pilot_size,
      config.max_size);

  // Growth phase: extend the pilot to the target size.
  while (observations.count() < target_n) {
    observations.add(impact_cache[rng.weighted_index(weights)]);
  }

  result.canary_size = observations.count();
  result.impact_pct = observations.mean();
  result.achieved_ci_halfwidth =
      kZ95 * observations.stddev() /
      std::sqrt(static_cast<double>(observations.count()));
  result.target_met =
      result.achieved_ci_halfwidth <= config.target_ci_halfwidth_pp * 1.05;
  return result;
}

}  // namespace flare::baselines
