#include "baselines/full_evaluator.hpp"

#include <cmath>

#include "util/error.hpp"

namespace flare::baselines {

FullDatacenterEvaluator::FullDatacenterEvaluator(const core::ImpactModel& impact,
                                                 const dcsim::ScenarioSet& set)
    : impact_(&impact), set_(&set) {
  ensure(!set.scenarios.empty(), "FullDatacenterEvaluator: empty scenario set");
}

FullEvaluationResult FullDatacenterEvaluator::evaluate(
    const core::Feature& feature) const {
  FullEvaluationResult result;
  result.feature_name = feature.name();
  result.per_scenario_impact.reserve(set_->scenarios.size());

  double total_weight = 0.0;
  double weighted_sum = 0.0;
  for (const dcsim::ColocationScenario& s : set_->scenarios) {
    const double impact = impact_->scenario_impact_pct(
        s.mix, feature, core::MeasurementContext::kDatacenter);
    result.per_scenario_impact.push_back(impact);
    weighted_sum += s.observation_weight * impact;
    total_weight += s.observation_weight;
  }
  ensure(total_weight > 0.0, "FullDatacenterEvaluator: zero total weight");
  result.impact_pct = weighted_sum / total_weight;

  double weighted_var = 0.0;
  for (std::size_t i = 0; i < set_->scenarios.size(); ++i) {
    const double d = result.per_scenario_impact[i] - result.impact_pct;
    weighted_var += set_->scenarios[i].observation_weight * d * d;
  }
  result.impact_stddev = std::sqrt(weighted_var / total_weight);
  result.scenario_evaluations = set_->scenarios.size();
  return result;
}

FullJobEvaluationResult FullDatacenterEvaluator::evaluate_job(
    const core::Feature& feature, dcsim::JobType job) const {
  FullJobEvaluationResult result;
  result.feature_name = feature.name();
  result.job = job;

  double total_weight = 0.0;
  double weighted_sum = 0.0;
  std::vector<double> impacts;
  std::vector<double> weights;
  for (const dcsim::ColocationScenario& s : set_->scenarios) {
    const int count = s.mix.count(job);
    if (count == 0) continue;
    const double impact = impact_->job_impact_pct(
        job, s.mix, feature, core::MeasurementContext::kDatacenter);
    const double w = s.observation_weight * static_cast<double>(count);
    impacts.push_back(impact);
    weights.push_back(w);
    weighted_sum += w * impact;
    total_weight += w;
    ++result.scenarios_with_job;
  }
  ensure(total_weight > 0.0,
         "FullDatacenterEvaluator::evaluate_job: job never appears");
  result.impact_pct = weighted_sum / total_weight;

  double weighted_var = 0.0;
  for (std::size_t i = 0; i < impacts.size(); ++i) {
    const double d = impacts[i] - result.impact_pct;
    weighted_var += weights[i] * d * d;
  }
  result.impact_stddev = std::sqrt(weighted_var / total_weight);
  return result;
}

}  // namespace flare::baselines
