#include "baselines/loadtest_evaluator.hpp"

#include "util/error.hpp"

namespace flare::baselines {

LoadTestingEvaluator::LoadTestingEvaluator(const core::ImpactModel& impact)
    : impact_(&impact) {}

int LoadTestingEvaluator::populated_instances(dcsim::JobType job) const {
  const dcsim::MachineConfig& machine = impact_->baseline_machine();
  const dcsim::JobProfile& profile = impact_->model().catalog().profile(job);
  const int by_vcpu = machine.scheduling_vcpus() / profile.vcpus;
  const int by_dram = static_cast<int>(machine.dram_gb / profile.dram_gb);
  const int n = std::min(by_vcpu, by_dram);
  ensure(n >= 1, "LoadTestingEvaluator: job does not fit on the test machine");
  return n;
}

LoadTestResult LoadTestingEvaluator::evaluate_job(const core::Feature& feature,
                                                  dcsim::JobType job) const {
  LoadTestResult result;
  result.feature_name = feature.name();
  result.job = job;
  result.instances = populated_instances(job);

  dcsim::JobMix mix;
  mix.add(job, result.instances);

  const dcsim::MachineConfig& base_machine = impact_->baseline_machine();
  const dcsim::MachineConfig feat_machine = feature.apply(base_machine);

  result.baseline_mips =
      impact_->evaluate(mix, base_machine, core::MeasurementContext::kTestbed)
          .job(job)
          .mips_per_instance;
  result.feature_mips =
      impact_->evaluate(mix, feat_machine, core::MeasurementContext::kTestbed)
          .job(job)
          .mips_per_instance;
  ensure_numeric(result.baseline_mips > 0.0,
                 "LoadTestingEvaluator: baseline MIPS is zero");
  result.impact_pct =
      100.0 * (result.baseline_mips - result.feature_mips) / result.baseline_mips;
  return result;
}

}  // namespace flare::baselines
