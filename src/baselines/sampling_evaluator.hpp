// Sampling-based evaluation baseline (paper §5.3–§5.4, after WSMeter):
// randomly pick n scenarios, replay them, average. Machines are sampled
// uniformly, which samples scenarios proportionally to their observation
// weight — an unbiased but high-variance estimator of the datacenter impact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/feature.hpp"
#include "core/impact.hpp"
#include "dcsim/scenario.hpp"
#include "stats/bootstrap.hpp"
#include "stats/summary.hpp"

namespace flare::baselines {

struct SamplingConfig {
  std::size_t sample_size = 18;  ///< scenarios per trial (= FLARE's cost)
  int trials = 1000;             ///< independent repetitions (Fig. 12a violins)
  std::uint64_t seed = 1234;
  bool with_replacement = true;  ///< weight-proportional draw of machines
};

struct SamplingResult {
  std::string feature_name;
  SamplingConfig config;
  std::vector<double> trial_estimates;   ///< one impact estimate per trial
  stats::BoxSummary distribution;        ///< box/violin body over the trials
  /// 95% interval of the trial estimates — where a single sampling campaign
  /// of this size would land (the paper's Fig. 12b error bars).
  stats::ConfidenceInterval ci95;
  double mean_estimate = 0.0;
  /// Worst absolute deviation from `true_impact_pct` across trials.
  double max_abs_error = 0.0;
  /// 95th percentile of absolute deviation (the paper's "expected max error").
  double p95_abs_error = 0.0;
  double true_impact_pct = 0.0;          ///< reference used for the errors
  std::size_t scenario_evaluations_per_trial = 0;
};

class RandomSamplingEvaluator {
 public:
  RandomSamplingEvaluator(const core::ImpactModel& impact,
                          const dcsim::ScenarioSet& set);

  /// Runs `config.trials` sampling evaluations of the feature; errors are
  /// reported against `true_impact_pct` (from FullDatacenterEvaluator).
  [[nodiscard]] SamplingResult evaluate(const core::Feature& feature,
                                        const SamplingConfig& config,
                                        double true_impact_pct) const;

  /// Per-job variant: trials sample scenarios containing the job.
  [[nodiscard]] SamplingResult evaluate_job(const core::Feature& feature,
                                            dcsim::JobType job,
                                            const SamplingConfig& config,
                                            double true_impact_pct) const;

 private:
  const core::ImpactModel* impact_;  ///< non-owning
  const dcsim::ScenarioSet* set_;    ///< non-owning
};

}  // namespace flare::baselines
