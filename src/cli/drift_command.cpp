// `flare drift`: compare a fresh metric batch against a fitted baseline and
// print the validity triage (valid / reweight / refit) with its evidence.
#include <ostream>

#include "cli/commands.hpp"
#include "core/analyzer.hpp"
#include "core/drift.hpp"
#include "report/table.hpp"
#include "trace/metric_io.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace flare::cli {

int run_drift(const Args& args, std::ostream& out) {
  const std::string baseline_path = args.require_string("baseline");
  const std::string fresh_path = args.require_string("fresh");
  const long long clusters = args.get_int("clusters", 18);
  ensure(clusters >= 2, "--clusters must be >= 2");
  core::DriftConfig drift_config;
  drift_config.refit_distance_ratio =
      args.get_double("refit-ratio", drift_config.refit_distance_ratio);
  drift_config.reweight_threshold =
      args.get_double("reweight-shift", drift_config.reweight_threshold);
  args.reject_unconsumed();

  const metrics::MetricDatabase baseline = trace::load_metric_database(baseline_path);
  const metrics::MetricDatabase fresh = trace::load_metric_database(fresh_path);

  core::AnalyzerConfig analyzer_config;
  analyzer_config.fixed_clusters = static_cast<std::size_t>(clusters);
  analyzer_config.compute_quality_curve = false;
  const core::Analyzer analyzer(analyzer_config);
  const core::AnalysisResult analysis = analyzer.analyze(baseline);

  const core::DriftMonitor monitor(analysis, drift_config);
  const core::DriftReport report = monitor.inspect(fresh);

  out << "baseline: " << baseline.num_rows() << " scenarios, "
      << analysis.chosen_k << " behaviour groups\n";
  out << "fresh:    " << fresh.num_rows() << " scenarios\n\n";
  out << "distance scale vs baseline: "
      << util::format_double(report.distance_ratio, 2) << "x\n";
  out << "out-of-coverage mass:       "
      << util::format_double(100.0 * report.out_of_coverage_fraction, 1) << "%\n";
  out << "cluster-weight shift (TV):  "
      << util::format_double(100.0 * report.weight_shift, 1) << "%\n\n";
  out << "verdict: " << to_string(report.verdict) << "\n";
  switch (report.verdict) {
    case core::DriftVerdict::kValid:
      out << "-> keep using the fitted representatives.\n";
      break;
    case core::DriftVerdict::kReweight:
      out << "-> re-derive weights/representatives from step 3 "
             "(FlarePipeline::apply_scheduler_change, paper §5.6).\n";
      break;
    case core::DriftVerdict::kRefit:
      out << "-> the behaviours moved: re-profile and re-fit "
             "(per-shape representatives, paper §5.5).\n";
      break;
  }
  return 0;
}

}  // namespace flare::cli
