// `flare campaign`: run a replay campaign over a simulated testbed farm —
// the cost/accuracy dial over `flare evaluate`. Fits FLARE on a scenario
// trace (single-shape or --shapes fleet), then schedules the representative
// and validation replays across --testbeds slots, heavy clusters first,
// stopping early at --target-ci or --budget. The anytime state (estimate,
// band, checkpoints, per-testbed utilisation) can be archived with
// --campaign-state for `flare report --campaign-state` to answer from.
#include <cmath>
#include <ostream>

#include "baselines/full_evaluator.hpp"
#include "cli/commands.hpp"
#include "cli/config_args.hpp"
#include "cli/feature_spec.hpp"
#include "core/campaign.hpp"
#include "core/pipeline.hpp"
#include "core/sharded_pipeline.hpp"
#include "report/table.hpp"
#include "trace/campaign_io.hpp"
#include "trace/scenario_io.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace flare::cli {
namespace {

void print_campaign(std::ostream& out, const core::CampaignState& state) {
  out << state.feature_name << " campaign: " << to_string(state.stop) << " after "
      << state.units_completed << " units (" << state.units_failed
      << " failed) on " << state.num_testbeds << " testbed(s)\n";
  out << "anytime estimate: " << state.impact_pct << "% HP MIPS reduction, band +-"
      << state.band_pp << " pp [" << state.lower() << ", " << state.upper()
      << "]\n";
  const core::ReplayLedger& l = state.ledger;
  out << "mass: direct " << 100.0 * l.direct_mass << "% / fallback "
      << 100.0 * l.fallback_mass << "% / quarantined "
      << 100.0 * l.quarantined_mass << "% / pending " << 100.0 * l.pending_mass
      << "% (total " << 100.0 * l.total_mass() << "%)\n";
  out << "cost: " << state.distinct_replays << " distinct replays, "
      << l.total_attempts << " attempts (" << l.failed_attempts
      << " failed), testbed time "
      << util::format_double(state.total_busy_seconds / 3600.0, 2)
      << " h billed / makespan "
      << util::format_double(state.makespan_seconds / 3600.0, 2) << " h\n";
  if (!state.checkpoints.empty()) {
    out << "band narrowing over " << state.checkpoints.size()
        << " checkpoint(s): " << state.checkpoints.front().band_pp << " -> "
        << state.checkpoints.back().band_pp << " pp\n";
  }
  report::AsciiTable table({"testbed", "units", "attempts", "busy h", "util %"});
  for (const dcsim::TestbedUtilisation& t : state.testbeds) {
    table.add_row({std::to_string(t.testbed), std::to_string(t.units),
                   std::to_string(t.attempts),
                   report::AsciiTable::cell(t.busy_seconds / 3600.0, 2),
                   report::AsciiTable::cell(100.0 * t.utilisation, 1)});
  }
  table.print(out);
}

}  // namespace

int run_campaign(const Args& args, std::ostream& out) {
  const std::string scenarios_path = args.require_string("scenarios");
  const core::Feature feature = parse_feature(args.require_string("feature"));
  const std::optional<dcsim::FleetConfig> fleet = fleet_from(args);

  core::FlareConfig config;
  config.machine = machine_by_name(args.get_string("machine", "default"));
  config.analyzer = analyzer_config_from(args);
  config.schema = schema_by_name(args.get_string("schema", "standard"));
  config.threads = threads_from(args);
  config.profiler.threads = config.threads;
  apply_replay_args(args, config);

  core::CampaignConfig campaign;
  const long long testbeds = args.get_int("testbeds", 1);
  ensure(testbeds >= 1, "--testbeds must be >= 1");
  campaign.num_testbeds = static_cast<std::size_t>(testbeds);
  campaign.target_ci_pp = args.get_double("target-ci", 0.0);
  campaign.budget_seconds = args.get_double("budget", 0.0);
  const long long every = args.get_int("checkpoint-every", 1);
  ensure(every >= 1, "--checkpoint-every must be >= 1");
  campaign.checkpoint_every = static_cast<std::size_t>(every);
  campaign.prior_halfwidth_pp =
      args.get_double("prior-band", campaign.prior_halfwidth_pp);
  ensure(campaign.prior_halfwidth_pp > 0.0, "--prior-band must be positive");
  campaign.validation = !args.get_flag("no-validation");
  const std::string speeds = args.get_string("testbed-speeds", "");
  if (!speeds.empty()) {
    for (const std::string& token : util::split(speeds, ',')) {
      campaign.testbed_speed_factors.push_back(
          util::parse_double(util::trim(token)));
    }
    ensure(campaign.testbed_speed_factors.size() == campaign.num_testbeds,
           "--testbed-speeds must list one factor per --testbeds slot");
  }

  const std::string state_path = args.get_string("campaign-state", "");
  const bool with_truth = args.get_flag("truth");
  args.reject_unconsumed();

  core::CampaignState state;
  double truth = 0.0;
  if (fleet.has_value()) {
    const dcsim::ScenarioSet mixed =
        trace::load_scenario_set(scenarios_path, fleet->shape_names());
    core::ShardedConfig sharded;
    sharded.base = config;
    sharded.fleet = *fleet;
    core::ShardedPipeline pipeline(sharded);
    pipeline.fit(mixed);
    state = core::run_campaign(pipeline, feature, campaign);
    if (with_truth) {
      const std::vector<double> weights = pipeline.weights();
      for (std::size_t i = 0; i < pipeline.num_shards(); ++i) {
        const baselines::FullDatacenterEvaluator shard_truth(
            pipeline.shard(i).impact_model(), pipeline.shard(i).scenario_set());
        truth += weights[i] * shard_truth.evaluate(feature).impact_pct;
      }
    }
  } else {
    const dcsim::ScenarioSet set = trace::load_scenario_set(scenarios_path);
    core::FlarePipeline pipeline(config);
    pipeline.fit(set);
    state = core::run_campaign(pipeline, feature, campaign);
    if (with_truth) {
      const baselines::FullDatacenterEvaluator dc(pipeline.impact_model(), set);
      truth = dc.evaluate(feature).impact_pct;
    }
  }

  print_campaign(out, state);
  if (with_truth) {
    const double error = std::abs(state.impact_pct - truth);
    out << "datacenter truth: " << truth << "%  (campaign |error| " << error
        << " pp, " << (error <= state.band_pp ? "inside" : "OUTSIDE")
        << " the reported band)\n";
  }
  if (!state_path.empty()) {
    trace::save_campaign_state(state, state_path);
    out << "wrote " << state_path << "\n";
  }
  return 0;
}

}  // namespace flare::cli
