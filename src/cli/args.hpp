// Minimal command-line argument handling for the `flare` CLI tool.
//
// Grammar: flare <command> [--key value]... [--flag]...
// Values are typed on access; unknown keys are rejected when the command
// finishes parsing (catches typos instead of silently ignoring them).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace flare::cli {

class Args {
 public:
  /// Parses argv[1..]; argv[1] is the command, the rest are --key [value]
  /// pairs (a --key followed by another --key or end-of-line is a flag).
  /// Throws flare::ParseError on malformed input.
  static Args parse(int argc, const char* const* argv);

  [[nodiscard]] const std::string& command() const { return command_; }

  /// Typed accessors; each marks the key as consumed.
  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& default_value) const;
  [[nodiscard]] std::optional<std::string> get_optional(const std::string& key) const;
  [[nodiscard]] std::string require_string(const std::string& key) const;
  [[nodiscard]] long long get_int(const std::string& key, long long default_value) const;
  [[nodiscard]] double get_double(const std::string& key, double default_value) const;
  [[nodiscard]] bool get_flag(const std::string& key) const;

  /// Throws flare::ParseError if any provided key was never consumed.
  void reject_unconsumed() const;

 private:
  std::string command_;
  std::map<std::string, std::string> values_;  ///< key -> raw value ("" = flag)
  mutable std::set<std::string> consumed_;
};

}  // namespace flare::cli
