#include <iostream>

#include "cli/commands.hpp"

int main(int argc, char** argv) {
  return flare::cli::run_cli(argc, argv, std::cout, std::cerr);
}
