// `flare serve` / `flare client`: the resident service plane (DESIGN.md
// §16). serve fits a base archive, recovers any crash-safe resident state,
// and answers ingest/evaluate/report/status/shutdown over a Unix-domain
// socket until told to stop; client is the matching one-shot caller that
// prints the response payload and maps non-ok outcomes to typed errors.
#include <chrono>
#include <ostream>

#include "cli/commands.hpp"
#include "cli/config_args.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "trace/scenario_io.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace flare::cli {
namespace {

core::RefitPolicy serve_refit_policy_by_name(const std::string& name) {
  if (name == "auto") return core::RefitPolicy::kAuto;
  if (name == "never") return core::RefitPolicy::kNever;
  if (name == "always") return core::RefitPolicy::kAlways;
  throw ParseError("unknown refit policy '" + name + "' (auto|never|always)");
}

}  // namespace

int run_serve(const Args& args, std::ostream& out) {
  serve::DaemonConfig config;
  config.socket_path = args.require_string("socket");
  config.state_dir = args.require_string("state-dir");
  const std::string scenarios_path = args.require_string("scenarios");

  config.flare.machine = machine_by_name(args.get_string("machine", "default"));
  config.flare.analyzer = analyzer_config_from(args);
  config.flare.schema = schema_by_name(args.get_string("schema", "standard"));
  config.flare.profiler.samples_per_scenario =
      static_cast<int>(args.get_int("samples", 4));
  config.flare.profiler.noise_stream = static_cast<std::uint64_t>(args.get_int(
      "seed", static_cast<long long>(config.flare.profiler.noise_stream)));
  config.flare.threads = threads_from(args);
  config.flare.profiler.threads = config.flare.threads;
  apply_replay_args(args, config.flare);
  apply_drift_response_args(args, config.flare);
  config.refit =
      serve_refit_policy_by_name(args.get_string("refit-policy", "auto"));

  const long long max_ingest = args.get_int("max-ingest-queue", 64);
  const long long max_eval = args.get_int("max-eval-queue", 64);
  ensure(max_ingest >= 1, "--max-ingest-queue must be >= 1");
  ensure(max_eval >= 1, "--max-eval-queue must be >= 1");
  config.limits.max_ingest = static_cast<std::size_t>(max_ingest);
  config.limits.max_eval = static_cast<std::size_t>(max_eval);
  config.default_deadline_ms =
      static_cast<std::uint32_t>(args.get_int("default-deadline-ms", 5000));
  config.frame_timeout_ms =
      static_cast<std::uint32_t>(args.get_int("frame-timeout-ms", 2000));

  // Test-only fault knobs: kill the daemon at a chosen commit-protocol point
  // (the crash-recovery suite drives these through a forked process).
  const long long kill_after = args.get_int("kill-after-ingest", -1);
  if (kill_after >= 0) {
    config.faults.enabled = true;
    config.faults.kill_after_ingest = static_cast<int>(kill_after);
    const std::string point = args.get_string("kill-point", "after-commit");
    if (point == "after-group-file") {
      config.faults.kill_point = serve::KillPoint::kAfterGroupFile;
    } else if (point == "after-commit") {
      config.faults.kill_point = serve::KillPoint::kAfterCommit;
    } else {
      throw ParseError("unknown --kill-point '" + point +
                       "' (after-group-file|after-commit)");
    }
  }
  args.reject_unconsumed();

  const dcsim::ScenarioSet base = trace::load_scenario_set(scenarios_path);
  serve::Daemon daemon(std::move(config), base);
  const serve::StartReport& report = daemon.start_report();
  out << "flare serve: listening on " << daemon.config().socket_path
      << " (epoch " << report.epoch << ", "
      << (report.recovered ? "recovered journal, " : "")
      << report.unacknowledged.size() << " unacknowledged group(s))\n";
  for (const std::string& orphan : report.unacknowledged) {
    out << "  unacknowledged: " << orphan << "\n";
  }
  out.flush();
  daemon.run();
  out << "flare serve: stopped\n";
  return 0;
}

int run_client(const Args& args, std::ostream& out) {
  const std::string socket_path = args.require_string("socket");
  const std::string verb = args.require_string("request");
  const std::uint32_t deadline_ms =
      static_cast<std::uint32_t>(args.get_int("deadline-ms", 0));
  const long long timeout_ms = args.get_int("timeout-ms", 10000);
  ensure(timeout_ms >= 1, "--timeout-ms must be >= 1");

  serve::RequestFrame request;
  if (verb == "status") {
    request = serve::make_status_request();
  } else if (verb == "shutdown") {
    request = serve::make_shutdown_request();
  } else if (verb == "ingest") {
    const dcsim::ScenarioSet batch =
        trace::load_scenario_set(args.require_string("batch"));
    request = serve::make_ingest_request(trace::scenario_set_to_csv(batch),
                                         deadline_ms);
  } else if (verb == "evaluate") {
    request = serve::make_evaluate_request(args.require_string("feature"),
                                           args.get_flag("validate"),
                                           deadline_ms);
  } else if (verb == "report") {
    request = serve::make_report_request(args.get_string("features", ""),
                                         deadline_ms);
  } else {
    throw ParseError("unknown client request '" + verb +
                     "' (status|ingest|evaluate|report|shutdown)");
  }
  args.reject_unconsumed();

  serve::ServeClient client(socket_path,
                            std::chrono::milliseconds(timeout_ms));
  const serve::ResponseFrame response = client.call(request);
  out << "outcome=" << serve::to_string(response.outcome) << "\n"
      << "epoch=" << response.epoch << "\n"
      << response.payload;
  if (response.outcome != serve::Outcome::kOk) {
    // A non-ok terminal outcome is an error for the one-shot caller: map it
    // onto the typed exit-code scheme (ServeError -> its own code).
    throw ServeError("flare client: " + std::string(verb) + " answered " +
                     std::string(serve::to_string(response.outcome)));
  }
  return 0;
}

}  // namespace flare::cli
