#include "cli/commands.hpp"

#include <cmath>
#include <functional>
#include <memory>
#include <ostream>

#include "baselines/full_evaluator.hpp"
#include "baselines/sampling_evaluator.hpp"
#include "cli/config_args.hpp"
#include "cli/feature_spec.hpp"
#include "core/pipeline.hpp"
#include "core/sharded_pipeline.hpp"
#include "dcsim/fleet.hpp"
#include "dcsim/submission.hpp"
#include "core/out_of_core.hpp"
#include "report/table.hpp"
#include "trace/metric_io.hpp"
#include "trace/scenario_io.hpp"
#include "trace/store_io.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace flare::cli {

int run_simulate(const Args& args, std::ostream& out) {
  const std::string out_path = args.require_string("out");
  const std::optional<dcsim::FleetConfig> fleet = fleet_from(args);
  const dcsim::MachineConfig machine =
      machine_by_name(args.get_string("machine", "default"));
  dcsim::SubmissionConfig config;
  config.target_distinct_scenarios =
      static_cast<std::size_t>(args.get_int("scenarios", 895));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  config.num_machines = static_cast<int>(args.get_int("machines", 8));
  const std::optional<dcsim::WorkloadDynamics> dynamics =
      dynamics_from(args, fleet);
  if (dynamics.has_value()) config.dynamics = *dynamics;
  args.reject_unconsumed();

  if (fleet.has_value()) {
    // Heterogeneous fleet: one scheduler per shape (jobs are placed
    // per-shape), every archived row carries its shape id.
    std::vector<dcsim::SubmissionStats> stats;
    const dcsim::FleetScenarioSet sets = dcsim::generate_fleet_scenario_set(
        config, *fleet, dcsim::default_job_catalog(), &stats);
    const std::vector<double> weights = fleet->population_weights();
    for (std::size_t i = 0; i < fleet->shapes.size(); ++i) {
      out << "shape " << fleet->shapes[i].machine.name << " ("
          << fleet->shapes[i].num_machines << " machines, w="
          << static_cast<int>(100.0 * weights[i]) << "%): "
          << sets.per_shape[i].size() << " scenarios over "
          << stats[i].simulated_hours << " h\n";
    }
    const dcsim::ScenarioSet merged = sets.merged();
    if (config.dynamics.any()) {
      std::size_t tagged = 0;
      for (const dcsim::ColocationScenario& s : merged.scenarios) {
        if (s.dynamic_tagged()) ++tagged;
      }
      out << "dynamics: " << tagged << " of " << merged.size()
          << " scenarios carry non-stationary tags\n";
    }
    trace::save_scenario_set(merged, out_path);
    out << "fleet: " << sets.total_scenarios()
        << " distinct co-location scenarios across " << fleet->size()
        << " shapes\n"
        << "wrote " << out_path << "\n";
    return 0;
  }

  dcsim::SubmissionStats stats;
  const dcsim::ScenarioSet set = dcsim::generate_scenario_set(
      config, machine, dcsim::default_job_catalog(), &stats);
  if (config.dynamics.any()) {
    std::size_t tagged = 0;
    for (const dcsim::ColocationScenario& s : set.scenarios) {
      if (s.dynamic_tagged()) ++tagged;
    }
    out << "dynamics: " << tagged << " of " << set.size()
        << " scenarios carry non-stationary tags\n";
  }
  trace::save_scenario_set(set, out_path);
  out << "simulated " << stats.simulated_hours << " h of datacenter time on "
      << config.num_machines << " " << machine.name << " machines\n"
      << "collected " << set.size() << " distinct co-location scenarios ("
      << stats.denials << " scheduling denials, "
      << static_cast<int>(100.0 * stats.mean_cpu_occupancy)
      << "% mean occupancy)\n"
      << "wrote " << out_path << "\n";
  return 0;
}

int run_profile(const Args& args, std::ostream& out) {
  const std::string scenarios_path = args.require_string("scenarios");
  const std::string out_path = args.require_string("out");
  const dcsim::MachineConfig machine =
      machine_by_name(args.get_string("machine", "default"));
  core::ProfilerConfig config;
  config.samples_per_scenario = static_cast<int>(args.get_int("samples", 4));
  config.noise_stream = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long long>(config.noise_stream)));
  config.threads = threads_from(args);
  const core::MetricSchema schema =
      schema_by_name(args.get_string("schema", "standard"));
  args.reject_unconsumed();

  const dcsim::ScenarioSet set = trace::load_scenario_set(scenarios_path);
  const dcsim::InterferenceModel model;
  const core::Profiler profiler(model, config);
  const metrics::MetricDatabase db =
      profiler.profile(set, machine, core::resolve_schema(schema));
  trace::save_metric_database(db, out_path);
  out << "profiled " << db.num_rows() << " scenarios x " << db.num_metrics()
      << " raw metrics (" << config.samples_per_scenario
      << " samples each) on the " << machine.name << " shape\n"
      << "wrote " << out_path << "\n";
  return 0;
}

int run_analyze(const Args& args, std::ostream& out) {
  const std::string metrics_path = args.require_string("metrics");
  const std::optional<dcsim::FleetConfig> fleet = fleet_from(args);
  const core::AnalyzerConfig config = analyzer_config_from(args);
  const core::MetricSchema schema =
      schema_by_name(args.get_string("schema", "standard"));
  const std::string storage = args.get_string("storage", "ram");
  ensure(storage == "ram" || storage == "mmap",
         "unknown --storage '" + storage + "' (ram|mmap)");
  const std::size_t memory_budget = memory_budget_from(args);

  if (fleet.has_value()) {
    // Sharded analysis: metric rows carry no shape id, so the row-aligned
    // scenario trace routes them — row r of the metric CSV belongs to the
    // shape of scenario r.
    ensure(storage == "ram",
           "analyze --shapes supports --storage ram only (per-shape "
           "out-of-core analysis runs through the ShardedPipeline API)");
    const std::string scenarios_path = args.require_string("scenarios");
    args.reject_unconsumed();
    const metrics::MetricCatalog& catalog = core::resolve_schema(schema);
    const dcsim::ScenarioSet set =
        trace::load_scenario_set(scenarios_path, fleet->shape_names());
    const metrics::MetricDatabase db =
        trace::load_metric_database(metrics_path, catalog);
    ensure(db.num_rows() == set.size(),
           "analyze --shapes: the metric CSV and scenario trace must be "
           "row-aligned (" + std::to_string(db.num_rows()) + " metric rows vs " +
               std::to_string(set.size()) + " scenarios)");
    const std::vector<double> weights = fleet->population_weights();
    std::size_t fleet_clusters = 0;
    for (std::size_t i = 0; i < fleet->shapes.size(); ++i) {
      const std::string& name = fleet->shapes[i].machine.name;
      metrics::MetricDatabase shard_db(catalog);
      for (std::size_t r = 0; r < set.size(); ++r) {
        if (set.scenarios[r].machine_type == name) shard_db.add_row(db.row(r));
      }
      ensure(shard_db.num_rows() > 0,
             "analyze --shapes: shape '" + name + "' has no scenario rows");
      core::AnalyzerConfig shard_config = config;
      shard_config.lineage_tag = core::ShardedPipeline::lineage_tag_for(name, i);
      const core::Analyzer analyzer(shard_config);
      const core::AnalysisResult analysis = analyzer.analyze(shard_db);
      fleet_clusters += analysis.chosen_k;
      out << "shape " << name << " (w="
          << static_cast<int>(100.0 * weights[i]) << "%): "
          << shard_db.num_rows() << " scenarios, "
          << analysis.kept_columns.size() << " kept metrics, "
          << analysis.num_components << " PCs, " << analysis.chosen_k
          << " behaviour groups\n";
    }
    out << "fleet: " << set.size() << " scenarios across " << fleet->size()
        << " shapes, " << fleet_clusters
        << " behaviour groups total (per-shape pipelines never pool)\n";
    return 0;
  }
  args.reject_unconsumed();

  const metrics::MetricCatalog& catalog = core::resolve_schema(schema);
  core::AnalysisResult analysis;
  std::size_t num_metrics = 0;
  // The representative lookup below needs row access; keep whichever backend
  // was used alive and route through this accessor.
  std::function<std::string(std::size_t)> scenario_key;

  metrics::MetricDatabase db;
  std::unique_ptr<metrics::ColumnStore> store;
  if (storage == "mmap") {
    // Out-of-core path (DESIGN.md §12): convert the CSV archive into a
    // side-car column store, then stream it — the n × d dense matrix is
    // never materialised. `.fcs` files are reusable across runs.
    const std::string store_path = metrics_path + ".fcs";
    trace::csv_to_column_store(metrics_path, store_path, catalog);
    metrics::ColumnStoreOptions store_options;
    store_options.sequential_drop = memory_budget > 0;
    store = std::make_unique<metrics::ColumnStore>(store_path, catalog,
                                                   store_options);
    core::OutOfCoreOptions ooc;
    ooc.memory_budget_bytes = memory_budget;
    std::unique_ptr<util::ThreadPool> pool;
    if (config.threads != 1) {
      pool = std::make_unique<util::ThreadPool>(config.threads);
    }
    core::OutOfCoreTelemetry telemetry;
    analysis =
        core::analyze_out_of_core(*store, config, ooc, pool.get(), &telemetry);
    num_metrics = store->num_metrics();
    scenario_key = [&store](std::size_t r) {
      return store->row(r).scenario_key;
    };
    out << "out-of-core: " << telemetry.passes << " streaming passes over "
        << store->num_blocks() << " blocks ("
        << (store->mapped() ? "mmap" : "buffered") << "), resident "
        << telemetry.resident_bytes / 1024 << " KiB vs "
        << telemetry.dense_bytes / 1024 << " KiB dense\n";
  } else {
    db = trace::load_metric_database(metrics_path, catalog);
    const core::Analyzer analyzer(config);
    analysis = analyzer.analyze(db);
    num_metrics = db.num_metrics();
    scenario_key = [&db](std::size_t r) { return db.row(r).scenario_key; };
  }

  out << "refinement: " << num_metrics << " raw -> "
      << analysis.kept_columns.size() << " kept ("
      << analysis.constant_columns.size() << " constant, "
      << analysis.refinement.drops.size() << " correlation duplicates)\n";
  out << "PCA: " << analysis.num_components << " components explain "
      << static_cast<int>(1000.0 * analysis.pca.cumulative_explained_variance(
                              analysis.num_components)) / 10.0
      << "% of variance\n";
  for (const core::PcInterpretation& pc : analysis.interpretations) {
    out << "  PC" << pc.component << " ("
        << static_cast<int>(1000.0 * pc.explained_variance_ratio) / 10.0
        << "%): " << pc.label << "\n";
  }
  if (!analysis.quality_curve.empty()) {
    out << "cluster-quality sweep (k, SSE, silhouette):\n";
    for (const core::ClusterQualityPoint& p : analysis.quality_curve) {
      out << "  " << p.k << "  " << p.sse << "  " << p.silhouette << "\n";
    }
  }
  out << "clusters: " << analysis.chosen_k << "\n";
  report::AsciiTable table({"cluster", "weight %", "members", "representative"});
  table.set_alignment(3, report::Align::kLeft);
  for (std::size_t c = 0; c < analysis.chosen_k; ++c) {
    table.add_row({std::to_string(c),
                   report::AsciiTable::cell(100.0 * analysis.cluster_weights[c], 1),
                   std::to_string(analysis.clustering.cluster_sizes[c]),
                   scenario_key(analysis.representatives[c])});
  }
  table.print(out);
  return 0;
}

namespace {

/// The --shapes path of `flare evaluate`: sharded fit, per-shape telemetry,
/// weighted fan-in, optional weighted ground truth.
int run_evaluate_fleet(std::ostream& out, const std::string& scenarios_path,
                       const core::Feature& feature,
                       const dcsim::FleetConfig& fleet,
                       const core::FlareConfig& config, bool per_job,
                       bool with_truth) {
  const dcsim::ScenarioSet set =
      trace::load_scenario_set(scenarios_path, fleet.shape_names());
  core::ShardedConfig sharded;
  sharded.base = config;
  sharded.fleet = fleet;
  core::ShardedPipeline pipeline(sharded);
  pipeline.fit(set);

  const core::FleetEstimate est = pipeline.evaluate(feature);
  out << feature.name() << " (" << feature.description() << ")\n";
  out << "fleet estimate: " << est.impact_pct << "% HP MIPS reduction ("
      << est.scenario_replays << " scenario replays vs " << set.size()
      << " scenarios across " << fleet.size() << " shapes)\n";
  out << "fan-in mass: direct " << 100.0 * est.replay.direct_mass
      << "% / fallback " << 100.0 * est.replay.fallback_mass
      << "% / quarantined " << 100.0 * est.replay.quarantined_mass
      << "% (total " << 100.0 * est.replay.total_mass() << "%)\n";

  report::AsciiTable table({"shape", "weight %", "impact %", "clusters",
                            "replays"});
  table.set_alignment(0, report::Align::kLeft);
  for (const core::ShardFeatureEstimate& s : est.per_shape) {
    table.add_row({s.shape, report::AsciiTable::cell(100.0 * s.weight, 1),
                   report::AsciiTable::cell(s.estimate.impact_pct),
                   std::to_string(s.estimate.per_cluster.size()),
                   std::to_string(s.estimate.scenario_replays)});
  }
  table.print(out);

  if (with_truth) {
    // Fleet-wide truth is the same weighted fan-in over per-shape truths:
    // each shape's full-datacenter evaluator runs its own impact model.
    double truth = 0.0;
    const std::vector<double> weights = pipeline.weights();
    for (std::size_t i = 0; i < pipeline.num_shards(); ++i) {
      const baselines::FullDatacenterEvaluator shard_truth(
          pipeline.shard(i).impact_model(), pipeline.shard(i).scenario_set());
      truth += weights[i] * shard_truth.evaluate(feature).impact_pct;
    }
    out << "fleet-wide truth: " << truth << "%  (sharded |error| "
        << std::abs(est.impact_pct - truth) << " pp)\n";
  }

  if (per_job) {
    out << "\nper-HP-job impacts (fleet-wide):\n";
    report::AsciiTable jobs({"job", "impact %", "covered weight %"});
    for (const dcsim::JobType job : dcsim::hp_job_types()) {
      bool present = false;
      for (const dcsim::ColocationScenario& s : set.scenarios) {
        if (s.mix.count(job) > 0) {
          present = true;
          break;
        }
      }
      if (!present) {
        jobs.add_row({std::string(dcsim::job_code(job)),
                      "n/a (never scheduled)", "0"});
        continue;
      }
      const core::FleetPerJobEstimate pj = pipeline.evaluate_per_job(feature, job);
      jobs.add_row({std::string(dcsim::job_code(job)),
                    report::AsciiTable::cell(pj.impact_pct),
                    report::AsciiTable::cell(100.0 * pj.covered_weight, 1)});
    }
    jobs.print(out);
  }
  return 0;
}

}  // namespace

int run_evaluate(const Args& args, std::ostream& out) {
  const std::string scenarios_path = args.require_string("scenarios");
  const core::Feature feature = parse_feature(args.require_string("feature"));
  const std::optional<dcsim::FleetConfig> fleet = fleet_from(args);
  const dcsim::MachineConfig machine =
      machine_by_name(args.get_string("machine", "default"));
  core::FlareConfig config;
  config.machine = machine;
  config.analyzer = analyzer_config_from(args);
  config.schema = schema_by_name(args.get_string("schema", "standard"));
  config.threads = threads_from(args);
  config.profiler.threads = config.threads;
  apply_replay_args(args, config);
  const bool per_job = args.get_flag("per-job");
  const bool with_truth = args.get_flag("truth");
  const bool with_sampling = args.get_flag("sampling");
  args.reject_unconsumed();

  if (fleet.has_value()) {
    ensure(!with_sampling,
           "evaluate --shapes does not support --sampling (the sampling "
           "baseline is single-shape)");
    return run_evaluate_fleet(out, scenarios_path, feature, *fleet, config,
                              per_job, with_truth);
  }

  const dcsim::ScenarioSet set = trace::load_scenario_set(scenarios_path);
  core::FlarePipeline pipeline(config);
  pipeline.fit(set);

  const core::FeatureEstimate est = pipeline.evaluate(feature);
  out << feature.name() << " (" << feature.description() << ")\n";
  out << "FLARE estimate: " << est.impact_pct << "% HP MIPS reduction ("
      << est.scenario_replays << " scenario replays vs " << set.size()
      << " scenarios in the datacenter)\n";
  if (config.replay_faults.enabled) {
    out << "replay health: " << est.replay.total_attempts << " attempts ("
        << est.replay.failed_attempts << " failed), mass direct "
        << 100.0 * est.replay.direct_mass << "% / fallback "
        << 100.0 * est.replay.fallback_mass << "% / quarantined "
        << 100.0 * est.replay.quarantined_mass << "%, uncertainty +-"
        << est.replay.measurement_uncertainty_pp +
               est.replay.quarantine_widening_pp
        << " pp, testbed " << est.replay.simulated_seconds / 3600.0
        << " h (simulated)\n";
  }

  if (with_truth || with_sampling) {
    const baselines::FullDatacenterEvaluator truth(pipeline.impact_model(), set);
    const double dc = truth.evaluate(feature).impact_pct;
    out << "full-datacenter truth: " << dc << "%  (FLARE |error| "
        << std::abs(est.impact_pct - dc) << " pp)\n";
    if (with_sampling) {
      const baselines::RandomSamplingEvaluator sampling(pipeline.impact_model(),
                                                        set);
      baselines::SamplingConfig sc;
      sc.sample_size = est.scenario_replays;
      sc.trials = 1000;
      const baselines::SamplingResult sr = sampling.evaluate(feature, sc, dc);
      out << "sampling @ equal cost: 95% of trials in [" << sr.ci95.lower << ", "
          << sr.ci95.upper << "]%, max |error| " << sr.max_abs_error << " pp\n";
    }
  }

  report::AsciiTable table({"cluster", "weight %", "impact %", "representative"});
  table.set_alignment(3, report::Align::kLeft);
  for (const core::ClusterImpact& ci : est.per_cluster) {
    table.add_row({std::to_string(ci.cluster),
                   report::AsciiTable::cell(100.0 * ci.weight, 1),
                   report::AsciiTable::cell(ci.impact_pct),
                   set.scenarios[ci.representative_scenario].mix.key()});
  }
  table.print(out);

  if (per_job) {
    out << "\nper-HP-job impacts:\n";
    report::AsciiTable jobs({"job", "impact %"});
    for (const dcsim::JobType job : dcsim::hp_job_types()) {
      bool present = false;
      for (const dcsim::ColocationScenario& s : set.scenarios) {
        if (s.mix.count(job) > 0) {
          present = true;
          break;
        }
      }
      if (!present) {
        jobs.add_row({std::string(dcsim::job_code(job)), "n/a (never scheduled)"});
        continue;
      }
      const core::PerJobEstimate pj = pipeline.evaluate_per_job(feature, job);
      jobs.add_row({std::string(dcsim::job_code(job)),
                    report::AsciiTable::cell(pj.impact_pct)});
    }
    jobs.print(out);
  }
  return 0;
}

int run_help(std::ostream& out) {
  out << "flare — representative-scenario datacenter feature evaluation\n\n"
         "commands:\n"
         "  simulate --out F.csv [--machine default|small|dense] [--scenarios N]\n"
         "           [--seed S] [--machines M] [--shapes SPEC]\n"
         "           [--dynamics SPEC [--dynamics-seed S] [--dynamics-start H]]\n"
         "      simulate a datacenter and archive its co-location scenarios;\n"
         "      --shapes runs one scheduler per machine shape (heterogeneous\n"
         "      fleet) and tags every row with its shape id; --dynamics\n"
         "      overlays non-stationary regimes (see dynamics SPEC below) and\n"
         "      requires an explicit --seed or --dynamics-seed; --dynamics-\n"
         "      start sets the absolute start hour so streaming batch windows\n"
         "      continue one episode timeline\n"
         "  profile --scenarios F.csv --out M.csv [--machine ...]\n"
         "          [--samples K] [--seed S] [--schema NAME] [--threads T]\n"
         "      collect the two-level raw metric database for every scenario\n"
         "  analyze --metrics M.csv [--clusters K | --auto-k] [--quality-curve]\n"
         "          [--ward] [--no-whiten] [--no-refine] [--schema NAME]\n"
         "          [--threads T] [--storage ram|mmap] [--memory-budget MB]\n"
         "          [--kmeans-mode exact|minibatch|auto]\n"
         "          [--shapes SPEC --scenarios F.csv]\n"
         "      --storage mmap streams the metrics through an out-of-core\n"
         "      column store (side-car M.csv.fcs) instead of materialising\n"
         "      the dense matrix; --memory-budget caps the resident working\n"
         "      set (MiB); --kmeans-mode picks the cluster-sweep solver\n"
         "      (minibatch = coreset solve + full-data refinement);\n"
         "      --shapes analyses each machine shape in its own pipeline\n"
         "      (metric rows routed by the row-aligned scenario trace)\n"
         "      refinement -> PCA -> clustering -> representative scenarios\n"
         "  evaluate --scenarios F.csv --feature SPEC [--machine ...]\n"
         "           [--clusters K] [--per-job] [--truth] [--sampling]\n"
         "           [--schema NAME] [--threads T]\n"
         "           [--replay-faults R] [--replay-fault-seed S]\n"
         "           [--replay-retries N] [--replay-deadline D] [--replay-ci W]\n"
         "           [--max-quarantined-mass M] [--shapes SPEC]\n"
         "      estimate a feature's fleet impact from the representatives;\n"
         "      --shapes shards the pipeline per machine shape and fans the\n"
         "      per-shape estimates in with population weights;\n"
         "      --replay-faults injects testbed replay faults at rate R\n"
         "      (retried N times, deadline D seconds, repeat-measured until\n"
         "      the CI half-width is <= W pp; unreplayable representatives\n"
         "      fall back to runner-up members, unreplayable clusters are\n"
         "      quarantined up to a mass share of M before failing loudly)\n"
         "  drift --baseline M.csv --fresh M2.csv [--clusters K]\n"
         "        [--refit-ratio R] [--reweight-shift S]\n"
         "      triage representative validity: valid | reweight | refit\n"
         "  ingest --scenarios F.csv --batch B.csv\n"
         "         [--refit-policy auto|never|always] [--commit]\n"
         "         [--pca-update incremental|refit|auto] [--pca-drift-limit D]\n"
         "         [--metrics M.csv] [--machine ...] [--clusters K]\n"
         "         [--samples K] [--seed S] [--schema NAME] [--threads T]\n"
         "         [--faults R] [--fault-seed S] [--sample-quorum Q]\n"
         "         [--max-retries N] [--journal] [--resume] [--shapes SPEC]\n"
         "         [--drift-response SPEC]\n"
         "      absorb a batch of fresh scenarios with the cheapest sound\n"
         "      action for its drift verdict; --commit appends the batch to\n"
         "      the scenario CSV (and its profiled rows to --metrics);\n"
         "      --faults injects counter faults at rate R (quorum Q valid\n"
         "      samples per row, N retries); --journal guards the appends\n"
         "      with a write-ahead journal, --resume rolls back torn ones;\n"
         "      --shapes routes the batch per shape — only shards the batch\n"
         "      touches run their drift gate; --drift-response turns on the\n"
         "      adaptive response (see drift-response SPEC below)\n"
         "  campaign --scenarios F.csv --feature SPEC [--machine ...]\n"
         "           [--clusters K] [--testbeds N] [--testbed-speeds LIST]\n"
         "           [--budget SECONDS]\n"
         "           [--target-ci PP] [--checkpoint-every N] [--prior-band PP]\n"
         "           [--no-validation] [--campaign-state C.csv] [--truth]\n"
         "           [--schema NAME] [--threads T] [--shapes SPEC]\n"
         "           [replay-fault flags as in `evaluate`]\n"
         "      schedule the feature's replays across a simulated farm of N\n"
         "      testbeds, heavy clusters first, with anytime estimates: stop\n"
         "      early once the uncertainty band is <= --target-ci pp or the\n"
         "      simulated testbed-time --budget (seconds) is spent;\n"
         "      --testbed-speeds gives each slot a speed factor (comma-\n"
         "      separated, one per testbed; 2.0 = twice as fast) — scales\n"
         "      occupancy and billed seconds, never a measurement;\n"
         "      --checkpoint-every records the narrowing band every N units,\n"
         "      --campaign-state archives the state for `flare report`,\n"
         "      --no-validation skips the band-tightening runner-up probes\n"
         "  report --scenarios F.csv --out R.md [--features LIST] [--truth]\n"
         "         [--machine ...] [--clusters K] [--replay-faults R]\n"
         "         [--replay-fault-seed S] [--replay-retries N]\n"
         "         [--replay-deadline D] [--replay-ci W]\n"
         "         [--max-quarantined-mass M] [--shapes SPEC]\n"
         "      write a Markdown evaluation report; LIST is ';'-separated\n"
         "      feature SPECs (default: the three Table 4 features);\n"
         "      replay flags as in `evaluate`; --shapes writes the\n"
         "      heterogeneous-fleet report (per-shape + fan-in estimates)\n"
         "  report --campaign-state C.csv --out R.md\n"
         "      answer from an archived (possibly mid-run) replay campaign:\n"
         "      anytime estimate + band, checkpoint narrowing history,\n"
         "      mass accounting, and per-testbed utilisation\n"
         "  serve --socket S.sock --state-dir DIR --scenarios F.csv\n"
         "        [--machine ...] [--schema NAME] [--threads T]\n"
         "        [--refit-policy auto|never|always] [--samples K] [--seed S]\n"
         "        [--max-ingest-queue N] [--max-eval-queue N]\n"
         "        [--default-deadline-ms MS] [--frame-timeout-ms MS]\n"
         "        [--drift-response SPEC] [replay-fault flags as in `evaluate`]\n"
         "      run the resident service daemon on a Unix socket: coalesced\n"
         "      ingest batching (one profiler pass per queue drain), bounded\n"
         "      per-class admission with explicit shed answers, deadline\n"
         "      watchdog, snapshot-consistent reads tagged with the model\n"
         "      epoch, and crash-safe resident state in --state-dir (a\n"
         "      kill -9'd daemon recovers bit-identical to replaying its\n"
         "      acknowledged ingests; unacknowledged groups are reported)\n"
         "  client --socket S.sock --request VERB [--batch B.csv]\n"
         "         [--feature SPEC] [--features LIST] [--validate]\n"
         "         [--deadline-ms MS] [--timeout-ms MS]\n"
         "      one-shot caller for a running daemon; VERB is\n"
         "      status|ingest|evaluate|report|shutdown. Prints the response\n"
         "      payload (key=value lines, epoch included); a non-ok outcome\n"
         "      (shed/timeout/failed) exits with the serve error code\n"
         "  help\n\n"
         "exit codes: 0 ok, 2 parse/usage, 3 numerical, 4 capacity,\n"
         "  5 fault, 6 quarantine, 7 replay, 8 journal, 9 serve, 1 other\n\n"
         "shapes SPEC: comma-separated shape[:count] entries, e.g.\n"
         "  'default:6,small:2,dense:4' — count = machines of that shape;\n"
         "  weights for the fleet-wide fan-in are machine-count shares\n"
         "dynamics SPEC: comma-separated generator entries name[:key=value...]\n"
         "  with name = diurnal (period= amp= hp_amp= phase=), flash\n"
         "  (rate= dur= mult= short=), upgrade (at= frac= shift=), anomaly\n"
         "  (rate= dur= intensity= frac=); every generator takes shape= to\n"
         "  scope it to one --shapes shape, e.g.\n"
         "  'diurnal:amp=0.4,flash:rate=3:mult=5,upgrade:at=48:frac=0.5'\n"
         "drift-response SPEC: 'on', 'off', or key=value entries (imply on),\n"
         "  comma-separated: ewma|confirm|cooldown|cusum-ref|cusum|budget|\n"
         "  widen|widen-cap|coherence|min-rows|separation — change-point\n"
         "  confirmation, refit hysteresis, staleness band widening, and\n"
         "  anomaly-episode quarantine over the ingest drift gate\n"
         "schema NAME: standard | job-mix (§5.3 per-job columns) |\n"
         "  temporal (§4.1 stddev columns) | job-mix-temporal\n"
         "feature SPEC: feature1|feature2|feature3|baseline, or knobs like\n"
         "  'fmax=2.0,llc=20,smt=off' (fmax/fmin GHz, llc MB/socket,\n"
         "  smt on|off, memlat ns)\n"
         "threads T: worker threads (1 = serial, 0 = all hardware threads);\n"
         "  results are identical for every value\n";
  return 0;
}

int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err) {
  try {
    const Args args = Args::parse(argc, argv);
    const std::string& command = args.command();
    if (command == "simulate") return run_simulate(args, out);
    if (command == "profile") return run_profile(args, out);
    if (command == "analyze") return run_analyze(args, out);
    if (command == "evaluate") return run_evaluate(args, out);
    if (command == "report") return run_report(args, out);
    if (command == "campaign") return run_campaign(args, out);
    if (command == "drift") return run_drift(args, out);
    if (command == "ingest") return run_ingest(args, out);
    if (command == "serve") return run_serve(args, out);
    if (command == "client") return run_client(args, out);
    if (command == "help" || command == "--help") return run_help(out);
    throw ParseError("unknown command '" + command +
                     "' (expected simulate|profile|analyze|evaluate|campaign|"
                     "report|drift|ingest|serve|client|help)");
  } catch (const ParseError& e) {
    err << "flare: " << e.what() << "\n";
    return 2;
  } catch (const NumericalError& e) {
    err << "flare: " << e.what() << "\n";
    return 3;
  } catch (const CapacityError& e) {
    err << "flare: " << e.what() << "\n";
    return 4;
  } catch (const FaultError& e) {
    err << "flare: " << e.what() << "\n";
    return 5;
  } catch (const QuarantineError& e) {
    err << "flare: " << e.what() << "\n";
    return 6;
  } catch (const ReplayError& e) {
    err << "flare: " << e.what() << "\n";
    return 7;
  } catch (const JournalError& e) {
    err << "flare: " << e.what() << "\n";
    return 8;
  } catch (const ServeError& e) {
    err << "flare: " << e.what() << "\n";
    return 9;
  } catch (const std::invalid_argument& e) {
    // ensure() reports precondition violations this way — usage errors,
    // same bucket as ParseError.
    err << "flare: " << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    err << "flare: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace flare::cli
