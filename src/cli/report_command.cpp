// `flare report`: the one-shot operator deliverable — fit FLARE on a scenario
// trace, evaluate a set of features, and write a self-contained Markdown
// report (datacenter summary, cluster inventory with interpretations,
// per-feature estimates with optional ground-truth check).
#include <cmath>
#include <fstream>
#include <ostream>

#include "baselines/full_evaluator.hpp"
#include "cli/commands.hpp"
#include "cli/config_args.hpp"
#include "cli/feature_spec.hpp"
#include "core/campaign.hpp"
#include "core/pipeline.hpp"
#include "core/sharded_pipeline.hpp"
#include "trace/campaign_io.hpp"
#include "trace/scenario_io.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace flare::cli {
namespace {

std::string pct(double value) { return util::format_double(value, 2) + " %"; }

void write_report(std::ostream& md, core::FlarePipeline& pipeline,
                  const dcsim::ScenarioSet& set,
                  const std::vector<core::Feature>& features, bool with_truth) {
  const core::AnalysisResult& analysis = pipeline.analysis();

  md << "# FLARE feature-evaluation report\n\n";
  md << "## Datacenter\n\n";
  md << "- machine shape: `" << pipeline.config().machine.name << "` ("
     << pipeline.config().machine.cpu_model << ")\n";
  md << "- distinct job co-location scenarios: " << set.size() << "\n";
  md << "- raw metrics: " << pipeline.database().num_metrics() << " → "
     << analysis.kept_columns.size() << " after refinement\n";
  md << "- high-level metrics (PCs): " << analysis.num_components
     << " explaining "
     << util::format_double(100.0 * analysis.pca.cumulative_explained_variance(
                                        analysis.num_components),
                            1)
     << " % of variance\n";
  md << "- behaviour groups: " << analysis.chosen_k << "\n\n";

  md << "## Representative scenarios\n\n";
  md << "| cluster | weight | interpretation of strongest PC | representative mix |\n";
  md << "|---|---|---|---|\n";
  for (std::size_t c = 0; c < analysis.chosen_k; ++c) {
    // The PC with the largest |centroid coordinate| characterises the group.
    std::size_t strongest = 0;
    for (std::size_t d = 1; d < analysis.cluster_space.cols(); ++d) {
      if (std::abs(analysis.clustering.centroids(c, d)) >
          std::abs(analysis.clustering.centroids(c, strongest))) {
        strongest = d;
      }
    }
    const std::string& label =
        strongest < analysis.interpretations.size()
            ? analysis.interpretations[strongest].label
            : "(beyond labelled components)";
    md << "| " << c << " | "
       << util::format_double(100.0 * analysis.cluster_weights[c], 1) << " % | PC"
       << strongest << ": " << label << " | `"
       << set.scenarios[analysis.representatives[c]].mix.key() << "` |\n";
  }

  md << "\n## Feature estimates\n\n";
  md << "| feature | estimate";
  if (with_truth) md << " | datacenter truth | abs. error";
  md << " | replays |\n|---|---";
  if (with_truth) md << "|---|---";
  md << "|---|\n";
  for (const core::Feature& feature : features) {
    const core::FeatureEstimate est = pipeline.evaluate(feature);
    md << "| " << feature.name() << " | " << pct(est.impact_pct);
    if (with_truth) {
      const baselines::FullDatacenterEvaluator truth(pipeline.impact_model(), set);
      const double dc = truth.evaluate(feature).impact_pct;
      md << " | " << pct(dc) << " | "
         << util::format_double(std::abs(est.impact_pct - dc), 2) << " pp";
    }
    md << " | " << analysis.chosen_k << " |\n";
  }

  // With replay faults injected the breakdown grows a provenance column and a
  // campaign-health line; without them the report stays byte-identical to the
  // failure-free layout.
  const bool replay_faults = pipeline.config().replay_faults.enabled;
  md << "\n## Per-feature behaviour breakdown\n\n";
  for (const core::Feature& feature : features) {
    const core::FeatureEstimate est = pipeline.evaluate(feature);
    md << "### " << feature.name() << "\n\n" << feature.description() << "\n\n";
    if (replay_faults) {
      md << "| cluster | weight | impact | replay |\n|---|---|---|---|\n";
    } else {
      md << "| cluster | weight | impact |\n|---|---|---|\n";
    }
    for (const core::ClusterImpact& ci : est.per_cluster) {
      md << "| " << ci.cluster << " | "
         << util::format_double(100.0 * ci.weight, 1) << " % | "
         << pct(ci.impact_pct);
      if (replay_faults) {
        md << " | " << core::to_string(ci.status) << " ("
           << ci.attempts << " attempts)";
      }
      md << " |\n";
    }
    md << "\n";
    if (replay_faults) {
      const core::ReplayLedger& ledger = est.replay;
      md << "Replay health: " << ledger.total_attempts << " attempts ("
         << ledger.failed_attempts << " failed, " << ledger.fallback_probes
         << " fallback probes); mass direct "
         << util::format_double(100.0 * ledger.direct_mass, 1) << " % / fallback "
         << util::format_double(100.0 * ledger.fallback_mass, 1)
         << " % / quarantined "
         << util::format_double(100.0 * ledger.quarantined_mass, 1)
         << " %; extra uncertainty ±"
         << util::format_double(ledger.measurement_uncertainty_pp +
                                    ledger.quarantine_widening_pp,
                                2)
         << " pp; simulated testbed time "
         << util::format_double(ledger.simulated_seconds / 3600.0, 1) << " h.\n\n";
    }
  }
  md << "---\nGenerated by `flare report` — representative-scenario "
        "evaluation after Lee et al., Middleware '23.\n";
}

// Fleet-mode report: one section per shape, per-feature fleet estimates with
// the per-shape breakdown, and the fan-in mass line (paper §5.5).
void write_fleet_report(std::ostream& md, core::ShardedPipeline& pipeline,
                        const std::vector<core::Feature>& features,
                        bool with_truth) {
  const dcsim::FleetConfig& fleet = pipeline.fleet();
  const std::vector<double> weights = pipeline.weights();

  md << "# FLARE fleet feature-evaluation report\n\n";
  md << "## Fleet\n\n";
  md << "| shape | machines | weight | scenarios | behaviour groups |\n";
  md << "|---|---|---|---|---|\n";
  for (std::size_t i = 0; i < pipeline.num_shards(); ++i) {
    const core::FlarePipeline& shard = pipeline.shard(i);
    md << "| `" << fleet.shapes[i].machine.name << "` | "
       << fleet.shapes[i].num_machines << " | "
       << util::format_double(100.0 * weights[i], 1) << " % | "
       << shard.scenario_set().size() << " | " << shard.analysis().chosen_k
       << " |\n";
  }
  md << "\nEach shape runs its own complete pipeline (own PCA space, own "
        "clusters, own drift gate); fleet estimates fan the per-shape "
        "numbers in with the population weights above.\n";

  md << "\n## Fleet feature estimates\n\n";
  md << "| feature | fleet estimate";
  if (with_truth) md << " | fleet truth | abs. error";
  md << " | replays |\n|---|---";
  if (with_truth) md << "|---|---";
  md << "|---|\n";
  for (const core::Feature& feature : features) {
    const core::FleetEstimate est = pipeline.evaluate(feature);
    md << "| " << feature.name() << " | " << pct(est.impact_pct);
    if (with_truth) {
      double truth = 0.0;
      for (std::size_t i = 0; i < pipeline.num_shards(); ++i) {
        const baselines::FullDatacenterEvaluator shard_truth(
            pipeline.shard(i).impact_model(),
            pipeline.shard(i).scenario_set());
        truth += weights[i] * shard_truth.evaluate(feature).impact_pct;
      }
      md << " | " << pct(truth) << " | "
         << util::format_double(std::abs(est.impact_pct - truth), 2) << " pp";
    }
    md << " | " << est.scenario_replays << " |\n";
  }

  md << "\n## Per-shape breakdown\n\n";
  for (const core::Feature& feature : features) {
    const core::FleetEstimate est = pipeline.evaluate(feature);
    md << "### " << feature.name() << "\n\n" << feature.description() << "\n\n";
    md << "| shape | weight | impact | contribution |\n|---|---|---|---|\n";
    for (const core::ShardFeatureEstimate& s : est.per_shape) {
      md << "| `" << s.shape << "` | "
         << util::format_double(100.0 * s.weight, 1) << " % | "
         << pct(s.estimate.impact_pct) << " | "
         << pct(s.weight * s.estimate.impact_pct) << " |\n";
    }
    const core::ReplayLedger& ledger = est.replay;
    md << "\nFan-in mass: direct "
       << util::format_double(100.0 * ledger.direct_mass, 1) << " % / fallback "
       << util::format_double(100.0 * ledger.fallback_mass, 1)
       << " % / quarantined "
       << util::format_double(100.0 * ledger.quarantined_mass, 1)
       << " % (total "
       << util::format_double(100.0 * ledger.total_mass(), 1) << " %).\n\n";
  }
  md << "---\nGenerated by `flare report --shapes` — sharded heterogeneous-"
        "fleet evaluation after Lee et al., Middleware '23 §5.5.\n";
}

// Campaign-mode report: answer from an archived CampaignState (written by
// `flare campaign --campaign-state`), before or after the campaign finishes —
// the anytime contract is that the estimate and band are valid at every
// checkpoint, not just at exhaustion.
void write_campaign_report(std::ostream& md, const core::CampaignState& state) {
  md << "# FLARE replay-campaign report\n\n";
  md << "## Campaign\n\n";
  md << "- feature: `" << state.feature_name << "`\n";
  md << "- testbeds: " << state.num_testbeds << "\n";
  md << "- stop: `" << core::to_string(state.stop) << "` after "
     << state.units_completed << " units (" << state.units_failed
     << " failed)\n";
  if (state.target_ci_pp > 0.0) {
    md << "- target band: ±" << util::format_double(state.target_ci_pp, 2)
       << " pp\n";
  }
  if (state.budget_seconds > 0.0) {
    md << "- budget: " << util::format_double(state.budget_seconds / 3600.0, 2)
       << " h of simulated testbed time\n";
  }
  md << "- cost: " << state.distinct_replays << " distinct replays, "
     << state.ledger.total_attempts << " attempts, "
     << util::format_double(state.total_busy_seconds / 3600.0, 2)
     << " h billed (makespan "
     << util::format_double(state.makespan_seconds / 3600.0, 2) << " h)\n\n";

  md << "## Anytime estimate\n\n";
  md << "**" << pct(state.impact_pct) << " HP MIPS reduction**, band ±"
     << util::format_double(state.band_pp, 2) << " pp → ["
     << util::format_double(state.lower(), 2) << " %, "
     << util::format_double(state.upper(), 2) << " %]\n\n";
  const core::ReplayLedger& l = state.ledger;
  md << "Mass accounting: direct " << util::format_double(100.0 * l.direct_mass, 1)
     << " % / fallback " << util::format_double(100.0 * l.fallback_mass, 1)
     << " % / quarantined " << util::format_double(100.0 * l.quarantined_mass, 1)
     << " % / pending " << util::format_double(100.0 * l.pending_mass, 1)
     << " % (total " << util::format_double(100.0 * l.total_mass(), 1)
     << " %).\n\n";

  md << "## Checkpoints\n\n";
  md << "| units | estimate | band ± pp | measured mass | testbed h | attempts |\n";
  md << "|---|---|---|---|---|---|\n";
  for (const core::CampaignCheckpoint& cp : state.checkpoints) {
    md << "| " << cp.units_completed << " | " << pct(cp.impact_pct) << " | "
       << util::format_double(cp.band_pp, 3) << " | "
       << util::format_double(100.0 * cp.measured_mass, 1) << " % | "
       << util::format_double(cp.simulated_seconds / 3600.0, 2) << " | "
       << cp.attempts << " |\n";
  }
  md << "\nThe band is monotonically non-widening by construction — each "
        "checkpoint's interval contains every later one.\n";

  md << "\n## Testbed utilisation\n\n";
  md << "| testbed | units | attempts | busy h | utilisation |\n";
  md << "|---|---|---|---|---|\n";
  for (const dcsim::TestbedUtilisation& t : state.testbeds) {
    md << "| " << t.testbed << " | " << t.units << " | " << t.attempts << " | "
       << util::format_double(t.busy_seconds / 3600.0, 2) << " | "
       << util::format_double(100.0 * t.utilisation, 1) << " % |\n";
  }
  md << "---\nGenerated by `flare report --campaign-state` — budget-aware "
        "replay campaign after Lee et al., Middleware '23.\n";
}

}  // namespace

int run_report(const Args& args, std::ostream& out) {
  const std::string campaign_path = args.get_string("campaign-state", "");
  if (!campaign_path.empty()) {
    const std::string out_path = args.require_string("out");
    args.reject_unconsumed();
    const core::CampaignState state = trace::load_campaign_state(campaign_path);
    std::ofstream md(out_path);
    ensure(static_cast<bool>(md),
           "report: cannot open output file: " + out_path);
    write_campaign_report(md, state);
    ensure(static_cast<bool>(md), "report: write failed: " + out_path);
    out << "campaign '" << state.feature_name << "': "
        << core::to_string(state.stop) << ", estimate " << state.impact_pct
        << "% +-" << state.band_pp << " pp after " << state.units_completed
        << " units\n";
    out << "wrote " << out_path << "\n";
    return 0;
  }
  const std::string scenarios_path = args.require_string("scenarios");
  const std::string out_path = args.require_string("out");
  const std::string feature_list = args.get_string("features", "feature1;feature2;feature3");
  const bool with_truth = args.get_flag("truth");
  const std::optional<dcsim::FleetConfig> fleet = fleet_from(args);
  core::FlareConfig config;
  config.machine = machine_by_name(args.get_string("machine", "default"));
  const long long clusters = args.get_int("clusters", 18);
  ensure(clusters >= 2, "--clusters must be >= 2");
  config.analyzer.fixed_clusters = static_cast<std::size_t>(clusters);
  config.analyzer.compute_quality_curve = false;
  apply_replay_args(args, config);
  args.reject_unconsumed();

  // Feature specs are ';'-separated so custom knob lists keep their commas,
  // e.g. --features "feature1;fmax=2.0,llc=20".
  std::vector<core::Feature> features;
  for (const std::string& spec : util::split(feature_list, ';')) {
    if (util::trim(spec).empty()) continue;
    features.push_back(parse_feature(spec));
  }
  ensure(!features.empty(), "report: no features given");

  if (fleet.has_value()) {
    const dcsim::ScenarioSet mixed =
        trace::load_scenario_set(scenarios_path, fleet->shape_names());
    core::ShardedConfig sharded;
    sharded.base = config;
    sharded.fleet = *fleet;
    core::ShardedPipeline pipeline(sharded);
    pipeline.fit(mixed);

    std::ofstream md(out_path);
    ensure(static_cast<bool>(md),
           "report: cannot open output file: " + out_path);
    write_fleet_report(md, pipeline, features, with_truth);
    ensure(static_cast<bool>(md), "report: write failed: " + out_path);

    std::size_t representatives = 0;
    for (std::size_t i = 0; i < pipeline.num_shards(); ++i) {
      representatives += pipeline.shard(i).analysis().chosen_k;
    }
    out << "evaluated " << features.size() << " feature(s) on "
        << representatives << " representatives across "
        << pipeline.num_shards() << " shards ("
        << pipeline.scenario_replays() << " replays total)\n";
    out << "wrote " << out_path << "\n";
    return 0;
  }

  const dcsim::ScenarioSet set = trace::load_scenario_set(scenarios_path);
  core::FlarePipeline pipeline(config);
  pipeline.fit(set);

  std::ofstream md(out_path);
  ensure(static_cast<bool>(md), "report: cannot open output file: " + out_path);
  write_report(md, pipeline, set, features, with_truth);
  ensure(static_cast<bool>(md), "report: write failed: " + out_path);

  out << "evaluated " << features.size() << " feature(s) on "
      << pipeline.analysis().chosen_k << " representatives ("
      << pipeline.scenario_replays() << " replays total)\n";
  if (config.replay_faults.enabled) {
    out << "replay attempts: " << pipeline.replayer().total_replays() << " ("
        << pipeline.replayer().failed_replays() << " failed, "
        << util::format_double(pipeline.replayer().simulated_seconds() / 3600.0, 1)
        << " h simulated testbed time)\n";
  }
  out << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace flare::cli
