#include "cli/config_args.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/error.hpp"
#include "util/seed_stream.hpp"

namespace flare::cli {

core::MetricSchema schema_by_name(const std::string& name) {
  if (name == "standard") return core::MetricSchema::kStandard;
  if (name == "job-mix") return core::MetricSchema::kWithJobMix;
  if (name == "temporal") return core::MetricSchema::kTemporal;
  if (name == "job-mix-temporal") return core::MetricSchema::kWithJobMixTemporal;
  throw ParseError("unknown schema '" + name +
                   "' (standard|job-mix|temporal|job-mix-temporal)");
}

dcsim::MachineConfig machine_by_name(const std::string& name) {
  if (name == "default") return dcsim::default_machine();
  if (name == "small") return dcsim::small_machine();
  if (name == "dense") return dcsim::dense_machine();
  throw ParseError("unknown machine shape '" + name + "' (default|small|dense)");
}

std::optional<dcsim::FleetConfig> fleet_from(const Args& args) {
  const std::string spec = args.get_string("shapes", "");
  if (spec.empty()) return std::nullopt;
  return dcsim::parse_fleet_spec(spec);
}

std::size_t threads_from(const Args& args) {
  const long long threads = args.get_int("threads", 1);
  ensure(threads >= 0, "--threads must be >= 0 (0 = all hardware threads)");
  return static_cast<std::size_t>(threads);
}

core::AnalyzerConfig analyzer_config_from(const Args& args) {
  core::AnalyzerConfig config;
  const long long clusters = args.get_int("clusters", 18);
  ensure(clusters >= 2, "--clusters must be >= 2");
  config.fixed_clusters = static_cast<std::size_t>(clusters);
  if (args.get_flag("auto-k")) config.fixed_clusters = std::nullopt;
  config.compute_quality_curve =
      args.get_flag("quality-curve") || !config.fixed_clusters.has_value();
  if (args.get_flag("ward")) {
    config.algorithm = core::ClusterAlgorithm::kWardAgglomerative;
  }
  if (args.get_flag("no-whiten")) config.whiten = false;
  if (args.get_flag("no-refine")) config.use_correlation_filter = false;
  const std::string mode = args.get_string("kmeans-mode", "exact");
  if (mode == "exact") {
    config.kmeans_mode = core::KMeansMode::kExact;
  } else if (mode == "minibatch") {
    config.kmeans_mode = core::KMeansMode::kMiniBatch;
  } else if (mode == "auto") {
    config.kmeans_mode = core::KMeansMode::kAuto;
  } else {
    throw ParseError("unknown --kmeans-mode '" + mode +
                     "' (exact|minibatch|auto)");
  }
  config.threads = threads_from(args);
  return config;
}

std::size_t memory_budget_from(const Args& args) {
  const long long budget_mb = args.get_int("memory-budget", 0);
  ensure(budget_mb >= 0, "--memory-budget must be >= 0 (MiB, 0 = unbounded)");
  return static_cast<std::size_t>(budget_mb) << 20;
}

void apply_replay_args(const Args& args, core::FlareConfig& config) {
  const double rate = args.get_double("replay-faults", 0.0);
  ensure(rate >= 0.0 && rate <= 1.0, "--replay-faults must be in [0, 1]");
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int(
      "replay-fault-seed", static_cast<long long>(config.replay_faults.seed)));
  if (rate > 0.0) {
    config.replay_faults = dcsim::ReplayFaultOptions::uniform(rate, seed);
  }
  const long long retries =
      args.get_int("replay-retries", config.replay.max_retries);
  ensure(retries >= 0, "--replay-retries must be >= 0");
  config.replay.max_retries = static_cast<int>(retries);
  config.replay.deadline_seconds =
      args.get_double("replay-deadline", config.replay.deadline_seconds);
  ensure(config.replay.deadline_seconds >= config.replay.nominal_seconds,
         "--replay-deadline must be >= the nominal replay time (" +
             std::to_string(config.replay.nominal_seconds) + " s)");
  config.replay.target_ci_halfwidth_pp =
      args.get_double("replay-ci", config.replay.target_ci_halfwidth_pp);
  config.replay.max_quarantined_mass = args.get_double(
      "max-quarantined-mass", config.replay.max_quarantined_mass);
  ensure(config.replay.max_quarantined_mass >= 0.0 &&
             config.replay.max_quarantined_mass <= 1.0,
         "--max-quarantined-mass must be in [0, 1]");
}

std::optional<dcsim::WorkloadDynamics> dynamics_from(
    const Args& args, const std::optional<dcsim::FleetConfig>& fleet) {
  const std::optional<std::string> spec = args.get_optional("dynamics");
  const std::optional<std::string> dynamics_seed =
      args.get_optional("dynamics-seed");
  const std::optional<std::string> dynamics_start =
      args.get_optional("dynamics-start");
  if (!spec.has_value()) {
    if (dynamics_seed.has_value()) {
      throw ParseError("--dynamics-seed requires --dynamics");
    }
    if (dynamics_start.has_value()) {
      throw ParseError("--dynamics-start requires --dynamics");
    }
    return std::nullopt;
  }

  // Contradiction 1: dynamics without a seed source. The episode schedules
  // (flash/anomaly) must be reproducible across re-runs and streaming
  // windows; silently reusing the implicit default seed would make "the same
  // command" archive different regimes once the default changes.
  if (!args.get_optional("seed").has_value() && !dynamics_seed.has_value()) {
    throw ParseError("--dynamics '" + *spec +
                     "' has no seed source: pass an explicit --seed or "
                     "--dynamics-seed so the episode schedules are "
                     "reproducible");
  }

  dcsim::WorkloadDynamics dynamics = dcsim::parse_dynamics_spec(*spec);
  if (dynamics_seed.has_value()) {
    dynamics.seed =
        static_cast<std::uint64_t>(args.get_int("dynamics-seed", 0));
  } else {
    // Derive a decorrelated schedule stream from the run seed (salted with
    // the layer's default seed) so --seed governs everything yet the arrival
    // RNG and the episode RNG never alias.
    dynamics.seed = util::derive_stream(
        "workload-dynamics", static_cast<std::uint64_t>(args.get_int("seed", 7)),
        dynamics.seed);
  }
  dynamics.start_hour = args.get_double("dynamics-start", 0.0);
  ensure(dynamics.start_hour >= 0.0, "--dynamics-start must be >= 0 (hours)");

  // Contradiction 2: a generator scoped to a shape the run does not have.
  const std::vector<std::string> scopes = dynamics.shape_scopes();
  if (!scopes.empty() && !fleet.has_value()) {
    throw ParseError("--dynamics scopes a generator to shape '" +
                     scopes.front() +
                     "' but no --shapes fleet was given (single-shape runs "
                     "take unscoped generators only)");
  }
  if (fleet.has_value()) {
    const std::vector<std::string> names = fleet->shape_names();
    for (const std::string& scope : scopes) {
      if (std::find(names.begin(), names.end(), scope) == names.end()) {
        std::string known;
        for (const std::string& name : names) {
          known += known.empty() ? name : "|" + name;
        }
        throw ParseError("--dynamics scopes a generator to shape '" + scope +
                         "' which is not in the --shapes fleet (" + known +
                         ")");
      }
    }
  }
  return dynamics;
}

namespace {

/// Strictly parses one --drift-response value; `entry` positions the error.
double drift_response_number(const std::string& entry,
                             const std::string& value) {
  double parsed = 0.0;
  bool ok = !value.empty();
  if (ok) {
    try {
      std::size_t used = 0;
      parsed = std::stod(value, &used);
      ok = used == value.size() && std::isfinite(parsed);
    } catch (const std::exception&) {
      ok = false;
    }
  }
  if (!ok) {
    throw ParseError("in --drift-response entry '" + entry + "': '" + value +
                     "' is not a number");
  }
  return parsed;
}

/// As above but requires a non-negative integer.
long long drift_response_count(const std::string& entry,
                               const std::string& value) {
  const double parsed = drift_response_number(entry, value);
  if (parsed < 0.0 || parsed != std::floor(parsed) || parsed > 1e9) {
    throw ParseError("in --drift-response entry '" + entry +
                     "': expected a non-negative integer");
  }
  return static_cast<long long>(parsed);
}

}  // namespace

void apply_drift_response_args(const Args& args, core::FlareConfig& config) {
  const std::optional<std::string> spec = args.get_optional("drift-response");
  if (!spec.has_value()) return;
  core::DriftResponseConfig& response = config.drift_response;
  if (*spec == "off") {
    response.enabled = false;
    return;
  }
  response.enabled = true;
  if (spec->empty() || *spec == "on") return;  // bare flag == "on"

  std::size_t pos = 0;
  while (pos <= spec->size()) {
    const std::size_t comma = spec->find(',', pos);
    const std::size_t end = comma == std::string::npos ? spec->size() : comma;
    const std::string entry = spec->substr(pos, end - pos);
    pos = end + 1;
    if (entry == "on") continue;  // allowed as a (redundant) leading entry
    const std::size_t eq = entry.find('=');
    if (entry.empty() || eq == std::string::npos || eq == 0) {
      throw ParseError(
          "in --drift-response entry '" + entry +
          "': expected key=value (keys: ewma|confirm|cooldown|cusum-ref|"
          "cusum|budget|widen|widen-cap|coherence|min-rows|separation, "
          "or on|off)");
    }
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    if (key == "ewma") {
      response.ewma_alpha = drift_response_number(entry, value);
      ensure(response.ewma_alpha > 0.0 && response.ewma_alpha <= 1.0,
             "in --drift-response entry '" + entry +
                 "': ewma must be in (0, 1]");
    } else if (key == "confirm") {
      response.confirm_batches =
          static_cast<int>(drift_response_count(entry, value));
      ensure(response.confirm_batches >= 1,
             "in --drift-response entry '" + entry + "': confirm must be >= 1");
    } else if (key == "cooldown") {
      response.cooldown_batches =
          static_cast<int>(drift_response_count(entry, value));
    } else if (key == "cusum-ref") {
      response.cusum_reference = drift_response_number(entry, value);
      ensure(response.cusum_reference >= 0.0,
             "in --drift-response entry '" + entry +
                 "': cusum-ref must be >= 0");
    } else if (key == "cusum") {
      response.cusum_threshold = drift_response_number(entry, value);
      ensure(response.cusum_threshold > 0.0,
             "in --drift-response entry '" + entry + "': cusum must be > 0");
    } else if (key == "budget") {
      response.staleness_budget_batches = drift_response_number(entry, value);
      ensure(response.staleness_budget_batches > 0.0,
             "in --drift-response entry '" + entry + "': budget must be > 0");
    } else if (key == "widen") {
      response.staleness_widening_pp = drift_response_number(entry, value);
      ensure(response.staleness_widening_pp >= 0.0,
             "in --drift-response entry '" + entry + "': widen must be >= 0");
    } else if (key == "widen-cap") {
      response.staleness_widening_cap_pp = drift_response_number(entry, value);
      ensure(response.staleness_widening_cap_pp >= 0.0,
             "in --drift-response entry '" + entry +
                 "': widen-cap must be >= 0");
    } else if (key == "coherence") {
      response.episode_coherence_ratio = drift_response_number(entry, value);
      ensure(response.episode_coherence_ratio > 0.0 &&
                 response.episode_coherence_ratio < 1.0,
             "in --drift-response entry '" + entry +
                 "': coherence must be in (0, 1)");
    } else if (key == "min-rows") {
      response.episode_min_rows =
          static_cast<std::size_t>(drift_response_count(entry, value));
      ensure(response.episode_min_rows >= 2,
             "in --drift-response entry '" + entry +
                 "': min-rows must be >= 2");
    } else if (key == "separation") {
      response.episode_separation_ratio = drift_response_number(entry, value);
      ensure(response.episode_separation_ratio >= 1.0,
             "in --drift-response entry '" + entry +
                 "': separation must be >= 1");
    } else {
      throw ParseError(
          "in --drift-response entry '" + entry + "': unknown key '" + key +
          "' (ewma|confirm|cooldown|cusum-ref|cusum|budget|widen|widen-cap|"
          "coherence|min-rows|separation)");
    }
  }
}

}  // namespace flare::cli
