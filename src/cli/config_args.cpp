#include "cli/config_args.hpp"

#include "util/error.hpp"

namespace flare::cli {

core::MetricSchema schema_by_name(const std::string& name) {
  if (name == "standard") return core::MetricSchema::kStandard;
  if (name == "job-mix") return core::MetricSchema::kWithJobMix;
  if (name == "temporal") return core::MetricSchema::kTemporal;
  if (name == "job-mix-temporal") return core::MetricSchema::kWithJobMixTemporal;
  throw ParseError("unknown schema '" + name +
                   "' (standard|job-mix|temporal|job-mix-temporal)");
}

dcsim::MachineConfig machine_by_name(const std::string& name) {
  if (name == "default") return dcsim::default_machine();
  if (name == "small") return dcsim::small_machine();
  if (name == "dense") return dcsim::dense_machine();
  throw ParseError("unknown machine shape '" + name + "' (default|small|dense)");
}

std::optional<dcsim::FleetConfig> fleet_from(const Args& args) {
  const std::string spec = args.get_string("shapes", "");
  if (spec.empty()) return std::nullopt;
  return dcsim::parse_fleet_spec(spec);
}

std::size_t threads_from(const Args& args) {
  const long long threads = args.get_int("threads", 1);
  ensure(threads >= 0, "--threads must be >= 0 (0 = all hardware threads)");
  return static_cast<std::size_t>(threads);
}

core::AnalyzerConfig analyzer_config_from(const Args& args) {
  core::AnalyzerConfig config;
  const long long clusters = args.get_int("clusters", 18);
  ensure(clusters >= 2, "--clusters must be >= 2");
  config.fixed_clusters = static_cast<std::size_t>(clusters);
  if (args.get_flag("auto-k")) config.fixed_clusters = std::nullopt;
  config.compute_quality_curve =
      args.get_flag("quality-curve") || !config.fixed_clusters.has_value();
  if (args.get_flag("ward")) {
    config.algorithm = core::ClusterAlgorithm::kWardAgglomerative;
  }
  if (args.get_flag("no-whiten")) config.whiten = false;
  if (args.get_flag("no-refine")) config.use_correlation_filter = false;
  const std::string mode = args.get_string("kmeans-mode", "exact");
  if (mode == "exact") {
    config.kmeans_mode = core::KMeansMode::kExact;
  } else if (mode == "minibatch") {
    config.kmeans_mode = core::KMeansMode::kMiniBatch;
  } else if (mode == "auto") {
    config.kmeans_mode = core::KMeansMode::kAuto;
  } else {
    throw ParseError("unknown --kmeans-mode '" + mode +
                     "' (exact|minibatch|auto)");
  }
  config.threads = threads_from(args);
  return config;
}

std::size_t memory_budget_from(const Args& args) {
  const long long budget_mb = args.get_int("memory-budget", 0);
  ensure(budget_mb >= 0, "--memory-budget must be >= 0 (MiB, 0 = unbounded)");
  return static_cast<std::size_t>(budget_mb) << 20;
}

void apply_replay_args(const Args& args, core::FlareConfig& config) {
  const double rate = args.get_double("replay-faults", 0.0);
  ensure(rate >= 0.0 && rate <= 1.0, "--replay-faults must be in [0, 1]");
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int(
      "replay-fault-seed", static_cast<long long>(config.replay_faults.seed)));
  if (rate > 0.0) {
    config.replay_faults = dcsim::ReplayFaultOptions::uniform(rate, seed);
  }
  const long long retries =
      args.get_int("replay-retries", config.replay.max_retries);
  ensure(retries >= 0, "--replay-retries must be >= 0");
  config.replay.max_retries = static_cast<int>(retries);
  config.replay.deadline_seconds =
      args.get_double("replay-deadline", config.replay.deadline_seconds);
  ensure(config.replay.deadline_seconds >= config.replay.nominal_seconds,
         "--replay-deadline must be >= the nominal replay time (" +
             std::to_string(config.replay.nominal_seconds) + " s)");
  config.replay.target_ci_halfwidth_pp =
      args.get_double("replay-ci", config.replay.target_ci_halfwidth_pp);
  config.replay.max_quarantined_mass = args.get_double(
      "max-quarantined-mass", config.replay.max_quarantined_mass);
  ensure(config.replay.max_quarantined_mass >= 0.0 &&
             config.replay.max_quarantined_mass <= 1.0,
         "--max-quarantined-mass must be in [0, 1]");
}

}  // namespace flare::cli
