#include "cli/args.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace flare::cli {

Args Args::parse(int argc, const char* const* argv) {
  Args args;
  if (argc < 2) {
    throw ParseError(
        "missing command (expected simulate|profile|analyze|evaluate|report|"
        "drift|ingest|help)");
  }
  args.command_ = argv[1];
  int i = 2;
  while (i < argc) {
    const std::string token = argv[i];
    if (!util::starts_with(token, "--") || token.size() <= 2) {
      throw ParseError("expected --key, got '" + token + "'");
    }
    const std::string key = token.substr(2);
    if (args.values_.count(key) != 0) {
      throw ParseError("duplicate option --" + key);
    }
    const bool has_value = i + 1 < argc && !util::starts_with(argv[i + 1], "--");
    if (has_value) {
      args.values_[key] = argv[i + 1];
      i += 2;
    } else {
      args.values_[key] = "";
      i += 1;
    }
  }
  return args;
}

std::optional<std::string> Args::get_optional(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  consumed_.insert(key);
  if (it->second.empty()) {
    throw ParseError("option --" + key + " requires a value");
  }
  return it->second;
}

std::string Args::get_string(const std::string& key,
                             const std::string& default_value) const {
  return get_optional(key).value_or(default_value);
}

std::string Args::require_string(const std::string& key) const {
  const auto value = get_optional(key);
  if (!value.has_value()) throw ParseError("missing required option --" + key);
  return *value;
}

long long Args::get_int(const std::string& key, long long default_value) const {
  const auto value = get_optional(key);
  if (!value.has_value()) return default_value;
  return util::parse_int(*value);
}

double Args::get_double(const std::string& key, double default_value) const {
  const auto value = get_optional(key);
  if (!value.has_value()) return default_value;
  return util::parse_double(*value);
}

bool Args::get_flag(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return false;
  consumed_.insert(key);
  if (!it->second.empty()) {
    throw ParseError("option --" + key + " is a flag and takes no value");
  }
  return true;
}

void Args::reject_unconsumed() const {
  for (const auto& [key, value] : values_) {
    if (consumed_.count(key) == 0) {
      throw ParseError("unknown option --" + key + " for command '" + command_ + "'");
    }
  }
}

}  // namespace flare::cli
