// `flare ingest`: fit a baseline population, then feed it one batch of
// freshly observed scenarios. The batch is profiled, drift-classified, and
// absorbed with the cheapest sound action (assign / reweight / warm refit);
// the printed stage re-run counts show what the incremental data plane
// actually recomputed.
#include <ostream>

#include "cli/commands.hpp"
#include "cli/config_args.hpp"
#include "core/pipeline.hpp"
#include "core/sharded_pipeline.hpp"
#include "trace/journal.hpp"
#include "trace/metric_io.hpp"
#include "trace/scenario_io.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace flare::cli {
namespace {

core::RefitPolicy refit_policy_by_name(const std::string& name) {
  if (name == "auto") return core::RefitPolicy::kAuto;
  if (name == "never") return core::RefitPolicy::kNever;
  if (name == "always") return core::RefitPolicy::kAlways;
  throw ParseError("unknown refit policy '" + name + "' (auto|never|always)");
}

core::PcaUpdatePolicy pca_update_by_name(const std::string& name) {
  if (name == "refit") return core::PcaUpdatePolicy::kRefit;
  if (name == "incremental") return core::PcaUpdatePolicy::kIncremental;
  if (name == "auto") return core::PcaUpdatePolicy::kAuto;
  throw ParseError("unknown pca update policy '" + name +
                   "' (incremental|refit|auto)");
}

}  // namespace

int run_ingest(const Args& args, std::ostream& out) {
  const std::string scenarios_path = args.require_string("scenarios");
  const std::string batch_path = args.require_string("batch");
  const std::optional<dcsim::FleetConfig> fleet = fleet_from(args);
  const core::RefitPolicy policy =
      refit_policy_by_name(args.get_string("refit-policy", "auto"));
  const std::string metrics_path = args.get_string("metrics", "");
  const bool commit = args.get_flag("commit");
  const bool journaled = args.get_flag("journal");
  const bool resume = args.get_flag("resume");

  core::FlareConfig config;
  config.machine = machine_by_name(args.get_string("machine", "default"));
  config.analyzer = analyzer_config_from(args);
  config.schema = schema_by_name(args.get_string("schema", "standard"));
  config.pca_update = pca_update_by_name(args.get_string("pca-update", "refit"));
  config.drift.pca_drift_limit =
      args.get_double("pca-drift-limit", config.drift.pca_drift_limit);
  config.profiler.samples_per_scenario =
      static_cast<int>(args.get_int("samples", 4));
  config.profiler.noise_stream = static_cast<std::uint64_t>(args.get_int(
      "seed", static_cast<long long>(config.profiler.noise_stream)));
  const double fault_rate = args.get_double("faults", 0.0);
  if (fault_rate > 0.0) {
    config.profiler.faults = dcsim::FaultOptions::uniform(
        fault_rate, static_cast<std::uint64_t>(args.get_int(
                        "fault-seed", static_cast<long long>(
                                          dcsim::FaultOptions{}.seed))));
  }
  config.profiler.sample_quorum =
      static_cast<int>(args.get_int("sample-quorum", 1));
  config.profiler.max_retries = static_cast<int>(args.get_int("max-retries", 2));
  apply_drift_response_args(args, config);
  config.threads = threads_from(args);
  config.profiler.threads = config.threads;
  args.reject_unconsumed();

  if (resume) {
    for (const std::string& path :
         metrics_path.empty() ? std::vector<std::string>{scenarios_path}
                              : std::vector<std::string>{scenarios_path,
                                                         metrics_path}) {
      const trace::JournalRecovery rec = trace::recover_append(path);
      if (rec.recovered) {
        out << "recovered " << path
            << (rec.truncated ? " (torn append truncated to " +
                                    std::to_string(rec.restored_size) + " bytes)"
                              : " (journal cleared, file intact)")
            << "\n";
      }
    }
  }

  if (fleet.has_value()) {
    // Sharded ingest: the batch routes per shape id; only touched shards run
    // their drift gate (drift in one shape never refits another).
    ensure(metrics_path.empty(),
           "ingest --shapes does not support --metrics (per-shape metric "
           "archives are not wired up yet)");
    const dcsim::ScenarioSet base =
        trace::load_scenario_set(scenarios_path, fleet->shape_names());
    const dcsim::ScenarioSet batch =
        trace::load_scenario_set(batch_path, fleet->shape_names());
    core::ShardedConfig sharded;
    sharded.base = config;
    sharded.fleet = *fleet;
    core::ShardedPipeline pipeline(sharded);
    pipeline.fit(base);
    std::size_t fitted_clusters = 0;
    for (std::size_t i = 0; i < pipeline.num_shards(); ++i) {
      fitted_clusters += pipeline.shard(i).analysis().chosen_k;
    }
    out << "fitted " << base.size() << " scenarios into " << fitted_clusters
        << " behaviour groups across " << pipeline.num_shards() << " shards\n";

    const core::FleetIngestReport report = pipeline.ingest(batch, policy);
    for (std::size_t i = 0; i < pipeline.num_shards(); ++i) {
      const std::string& name = fleet->shapes[i].machine.name;
      if (!report.per_shape[i].has_value()) {
        out << "shape " << name << ": untouched (no rows routed)\n";
        continue;
      }
      const core::IngestReport& r = *report.per_shape[i];
      out << "shape " << name << ": +" << r.appended << " rows, verdict "
          << core::to_string(r.drift.verdict) << ", action "
          << core::to_string(r.action) << ", pca drift "
          << util::format_double(r.pca_drift, 6)
          << (r.degraded ? ", degraded" : "") << "\n";
    }
    out << "fleet: " << report.appended << " rows routed to "
        << report.shards_touched() << "/" << pipeline.num_shards()
        << " shards\n";

    if (commit) {
      trace::append_scenario_set(batch, scenarios_path, journaled);
      out << "appended " << batch.size() << " scenarios to " << scenarios_path
          << "\n";
    }
    return 0;
  }

  const dcsim::ScenarioSet base = trace::load_scenario_set(scenarios_path);
  const dcsim::ScenarioSet batch = trace::load_scenario_set(batch_path);

  core::FlarePipeline pipeline(config);
  pipeline.fit(base);
  out << "fitted " << base.size() << " scenarios into "
      << pipeline.analysis().chosen_k << " behaviour groups\n";

  const core::StageCounters before = pipeline.analysis().stage_counters;
  const core::IngestReport report = pipeline.ingest(batch, policy);
  const core::StageCounters after = pipeline.analysis().stage_counters;

  out << "batch:  " << report.appended << " scenarios (rows "
      << report.first_new_row << ".." << report.first_new_row + report.appended - 1
      << ")\n\n";
  out << "distance scale vs fitted:  "
      << util::format_double(report.drift.distance_ratio, 2) << "x\n";
  out << "out-of-coverage mass:      "
      << util::format_double(100.0 * report.drift.out_of_coverage_fraction, 1)
      << "%\n";
  out << "cluster-weight shift (TV): "
      << util::format_double(100.0 * report.drift.weight_shift, 1) << "%\n\n";
  out << "pca basis drift (sin θ):   "
      << util::format_double(report.pca_drift, 6)
      << (report.pca_drift_escalated ? "  [escalated refit]" : "") << "\n\n";
  out << "verdict: " << core::to_string(report.drift.verdict)
      << "   action: " << core::to_string(report.action);
  if (report.pca_incremental_refit) out << " (incremental pca)";
  out << "\n";
  if (config.drift_response.enabled) {
    out << "response: regime " << core::to_string(report.response.regime)
        << ", statistic " << util::format_double(report.response.statistic, 3)
        << ", ewma " << util::format_double(report.response.ewma, 3)
        << ", cusum " << util::format_double(report.response.cusum, 3)
        << (report.response.refit_suppressed ? "  [refit suppressed]" : "")
        << "\n";
    if (report.response.episode_rows > 0) {
      out << "  episode fenced: " << report.response.episode_rows << " rows ("
          << util::format_double(100.0 * report.response.episode_weight_fraction,
                                 1)
          << "% of batch weight, dispersion ratio "
          << util::format_double(report.response.episode_dispersion_ratio, 3)
          << ")\n";
    }
    if (report.response.staleness_widening_pp > 0.0) {
      out << "  staleness: " << report.response.batches_since_refit
          << " batches since refit, band widened +"
          << util::format_double(report.response.staleness_widening_pp, 2)
          << " pp\n";
    }
  }
  out << "stage re-runs: refine " << after.refine - before.refine
      << ", standardize " << after.standardize - before.standardize << ", pca "
      << after.pca - before.pca << ", whiten " << after.whiten - before.whiten
      << ", cluster " << after.cluster - before.cluster << ", representatives "
      << after.representatives - before.representatives
      << ", pca-incremental " << after.pca_incremental - before.pca_incremental
      << "\n";
  out << "population: " << pipeline.scenario_set().size() << " scenarios, "
      << pipeline.analysis().chosen_k << " behaviour groups\n";

  if (report.degraded) {
    out << "\nbatch health: degraded\n";
    out << "  rows quarantined:   " << report.rows_quarantined << " ("
        << util::format_double(100.0 * report.quarantined_weight_fraction, 1)
        << "% of batch weight)"
        << (report.quarantine_escalated ? "  [escalated refit]" : "") << "\n";
    out << "  cells imputed:      " << report.imputed_cells << "\n";
    out << "  samples retried:    " << report.retried_samples << "\n";
    const core::QuarantineLedger& ledger = pipeline.analysis().quarantine;
    out << "  population ledger:  " << ledger.quarantined_rows.size()
        << " rows, "
        << util::format_double(100.0 * ledger.quarantined_fraction(), 1)
        << "% of weight mass quarantined\n";
  }

  if (commit) {
    trace::append_scenario_set(batch, scenarios_path, journaled);
    out << "appended " << batch.size() << " scenarios to " << scenarios_path
        << "\n";
    if (!metrics_path.empty()) {
      // Archive the freshly profiled rows too: the combined database's tail
      // is exactly the batch, already re-id'd to continue the population.
      metrics::MetricDatabase profiled(pipeline.database().catalog());
      for (std::size_t r = report.first_new_row;
           r < pipeline.database().num_rows(); ++r) {
        profiled.add_row(pipeline.database().row(r));
      }
      trace::append_metric_database(profiled, metrics_path, journaled);
      out << "appended " << profiled.num_rows() << " metric rows to "
          << metrics_path << "\n";
    }
  } else if (!metrics_path.empty()) {
    throw ParseError("--metrics requires --commit");
  }
  return 0;
}

}  // namespace flare::cli
