// Textual feature specifications for the CLI:
//   "feature1" | "feature2" | "feature3" | "baseline"   (Table 4 presets)
// or a comma-separated knob list, e.g. "fmax=2.0,llc=20,smt=off":
//   fmax=<GHz>     cap the max clock
//   fmin=<GHz>     raise the min clock
//   llc=<MB>       set the per-socket LLC capacity
//   smt=on|off     toggle hyperthreading
//   memlat=<ns>    set the unloaded memory latency
#pragma once

#include <string_view>

#include "core/feature.hpp"

namespace flare::cli {

/// Parses a feature specification. Throws flare::ParseError on unknown
/// presets, unknown knobs, or malformed values.
[[nodiscard]] core::Feature parse_feature(std::string_view spec);

}  // namespace flare::cli
