// Feature-spec parsing moved to core/feature_spec.hpp so the serve daemon
// can parse evaluate requests without linking the CLI layer. This header
// keeps the historical flare::cli::parse_feature name as an alias.
#pragma once

#include "core/feature_spec.hpp"

namespace flare::cli {

using core::parse_feature;

}  // namespace flare::cli
