// Shared option parsers for the `flare` commands: the --machine/--schema
// name maps plus the analyzer and --threads knobs that several commands
// accept with identical spellings.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "cli/args.hpp"
#include "core/analyzer.hpp"
#include "core/pipeline.hpp"
#include "dcsim/dynamics.hpp"
#include "dcsim/fleet.hpp"
#include "dcsim/machine_config.hpp"

namespace flare::cli {

[[nodiscard]] core::MetricSchema schema_by_name(const std::string& name);

[[nodiscard]] dcsim::MachineConfig machine_by_name(const std::string& name);

/// Shared --shapes knob: a fleet spec like "default:6,small:2,dense:4"
/// (shape[:count], comma-separated). nullopt when the flag is absent —
/// the command runs its single-shape path, bit-identical to before.
[[nodiscard]] std::optional<dcsim::FleetConfig> fleet_from(const Args& args);

/// Shared --threads knob: 1 = serial (default), 0 = all hardware threads.
[[nodiscard]] std::size_t threads_from(const Args& args);

/// Shared analyzer knobs: --clusters/--auto-k, --quality-curve, --ward,
/// --no-whiten, --no-refine, --kmeans-mode exact|minibatch|auto, --threads.
[[nodiscard]] core::AnalyzerConfig analyzer_config_from(const Args& args);

/// Shared --memory-budget knob (MiB; 0 = unbounded), returned in bytes.
[[nodiscard]] std::size_t memory_budget_from(const Args& args);

/// Shared replay-plane knobs for commands that reach step 4:
/// --replay-faults R (all five testbed fault classes at rate R),
/// --replay-fault-seed S, --replay-retries N, --replay-deadline D (seconds),
/// --replay-ci W (target CI half-width, pp), --max-quarantined-mass M.
/// Fills config.replay / config.replay_faults; with none of the flags given
/// the config keeps its defaults and the clean path stays bit-identical.
void apply_replay_args(const Args& args, core::FlareConfig& config);

/// Shared --dynamics knob: parses the generator spec (dcsim dynamics.hpp)
/// and cross-validates it against the other flags. Rejected with positioned
/// ParseErrors: `--dynamics` without a seed source (an explicit --seed or
/// --dynamics-seed — the episode schedules must be reproducible), a
/// shape-scoped generator without a --shapes fleet, and a scope naming a
/// shape the fleet does not contain. Also consumes --dynamics-seed (schedule
/// RNG; default derives a decorrelated substream from --seed) and
/// --dynamics-start (absolute start hour for streaming batch windows).
/// nullopt when --dynamics is absent — the stationary path, bit-identical.
[[nodiscard]] std::optional<dcsim::WorkloadDynamics> dynamics_from(
    const Args& args, const std::optional<dcsim::FleetConfig>& fleet);

/// Shared --drift-response knob (ingest/serve): "on", "off", or a
/// comma-separated key=value list (implies on) with keys
/// ewma|confirm|cooldown|cusum-ref|cusum|budget|widen|widen-cap|coherence|
/// min-rows mapped onto core::DriftResponseConfig. Malformed entries throw
/// ParseError naming the offending entry. Absent flag leaves the response
/// disabled (the historical ingest path, bit-identical).
void apply_drift_response_args(const Args& args, core::FlareConfig& config);

}  // namespace flare::cli
