// Shared option parsers for the `flare` commands: the --machine/--schema
// name maps plus the analyzer and --threads knobs that several commands
// accept with identical spellings.
#pragma once

#include <cstddef>
#include <string>

#include "cli/args.hpp"
#include "core/analyzer.hpp"
#include "core/pipeline.hpp"
#include "dcsim/machine_config.hpp"

namespace flare::cli {

[[nodiscard]] core::MetricSchema schema_by_name(const std::string& name);

[[nodiscard]] dcsim::MachineConfig machine_by_name(const std::string& name);

/// Shared --threads knob: 1 = serial (default), 0 = all hardware threads.
[[nodiscard]] std::size_t threads_from(const Args& args);

/// Shared analyzer knobs: --clusters/--auto-k, --quality-curve, --ward,
/// --no-whiten, --no-refine, --threads.
[[nodiscard]] core::AnalyzerConfig analyzer_config_from(const Args& args);

}  // namespace flare::cli
