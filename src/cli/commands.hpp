// The `flare` CLI commands. Each takes parsed Args, does its work against
// CSV traces on disk, writes human-readable results to `out`, and returns a
// process exit code.
//
//   flare simulate --out scenarios.csv [--machine default|small]
//                  [--scenarios N] [--seed S] [--machines M]
//   flare profile  --scenarios scenarios.csv --out metrics.csv
//                  [--machine ...] [--samples K] [--seed S]
//   flare analyze  --metrics metrics.csv [--clusters K | --auto-k]
//                  [--quality-curve] [--ward] [--no-whiten] [--no-refine]
//   flare evaluate --scenarios scenarios.csv --feature SPEC
//                  [--machine ...] [--clusters K] [--per-job] [--truth]
//   flare report   --scenarios scenarios.csv --out report.md
//                  [--features "feature1;fmax=2.0,llc=20"] [--truth]
//                  [--campaign-state campaign.csv]
//   flare campaign --scenarios scenarios.csv --feature SPEC
//                  [--testbeds N] [--budget SECONDS] [--target-ci PP]
//                  [--checkpoint-every N] [--prior-band PP] [--no-validation]
//                  [--campaign-state campaign.csv] [--truth] [--shapes SPEC]
//   flare drift    --baseline metrics.csv --fresh new_metrics.csv
//                  [--clusters K] [--refit-ratio R] [--reweight-shift S]
//   flare ingest   --scenarios scenarios.csv --batch batch.csv
//                  [--refit-policy auto|never|always] [--commit]
//                  [--pca-update incremental|refit|auto] [--pca-drift-limit D]
//                  [--metrics metrics.csv] [--machine ...] [--clusters K]
//                  [--faults R] [--fault-seed S] [--sample-quorum Q]
//                  [--max-retries N] [--journal] [--resume]
//   flare help
#pragma once

#include <iosfwd>

#include "cli/args.hpp"

namespace flare::cli {

[[nodiscard]] int run_simulate(const Args& args, std::ostream& out);
[[nodiscard]] int run_profile(const Args& args, std::ostream& out);
[[nodiscard]] int run_analyze(const Args& args, std::ostream& out);
[[nodiscard]] int run_evaluate(const Args& args, std::ostream& out);
[[nodiscard]] int run_report(const Args& args, std::ostream& out);
[[nodiscard]] int run_campaign(const Args& args, std::ostream& out);
[[nodiscard]] int run_drift(const Args& args, std::ostream& out);
[[nodiscard]] int run_ingest(const Args& args, std::ostream& out);
[[nodiscard]] int run_serve(const Args& args, std::ostream& out);
[[nodiscard]] int run_client(const Args& args, std::ostream& out);
[[nodiscard]] int run_help(std::ostream& out);

/// Dispatches to the command; converts typed flare errors into distinct,
/// documented exit codes with a message on `err`:
///   0 success          5 FaultError
///   1 other exception  6 QuarantineError
///   2 ParseError       7 ReplayError
///   3 NumericalError   8 JournalError
///   4 CapacityError    9 ServeError
/// (2 for ParseError is the historical catch-all, kept so existing callers
/// that only distinguish "usage error" keep working.)
[[nodiscard]] int run_cli(int argc, const char* const* argv, std::ostream& out,
                          std::ostream& err);

}  // namespace flare::cli
