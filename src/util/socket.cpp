#include "util/socket.hpp"

#include <cerrno>
#include <cstring>

#include "util/error.hpp"

#ifdef FLARE_HAVE_UNIX_SOCKETS
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace flare::util {

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    reset();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

int Fd::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void Fd::reset() {
#ifdef FLARE_HAVE_UNIX_SOCKETS
  if (fd_ >= 0) ::close(fd_);
#endif
  fd_ = -1;
}

IoDeadline io_deadline_never() { return IoDeadline::max(); }

IoDeadline io_deadline_in(std::chrono::milliseconds timeout) {
  return std::chrono::steady_clock::now() + timeout;
}

#ifdef FLARE_HAVE_UNIX_SOCKETS

namespace {

/// Remaining poll budget in ms; -1 for a never-deadline, 0 when expired.
int poll_budget_ms(IoDeadline deadline) {
  if (deadline == IoDeadline::max()) return -1;
  const auto now = std::chrono::steady_clock::now();
  if (deadline <= now) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
  // Round up so a sub-millisecond remainder still polls instead of spinning.
  return static_cast<int>(ms.count()) + 1;
}

/// Waits for `events` on fd until the deadline. True = ready.
bool poll_one(int fd, short events, IoDeadline deadline) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  for (;;) {
    const int budget = poll_budget_ms(deadline);
    if (budget == 0) return false;
    const int rc = ::poll(&pfd, 1, budget);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) return false;
  }
}

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    throw ServeError("unix socket path too long (" +
                     std::to_string(path.size()) + " bytes, max " +
                     std::to_string(sizeof(addr.sun_path) - 1) + "): " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw ServeError("cannot set O_NONBLOCK: " +
                     std::string(std::strerror(errno)));
  }
}

Fd listen_unix(const std::string& path, int backlog) {
  const sockaddr_un addr = make_addr(path);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    throw ServeError("socket(AF_UNIX): " + std::string(std::strerror(errno)));
  }
  ::unlink(path.c_str());  // a stale socket file from a crashed daemon
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    throw ServeError("bind(" + path + "): " +
                     std::string(std::strerror(errno)));
  }
  if (::listen(fd.get(), backlog) < 0) {
    throw ServeError("listen(" + path + "): " +
                     std::string(std::strerror(errno)));
  }
  set_nonblocking(fd.get());
  return fd;
}

Fd accept_unix(int listener_fd) {
  for (;;) {
    const int fd = ::accept(listener_fd, nullptr, nullptr);
    if (fd >= 0) {
      Fd conn(fd);
      set_nonblocking(conn.get());
      return conn;
    }
    if (errno == EINTR || errno == ECONNABORTED) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Fd();
    if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
        errno == ENOMEM) {
      // Resource exhaustion is a load condition, not a daemon bug: report
      // "nothing accepted" so the caller's loop survives and retries. The
      // brief sleep keeps a still-readable listener from turning the
      // caller's poll loop into a busy spin while the limit persists.
      (void)::poll(nullptr, 0, 10);
      return Fd();
    }
    throw ServeError("accept: " + std::string(std::strerror(errno)));
  }
}

Fd connect_unix(const std::string& path, IoDeadline deadline) {
  const sockaddr_un addr = make_addr(path);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    throw ServeError("socket(AF_UNIX): " + std::string(std::strerror(errno)));
  }
  set_nonblocking(fd.get());
  for (;;) {
    if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    if (errno == EINTR) continue;
    if (errno == EINPROGRESS || errno == EAGAIN) {
      if (!poll_one(fd.get(), POLLOUT, deadline)) {
        throw ServeError("connect(" + path + "): timed out");
      }
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) < 0 ||
          err != 0) {
        throw ServeError("connect(" + path +
                         "): " + std::string(std::strerror(err ? err : errno)));
      }
      return fd;
    }
    throw ServeError("connect(" + path +
                     "): " + std::string(std::strerror(errno)) +
                     " (is the daemon running?)");
  }
}

IoStatus send_all(int fd, const void* data, std::size_t len,
                  IoDeadline deadline) {
  const char* p = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < len) {
#ifdef MSG_NOSIGNAL
    const ssize_t n = ::send(fd, p + sent, len - sent, MSG_NOSIGNAL);
#else
    const ssize_t n = ::send(fd, p + sent, len - sent, 0);
#endif
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!poll_one(fd, POLLOUT, deadline)) return IoStatus::kTimeout;
      continue;
    }
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      return IoStatus::kClosed;
    }
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

IoStatus recv_all(int fd, void* data, std::size_t len, IoDeadline deadline) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, p + got, len - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) return IoStatus::kClosed;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!poll_one(fd, POLLIN, deadline)) return IoStatus::kTimeout;
      continue;
    }
    if (errno == ECONNRESET) return IoStatus::kClosed;
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

#else  // !FLARE_HAVE_UNIX_SOCKETS

void set_nonblocking(int) {
  throw ServeError("unix sockets are not available on this platform");
}
Fd listen_unix(const std::string&, int) {
  throw ServeError("unix sockets are not available on this platform");
}
Fd accept_unix(int) {
  throw ServeError("unix sockets are not available on this platform");
}
Fd connect_unix(const std::string&, IoDeadline) {
  throw ServeError("unix sockets are not available on this platform");
}
IoStatus send_all(int, const void*, std::size_t, IoDeadline) {
  return IoStatus::kError;
}
IoStatus recv_all(int, void*, std::size_t, IoDeadline) {
  return IoStatus::kError;
}

#endif  // FLARE_HAVE_UNIX_SOCKETS

}  // namespace flare::util
