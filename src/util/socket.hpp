// Minimal Unix-domain socket helpers for the service plane (DESIGN.md §16).
//
// The daemon and client both speak a small length-prefixed frame protocol
// (serve/protocol.hpp) over SOCK_STREAM Unix sockets. These wrappers keep the
// platform noise (fcntl, poll, EINTR, SIGPIPE) in one place and expose
// deadline-aware whole-buffer send/recv — the primitives the daemon's
// stall watchdog and the client's response timeout are built on. Everything
// is gated on FLARE_HAVE_UNIX_SOCKETS so non-POSIX builds still compile the
// rest of the tree (the serve subsystem refuses to start there).
#pragma once

#if defined(__unix__) || defined(__APPLE__)
#define FLARE_HAVE_UNIX_SOCKETS 1
#endif

#include <chrono>
#include <cstddef>
#include <string>

namespace flare::util {

/// Owning file-descriptor wrapper (move-only; -1 = empty).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  /// Releases ownership without closing.
  [[nodiscard]] int release();
  void reset();

 private:
  int fd_ = -1;
};

/// How a deadline-bounded whole-buffer IO call ended.
enum class IoStatus : unsigned char {
  kOk,       ///< every byte moved
  kTimeout,  ///< the deadline passed with bytes still outstanding
  kClosed,   ///< peer closed (recv) or connection reset (send)
  kError,    ///< unrecoverable socket error
};

using IoDeadline = std::chrono::steady_clock::time_point;

/// A deadline that never fires (for administrative paths like shutdown).
[[nodiscard]] IoDeadline io_deadline_never();
/// `timeout` from now.
[[nodiscard]] IoDeadline io_deadline_in(std::chrono::milliseconds timeout);

/// Marks `fd` non-blocking; throws flare::ServeError on failure.
void set_nonblocking(int fd);

/// Binds and listens on a Unix-domain socket at `path` (unlinking any stale
/// socket file first). Returns the non-blocking listener fd. Throws
/// flare::ServeError on failure (path too long for sockaddr_un, bind/listen
/// errors, or platforms without Unix sockets).
[[nodiscard]] Fd listen_unix(const std::string& path, int backlog = 64);

/// Accepts one pending connection; returns an empty Fd when none is pending.
/// The accepted fd is non-blocking. Throws flare::ServeError on hard errors.
[[nodiscard]] Fd accept_unix(int listener_fd);

/// Connects to the daemon socket at `path`, waiting up to the deadline for
/// the connection to be accepted. Returns a non-blocking connected fd.
/// Throws flare::ServeError on refusal, timeout, or absence of the socket.
[[nodiscard]] Fd connect_unix(const std::string& path, IoDeadline deadline);

/// Sends exactly `len` bytes (SIGPIPE suppressed), polling until `deadline`.
[[nodiscard]] IoStatus send_all(int fd, const void* data, std::size_t len,
                                IoDeadline deadline);

/// Receives exactly `len` bytes, polling until `deadline`. A clean EOF before
/// the first byte — or mid-buffer — reports kClosed.
[[nodiscard]] IoStatus recv_all(int fd, void* data, std::size_t len,
                                IoDeadline deadline);

}  // namespace flare::util
