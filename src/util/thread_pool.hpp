// A minimal fixed-size thread pool.
//
// The FLARE pipeline evaluates hundreds of independent colocation scenarios
// and sweeps dozens of independent cluster counts; `parallel_for` lets the
// Profiler, Analyzer and baselines use every available core while keeping
// results deterministic (work is indexed, not racing).
//
// Threading model (see DESIGN.md "Performance & threading model"):
//  - One pool is created at the top of a computation (FlarePipeline owns one
//    when FlareConfig::threads != 1) and passed down by pointer; callees
//    treat nullptr as "run inline on the calling thread".
//  - Nested data parallelism is forbidden: a task running on a pool worker
//    must not call parallel_for on the same pool (the inner wait_idle would
//    wait for the caller's own task and deadlock). parallel_for and
//    wait_idle `ensure`-reject this instead of hanging.
//  - Every parallel loop in the library writes to disjoint, index-addressed
//    slots; any floating-point reduction is then performed serially in index
//    order, so results are bit-identical for every thread count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace flare::util {

class ThreadPool {
 public:
  /// Creates `thread_count` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t thread_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; it may run on any worker.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. Must not be called from
  /// one of this pool's own workers (the caller's task would count itself as
  /// in flight forever) — such calls throw instead of deadlocking.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// True when the calling thread is one of this pool's workers. Used to
  /// reject nested parallel_for, which would deadlock in wait_idle.
  [[nodiscard]] bool on_worker_thread() const;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Runs `body(i)` for every i in [0, count) across the pool and waits.
/// `body` must be safe to call concurrently for distinct indices. Work is
/// submitted as ~4×thread_count contiguous chunks (not one task per index),
/// so per-task queue/allocation overhead is amortised over the chunk.
/// Throws when called from a worker of `pool` (nested use deadlocks).
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body);

/// Like parallel_for, but runs inline on the calling thread when `pool` is
/// nullptr or single-threaded — the "optional shared pool" convention used
/// across the library. A template so the serial path inlines `body` into the
/// loop (the hot kernels live in these lambdas) instead of paying a
/// std::function indirection per index.
template <typename Body>
void maybe_parallel_for(ThreadPool* pool, std::size_t count, const Body& body) {
  if (pool == nullptr || pool->thread_count() == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  parallel_for(*pool, count, body);
}

}  // namespace flare::util
