// A minimal fixed-size thread pool.
//
// The FLARE pipeline evaluates hundreds of independent colocation scenarios;
// `parallel_for` lets the Profiler and baselines use every available core
// while keeping results deterministic (work is indexed, not racing).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace flare::util {

class ThreadPool {
 public:
  /// Creates `thread_count` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t thread_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; it may run on any worker.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Runs `body(i)` for every i in [0, count) across the pool and waits.
/// `body` must be safe to call concurrently for distinct indices.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body);

}  // namespace flare::util
