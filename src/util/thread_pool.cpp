#include "util/thread_pool.hpp"

#include <utility>

namespace flare::util {

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0) {
    thread_count = std::thread::hardware_concurrency();
    if (thread_count == 0) thread_count = 1;
  }
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ with drained queue
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&body, i] { body(i); });
  }
  pool.wait_idle();
}

}  // namespace flare::util
