#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace flare::util {
namespace {

/// The pool whose worker_loop is running on this thread, if any.
thread_local const ThreadPool* t_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0) {
    thread_count = std::thread::hardware_concurrency();
    if (thread_count == 0) thread_count = 1;
  }
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::on_worker_thread() const { return t_worker_pool == this; }

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  ensure(!on_worker_thread(),
         "ThreadPool::wait_idle: called from a worker of this pool (nested "
         "parallel_for?) — the caller's own task would never drain");
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  t_worker_pool = this;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) break;  // stopping_ with drained queue
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
  t_worker_pool = nullptr;
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  ensure(!pool.on_worker_thread(),
         "parallel_for: nested call from a worker of the same pool would "
         "deadlock; run the inner loop inline (pass pool = nullptr)");
  // ~4 chunks per worker balances load (tail chunks fill idle workers)
  // against per-task overhead (each submit is one lock + one allocation).
  const std::size_t chunks = std::min(count, pool.thread_count() * 4);
  const std::size_t grain = (count + chunks - 1) / chunks;
  for (std::size_t begin = 0; begin < count; begin += grain) {
    const std::size_t end = std::min(begin + grain, count);
    pool.submit([&body, begin, end] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    });
  }
  pool.wait_idle();
}

}  // namespace flare::util
