// Stable (cross-run, cross-platform) hashing used to derive deterministic
// per-scenario noise seeds. std::hash is not guaranteed stable, so we keep a
// small FNV-1a implementation of our own.
#pragma once

#include <cstdint>
#include <string_view>

namespace flare::util {

inline constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// 64-bit FNV-1a over a byte string.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view bytes,
                                            std::uint64_t seed = kFnvOffsetBasis) {
  std::uint64_t hash = seed;
  for (const char c : bytes) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

/// Mixes an integer into an existing hash (splitmix64 finalizer).
[[nodiscard]] constexpr std::uint64_t hash_mix(std::uint64_t hash, std::uint64_t value) {
  std::uint64_t z = hash + 0x9e3779b97f4a7c15ull + value;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace flare::util
