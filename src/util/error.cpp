#include "util/error.hpp"

namespace flare {

void ensure(bool condition, std::string_view message) {
  if (!condition) {
    throw std::invalid_argument(std::string(message));
  }
}

void ensure_numeric(bool condition, std::string_view message) {
  if (!condition) {
    throw NumericalError(std::string(message));
  }
}

}  // namespace flare
