// Small string helpers used by trace parsing and report rendering.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace flare::util {

/// Splits `text` on `delimiter`, keeping empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char delimiter);

/// Joins `parts` with `separator`.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view separator);

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text);

/// Formats `value` with `decimals` digits after the point (locale-independent).
[[nodiscard]] std::string format_double(double value, int decimals);

/// Shortest representation that parses back to the identical double —
/// used by trace persistence so archives round-trip bit-exactly.
[[nodiscard]] std::string format_double_exact(double value);

/// True when `text` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

/// Lower-cases ASCII characters.
[[nodiscard]] std::string to_lower(std::string_view text);

/// Parses a double, throwing flare::ParseError on malformed input.
[[nodiscard]] double parse_double(std::string_view text);

/// Parses a non-negative integer, throwing flare::ParseError on malformed input.
[[nodiscard]] long long parse_int(std::string_view text);

}  // namespace flare::util
