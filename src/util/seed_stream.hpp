// Seeded substream derivation shared by every fault/noise model that needs
// "one independent RNG stream per (keyed entity, salt)" semantics. The three
// historical copies (dcsim CounterFaultModel, dcsim ReplayFaultModel, serve
// ServiceFaultModel) all hashed a string key with FNV-1a under a model seed
// and then splitmix-finalised a salt on top; they now share this header so
// the formula can never drift between subsystems. The regression test in
// tests/util/seed_stream_test.cpp pins the outputs bit-for-bit to the
// original inlined expressions.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/hash.hpp"

namespace flare::util {

/// Derives a decorrelated 64-bit stream id for (key, seed, salt): FNV-1a of
/// the key under `seed`, then one splitmix64 finalisation of `salt`. Streams
/// with distinct salts are independent even for identical keys.
[[nodiscard]] constexpr std::uint64_t derive_stream(std::string_view key,
                                                    std::uint64_t seed,
                                                    std::uint64_t salt) {
  return hash_mix(fnv1a(key, seed), salt);
}

/// Maps a derived stream id to a uniform double in [0, 1) using the top 53
/// bits — the exact conversion the serve fault model has always used.
[[nodiscard]] constexpr double uniform_from_stream(std::uint64_t stream) {
  return static_cast<double>(stream >> 11) * 0x1.0p-53;
}

}  // namespace flare::util
