// Wall-clock timing helpers used by the cost-accounting benches.
#pragma once

#include <chrono>

namespace flare::util {

/// Monotonic stopwatch. Started on construction; `elapsed_seconds()` reads it.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace flare::util
