// Error-handling primitives shared across all FLARE modules.
//
// We follow the C++ Core Guidelines (E.2/E.3): errors that a caller could not
// have prevented are reported via exceptions; precondition violations inside
// the library throw `std::invalid_argument` through `ensure()` so that callers
// get an actionable message instead of UB.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace flare {

/// Base class for all errors raised by the FLARE library.
class FlareError : public std::runtime_error {
 public:
  explicit FlareError(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when an input file / trace cannot be parsed.
class ParseError : public FlareError {
 public:
  explicit ParseError(const std::string& what) : FlareError(what) {}
};

/// Raised when a numerical routine fails to converge or is ill-conditioned.
class NumericalError : public FlareError {
 public:
  explicit NumericalError(const std::string& what) : FlareError(what) {}
};

/// Raised when the datacenter simulator is asked to do something impossible
/// (e.g. schedule onto a saturated machine with overcommit disabled).
class CapacityError : public FlareError {
 public:
  explicit CapacityError(const std::string& what) : FlareError(what) {}
};

/// Raised when measured data is unusable — non-finite or out-of-range counter
/// readings reaching a stage that requires clean input (the fault-tolerant
/// profiling path validates and imputes before any such stage; seeing this
/// error means a producer bypassed it).
class FaultError : public FlareError {
 public:
  explicit FaultError(const std::string& what) : FlareError(what) {}
};

/// Raised when quarantine leaves too little healthy data to work with (e.g.
/// every profiled row fell below the sample quorum).
class QuarantineError : public FlareError {
 public:
  explicit QuarantineError(const std::string& what) : FlareError(what) {}
};

/// Raised when the replay plane cannot produce a trustworthy estimate — a
/// representative (or a whole cluster) stays unreplayable after retries and
/// fallbacks, or the quarantined observation-weight mass crosses the
/// configured escalation threshold. Failing loudly beats returning a hollow
/// datacenter-wide number.
class ReplayError : public FlareError {
 public:
  explicit ReplayError(const std::string& what) : FlareError(what) {}
};

/// Raised when a write-ahead append journal cannot be written durably, is
/// already pending on a target, or recovery cannot roll a torn append back.
class JournalError : public FlareError {
 public:
  explicit JournalError(const std::string& what) : FlareError(what) {}
};

/// Raised by the service plane (`flare serve` / `flare client`): socket
/// setup or framing failures, malformed protocol frames, a peer that
/// answered with a terminal non-ok outcome, or daemon state that cannot be
/// recovered.
class ServeError : public FlareError {
 public:
  explicit ServeError(const std::string& what) : FlareError(what) {}
};

/// Throws `std::invalid_argument` with `message` when `condition` is false.
/// Used to validate preconditions at public API boundaries.
void ensure(bool condition, std::string_view message);

/// Throws `NumericalError` with `message` when `condition` is false.
void ensure_numeric(bool condition, std::string_view message);

}  // namespace flare
