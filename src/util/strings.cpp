#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "util/error.hpp"

namespace flare::util {

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(separator);
    out.append(parts[i]);
  }
  return out;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::string format_double(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string format_double_exact(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

double parse_double(std::string_view text) {
  const std::string_view trimmed = trim(text);
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(trimmed.data(), trimmed.data() + trimmed.size(), value);
  if (ec != std::errc() || ptr != trimmed.data() + trimmed.size()) {
    throw ParseError("malformed floating-point value: '" + std::string(text) + "'");
  }
  return value;
}

long long parse_int(std::string_view text) {
  const std::string_view trimmed = trim(text);
  long long value = 0;
  const auto [ptr, ec] =
      std::from_chars(trimmed.data(), trimmed.data() + trimmed.size(), value);
  if (ec != std::errc() || ptr != trimmed.data() + trimmed.size()) {
    throw ParseError("malformed integer value: '" + std::string(text) + "'");
  }
  return value;
}

}  // namespace flare::util
