#include "core/profiler.hpp"

#include <cmath>
#include <limits>
#include <memory>

#include "dcsim/dynamics.hpp"
#include "stats/descriptive.hpp"
#include "util/thread_pool.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace flare::core {
namespace {

/// How a (possibly stddev-enriched, §4.1) schema maps onto the base metrics
/// the counter synthesizer produces.
struct SchemaPlan {
  metrics::MetricCatalog base_catalog;      ///< non-derived metrics, dense
  std::vector<std::size_t> base_to_schema;  ///< base column -> schema column
  /// (schema column of the _Std metric, base column it derives from)
  std::vector<std::pair<std::size_t, std::size_t>> stddev_columns;
};

SchemaPlan plan_for(const metrics::MetricCatalog& schema) {
  std::vector<metrics::MetricInfo> base_metrics;
  std::vector<std::size_t> base_to_schema;
  for (const metrics::MetricInfo& m : schema.metrics()) {
    if (metrics::MetricCatalog::is_stddev_column(m)) continue;
    metrics::MetricInfo copy = m;
    copy.index = base_metrics.size();
    base_to_schema.push_back(m.index);
    base_metrics.push_back(std::move(copy));
  }
  SchemaPlan plan{metrics::MetricCatalog(std::move(base_metrics)),
                  std::move(base_to_schema),
                  {}};
  for (const metrics::MetricInfo& m : schema.metrics()) {
    if (!metrics::MetricCatalog::is_stddev_column(m)) continue;
    const std::string source = m.name.substr(0, m.name.size() - 4);  // strip _Std
    const auto base_index = plan.base_catalog.index_of(source);
    ensure(base_index.has_value(),
           "Profiler: stddev column '" + m.name + "' has no source metric");
    plan.stddev_columns.emplace_back(m.index, *base_index);
  }
  return plan;
}

bool valid_reading(double v, double max_abs) {
  return std::isfinite(v) && std::abs(v) <= max_abs;
}

/// One periodic read: evaluate the model and synthesize counters on the
/// attempt's noise stream, then overlay injected faults.
std::vector<double> read_sample(const dcsim::InterferenceModel& model,
                                const ProfilerConfig& config,
                                const dcsim::CounterFaultModel& faults,
                                const dcsim::ColocationScenario& scenario,
                                const dcsim::MachineConfig& machine,
                                const SchemaPlan& plan,
                                const std::vector<double>& last_observed,
                                int sample_index, int attempt) {
  // Attempt 0 reuses the clean profiler's stream so faults-off stays
  // bit-identical; retries fork a fresh substream off the same base.
  const std::uint64_t base = util::hash_mix(
      config.noise_stream,
      scenario.id * 1000 + static_cast<std::uint64_t>(sample_index));
  const std::uint64_t stream =
      attempt == 0
          ? base
          : util::hash_mix(base,
                           0xFA17A000ull + static_cast<std::uint64_t>(attempt));
  const dcsim::ScenarioPerformance perf =
      model.evaluate(machine, scenario.mix, stream);
  std::vector<double> sample = dcsim::synthesize_counters(
      perf, model.catalog(), plan.base_catalog, config.counters, stream);
  // Dynamics tags (rolling-upgrade version shift, anomaly-episode
  // corruption) distort the synthesized counters deterministically; untagged
  // rows skip the overlay entirely and stay bit-identical.
  if (scenario.dynamic_tagged()) {
    dcsim::apply_dynamics_overlay(sample, plan.base_catalog, scenario);
  }
  if (faults.active()) {
    faults.corrupt(sample, last_observed, scenario.mix.key(), sample_index,
                   attempt);
  }
  return sample;
}

metrics::MetricRow profile_one(const dcsim::InterferenceModel& model,
                               const ProfilerConfig& config,
                               const dcsim::CounterFaultModel& faults,
                               const dcsim::ColocationScenario& scenario,
                               const dcsim::MachineConfig& machine,
                               const metrics::MetricCatalog& schema,
                               const SchemaPlan& plan, RowHealth& health) {
  metrics::MetricRow row;
  row.scenario_id = scenario.id;
  row.scenario_key = scenario.mix.key();
  row.observation_weight = scenario.observation_weight;
  row.values.assign(schema.size(), 0.0);
  health = RowHealth{};
  health.imputed_metrics.assign(schema.size(), false);

  if (!faults.active()) {
    // Clean fast path — byte-for-byte the original profiler loop: per-metric
    // running means for the base columns, stddevs for the §4.1
    // temporal-enrichment columns.
    std::vector<stats::RunningStats> per_metric(plan.base_catalog.size());
    for (int s = 0; s < config.samples_per_scenario; ++s) {
      const std::uint64_t stream = util::hash_mix(
          config.noise_stream, scenario.id * 1000 + static_cast<std::uint64_t>(s));
      const dcsim::ScenarioPerformance perf =
          model.evaluate(machine, scenario.mix, stream);
      std::vector<double> sample = dcsim::synthesize_counters(
          perf, model.catalog(), plan.base_catalog, config.counters, stream);
      if (scenario.dynamic_tagged()) {
        dcsim::apply_dynamics_overlay(sample, plan.base_catalog, scenario);
      }
      for (std::size_t i = 0; i < sample.size(); ++i) per_metric[i].add(sample[i]);
    }
    health.valid_samples = config.samples_per_scenario;
    for (std::size_t i = 0; i < per_metric.size(); ++i) {
      row.values[plan.base_to_schema[i]] = per_metric[i].mean();
    }
    for (const auto& [schema_col, base_col] : plan.stddev_columns) {
      row.values[schema_col] = per_metric[base_col].stddev();
    }
    return row;
  }

  const std::string key = scenario.mix.key();
  if (faults.lose_row(key)) {
    // The machine never reported: no sample, no retry, every cell imputed.
    health.row_lost = true;
    health.dropped_samples = config.samples_per_scenario;
    health.imputed_metrics.assign(schema.size(), true);
    row.values.assign(schema.size(), std::numeric_limits<double>::quiet_NaN());
    return row;
  }

  // Fault streams reference "the previous reading" for stuck-at injection;
  // track the last finite observation per base metric across samples.
  std::vector<double> last_observed;
  // The faulty path collects every accepted reading per metric and aggregates
  // through a Hampel gate below: silent fault classes (stuck-at, multiplexing
  // scale error) pass the finiteness check and would drag a mean arbitrarily
  // far, so readings more than 5 robust sigmas (1.4826·MAD) from the median
  // are rejected before the classical mean/stddev. Multiplex glitches sit
  // tens of measurement-noise sigmas out, so the gate removes them while an
  // untouched metric keeps every reading — and then the aggregate matches the
  // clean profiler bit for bit, keeping degraded rows at their clean
  // positions so refinement and clustering stay stable.
  std::vector<std::vector<double>> readings(plan.base_catalog.size());
  for (int s = 0; s < config.samples_per_scenario; ++s) {
    // Per-metric retry merge: attempt 0 shares the clean profiler's noise
    // stream, and a retry only fills in metrics whose readings came back
    // invalid — every counter untouched by faults keeps its clean-path bits.
    // Re-reading the whole period because one counter glitched would replace
    // all 100+ readings with a fresh noise draw, decorrelating duplicate
    // metric columns and destabilising refinement downstream.
    std::vector<double> merged(plan.base_catalog.size(),
                               std::numeric_limits<double>::quiet_NaN());
    std::vector<char> have(plan.base_catalog.size(), 0);
    std::size_t have_count = 0;
    bool observed = false;
    bool retried = false;
    for (int attempt = 0; attempt <= config.max_retries; ++attempt) {
      if (attempt > 0) retried = true;
      if (faults.drop_sample(key, s, attempt)) continue;
      const std::vector<double> sample =
          read_sample(model, config, faults, scenario, machine, plan,
                      last_observed, s, attempt);
      observed = true;
      for (std::size_t i = 0; i < sample.size(); ++i) {
        if (have[i] || !valid_reading(sample[i], config.max_abs_reading)) {
          continue;
        }
        merged[i] = sample[i];
        have[i] = 1;
        ++have_count;
      }
      if (have_count == merged.size()) break;
    }

    if (!observed || have_count == 0) {
      ++health.dropped_samples;
      continue;
    }
    if (retried) ++health.retried_samples;
    if (have_count == merged.size()) {
      ++health.valid_samples;
    } else {
      ++health.partial_samples;
    }
    if (last_observed.empty()) {
      last_observed.assign(merged.size(),
                           std::numeric_limits<double>::quiet_NaN());
    }
    for (std::size_t i = 0; i < merged.size(); ++i) {
      if (!have[i]) continue;
      readings[i].push_back(merged[i]);
      last_observed[i] = merged[i];
    }
  }

  // Hampel gate per metric, then classical moments over the survivors. If
  // MAD is zero, at least half the readings equal the median exactly, so the
  // zero-width gate still keeps those and the aggregate stays well-defined.
  std::vector<stats::RunningStats> per_metric(plan.base_catalog.size());
  std::vector<double> deviations;
  for (std::size_t i = 0; i < readings.size(); ++i) {
    const std::size_t schema_col = plan.base_to_schema[i];
    if (readings[i].empty()) {
      row.values[schema_col] = std::numeric_limits<double>::quiet_NaN();
      health.imputed_metrics[schema_col] = true;
      continue;
    }
    const double center = stats::median(readings[i]);
    deviations.clear();
    deviations.reserve(readings[i].size());
    for (const double v : readings[i]) deviations.push_back(std::abs(v - center));
    const double gate = 5.0 * 1.4826 * stats::median(deviations);
    for (const double v : readings[i]) {
      if (std::abs(v - center) <= gate) per_metric[i].add(v);
    }
    row.values[schema_col] = per_metric[i].mean();
  }
  for (const auto& [schema_col, base_col] : plan.stddev_columns) {
    if (readings[base_col].empty()) {
      row.values[schema_col] = std::numeric_limits<double>::quiet_NaN();
      health.imputed_metrics[schema_col] = true;
    } else {
      row.values[schema_col] = per_metric[base_col].stddev();
    }
  }
  return row;
}

}  // namespace

Profiler::Profiler(const dcsim::InterferenceModel& model, ProfilerConfig config)
    : model_(&model), config_(config), fault_model_(config.faults) {
  ensure(config_.samples_per_scenario >= 1,
         "Profiler: samples_per_scenario must be >= 1");
  ensure(config_.max_retries >= 0, "Profiler: max_retries must be >= 0");
  ensure(config_.sample_quorum >= 1 &&
             config_.sample_quorum <= config_.samples_per_scenario,
         "Profiler: sample_quorum must be in [1, samples_per_scenario]");
  ensure(config_.max_abs_reading > 0.0,
         "Profiler: max_abs_reading must be positive");
}

metrics::MetricRow Profiler::profile_scenario(
    const dcsim::ColocationScenario& scenario, const dcsim::MachineConfig& machine,
    const metrics::MetricCatalog& schema) const {
  RowHealth health;
  return profile_one(*model_, config_, fault_model_, scenario, machine, schema,
                     plan_for(schema), health);
}

metrics::MetricDatabase Profiler::profile(const dcsim::ScenarioSet& set,
                                          const dcsim::MachineConfig& machine,
                                          const metrics::MetricCatalog& schema,
                                          util::ThreadPool* shared_pool) const {
  return profile_with_health(set, machine, schema, shared_pool).database;
}

ProfileReport Profiler::profile_with_health(const dcsim::ScenarioSet& set,
                                            const dcsim::MachineConfig& machine,
                                            const metrics::MetricCatalog& schema,
                                            util::ThreadPool* shared_pool) const {
  ensure(!set.scenarios.empty(), "Profiler::profile: empty scenario set");
  const SchemaPlan plan = plan_for(schema);
  ProfileReport report{metrics::MetricDatabase(schema), {}};
  std::unique_ptr<util::ThreadPool> owned;
  if (shared_pool == nullptr && config_.threads != 1) {
    owned = std::make_unique<util::ThreadPool>(config_.threads);
    shared_pool = owned.get();
  }
  // Rows are computed into fixed slots (pure functions of the scenario), then
  // appended in order — bit-identical to the sequential path.
  std::vector<metrics::MetricRow> rows(set.scenarios.size());
  report.health.resize(set.scenarios.size());
  util::maybe_parallel_for(shared_pool, set.scenarios.size(), [&](std::size_t i) {
    rows[i] = profile_one(*model_, config_, fault_model_, set.scenarios[i],
                          machine, schema, plan, report.health[i]);
  });
  report.database.reserve(rows.size());
  for (metrics::MetricRow& row : rows) report.database.add_row(std::move(row));
  return report;
}

}  // namespace flare::core
