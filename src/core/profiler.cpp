#include "core/profiler.hpp"

#include <memory>

#include "stats/descriptive.hpp"
#include "util/thread_pool.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace flare::core {
namespace {

/// How a (possibly stddev-enriched, §4.1) schema maps onto the base metrics
/// the counter synthesizer produces.
struct SchemaPlan {
  metrics::MetricCatalog base_catalog;      ///< non-derived metrics, dense
  std::vector<std::size_t> base_to_schema;  ///< base column -> schema column
  /// (schema column of the _Std metric, base column it derives from)
  std::vector<std::pair<std::size_t, std::size_t>> stddev_columns;
};

SchemaPlan plan_for(const metrics::MetricCatalog& schema) {
  std::vector<metrics::MetricInfo> base_metrics;
  std::vector<std::size_t> base_to_schema;
  for (const metrics::MetricInfo& m : schema.metrics()) {
    if (metrics::MetricCatalog::is_stddev_column(m)) continue;
    metrics::MetricInfo copy = m;
    copy.index = base_metrics.size();
    base_to_schema.push_back(m.index);
    base_metrics.push_back(std::move(copy));
  }
  SchemaPlan plan{metrics::MetricCatalog(std::move(base_metrics)),
                  std::move(base_to_schema),
                  {}};
  for (const metrics::MetricInfo& m : schema.metrics()) {
    if (!metrics::MetricCatalog::is_stddev_column(m)) continue;
    const std::string source = m.name.substr(0, m.name.size() - 4);  // strip _Std
    const auto base_index = plan.base_catalog.index_of(source);
    ensure(base_index.has_value(),
           "Profiler: stddev column '" + m.name + "' has no source metric");
    plan.stddev_columns.emplace_back(m.index, *base_index);
  }
  return plan;
}

metrics::MetricRow profile_one(const dcsim::InterferenceModel& model,
                               const ProfilerConfig& config,
                               const dcsim::ColocationScenario& scenario,
                               const dcsim::MachineConfig& machine,
                               const metrics::MetricCatalog& schema,
                               const SchemaPlan& plan) {
  metrics::MetricRow row;
  row.scenario_id = scenario.id;
  row.scenario_key = scenario.mix.key();
  row.observation_weight = scenario.observation_weight;
  row.values.assign(schema.size(), 0.0);

  // Stream the periodic samples through per-metric accumulators: means for
  // the base columns, stddevs for the §4.1 temporal-enrichment columns.
  std::vector<stats::RunningStats> per_metric(plan.base_catalog.size());
  for (int s = 0; s < config.samples_per_scenario; ++s) {
    const std::uint64_t stream = util::hash_mix(
        config.noise_stream, scenario.id * 1000 + static_cast<std::uint64_t>(s));
    const dcsim::ScenarioPerformance perf =
        model.evaluate(machine, scenario.mix, stream);
    const std::vector<double> sample = dcsim::synthesize_counters(
        perf, model.catalog(), plan.base_catalog, config.counters, stream);
    for (std::size_t i = 0; i < sample.size(); ++i) per_metric[i].add(sample[i]);
  }
  for (std::size_t i = 0; i < per_metric.size(); ++i) {
    row.values[plan.base_to_schema[i]] = per_metric[i].mean();
  }
  for (const auto& [schema_col, base_col] : plan.stddev_columns) {
    row.values[schema_col] = per_metric[base_col].stddev();
  }
  return row;
}

}  // namespace

Profiler::Profiler(const dcsim::InterferenceModel& model, ProfilerConfig config)
    : model_(&model), config_(config) {
  ensure(config_.samples_per_scenario >= 1,
         "Profiler: samples_per_scenario must be >= 1");
}

metrics::MetricRow Profiler::profile_scenario(
    const dcsim::ColocationScenario& scenario, const dcsim::MachineConfig& machine,
    const metrics::MetricCatalog& schema) const {
  return profile_one(*model_, config_, scenario, machine, schema, plan_for(schema));
}

metrics::MetricDatabase Profiler::profile(const dcsim::ScenarioSet& set,
                                          const dcsim::MachineConfig& machine,
                                          const metrics::MetricCatalog& schema,
                                          util::ThreadPool* shared_pool) const {
  ensure(!set.scenarios.empty(), "Profiler::profile: empty scenario set");
  const SchemaPlan plan = plan_for(schema);
  metrics::MetricDatabase db(schema);
  std::unique_ptr<util::ThreadPool> owned;
  if (shared_pool == nullptr && config_.threads != 1) {
    owned = std::make_unique<util::ThreadPool>(config_.threads);
    shared_pool = owned.get();
  }
  // Rows are computed into fixed slots (pure functions of the scenario), then
  // appended in order — bit-identical to the sequential path.
  std::vector<metrics::MetricRow> rows(set.scenarios.size());
  util::maybe_parallel_for(shared_pool, set.scenarios.size(), [&](std::size_t i) {
    rows[i] =
        profile_one(*model_, config_, set.scenarios[i], machine, schema, plan);
  });
  for (metrics::MetricRow& row : rows) db.add_row(std::move(row));
  return db;
}

}  // namespace flare::core
