#include "core/analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "ml/cluster_quality.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace flare::core {
namespace {

/// Columns whose variance is numerically zero carry no information and would
/// only add dead dimensions; real deployments always have a few (e.g. the
/// nominal frequency on a homogeneous fleet).
std::vector<std::size_t> non_constant_columns(const linalg::Matrix& data,
                                              std::vector<std::size_t>* constants) {
  std::vector<std::size_t> kept;
  for (std::size_t c = 0; c < data.cols(); ++c) {
    double lo = data(0, c), hi = data(0, c);
    for (std::size_t r = 1; r < data.rows(); ++r) {
      lo = std::min(lo, data(r, c));
      hi = std::max(hi, data(r, c));
    }
    const double scale = std::max({std::abs(lo), std::abs(hi), 1.0});
    if (hi - lo <= 1e-12 * scale) {
      if (constants != nullptr) constants->push_back(c);
    } else {
      kept.push_back(c);
    }
  }
  return kept;
}

/// Adapts a Ward clustering into the KMeansResult shape so downstream code
/// (representative selection, weights) is algorithm-agnostic. Fills
/// point_distances so nearest_member/members_by_distance skip the rescan,
/// exactly as the K-means path does.
ml::KMeansResult adapt_ward(const linalg::Matrix& space, std::size_t k) {
  const ml::AgglomerativeResult ward =
      ml::agglomerative_cluster(space, k, ml::Linkage::kWard);
  ml::KMeansResult result;
  result.centroids = ward.centroids;
  result.assignment = ward.assignment;
  result.cluster_sizes = ward.cluster_sizes;
  result.point_distances.resize(space.rows());
  result.sse = 0.0;
  for (std::size_t i = 0; i < space.rows(); ++i) {
    const double d = linalg::squared_distance(
        space.row(i), result.centroids.row(result.assignment[i]));
    result.point_distances[i] = d;
    result.sse += d;
  }
  result.iterations = 0;
  result.converged = true;
  return result;
}

/// nullptr = run inline; otherwise an owned pool sized by the `threads` knob
/// (0 = one worker per hardware thread).
std::unique_ptr<util::ThreadPool> make_pool(std::size_t threads) {
  if (threads == 1) return nullptr;
  return std::make_unique<util::ThreadPool>(threads);
}

}  // namespace

std::vector<std::size_t> AnalysisResult::members_by_distance(
    std::size_t cluster) const {
  return clustering.members_by_distance(cluster_space, cluster);
}

Analyzer::Analyzer(AnalyzerConfig config) : config_(std::move(config)) {
  ensure(config_.variance_target > 0.0 && config_.variance_target <= 1.0,
         "Analyzer: variance_target must be in (0, 1]");
  ensure(config_.min_clusters >= 2, "Analyzer: min_clusters must be >= 2");
  ensure(config_.max_clusters >= config_.min_clusters,
         "Analyzer: max_clusters must be >= min_clusters");
}

AnalysisResult Analyzer::analyze(const metrics::MetricDatabase& db) const {
  const std::unique_ptr<util::ThreadPool> pool = make_pool(config_.threads);
  return analyze(db, pool.get());
}

AnalysisResult Analyzer::analyze(const metrics::MetricDatabase& db,
                                 util::ThreadPool* pool) const {
  ensure(db.num_rows() >= config_.min_clusters,
         "Analyzer::analyze: fewer scenarios than clusters");
  AnalysisResult result;
  const linalg::Matrix raw = db.to_matrix();

  // --- Refinement (§4.2): constants, then correlation duplicates ---
  std::vector<std::size_t> informative =
      non_constant_columns(raw, &result.constant_columns);
  ensure(!informative.empty(), "Analyzer::analyze: all metrics are constant");
  linalg::Matrix refined = raw.select_columns(informative);
  if (config_.use_correlation_filter) {
    const ml::CorrelationFilter filter(config_.correlation_threshold);
    result.refinement = filter.fit(refined);
    // Map audit-trail and kept indices back to original catalog columns.
    refined = refined.select_columns(result.refinement.kept_columns);
    result.kept_columns.reserve(result.refinement.kept_columns.size());
    for (const std::size_t c : result.refinement.kept_columns) {
      result.kept_columns.push_back(informative[c]);
    }
    for (ml::CorrelationDrop& d : result.refinement.drops) {
      d.dropped_column = informative[d.dropped_column];
      d.kept_column = informative[d.kept_column];
    }
  } else {
    result.kept_columns = informative;
  }

  // --- High-level metric construction (§4.3) ---
  const linalg::Matrix standardized = result.standardizer.fit_transform(refined);
  result.pca.fit(standardized, pool);
  result.num_components = result.pca.num_components_for(config_.variance_target);
  result.interpretations =
      interpret_components(result.pca, result.kept_columns, db.catalog(),
                           result.num_components, config_.labeler);

  // --- Whitened clustering space (§4.4) ---
  const linalg::Matrix scores =
      result.pca.transform(standardized, result.num_components);
  result.whitened = config_.whiten;
  if (config_.whiten) {
    result.cluster_space = result.whitener.fit_transform(scores);
  } else {
    result.whitener.fit(scores);  // fitted for API symmetry, not applied
    result.cluster_space = scores;
  }

  // --- Cluster-count sweep (Fig. 9) ---
  ml::KMeansParams base_params = config_.kmeans;
  if (config_.weight_clustering_by_observation) {
    base_params.weights = db.weights();
  }
  const std::size_t k_lo = config_.min_clusters;
  const std::size_t k_hi =
      std::min(config_.max_clusters, result.cluster_space.rows() - 1);
  const bool sweep = config_.compute_quality_curve || !config_.fixed_clusters;
  if (sweep && k_hi >= k_lo) {
    // Every sweep point scores the SAME fixed point set, so the O(n²·dim)
    // pairwise distances are computed once and shared across all k. Sweep
    // points are independent: each task owns its quality_curve slot, and at
    // most one task (k == fixed_clusters) writes the kept clustering. The
    // per-k kmeans runs inline in its task (nested pool use is forbidden).
    const ml::PairwiseDistances distances =
        ml::pairwise_distances(result.cluster_space, pool);
    result.quality_curve.assign(k_hi - k_lo + 1, ClusterQualityPoint{});
    ml::KMeansResult kept;
    util::maybe_parallel_for(pool, result.quality_curve.size(), [&](std::size_t idx) {
      const std::size_t k = k_lo + idx;
      ml::KMeansResult kr;
      if (config_.algorithm == ClusterAlgorithm::kKMeans) {
        ml::KMeansParams params = base_params;
        params.k = k;
        kr = ml::kmeans(result.cluster_space, params);
      } else {
        kr = adapt_ward(result.cluster_space, k);
      }
      ClusterQualityPoint& point = result.quality_curve[idx];
      point.k = k;
      point.sse = kr.sse;
      point.silhouette = ml::silhouette_score(distances, kr.assignment, k);
      if (config_.fixed_clusters.has_value() && k == *config_.fixed_clusters) {
        kept = std::move(kr);
      }
    });
    result.clustering = std::move(kept);
  }

  result.chosen_k = config_.fixed_clusters.has_value()
                        ? *config_.fixed_clusters
                        : suggest_k(result.quality_curve);
  ensure(result.chosen_k >= config_.min_clusters && result.chosen_k <= k_hi,
         "Analyzer::analyze: chosen cluster count is out of the sweep range");
  if (result.clustering.assignment.empty()) {
    if (config_.algorithm == ClusterAlgorithm::kKMeans) {
      ml::KMeansParams params = base_params;
      params.k = result.chosen_k;
      result.clustering = ml::kmeans(result.cluster_space, params, pool);
    } else {
      result.clustering = adapt_ward(result.cluster_space, result.chosen_k);
    }
  }

  // --- Representatives & weights (§4.4–§4.5) ---
  const std::vector<double> weights = db.weights();
  double total_weight = 0.0;
  for (const double w : weights) total_weight += w;
  ensure(total_weight > 0.0, "Analyzer::analyze: zero total observation weight");

  result.representatives.resize(result.chosen_k);
  result.cluster_weights.assign(result.chosen_k, 0.0);
  for (std::size_t c = 0; c < result.chosen_k; ++c) {
    result.representatives[c] =
        result.clustering.nearest_member(result.cluster_space, c);
  }
  for (std::size_t i = 0; i < weights.size(); ++i) {
    result.cluster_weights[result.clustering.assignment[i]] +=
        weights[i] / total_weight;
  }
  return result;
}

AnalysisResult Analyzer::recluster(const AnalysisResult& base,
                                   const std::vector<double>& new_weights) const {
  const std::unique_ptr<util::ThreadPool> pool = make_pool(config_.threads);
  return recluster(base, new_weights, pool.get());
}

AnalysisResult Analyzer::recluster(const AnalysisResult& base,
                                   const std::vector<double>& new_weights,
                                   util::ThreadPool* pool) const {
  ensure(new_weights.size() == base.cluster_space.rows(),
         "Analyzer::recluster: weight count must match scenario count");
  double total = 0.0;
  for (const double w : new_weights) {
    ensure(w >= 0.0, "Analyzer::recluster: weights must be non-negative");
    total += w;
  }
  ensure(total > 0.0, "Analyzer::recluster: zero total weight");

  AnalysisResult result = base;  // reuse refinement, PCA, whitening, space

  // Re-cluster from Step 3 over the same high-level metric space.
  if (config_.algorithm == ClusterAlgorithm::kKMeans) {
    ml::KMeansParams params = config_.kmeans;
    params.k = base.chosen_k;
    if (config_.weight_clustering_by_observation) params.weights = new_weights;
    result.clustering = ml::kmeans(result.cluster_space, params, pool);
  } else {
    result.clustering = adapt_ward(result.cluster_space, base.chosen_k);
  }

  // Representatives must be scenarios that actually occur under the new
  // scheduler: walk outward from the centroid past zero-weight members.
  result.representatives.assign(result.chosen_k, 0);
  result.cluster_weights.assign(result.chosen_k, 0.0);
  for (std::size_t c = 0; c < result.chosen_k; ++c) {
    const std::vector<std::size_t> ordered = result.members_by_distance(c);
    std::size_t chosen = ordered.front();
    for (const std::size_t member : ordered) {
      if (new_weights[member] > 0.0) {
        chosen = member;
        break;
      }
    }
    result.representatives[c] = chosen;
  }
  for (std::size_t i = 0; i < new_weights.size(); ++i) {
    result.cluster_weights[result.clustering.assignment[i]] += new_weights[i] / total;
  }
  return result;
}

std::size_t Analyzer::suggest_k(const std::vector<ClusterQualityPoint>& curve,
                                double tolerance) {
  ensure(!curve.empty(), "Analyzer::suggest_k: empty quality curve");
  if (curve.size() < 3) return curve.front().k;

  // Fig. 9 guideline: "pick a point where the return starts to diminish".
  // Step 1 — SSE elbow via the max-distance-to-chord (Kneedle-style) rule on
  // the normalised curve.
  const double k_lo = static_cast<double>(curve.front().k);
  const double k_hi = static_cast<double>(curve.back().k);
  const double sse_lo = curve.back().sse;
  const double sse_hi = curve.front().sse;
  ensure(k_hi > k_lo, "Analyzer::suggest_k: curve must span multiple k");
  std::size_t knee_index = 0;
  double best_gap = -1.0;
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const double x = (static_cast<double>(curve[i].k) - k_lo) / (k_hi - k_lo);
    const double y = sse_hi > sse_lo
                         ? (curve[i].sse - sse_lo) / (sse_hi - sse_lo)
                         : 0.0;
    // The chord runs from (0,1) to (1,0); distance below it ∝ 1 - x - y.
    const double gap = 1.0 - x - y;
    if (gap > best_gap) {
      best_gap = gap;
      knee_index = i;
    }
  }

  // Step 2 — within a small window beyond the elbow, take the best
  // silhouette; among near-ties (within `tolerance`) prefer the larger k,
  // since clusters past the elbow are cheap insurance against smearing two
  // behaviours into one group.
  const std::size_t window_end = std::min(knee_index + 6, curve.size() - 1);
  std::size_t chosen = knee_index;
  double best_silhouette = curve[knee_index].silhouette;
  for (std::size_t i = knee_index; i <= window_end; ++i) {
    best_silhouette = std::max(best_silhouette, curve[i].silhouette);
  }
  for (std::size_t i = knee_index; i <= window_end; ++i) {
    if (curve[i].silhouette >= best_silhouette - tolerance) chosen = i;
  }
  return curve[chosen].k;
}

}  // namespace flare::core
