// Stage orchestration for the Analyzer. The stages themselves live in
// core/analysis_stages.cpp; this file decides, per stage, whether the
// previous result's output can be spliced in (input fingerprints equal) or
// the stage must recompute — and keeps the recompute counters honest.
#include "core/analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "linalg/covariance.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace flare::core {
namespace {

/// nullptr = run inline; otherwise an owned pool sized by the `threads` knob
/// (0 = one worker per hardware thread).
std::unique_ptr<util::ThreadPool> make_pool(std::size_t threads) {
  if (threads == 1) return nullptr;
  return std::make_unique<util::ThreadPool>(threads);
}

/// Fingerprints for the upstream stages (raw input through the whitened
/// cluster space). Each stage chains its upstream fingerprint with the bits
/// of exactly the config knobs it reads, so equality across two analyses
/// pins the whole input lineage. The cluster/representative fingerprints
/// need the warm-start centroids and weights and are chained in analyze().
StageFingerprints upstream_fingerprints(const linalg::Matrix& raw,
                                        const metrics::MetricCatalog& catalog,
                                        const AnalyzerConfig& cfg,
                                        std::uint64_t health_salt = 0) {
  StageFingerprints fp;
  std::uint64_t h = fingerprint_matrix(raw);
  for (const metrics::MetricInfo& m : catalog.metrics()) {
    h = util::fnv1a(m.name, h);
  }
  // Degraded fits mix the quarantine mask into the lineage root: a fit that
  // ignored some rows' moments must never splice with a clean fit over the
  // same bytes (health_salt == 0 for clean fits, preserving their hashes).
  if (health_salt != 0) h = util::hash_mix(h, health_salt);
  // Sharded fits mix the shard's lineage tag the same way: two shards fed
  // byte-identical databases must never splice each other's stages
  // (lineage_tag == 0 for unsharded fits, preserving their hashes).
  if (cfg.lineage_tag != 0) h = util::hash_mix(h, cfg.lineage_tag);
  fp.raw = h;
  h = util::hash_mix(fp.raw, cfg.use_correlation_filter ? 1u : 0u);
  fp.refine = hash_mix(h, cfg.correlation_threshold);
  fp.standardize = util::hash_mix(fp.refine, 0x5354Du);  // stage tag, no knobs
  h = hash_mix(fp.standardize, cfg.variance_target);
  h = util::hash_mix(h, cfg.labeler.max_contributors);
  fp.pca = hash_mix(h, cfg.labeler.min_abs_loading);
  fp.whiten = util::hash_mix(fp.pca, cfg.whiten ? 1u : 0u);
  return fp;
}

/// Hash of the quarantine mask (0 when nothing is quarantined): one bit per
/// row, packed, plus the row count.
std::uint64_t health_fingerprint(const AnalysisHealth* health) {
  if (health == nullptr || !health->any_quarantined()) return 0;
  std::uint64_t h = util::hash_mix(0x51A8A17Eull, health->quarantined.size());
  std::uint64_t word = 0;
  std::size_t bits = 0;
  for (const bool q : health->quarantined) {
    word = (word << 1) | (q ? 1u : 0u);
    if (++bits == 64) {
      h = util::hash_mix(h, word);
      word = 0;
      bits = 0;
    }
  }
  if (bits != 0) h = util::hash_mix(h, word);
  return h;
}

/// Chains the clustering-stage fingerprint from the whiten fingerprint, the
/// clustering knobs, the K-means weights (when clustering is weighted) and
/// the warm-start seed (a warm refit may converge differently, so it must
/// not be conflated with a cold fit of the same data).
std::uint64_t cluster_fingerprint(std::uint64_t whiten_fp,
                                  const AnalyzerConfig& cfg,
                                  const std::vector<double>& weights,
                                  const linalg::Matrix& warm_centroids) {
  std::uint64_t h = util::hash_mix(whiten_fp, static_cast<std::uint64_t>(cfg.algorithm));
  h = util::hash_mix(h, cfg.fixed_clusters ? *cfg.fixed_clusters + 1 : 0u);
  h = util::hash_mix(h, cfg.min_clusters);
  h = util::hash_mix(h, cfg.max_clusters);
  h = util::hash_mix(h, cfg.compute_quality_curve ? 1u : 0u);
  h = util::hash_mix(h, static_cast<std::uint64_t>(cfg.kmeans.max_iterations));
  h = util::hash_mix(h, static_cast<std::uint64_t>(cfg.kmeans.restarts));
  h = hash_mix(h, cfg.kmeans.tolerance);
  h = util::hash_mix(h, cfg.kmeans.seed);
  h = util::hash_mix(h, static_cast<std::uint64_t>(cfg.kmeans.init));
  // `prune` is deliberately excluded: pruned and naive assignment are
  // bit-identical, so the flag cannot change the stage output.
  // Scale knobs (DESIGN.md §12): the solver mode, coreset geometry and the
  // silhouette estimator thresholds all change what the stage emits, so they
  // pin the lineage like any other clustering knob.
  h = util::hash_mix(h, static_cast<std::uint64_t>(cfg.kmeans_mode));
  h = util::hash_mix(h, cfg.minibatch_threshold);
  h = util::hash_mix(h, cfg.coreset.size);
  h = util::hash_mix(h, cfg.coreset.seed);
  h = util::hash_mix(h, static_cast<std::uint64_t>(cfg.minibatch_refine_iterations));
  h = util::hash_mix(h, cfg.silhouette_exact_threshold);
  h = util::hash_mix(h, cfg.silhouette_sample);
  h = util::hash_mix(h, cfg.weight_clustering_by_observation ? 1u : 0u);
  if (cfg.weight_clustering_by_observation) h = fingerprint_doubles(weights, h);
  if (!warm_centroids.empty()) h = fingerprint_matrix(warm_centroids, h);
  return h;
}

}  // namespace

std::vector<std::size_t> AnalysisResult::members_by_distance(
    std::size_t cluster) const {
  return clustering.members_by_distance(cluster_space, cluster);
}

Analyzer::Analyzer(AnalyzerConfig config) : config_(std::move(config)) {
  ensure(config_.variance_target > 0.0 && config_.variance_target <= 1.0,
         "Analyzer: variance_target must be in (0, 1]");
  ensure(config_.min_clusters >= 2, "Analyzer: min_clusters must be >= 2");
  ensure(config_.max_clusters >= config_.min_clusters,
         "Analyzer: max_clusters must be >= min_clusters");
}

AnalysisResult Analyzer::analyze(const metrics::MetricDatabase& db) const {
  const std::unique_ptr<util::ThreadPool> pool = make_pool(config_.threads);
  return analyze(db, pool.get());
}

AnalysisResult Analyzer::analyze(const metrics::MetricDatabase& db,
                                 util::ThreadPool* pool) const {
  return analyze(db, pool, nullptr);
}

AnalysisResult Analyzer::analyze(const metrics::MetricDatabase& db,
                                 util::ThreadPool* pool,
                                 const AnalysisResult* previous,
                                 bool warm_start,
                                 const AnalysisHealth* health) const {
  ensure(db.num_rows() >= config_.min_clusters,
         "Analyzer::analyze: fewer scenarios than clusters");
  const linalg::Matrix raw = db.to_matrix();
  const std::vector<double> weights = db.weights();

  // Degraded fit: quarantined rows keep their population slot but are
  // excluded from every fitted moment and carry zero weight mass.
  ensure(health == nullptr || health->quarantined.empty() ||
             health->quarantined.size() == db.num_rows(),
         "Analyzer::analyze: health mask must match the row count");
  const bool degraded = health != nullptr && health->any_quarantined();
  std::vector<std::size_t> healthy_rows;
  std::vector<double> fit_weights = weights;
  if (degraded) {
    healthy_rows.reserve(db.num_rows());
    for (std::size_t i = 0; i < db.num_rows(); ++i) {
      if (health->quarantined[i]) {
        fit_weights[i] = 0.0;
      } else {
        healthy_rows.push_back(i);
      }
    }
    if (healthy_rows.size() < config_.min_clusters) {
      throw QuarantineError(
          "Analyzer::analyze: only " + std::to_string(healthy_rows.size()) +
          " rows survived quarantine but " +
          std::to_string(config_.min_clusters) + " clusters are required");
    }
  }
  const std::vector<std::size_t>* fit_rows = degraded ? &healthy_rows : nullptr;

  AnalysisResult result;
  result.stage_counters = previous != nullptr ? previous->stage_counters
                                              : StageCounters{};
  StageFingerprints fp = upstream_fingerprints(raw, db.catalog(), config_,
                                               health_fingerprint(health));
  const auto reusable = [&](std::uint64_t StageFingerprints::*stage,
                            std::uint64_t want) {
    // Poisoned results carry zero fingerprints and never match (see
    // stages::absorb_rows); a computed fingerprint is never zero in practice.
    if (previous == nullptr) return false;
    const std::uint64_t prev_fp = previous->fingerprints.*stage;
    return prev_fp != 0 && prev_fp == want;
  };

  // Intermediate matrices, materialised only when a downstream stage has to
  // recompute. Re-deriving them from the reused fitted transforms is
  // bit-identical to the original fit (select_columns copies values and
  // Standardizer::fit_transform is fit() followed by the same transform()).
  linalg::Matrix refined;
  linalg::Matrix standardized;
  const auto need_refined = [&]() {
    if (refined.empty()) refined = raw.select_columns(result.kept_columns);
  };
  const auto need_standardized = [&]() {
    if (standardized.empty()) {
      need_refined();
      standardized = result.standardizer.transform(refined);
    }
  };

  // --- Refinement (§4.2): constants, then correlation duplicates ---
  if (reusable(&StageFingerprints::refine, fp.refine)) {
    result.kept_columns = previous->kept_columns;
    result.constant_columns = previous->constant_columns;
    result.refinement = previous->refinement;
  } else {
    stages::RefineOutput ro = stages::refine(raw, config_, fit_rows);
    result.kept_columns = std::move(ro.kept_columns);
    result.constant_columns = std::move(ro.constant_columns);
    result.refinement = std::move(ro.refinement);
    refined = std::move(ro.refined);
    ++result.stage_counters.refine;
  }

  // --- Standardisation (§4.3) ---
  if (reusable(&StageFingerprints::standardize, fp.standardize)) {
    result.standardizer = previous->standardizer;
  } else {
    need_refined();
    stages::StandardizeOutput so = stages::standardize(refined, fit_rows);
    result.standardizer = std::move(so.standardizer);
    standardized = std::move(so.standardized);
    ++result.stage_counters.standardize;
  }

  // --- PCA + labelling (§4.3) ---
  if (reusable(&StageFingerprints::pca, fp.pca)) {
    result.pca = previous->pca;
    result.num_components = previous->num_components;
    result.interpretations = previous->interpretations;
  } else {
    need_standardized();
    stages::PcaOutput po = stages::fit_pca(standardized, result.kept_columns,
                                           db.catalog(), config_, pool, fit_rows);
    result.pca = std::move(po.pca);
    result.num_components = po.num_components;
    result.interpretations = std::move(po.interpretations);
    ++result.stage_counters.pca;
  }

  // --- Whitened clustering space (§4.4) ---
  if (reusable(&StageFingerprints::whiten, fp.whiten)) {
    result.whitener = previous->whitener;
    result.whitened = previous->whitened;
    result.cluster_space = previous->cluster_space;
  } else {
    need_standardized();
    stages::WhitenOutput wo = stages::whiten(result.pca, result.num_components,
                                             standardized, config_, fit_rows);
    result.whitener = std::move(wo.whitener);
    result.whitened = wo.whitened;
    result.cluster_space = std::move(wo.cluster_space);
    ++result.stage_counters.whiten;
  }

  // Warm-start seed (kRefit): the previous centroids, lifted back to raw
  // metric space and pushed through the freshly fitted stages. Columns the
  // previous fit dropped are filled from the new population's column means.
  linalg::Matrix warm;
  if (warm_start && previous != nullptr && !previous->clustering.centroids.empty()) {
    warm = stages::project_rows(
        result, stages::centroids_to_raw(*previous, linalg::column_means(raw)));
  }
  fp.cluster = cluster_fingerprint(fp.whiten, config_, fit_weights, warm);
  fp.representatives =
      fingerprint_doubles(fit_weights, util::hash_mix(fp.cluster, 0x52455052u));

  // --- Cluster-count sweep + kept clustering (Fig. 9, §4.4) ---
  if (reusable(&StageFingerprints::cluster, fp.cluster)) {
    result.quality_curve = previous->quality_curve;
    result.chosen_k = previous->chosen_k;
    result.clustering = previous->clustering;
  } else {
    stages::ClusterOutput co =
        stages::cluster(result.cluster_space, fit_weights, config_, pool, warm);
    result.quality_curve = std::move(co.quality_curve);
    result.chosen_k = co.chosen_k;
    result.clustering = std::move(co.clustering);
    ++result.stage_counters.cluster;
  }

  // --- Representatives & weights (§4.4–§4.5) ---
  double healthy_weight = 0.0;
  for (const double w : fit_weights) healthy_weight += w;
  if (degraded && healthy_weight <= 0.0) {
    throw QuarantineError(
        "Analyzer::analyze: quarantine removed all observation-weight mass");
  }
  ensure(healthy_weight > 0.0, "Analyzer::analyze: zero total observation weight");
  if (reusable(&StageFingerprints::representatives, fp.representatives)) {
    result.representatives = previous->representatives;
    result.cluster_weights = previous->cluster_weights;
  } else {
    // Degraded fits pick representatives with positive (healthy) weight only
    // — an imputed below-quorum row must never stand for a cluster.
    stages::RepresentativesOutput rep =
        stages::representatives(result.clustering, result.cluster_space,
                                result.chosen_k, fit_weights,
                                /*require_positive_weight=*/degraded);
    result.representatives = std::move(rep.representatives);
    result.cluster_weights = std::move(rep.cluster_weights);
    ++result.stage_counters.representatives;
  }

  if (health != nullptr) {
    result.quarantine.imputed_cells = health->imputed_cells;
    double total_weight = 0.0;
    for (const double w : weights) total_weight += w;
    result.quarantine.total_weight = total_weight;
    if (degraded) {
      for (std::size_t i = 0; i < db.num_rows(); ++i) {
        if (!health->quarantined[i]) continue;
        result.quarantine.quarantined_rows.push_back(i);
        result.quarantine.quarantined_weight += weights[i];
      }
    }
  }

  result.fingerprints = fp;
  return result;
}

AnalysisResult Analyzer::recluster(const AnalysisResult& base,
                                   const std::vector<double>& new_weights) const {
  const std::unique_ptr<util::ThreadPool> pool = make_pool(config_.threads);
  return recluster(base, new_weights, pool.get());
}

AnalysisResult Analyzer::recluster(const AnalysisResult& base,
                                   const std::vector<double>& new_weights,
                                   util::ThreadPool* pool) const {
  ensure(new_weights.size() == base.cluster_space.rows(),
         "Analyzer::recluster: weight count must match scenario count");
  double total = 0.0;
  for (const double w : new_weights) {
    ensure(w >= 0.0, "Analyzer::recluster: weights must be non-negative");
    total += w;
  }
  ensure(total > 0.0, "Analyzer::recluster: zero total weight");

  AnalysisResult result = base;  // reuse refinement, PCA, whitening, space

  // Re-cluster from Step 3 over the same high-level metric space: a
  // stage-level replay of the cluster + representative stages at the
  // already-chosen k, with the Fig. 9 sweep disabled (the base's quality
  // curve is kept as-is).
  AnalyzerConfig replay = config_;
  replay.fixed_clusters = base.chosen_k;
  replay.compute_quality_curve = false;
  stages::ClusterOutput co =
      stages::cluster(base.cluster_space, new_weights, replay, pool);
  result.chosen_k = co.chosen_k;
  result.clustering = std::move(co.clustering);
  ++result.stage_counters.cluster;

  stages::RepresentativesOutput rep =
      stages::representatives(result.clustering, result.cluster_space,
                              result.chosen_k, new_weights,
                              /*require_positive_weight=*/true);
  result.representatives = std::move(rep.representatives);
  result.cluster_weights = std::move(rep.cluster_weights);
  ++result.stage_counters.representatives;

  // The replayed stages answer to a different question (recluster semantics:
  // weights feed representative selection) — never splice them into a fit.
  result.fingerprints.cluster = 0;
  result.fingerprints.representatives = 0;
  return result;
}

AnalysisResult Analyzer::refit_incremental(const metrics::MetricDatabase& db,
                                           const ml::Pca& updated_pca,
                                           const AnalysisResult& previous,
                                           util::ThreadPool* pool,
                                           const AnalysisHealth* health) const {
  ensure(previous.standardizer.fitted() && previous.pca.fitted(),
         "Analyzer::refit_incremental: previous analysis is not fitted");
  ensure(updated_pca.fitted() &&
             updated_pca.dimension() == previous.pca.dimension(),
         "Analyzer::refit_incremental: basis does not match the fitted frame");
  ensure(db.num_rows() >= config_.min_clusters,
         "Analyzer::refit_incremental: fewer scenarios than clusters");
  const linalg::Matrix raw = db.to_matrix();
  const std::vector<double> weights = db.weights();

  // Same quarantine semantics as analyze(): the standardizer and basis are
  // frozen/spliced anyway, so only the whitener moments and the weight mass
  // need masking here.
  ensure(health == nullptr || health->quarantined.empty() ||
             health->quarantined.size() == db.num_rows(),
         "Analyzer::refit_incremental: health mask must match the row count");
  const bool degraded = health != nullptr && health->any_quarantined();
  std::vector<std::size_t> healthy_rows;
  std::vector<double> fit_weights = weights;
  if (degraded) {
    healthy_rows.reserve(db.num_rows());
    for (std::size_t i = 0; i < db.num_rows(); ++i) {
      if (health->quarantined[i]) {
        fit_weights[i] = 0.0;
      } else {
        healthy_rows.push_back(i);
      }
    }
    if (healthy_rows.size() < config_.min_clusters) {
      throw QuarantineError(
          "Analyzer::refit_incremental: only " +
          std::to_string(healthy_rows.size()) +
          " rows survived quarantine but " +
          std::to_string(config_.min_clusters) + " clusters are required");
    }
  }
  const std::vector<std::size_t>* fit_rows = degraded ? &healthy_rows : nullptr;

  AnalysisResult result;
  result.stage_counters = previous.stage_counters;

  // Frozen upstream frame: the refinement and standardisation the tracked
  // basis was maintained in. Recomputing either would put the basis in a
  // different coordinate system than the one it was updated in.
  result.kept_columns = previous.kept_columns;
  result.constant_columns = previous.constant_columns;
  result.refinement = previous.refinement;
  result.standardizer = previous.standardizer;

  // Basis splice instead of a cold PCA fit — the whole point of the path.
  stages::PcaOutput po =
      stages::splice_pca(updated_pca, result.kept_columns, db.catalog(), config_);
  result.pca = std::move(po.pca);
  result.num_components = po.num_components;
  result.interpretations = std::move(po.interpretations);
  ++result.stage_counters.pca_incremental;

  // Downstream replay over the full population in the updated basis.
  const linalg::Matrix refined = raw.select_columns(result.kept_columns);
  const linalg::Matrix standardized = result.standardizer.transform(refined);
  stages::WhitenOutput wo = stages::whiten(result.pca, result.num_components,
                                           standardized, config_, fit_rows);
  result.whitener = std::move(wo.whitener);
  result.whitened = wo.whitened;
  result.cluster_space = std::move(wo.cluster_space);
  ++result.stage_counters.whiten;

  // Warm-start K-means at the previous chosen k from the previous centroids,
  // lifted to raw metric space and pushed through the spliced stages — the
  // same seeding the warm cold-refit uses. The Fig. 9 sweep is skipped; the
  // previous quality curve is carried over as-is (recluster semantics).
  linalg::Matrix warm;
  if (!previous.clustering.centroids.empty()) {
    warm = stages::project_rows(
        result, stages::centroids_to_raw(previous, linalg::column_means(raw)));
  }
  AnalyzerConfig replay = config_;
  replay.fixed_clusters = previous.chosen_k;
  replay.compute_quality_curve = false;
  stages::ClusterOutput co =
      stages::cluster(result.cluster_space, fit_weights, replay, pool, warm);
  result.quality_curve = previous.quality_curve;
  result.chosen_k = co.chosen_k;
  result.clustering = std::move(co.clustering);
  ++result.stage_counters.cluster;

  double healthy_weight = 0.0;
  for (const double w : fit_weights) healthy_weight += w;
  if (degraded && healthy_weight <= 0.0) {
    throw QuarantineError(
        "Analyzer::refit_incremental: quarantine removed all weight mass");
  }
  stages::RepresentativesOutput rep =
      stages::representatives(result.clustering, result.cluster_space,
                              result.chosen_k, fit_weights,
                              /*require_positive_weight=*/degraded);
  result.representatives = std::move(rep.representatives);
  result.cluster_weights = std::move(rep.cluster_weights);
  ++result.stage_counters.representatives;

  if (health != nullptr) {
    result.quarantine.imputed_cells = health->imputed_cells;
    double total_weight = 0.0;
    for (const double w : weights) total_weight += w;
    result.quarantine.total_weight = total_weight;
    if (degraded) {
      for (std::size_t i = 0; i < db.num_rows(); ++i) {
        if (!health->quarantined[i]) continue;
        result.quarantine.quarantined_rows.push_back(i);
        result.quarantine.quarantined_weight += weights[i];
      }
    }
  }

  // The spliced basis equals a cold fit only up to FP rounding — no future
  // analysis may splice these outputs in by fingerprint.
  result.fingerprints = StageFingerprints{};
  return result;
}

std::size_t Analyzer::suggest_k(const std::vector<ClusterQualityPoint>& curve,
                                double tolerance) {
  ensure(!curve.empty(), "Analyzer::suggest_k: empty quality curve");
  if (curve.size() < 3) return curve.front().k;

  // Fig. 9 guideline: "pick a point where the return starts to diminish".
  // Step 1 — SSE elbow via the max-distance-to-chord (Kneedle-style) rule on
  // the normalised curve.
  const double k_lo = static_cast<double>(curve.front().k);
  const double k_hi = static_cast<double>(curve.back().k);
  const double sse_lo = curve.back().sse;
  const double sse_hi = curve.front().sse;
  ensure(k_hi > k_lo, "Analyzer::suggest_k: curve must span multiple k");
  std::size_t knee_index = 0;
  double best_gap = -1.0;
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const double x = (static_cast<double>(curve[i].k) - k_lo) / (k_hi - k_lo);
    const double y = sse_hi > sse_lo
                         ? (curve[i].sse - sse_lo) / (sse_hi - sse_lo)
                         : 0.0;
    // The chord runs from (0,1) to (1,0); distance below it ∝ 1 - x - y.
    const double gap = 1.0 - x - y;
    if (gap > best_gap) {
      best_gap = gap;
      knee_index = i;
    }
  }

  // Step 2 — within a small window beyond the elbow, take the best
  // silhouette; among near-ties (within `tolerance`) prefer the larger k,
  // since clusters past the elbow are cheap insurance against smearing two
  // behaviours into one group.
  const std::size_t window_end = std::min(knee_index + 6, curve.size() - 1);
  std::size_t chosen = knee_index;
  double best_silhouette = curve[knee_index].silhouette;
  for (std::size_t i = knee_index; i <= window_end; ++i) {
    best_silhouette = std::max(best_silhouette, curve[i].silhouette);
  }
  for (std::size_t i = knee_index; i <= window_end; ++i) {
    if (curve[i].silhouette >= best_silhouette - tolerance) chosen = i;
  }
  return curve[chosen].k;
}

}  // namespace flare::core
