#include "core/pc_labeler.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace flare::core {
namespace {

/// A short human phrase for one signed contributor, e.g.
/// "HP cache-miss pressure ↑" for +HP.LLC_MPKI.
std::string phrase_for(const metrics::MetricInfo& info, bool positive) {
  const std::string who =
      info.level == metrics::MetricLevel::kHpJobs ? "HP" : "machine";
  std::string trait;
  const std::string& b = info.base_name;
  if (b.find("LLC_M") != std::string::npos || b == "LLC_MissesPerSec") {
    trait = "cache-miss pressure";
  } else if (b.find("LLC") != std::string::npos || b.find("L2") != std::string::npos ||
             b.find("L1D") != std::string::npos) {
    trait = "data-cache activity";
  } else if (b.find("L1I") != std::string::npos || b == "TD_FrontendBound") {
    trait = "frontend/instruction-fetch pressure";
  } else if (b.find("MemBW") != std::string::npos ||
             b.find("MemLatency") != std::string::npos ||
             b == "EffMemLatency_ns" || b == "TD_BackendMem") {
    trait = "memory-bandwidth/latency pressure";
  } else if (b == "TD_Retiring" || b == "IPC" || b == "MIPS" ||
             b == "InstrPerSec" || b == "ALU_UtilFrac") {
    trait = "useful-work throughput";
  } else if (b == "FP_UtilFrac") {
    trait = "floating-point intensity";
  } else if (b == "TD_BadSpeculation" || b.find("Branch") != std::string::npos) {
    trait = "branch/speculation waste";
  } else if (b == "TD_BackendCore" || b == "SMTSharedFrac" || b == "RunQueueLen" ||
             b == "CyclesPerSec") {
    trait = "core/SMT contention";
  } else if (b.find("Network") != std::string::npos ||
             b.find("IRQ") != std::string::npos) {
    trait = "network intensity";
  } else if (b.find("Disk") != std::string::npos || b == "IOWaitFrac") {
    trait = "storage intensity";
  } else if (b.find("Occupancy") != std::string::npos ||
             b.find("Containers") != std::string::npos || b == "FreeVCPUs" ||
             b == "CPU_UtilFrac" || b == "VCPUsBusy") {
    trait = "CPU occupancy";
  } else if (b.find("DRAM") != std::string::npos ||
             b.find("PageFaults") != std::string::npos) {
    trait = "DRAM footprint";
  } else if (b.find("Power") != std::string::npos ||
             b.find("Temperature") != std::string::npos ||
             b.find("Fan") != std::string::npos) {
    trait = "power draw";
  } else {
    trait = b;  // fall back to the raw name
  }
  return who + " " + trait + (positive ? " ↑" : " ↓");
}

}  // namespace

std::vector<PcInterpretation> interpret_components(
    const ml::Pca& pca, const std::vector<std::size_t>& kept_columns,
    const metrics::MetricCatalog& catalog, std::size_t num_components,
    PcLabelerConfig config) {
  ensure(pca.fitted(), "interpret_components: PCA not fitted");
  ensure(kept_columns.size() == pca.dimension(),
         "interpret_components: kept_columns must match the PCA dimension");
  ensure(num_components <= pca.dimension(),
         "interpret_components: more components than the PCA has");

  std::vector<PcInterpretation> out;
  out.reserve(num_components);
  for (std::size_t comp = 0; comp < num_components; ++comp) {
    PcInterpretation interp;
    interp.component = comp;
    interp.explained_variance_ratio = pca.explained_variance_ratio()[comp];

    // Rank variables by |loading|.
    std::vector<std::size_t> order(pca.dimension());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return std::abs(pca.loading(a, comp)) > std::abs(pca.loading(b, comp));
    });

    std::vector<std::string> phrases;
    for (const std::size_t var : order) {
      if (interp.top_contributors.size() >= config.max_contributors) break;
      const double loading = pca.loading(var, comp);
      if (std::abs(loading) < config.min_abs_loading) break;
      const metrics::MetricInfo& info = catalog.info(kept_columns[var]);
      interp.top_contributors.push_back(PcContributor{var, info.name, loading});
      // Avoid repeating the same phrase (several raw metrics map to one trait).
      const std::string phrase = phrase_for(info, loading > 0.0);
      if (std::find(phrases.begin(), phrases.end(), phrase) == phrases.end()) {
        phrases.push_back(phrase);
      }
    }

    std::string label;
    for (std::size_t i = 0; i < phrases.size() && i < 3; ++i) {
      if (i != 0) label += " + ";
      label += phrases[i];
    }
    if (label.empty()) label = "(diffuse: no dominant raw metric)";
    interp.label = std::move(label);
    out.push_back(std::move(interp));
  }
  return out;
}

}  // namespace flare::core
