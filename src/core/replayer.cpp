#include "core/replayer.hpp"

#include <algorithm>
#include <cmath>

#include "stats/bootstrap.hpp"
#include "stats/descriptive.hpp"
#include "stats/rng.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace flare::core {

std::string_view to_string(ReplayOutcome outcome) {
  switch (outcome) {
    case ReplayOutcome::kClean:
      return "clean";
    case ReplayOutcome::kRecovered:
      return "recovered";
    case ReplayOutcome::kUnreplayable:
      return "unreplayable";
  }
  return "unknown";
}

Replayer::Replayer(const ImpactModel& impact, ReplayPolicy policy,
                   dcsim::ReplayFaultModel faults)
    : impact_(&impact), policy_(policy), faults_(std::move(faults)) {
  ensure(policy_.max_retries >= 0, "ReplayPolicy: max_retries must be >= 0");
  ensure(policy_.replay_budget >= 1, "ReplayPolicy: replay_budget must be >= 1");
  ensure(policy_.nominal_seconds > 0.0,
         "ReplayPolicy: nominal_seconds must be positive");
  ensure(policy_.deadline_seconds >= policy_.nominal_seconds,
         "ReplayPolicy: deadline_seconds must be >= nominal_seconds");
  ensure(policy_.backoff_base_seconds >= 0.0,
         "ReplayPolicy: backoff_base_seconds must be non-negative");
  ensure(policy_.min_plausible_pct < policy_.max_plausible_pct,
         "ReplayPolicy: plausible range is empty");
  ensure(policy_.max_quarantined_mass >= 0.0 && policy_.max_quarantined_mass <= 1.0,
         "ReplayPolicy: max_quarantined_mass must be in [0, 1]");
  ensure(policy_.max_fallback_probes >= 0,
         "ReplayPolicy: max_fallback_probes must be >= 0");
}

double Replayer::backoff_seconds(std::string_view scenario_key,
                                 std::uint64_t feature_fingerprint,
                                 int consecutive_failures) const {
  // base · 2^(failures−1) · jitter, jitter ~ U[0.5, 1.5) from a stream that is
  // a pure function of (seed, scenario, feature, failure count) — retries wait
  // the same simulated time in every run.
  stats::Rng rng(util::hash_mix(
      util::hash_mix(util::fnv1a(scenario_key, policy_.backoff_seed),
                     feature_fingerprint),
      static_cast<std::uint64_t>(consecutive_failures)));
  const double jitter = rng.uniform(0.5, 1.5);
  return policy_.backoff_base_seconds *
         std::ldexp(1.0, consecutive_failures - 1) * jitter;
}

template <typename CleanFn>
ReplayMeasurement Replayer::measure(const dcsim::ColocationScenario& scenario,
                                    const Feature& feature,
                                    CleanFn&& clean_reading) {
  const std::uint64_t fingerprint = feature.fingerprint(impact_->baseline_machine());
  billed_.emplace(scenario.id, fingerprint);

  ReplayMeasurement result;
  if (!faults_.active()) {
    // Failure-free testbed: one attempt, one reading, no retry bookkeeping.
    ++total_;
    result.impact_pct = clean_reading();
    result.attempts = 1;
    result.measurements = 1;
    result.simulated_seconds = policy_.nominal_seconds;
    result.outcome = ReplayOutcome::kClean;
  } else {
    const std::string key = scenario.mix.key();
    const bool machine_lost = faults_.lose_machine(key);
    double clean = 0.0;
    bool clean_read = false;
    std::vector<double> readings;
    int consecutive_failures = 0;

    for (int attempt = 0; attempt < policy_.replay_budget; ++attempt) {
      ++total_;
      ++result.attempts;

      dcsim::ReplayAttemptFault fault =
          faults_.attempt_fault(key, fingerprint, attempt);
      if (machine_lost) {
        // The hosting testbed machine is gone for the campaign: every
        // reconstruction dies almost immediately, whatever else was drawn.
        fault = {dcsim::ReplayFaultKind::kCrash, 0.05};
      }

      bool failed = false;
      double elapsed = policy_.nominal_seconds;
      double reading = 0.0;
      switch (fault.kind) {
        case dcsim::ReplayFaultKind::kHang:
          // Watchdog: the wedged run is killed at the deadline, not left to
          // block the campaign for fault.magnitude × nominal seconds.
          elapsed = std::min(policy_.nominal_seconds * fault.magnitude,
                             policy_.deadline_seconds);
          failed = true;
          break;
        case dcsim::ReplayFaultKind::kCrash:
          elapsed = policy_.nominal_seconds * fault.magnitude;
          failed = true;
          break;
        default: {
          if (!clean_read) {
            clean = clean_reading();
            clean_read = true;
          }
          reading = faults_.corrupt_reading(clean, fault);
          if (!std::isfinite(reading) || reading < policy_.min_plausible_pct ||
              reading > policy_.max_plausible_pct) {
            failed = true;
          }
          break;
        }
      }
      result.simulated_seconds += elapsed;

      if (failed) {
        ++failed_;
        ++result.failed_attempts;
        ++consecutive_failures;
        if (consecutive_failures > policy_.max_retries) break;
        result.simulated_seconds +=
            backoff_seconds(key, fingerprint, consecutive_failures);
        continue;
      }

      consecutive_failures = 0;
      readings.push_back(reading);
      if (policy_.target_ci_halfwidth_pp <= 0.0) break;
      if (readings.size() >= 2 &&
          stats::mean_ci_halfwidth(readings) <= policy_.target_ci_halfwidth_pp) {
        break;
      }
    }

    result.measurements = static_cast<int>(readings.size());
    if (readings.empty()) {
      result.outcome = ReplayOutcome::kUnreplayable;
    } else {
      // Median, not mean: a noise spike that slipped past the CI gate should
      // not drag the aggregate.
      result.impact_pct = stats::median(readings);
      result.ci_halfwidth_pp =
          readings.size() > 1 ? stats::mean_ci_halfwidth(readings) : 0.0;
      result.outcome = (result.attempts == 1 && result.failed_attempts == 0)
                           ? ReplayOutcome::kClean
                           : ReplayOutcome::kRecovered;
    }
  }

  clock_seconds_ += result.simulated_seconds;
  ReplayHealth health;
  health.scenario_id = scenario.id;
  health.scenario_key = scenario.mix.key();
  health.feature_name = feature.name();
  health.outcome = result.outcome;
  health.attempts = result.attempts;
  health.failed_attempts = result.failed_attempts;
  health.measurements = result.measurements;
  health.ci_halfwidth_pp = result.ci_halfwidth_pp;
  health.simulated_seconds = result.simulated_seconds;
  health_log_.push_back(std::move(health));
  return result;
}

ReplayMeasurement Replayer::replay_scenario_measured(
    const dcsim::ColocationScenario& scenario, const Feature& feature) {
  return measure(scenario, feature, [&] {
    return impact_->scenario_impact_pct(scenario.mix, feature,
                                        MeasurementContext::kTestbed);
  });
}

ReplayMeasurement Replayer::replay_job_measured(
    dcsim::JobType type, const dcsim::ColocationScenario& scenario,
    const Feature& feature) {
  return measure(scenario, feature, [&] {
    return impact_->job_impact_pct(type, scenario.mix, feature,
                                   MeasurementContext::kTestbed);
  });
}

double Replayer::replay_scenario_impact(const dcsim::ColocationScenario& scenario,
                                        const Feature& feature) {
  const ReplayMeasurement m = replay_scenario_measured(scenario, feature);
  if (!m.ok()) {
    throw ReplayError("replay_scenario_impact: scenario " +
                      std::to_string(scenario.id) + " unreplayable for feature '" +
                      feature.name() + "' after " + std::to_string(m.attempts) +
                      " attempts");
  }
  return m.impact_pct;
}

double Replayer::replay_job_impact(dcsim::JobType type,
                                   const dcsim::ColocationScenario& scenario,
                                   const Feature& feature) {
  const ReplayMeasurement m = replay_job_measured(type, scenario, feature);
  if (!m.ok()) {
    throw ReplayError("replay_job_impact: scenario " + std::to_string(scenario.id) +
                      " unreplayable for feature '" + feature.name() + "' after " +
                      std::to_string(m.attempts) + " attempts");
  }
  return m.impact_pct;
}

}  // namespace flare::core
