#include "core/replayer.hpp"

namespace flare::core {

Replayer::Replayer(const ImpactModel& impact) : impact_(&impact) {}

void Replayer::bill(std::size_t scenario_id, const std::string& feature_name) {
  billed_.emplace(scenario_id, feature_name);
  ++total_;
}

double Replayer::replay_scenario_impact(const dcsim::ColocationScenario& scenario,
                                        const Feature& feature) {
  bill(scenario.id, feature.name());
  return impact_->scenario_impact_pct(scenario.mix, feature,
                                      MeasurementContext::kTestbed);
}

double Replayer::replay_job_impact(dcsim::JobType type,
                                   const dcsim::ColocationScenario& scenario,
                                   const Feature& feature) {
  bill(scenario.id, feature.name());
  return impact_->job_impact_pct(type, scenario.mix, feature,
                                 MeasurementContext::kTestbed);
}

}  // namespace flare::core
