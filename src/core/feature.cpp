#include "core/feature.hpp"

#include <bit>
#include <utility>

#include "util/error.hpp"
#include "util/hash.hpp"

namespace flare::core {

Feature::Feature(std::string name, std::string description, ApplyFn apply)
    : name_(std::move(name)),
      description_(std::move(description)),
      apply_(std::move(apply)) {
  ensure(static_cast<bool>(apply_), "Feature: apply function must be callable");
}

dcsim::MachineConfig Feature::apply(const dcsim::MachineConfig& machine) const {
  dcsim::MachineConfig out = apply_(machine);
  ensure(out.scheduling_vcpus() == machine.scheduling_vcpus(),
         "Feature '" + name_ + "' changes the machine's vCPU shape; "
         "shape-changing features need the §5.5 workflow, not Feature::apply");
  ensure(out.dram_gb == machine.dram_gb,
         "Feature '" + name_ + "' changes the machine's DRAM shape; "
         "shape-changing features need the §5.5 workflow, not Feature::apply");
  return out;
}

std::uint64_t Feature::fingerprint(const dcsim::MachineConfig& baseline) const {
  const dcsim::MachineConfig m = apply(baseline);
  const auto mix_double = [](std::uint64_t h, double v) {
    return util::hash_mix(h, std::bit_cast<std::uint64_t>(v));
  };
  std::uint64_t h = util::fnv1a(m.name);
  h = util::fnv1a(m.cpu_model, h);
  h = util::hash_mix(h, static_cast<std::uint64_t>(m.sockets));
  h = util::hash_mix(h, static_cast<std::uint64_t>(m.physical_cores_per_socket));
  h = util::hash_mix(h, static_cast<std::uint64_t>(m.scheduled_threads_per_core));
  h = util::hash_mix(h, static_cast<std::uint64_t>(m.mem_channels_per_socket));
  h = util::hash_mix(h, m.smt_enabled ? 1u : 0u);
  h = mix_double(h, m.dram_gb);
  h = mix_double(h, m.llc_mb_per_socket);
  h = mix_double(h, m.min_freq_ghz);
  h = mix_double(h, m.max_freq_ghz);
  h = mix_double(h, m.mem_bw_gbps_per_channel);
  h = mix_double(h, m.mem_latency_ns);
  h = mix_double(h, m.network_gbps);
  h = mix_double(h, m.disk_kiops);
  return h;
}

Feature baseline_feature() {
  return Feature("baseline",
                 "30MB LLC/socket, 1.2 - 2.9GHz clock, Hyperthreading enabled",
                 [](dcsim::MachineConfig m) { return m; });
}

Feature feature_cache_sizing() {
  return Feature("feature1-cache-sizing",
                 "12MB LLC/socket, 1.2 - 2.9GHz clock, Hyperthreading enabled",
                 [](dcsim::MachineConfig m) {
                   m.llc_mb_per_socket *= 12.0 / 30.0;
                   return m;
                 });
}

Feature feature_dvfs_cap() {
  return Feature("feature2-dvfs-cap",
                 "30MB LLC/socket, 1.2 - 1.8GHz clock, Hyperthreading enabled",
                 [](dcsim::MachineConfig m) {
                   m.max_freq_ghz *= 1.8 / 2.9;
                   return m;
                 });
}

Feature feature_smt_off() {
  return Feature("feature3-smt-off",
                 "30MB LLC/socket, 1.2 - 2.9GHz clock, Hyperthreading disabled",
                 [](dcsim::MachineConfig m) {
                   m.smt_enabled = false;
                   return m;
                 });
}

std::vector<Feature> standard_features() {
  return {feature_cache_sizing(), feature_dvfs_cap(), feature_smt_off()};
}

}  // namespace flare::core
