// FLARE step 4 substrate (§4.5): the Replayer.
//
// The Replayer reconstructs a job co-location scenario on the load-testing
// testbed ("executing the jobs with the recorded commands and options") with
// and without the candidate feature, and measures the impact. It also keeps
// the cost ledger: evaluation cost is proportional to the number of distinct
// scenarios reconstructed (§5.4), which is what the 50×/10× overhead claims
// count.
//
// Real testbeds hang, crash, lose machines mid-campaign, and return noisy or
// invalid measurements, so every replay runs as a fault-tolerant attempt
// loop: bounded retries with deterministic seeded exponential backoff on a
// *simulated* clock (no wall time — runs stay bit-reproducible), a per-replay
// deadline watchdog, finiteness/plausibility validation of every reading, and
// CI-gated repeat measurement that keeps re-measuring until the impact
// estimate's confidence half-width is under the policy threshold or the
// per-scenario replay budget is exhausted. Every attempt is billed, and every
// replay leaves a ReplayHealth record. With the fault model inactive the loop
// collapses to exactly one clean attempt — bit-identical to the historical
// failure-free path.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/impact.hpp"
#include "dcsim/replay_faults.hpp"

namespace flare::core {

/// Retry / deadline / measurement policy for one testbed replay.
struct ReplayPolicy {
  /// Consecutive failed attempts (timeout, crash, invalid reading) tolerated
  /// before the replay is declared unreplayable. 0 = no retries.
  int max_retries = 3;
  /// Hard cap on total attempts per (scenario, feature) replay — failures
  /// and repeat measurements together. The per-scenario replay budget.
  int replay_budget = 8;
  /// Simulated seconds a clean reconstruction + measurement takes.
  double nominal_seconds = 300.0;
  /// Watchdog deadline per attempt; a hung replay is killed (and billed) at
  /// this mark. Must be >= nominal_seconds.
  double deadline_seconds = 900.0;
  /// Base of the seeded exponential backoff between failed attempts:
  /// base · 2^(failures−1) · jitter, jitter uniform in [0.5, 1.5).
  double backoff_base_seconds = 30.0;
  std::uint64_t backoff_seed = 0xBACC0FFull;
  /// Noise gate: with the fault model active, keep measuring until the 95 %
  /// CI half-width of the mean reading is at or under this (in percentage
  /// points of impact) — needs at least two measurements. <= 0 disables the
  /// gate (first valid reading wins).
  double target_ci_halfwidth_pp = 0.5;
  /// Plausible impact range (percent MIPS reduction); readings outside are
  /// rejected as invalid and retried.
  double min_plausible_pct = -400.0;
  double max_plausible_pct = 100.0;
  /// Estimator escalation threshold (see FlareEstimator): if more than this
  /// share of observation-weight mass ends up in unreplayable (quarantined)
  /// clusters, the evaluation throws ReplayError instead of returning a
  /// silently hollow estimate.
  double max_quarantined_mass = 0.5;
  /// Bound on the fallback outward walk per cluster: how many runner-up
  /// members the estimator probes before quarantining the cluster.
  int max_fallback_probes = 5;
};

/// How a replay concluded.
enum class ReplayOutcome : unsigned char {
  kClean,        ///< first attempt, no faults, single measurement
  kRecovered,    ///< needed retries and/or repeat measurements, but measured
  kUnreplayable, ///< retries exhausted without a single valid reading
};

[[nodiscard]] std::string_view to_string(ReplayOutcome outcome);

/// The result of one fault-tolerant replay: the aggregated impact reading
/// (median of valid measurements — robust to surviving noise spikes) plus
/// everything needed for uncertainty-aware aggregation downstream.
struct ReplayMeasurement {
  double impact_pct = 0.0;       ///< median of the valid readings
  double ci_halfwidth_pp = 0.0;  ///< 95 % CI half-width of the mean reading
  int attempts = 0;              ///< total attempts billed (failures included)
  int failed_attempts = 0;       ///< timeouts + crashes + invalid readings
  int measurements = 0;          ///< valid readings aggregated
  double simulated_seconds = 0.0;  ///< testbed time incl. backoff waits
  ReplayOutcome outcome = ReplayOutcome::kClean;

  [[nodiscard]] bool ok() const {
    return outcome != ReplayOutcome::kUnreplayable;
  }
};

/// One journal entry per replay call — the replay plane's RowHealth analogue.
struct ReplayHealth {
  std::size_t scenario_id = 0;
  std::string scenario_key;    ///< the reconstructed job mix
  std::string feature_name;
  ReplayOutcome outcome = ReplayOutcome::kClean;
  int attempts = 0;
  int failed_attempts = 0;
  int measurements = 0;
  double ci_halfwidth_pp = 0.0;
  double simulated_seconds = 0.0;
};

class Replayer {
 public:
  /// The testbed is the ImpactModel's baseline machine; features are applied
  /// on top of it per replay. `faults` is the (default-inactive) testbed
  /// fault injector; `policy` governs retries, deadlines, and the noise gate.
  explicit Replayer(const ImpactModel& impact, ReplayPolicy policy = {},
                    dcsim::ReplayFaultModel faults = {});
  /// The Replayer keeps a reference to the impact model; a temporary would dangle.
  explicit Replayer(ImpactModel&&, ReplayPolicy = {},
                    dcsim::ReplayFaultModel = {}) = delete;

  /// Scenario-level HP impact (percent MIPS reduction) measured on the
  /// testbed through the full attempt loop. Each distinct
  /// (scenario, feature-content) pair is billed once in the distinct-scenario
  /// ledger; every attempt is billed in the attempt ledger.
  [[nodiscard]] ReplayMeasurement replay_scenario_measured(
      const dcsim::ColocationScenario& scenario, const Feature& feature);

  /// Per-job impact within the scenario; the mix must contain `type`.
  [[nodiscard]] ReplayMeasurement replay_job_measured(
      dcsim::JobType type, const dcsim::ColocationScenario& scenario,
      const Feature& feature);

  /// Convenience wrappers returning the aggregated reading directly; throw
  /// ReplayError when the scenario is unreplayable after retries.
  [[nodiscard]] double replay_scenario_impact(const dcsim::ColocationScenario& scenario,
                                              const Feature& feature);
  [[nodiscard]] double replay_job_impact(dcsim::JobType type,
                                         const dcsim::ColocationScenario& scenario,
                                         const Feature& feature);

  /// Distinct scenarios reconstructed so far (the evaluation cost). Keyed on
  /// (scenario id, feature *content* fingerprint): two distinct features that
  /// happen to share a name are distinct testbed setups and bill separately.
  [[nodiscard]] std::size_t distinct_scenario_replays() const {
    return billed_.size();
  }

  /// Total replay attempts (a scenario reused across features re-bills, and
  /// every retry or repeat measurement of an attempt loop bills too — failed
  /// testbed runs consume testbed time like successful ones).
  [[nodiscard]] std::size_t total_replays() const { return total_; }

  /// Attempts that failed (timed out, crashed, or returned invalid readings).
  [[nodiscard]] std::size_t failed_replays() const { return failed_; }

  /// Simulated testbed seconds consumed so far (run time + backoff waits).
  [[nodiscard]] double simulated_seconds() const { return clock_seconds_; }

  /// Per-replay health journal, in call order.
  [[nodiscard]] const std::vector<ReplayHealth>& health_log() const {
    return health_log_;
  }

  [[nodiscard]] const ImpactModel& impact() const { return *impact_; }
  [[nodiscard]] const ReplayPolicy& policy() const { return policy_; }
  [[nodiscard]] const dcsim::ReplayFaultModel& faults() const { return faults_; }

 private:
  /// The fault-tolerant attempt loop shared by the scenario- and job-level
  /// replays. `clean_reading` is invoked (lazily, at most once) only for
  /// attempts whose run completes — the reconstruction is deterministic, so
  /// all clean attempts would read the same value.
  template <typename CleanFn>
  [[nodiscard]] ReplayMeasurement measure(const dcsim::ColocationScenario& scenario,
                                          const Feature& feature,
                                          CleanFn&& clean_reading);

  [[nodiscard]] double backoff_seconds(std::string_view scenario_key,
                                       std::uint64_t feature_fingerprint,
                                       int consecutive_failures) const;

  const ImpactModel* impact_;  ///< non-owning
  ReplayPolicy policy_;
  dcsim::ReplayFaultModel faults_;
  std::set<std::pair<std::size_t, std::uint64_t>> billed_;
  std::size_t total_ = 0;
  std::size_t failed_ = 0;
  double clock_seconds_ = 0.0;
  std::vector<ReplayHealth> health_log_;
};

}  // namespace flare::core
