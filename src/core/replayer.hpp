// FLARE step 4 substrate (§4.5): the Replayer.
//
// The Replayer reconstructs a job co-location scenario on the load-testing
// testbed ("executing the jobs with the recorded commands and options") with
// and without the candidate feature, and measures the impact. It also keeps
// the cost ledger: evaluation cost is proportional to the number of distinct
// scenarios reconstructed (§5.4), which is what the 50×/10× overhead claims
// count.
#pragma once

#include <set>
#include <string>
#include <utility>

#include "core/impact.hpp"

namespace flare::core {

class Replayer {
 public:
  /// The testbed is the ImpactModel's baseline machine; features are applied
  /// on top of it per replay.
  explicit Replayer(const ImpactModel& impact);
  /// The Replayer keeps a reference to the impact model; a temporary would dangle.
  explicit Replayer(ImpactModel&& impact) = delete;

  /// Scenario-level HP impact (percent MIPS reduction) measured on the
  /// testbed. Each distinct (scenario, feature) pair is billed once.
  [[nodiscard]] double replay_scenario_impact(const dcsim::ColocationScenario& scenario,
                                              const Feature& feature);

  /// Per-job impact within the scenario; the mix must contain `type`.
  [[nodiscard]] double replay_job_impact(dcsim::JobType type,
                                         const dcsim::ColocationScenario& scenario,
                                         const Feature& feature);

  /// Distinct scenarios reconstructed so far (the evaluation cost).
  [[nodiscard]] std::size_t distinct_scenario_replays() const {
    return billed_.size();
  }

  /// Total replay invocations (a scenario reused across features re-bills).
  [[nodiscard]] std::size_t total_replays() const { return total_; }

  [[nodiscard]] const ImpactModel& impact() const { return *impact_; }

 private:
  void bill(std::size_t scenario_id, const std::string& feature_name);

  const ImpactModel* impact_;  ///< non-owning
  std::set<std::pair<std::size_t, std::string>> billed_;
  std::size_t total_ = 0;
};

}  // namespace flare::core
