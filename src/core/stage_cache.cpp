#include "core/stage_cache.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "util/error.hpp"
#include "util/hash.hpp"

namespace flare::core {
namespace {

constexpr char kSpillMagic[8] = {'F', 'L', 'A', 'R', 'E', 'S', 'P', '1'};

std::string hex64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

/// Writes rows/cols + raw row-major doubles; the reload is bit-identical
/// because no value is ever re-encoded through text.
void write_spill(const std::string& path, const linalg::Matrix& m) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ensure(f != nullptr, "StageOutputCache: cannot create spill file " + path);
  const std::uint64_t dims[2] = {m.rows(), m.cols()};
  bool ok = std::fwrite(kSpillMagic, 1, sizeof(kSpillMagic), f) ==
            sizeof(kSpillMagic);
  ok = ok && std::fwrite(dims, sizeof(std::uint64_t), 2, f) == 2;
  ok = ok && (m.data().empty() ||
              std::fwrite(m.data().data(), sizeof(double), m.data().size(), f) ==
                  m.data().size());
  ok = ok && std::fflush(f) == 0;
  std::fclose(f);
  if (!ok) {
    std::remove(path.c_str());
    throw ParseError("StageOutputCache: short write to spill file " + path);
  }
}

std::optional<linalg::Matrix> read_spill(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  char magic[8];
  std::uint64_t dims[2] = {0, 0};
  bool ok = std::fread(magic, 1, sizeof(magic), f) == sizeof(magic) &&
            std::memcmp(magic, kSpillMagic, sizeof(kSpillMagic)) == 0 &&
            std::fread(dims, sizeof(std::uint64_t), 2, f) == 2;
  std::vector<double> data;
  if (ok) {
    data.resize(dims[0] * dims[1]);
    ok = data.empty() ||
         std::fread(data.data(), sizeof(double), data.size(), f) == data.size();
  }
  std::fclose(f);
  if (!ok) return std::nullopt;  // torn spill: treat as a miss, recompute
  return linalg::Matrix(dims[0], dims[1], std::move(data));
}

}  // namespace

StageOutputCache::StageOutputCache(StageCacheConfig config)
    : config_(std::move(config)) {
  if (!config_.spill_dir.empty()) {
    std::error_code ec;  // best-effort: a failure surfaces at the first spill
    std::filesystem::create_directories(config_.spill_dir, ec);
  }
}

std::uint64_t StageOutputCache::tagged(std::uint64_t fingerprint) const {
  if (config_.lineage_tag == 0 || fingerprint == 0) return fingerprint;
  const std::uint64_t h = util::hash_mix(fingerprint, config_.lineage_tag);
  // Keep the poisoned sentinel unreachable for real keys.
  return h != 0 ? h : config_.lineage_tag;
}

std::string StageOutputCache::tagged_spill_path(std::string_view stage,
                                                std::uint64_t fingerprint) const {
  std::string path = config_.spill_dir;
  if (!path.empty() && path.back() != '/') path += '/';
  path += stage;
  path += '-';
  path += hex64(fingerprint);
  path += ".spill";
  return path;
}

std::string StageOutputCache::spill_path(std::string_view stage,
                                         std::uint64_t fingerprint) const {
  return tagged_spill_path(stage, tagged(fingerprint));
}

StageOutputCache::EntryList::iterator StageOutputCache::find(
    std::string_view stage, std::uint64_t fingerprint) {
  return std::find_if(entries_.begin(), entries_.end(), [&](const Entry& e) {
    return e.fingerprint == fingerprint && e.stage == stage;
  });
}

void StageOutputCache::spill(Entry& entry) {
  if (!config_.spill_dir.empty()) {
    if (!entry.spilled) {
      write_spill(tagged_spill_path(entry.stage, entry.fingerprint), entry.value);
      entry.spilled = true;
      stats_.spilled_bytes += entry.bytes;
      ++stats_.spills;
    }
  } else {
    ++stats_.drops;
  }
  stats_.resident_bytes -= entry.bytes;
  entry.resident = false;
  entry.value = linalg::Matrix();
}

void StageOutputCache::make_room() {
  if (config_.memory_budget_bytes == 0) return;
  while (stats_.resident_bytes > config_.memory_budget_bytes) {
    // Victim: highest drift priority first (its basis is about to be
    // invalidated by a cold refit), then least recently used. The MRU entry
    // is exempt so the value just inserted or reloaded cannot evict itself.
    EntryList::iterator victim = entries_.end();
    for (auto it = std::next(entries_.begin()); it != entries_.end(); ++it) {
      if (!it->resident) continue;
      // >= so that among equal priorities the entry furthest down the list
      // (least recently used) wins.
      if (victim == entries_.end() || it->priority >= victim->priority) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // only the MRU entry is resident
    spill(*victim);
    if (!victim->spilled) entries_.erase(victim);  // dropped outright
  }
}

void StageOutputCache::put(std::string_view stage, std::uint64_t fingerprint,
                           linalg::Matrix value, double eviction_priority) {
  ensure(fingerprint != 0,
         "StageOutputCache::put: zero (poisoned) fingerprints are not "
         "cacheable — the output is not a pure function of a fit input");
  fingerprint = tagged(fingerprint);
  EntryList::iterator it = find(stage, fingerprint);
  if (it != entries_.end()) {
    if (it->resident) stats_.resident_bytes -= it->bytes;
    if (it->spilled) {
      stats_.spilled_bytes -= it->bytes;
      std::remove(tagged_spill_path(it->stage, it->fingerprint).c_str());
    }
    entries_.erase(it);
  }
  Entry entry;
  entry.stage = std::string(stage);
  entry.fingerprint = fingerprint;
  entry.priority = eviction_priority;
  entry.resident = true;
  entry.bytes = payload_bytes(value);
  entry.value = std::move(value);
  stats_.resident_bytes += entry.bytes;
  entries_.push_front(std::move(entry));
  make_room();
}

void StageOutputCache::set_priority(std::string_view stage,
                                    std::uint64_t fingerprint,
                                    double eviction_priority) {
  EntryList::iterator it = find(stage, tagged(fingerprint));
  if (it != entries_.end()) it->priority = eviction_priority;
}

std::optional<linalg::Matrix> StageOutputCache::get(std::string_view stage,
                                                    std::uint64_t fingerprint) {
  if (fingerprint == 0) {
    ++stats_.misses;
    return std::nullopt;
  }
  fingerprint = tagged(fingerprint);
  EntryList::iterator it = find(stage, fingerprint);
  if (it != entries_.end() && it->resident) {
    ++stats_.hits;
    entries_.splice(entries_.begin(), entries_, it);
    return entries_.front().value;
  }
  // Spilled entry, or a cold start against a spill directory populated by an
  // earlier process: probe the content-addressed file.
  if (!config_.spill_dir.empty()) {
    std::optional<linalg::Matrix> loaded =
        read_spill(tagged_spill_path(stage, fingerprint));
    if (loaded.has_value()) {
      ++stats_.reloads;
      if (it == entries_.end()) {
        Entry entry;
        entry.stage = std::string(stage);
        entry.fingerprint = fingerprint;
        entry.spilled = true;
        entry.bytes = payload_bytes(*loaded);
        stats_.spilled_bytes += entry.bytes;
        entries_.push_front(std::move(entry));
        it = entries_.begin();
      } else {
        entries_.splice(entries_.begin(), entries_, it);
      }
      it->resident = true;
      it->value = *loaded;
      stats_.resident_bytes += it->bytes;
      make_room();
      return loaded;
    }
  }
  if (it != entries_.end()) entries_.erase(it);  // spill file went missing
  ++stats_.misses;
  return std::nullopt;
}

linalg::Matrix StageOutputCache::get_or_compute(
    std::string_view stage, std::uint64_t fingerprint, double eviction_priority,
    const std::function<linalg::Matrix()>& compute) {
  std::optional<linalg::Matrix> cached = get(stage, fingerprint);
  if (cached.has_value()) return std::move(*cached);
  linalg::Matrix value = compute();
  put(stage, fingerprint, value, eviction_priority);
  return value;
}

void StageOutputCache::invalidate(std::string_view stage,
                                  std::uint64_t fingerprint) {
  EntryList::iterator it = find(stage, tagged(fingerprint));
  if (it == entries_.end()) return;
  if (it->resident) stats_.resident_bytes -= it->bytes;
  if (it->spilled) {
    stats_.spilled_bytes -= it->bytes;
    std::remove(tagged_spill_path(it->stage, it->fingerprint).c_str());
  }
  entries_.erase(it);
}

void StageOutputCache::clear() {
  for (const Entry& e : entries_) {
    if (e.spilled) std::remove(tagged_spill_path(e.stage, e.fingerprint).c_str());
  }
  entries_.clear();
  stats_.resident_bytes = 0;
  stats_.spilled_bytes = 0;
}

}  // namespace flare::core
