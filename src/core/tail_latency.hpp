// Tail-latency extension.
//
// The paper's metric is instruction throughput (MIPS), chosen because its
// industry partner's jobs expose throughput directly (§5.1). Much of the
// datacenter literature the paper builds on, however, manages p99 latency —
// and throughput understates a feature's tail impact near saturation. This
// model derives a first-order p99 estimate for the latency-sensitive
// services from the same interference results:
//
//   slowdown σ  = (uncontended per-thread MIPS) / (actual per-thread MIPS)
//   service s   = base_service_ms · σ          (requests cost σ× more work-time)
//   utilisation ρ_eff = min(ρ_nominal · σ, cap) (fixed arrival rate: longer
//                                                service inflates utilisation)
//   p99 ≈ s · (1 + ln(100) · ρ_eff / (1 − ρ_eff))   (M/M/1-flavoured tail)
//
// The nonlinearity in ρ is the point: a feature that costs 15 % MIPS can
// multiply p99 for a service that was already running hot.
#pragma once

#include "core/feature.hpp"
#include "core/impact.hpp"

namespace flare::core {

struct TailLatencyConfig {
  /// Utilisation ceiling before the queue is reported as saturated.
  double utilization_cap = 0.98;
  /// ln(100): the M/M/1 99th-percentile waiting factor.
  double p99_factor = 4.60517;
};

struct TailLatencyResult {
  dcsim::JobType job = dcsim::JobType::kDataCaching;
  double service_ms = 0.0;      ///< contended service time
  double utilization = 0.0;     ///< effective queue utilisation (capped)
  double p99_ms = 0.0;
  bool saturated = false;       ///< ρ hit the cap: the SLO is gone, not degraded
};

class TailLatencyModel {
 public:
  explicit TailLatencyModel(const ImpactModel& impact, TailLatencyConfig config = {});
  TailLatencyModel(ImpactModel&&, TailLatencyConfig = {}) = delete;  // dangling

  /// p99 of `job` inside `mix` on the (possibly featured) machine. The job
  /// must be latency-sensitive (base_service_ms > 0) and present in the mix.
  [[nodiscard]] TailLatencyResult evaluate(dcsim::JobType job,
                                           const dcsim::JobMix& mix,
                                           const dcsim::MachineConfig& machine,
                                           MeasurementContext context) const;

  /// Percent p99 increase of `job` in the scenario when `feature` is applied
  /// (positive = latency got worse). Saturation returns +inf-like large
  /// values capped at 10 000 %.
  [[nodiscard]] double job_p99_impact_pct(dcsim::JobType job,
                                          const dcsim::JobMix& mix,
                                          const Feature& feature,
                                          MeasurementContext context) const;

  /// True when the job has latency semantics (a nonzero base service time).
  [[nodiscard]] bool is_latency_sensitive(dcsim::JobType job) const;

 private:
  const ImpactModel* impact_;  ///< non-owning
  TailLatencyConfig config_;
};

}  // namespace flare::core
