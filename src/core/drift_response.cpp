#include "core/drift_response.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/error.hpp"

namespace flare::core {

std::string_view to_string(DriftRegime regime) {
  switch (regime) {
    case DriftRegime::kStable: return "stable";
    case DriftRegime::kBurst: return "burst";
    case DriftRegime::kShift: return "shift";
  }
  return "unknown";
}

EpisodeFence detect_anomalous_episode(const AnalysisResult& analysis,
                                      const linalg::Matrix& projected,
                                      const DriftReport& drift,
                                      const DriftResponseConfig& config) {
  EpisodeFence fence;
  if (drift.uncovered_rows.size() < config.episode_min_rows) return fence;
  if (analysis.clustering.centroids.rows() == 0 || projected.rows() == 0) {
    return fence;
  }
  const std::size_t dim = projected.cols();
  for (const std::size_t row : drift.uncovered_rows) {
    ensure(row < projected.rows(),
           "detect_anomalous_episode: uncovered row out of range");
  }
  const stages::NearestAssignment nearest =
      stages::assign_to_nearest(analysis.clustering, projected);

  // Separation prefilter: every fresh batch has rows just beyond the
  // coverage radius (honest drift, never an episode). Only rows at
  // episode_separation_ratio × their cluster's radius or farther qualify
  // as interference-episode candidates.
  const double sep_sq =
      config.episode_separation_ratio * config.episode_separation_ratio;
  std::vector<std::size_t> candidate;
  candidate.reserve(drift.uncovered_rows.size());
  for (const std::size_t row : drift.uncovered_rows) {
    const std::size_t cluster = nearest.cluster[row];
    const double radius_sq = cluster < drift.coverage_radius_sq.size()
                                 ? drift.coverage_radius_sq[cluster]
                                 : 0.0;
    if (nearest.dist_sq[row] >= sep_sq * radius_sq) candidate.push_back(row);
  }

  // A real batch mixes episode rows with ordinary out-of-coverage drift
  // rows, so the uncovered set as a whole rarely passes the coherence
  // check. Trim the row farthest from the candidate centroid until what
  // remains is a coherent clump (fence it) or too small to be an episode
  // (no fence): strays peel off one by one because the centroid sits in
  // the episode's mass, while i.i.d. noise never converges to a clump
  // before dropping below episode_min_rows.
  while (candidate.size() >= config.episode_min_rows) {
    // Centroid of the candidate rows in the fitted cluster space.
    std::vector<double> centroid(dim, 0.0);
    for (const std::size_t row : candidate) {
      for (std::size_t d = 0; d < dim; ++d) centroid[d] += projected(row, d);
    }
    const double inv = 1.0 / static_cast<double>(candidate.size());
    for (double& c : centroid) c *= inv;

    // Dispersion around their own centroid vs. separation from the fitted
    // model. A coherent episode is a tight clump far from every fitted
    // centroid; i.i.d. noise is dispersed roughly as widely as it is
    // distant.
    double dispersion_sq = 0.0;
    double separation_sq = 0.0;
    std::size_t farthest = 0;
    double farthest_d2 = -1.0;
    for (std::size_t i = 0; i < candidate.size(); ++i) {
      const std::size_t row = candidate[i];
      double d2 = 0.0;
      for (std::size_t d = 0; d < dim; ++d) {
        const double delta = projected(row, d) - centroid[d];
        d2 += delta * delta;
      }
      dispersion_sq += d2;
      separation_sq += nearest.dist_sq[row];
      if (d2 > farthest_d2) {
        farthest_d2 = d2;
        farthest = i;
      }
    }
    dispersion_sq *= inv;
    separation_sq *= inv;
    if (separation_sq <= 0.0) return fence;

    const double ratio = std::sqrt(dispersion_sq / separation_sq);
    if (ratio <= config.episode_coherence_ratio) {
      fence.rows = std::move(candidate);
      std::sort(fence.rows.begin(), fence.rows.end());
      fence.dispersion_ratio = ratio;
      return fence;
    }
    candidate.erase(candidate.begin() +
                    static_cast<std::ptrdiff_t>(farthest));
  }
  return fence;
}

DriftResponsePolicy::DriftResponsePolicy(DriftResponseConfig config,
                                         DriftConfig drift)
    : config_(config), drift_(drift) {
  ensure(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0,
         "DriftResponsePolicy: ewma_alpha must be in (0, 1]");
  ensure(config_.confirm_batches >= 1,
         "DriftResponsePolicy: confirm_batches must be >= 1");
  ensure(config_.cooldown_batches >= 0,
         "DriftResponsePolicy: cooldown_batches must be >= 0");
  ensure(config_.cusum_threshold > 0.0,
         "DriftResponsePolicy: cusum_threshold must be > 0");
  ensure(config_.staleness_budget_batches > 0.0,
         "DriftResponsePolicy: staleness_budget_batches must be > 0");
  ensure(config_.episode_separation_ratio >= 1.0,
         "DriftResponsePolicy: episode_separation_ratio must be >= 1");
}

DriftVerdict DriftResponsePolicy::resolve(DriftVerdict proposed,
                                          const DriftReport& drift,
                                          DriftResponseReport& report) {
  // Refit-worthiness of this batch, normalised so >= 1 means "the monitor's
  // own thresholds would call this refit-worthy": max of the two criteria
  // DriftMonitor::inspect applies.
  const double distance_term =
      drift_.refit_distance_ratio > 0.0
          ? drift.distance_ratio / drift_.refit_distance_ratio
          : 0.0;
  const double coverage_term =
      drift_.refit_coverage_fraction > 0.0
          ? drift.out_of_coverage_fraction / drift_.refit_coverage_fraction
          : 0.0;
  const double statistic = std::max(distance_term, coverage_term);

  ewma_ = seen_batch_
              ? config_.ewma_alpha * statistic + (1.0 - config_.ewma_alpha) * ewma_
              : statistic;
  seen_batch_ = true;
  cusum_ = std::max(0.0, cusum_ + statistic - config_.cusum_reference);
  ++batches_since_refit_;

  if (proposed == DriftVerdict::kRefit) {
    ++refit_streak_;
  } else {
    refit_streak_ = 0;
  }

  const bool in_cooldown = cooldown_remaining_ > 0;
  if (in_cooldown) --cooldown_remaining_;
  const bool sustained = refit_streak_ >= config_.confirm_batches ||
                         cusum_ >= config_.cusum_threshold;

  DriftVerdict final_verdict = proposed;
  if (proposed == DriftVerdict::kRefit) {
    if (!in_cooldown && sustained) {
      report.regime = DriftRegime::kShift;
      report.refit_committed = true;
    } else {
      // A single refit-worthy batch (or one inside the cooldown window) is
      // treated as a burst: reweight now, refit only if it persists.
      final_verdict = DriftVerdict::kReweight;
      report.regime = DriftRegime::kBurst;
      report.refit_suppressed = true;
    }
  } else if (!in_cooldown && cusum_ >= config_.cusum_threshold) {
    // Slow creep: no single batch crossed the refit thresholds, but the
    // accumulated evidence did. Escalate whatever was proposed to a refit.
    final_verdict = DriftVerdict::kRefit;
    report.regime = DriftRegime::kShift;
    report.refit_committed = true;
  } else {
    report.regime =
        statistic >= 1.0 ? DriftRegime::kBurst : DriftRegime::kStable;
  }

  // Staleness guard: the batch-age budget shrinks as the drift-rate proxy
  // grows; once over budget the replay bands widen proportionally.
  const double effective_budget =
      config_.staleness_budget_batches / std::max(ewma_, 0.1);
  const double staleness =
      static_cast<double>(batches_since_refit_) / effective_budget;
  widening_pp_ = std::min(config_.staleness_widening_cap_pp,
                          std::max(0.0, staleness - 1.0) *
                              config_.staleness_widening_pp);

  report.statistic = statistic;
  report.ewma = ewma_;
  report.cusum = cusum_;
  report.batches_since_refit = batches_since_refit_;
  report.staleness = staleness;
  report.staleness_widening_pp = widening_pp_;
  return final_verdict;
}

void DriftResponsePolicy::note_refit() {
  batches_since_refit_ = 0;
  cusum_ = 0.0;
  refit_streak_ = 0;
  widening_pp_ = 0.0;
  cooldown_remaining_ = config_.cooldown_batches;
}

}  // namespace flare::core
