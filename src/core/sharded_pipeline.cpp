#include "core/sharded_pipeline.hpp"

#include <exception>
#include <utility>

#include "util/error.hpp"
#include "util/hash.hpp"

namespace flare::core {
namespace {

/// Runs `body(i)` for every shard index, on the shard pool when present.
/// Exceptions thrown inside a pool worker are captured per shard and the
/// first (lowest index) rethrown after the barrier — same observable
/// behaviour as the serial loop up to which sibling shards completed.
template <typename Body>
void for_each_shard(util::ThreadPool* pool, std::size_t count, const Body& body) {
  if (pool == nullptr) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::vector<std::exception_ptr> errors(count);
  util::parallel_for(*pool, count, [&](std::size_t i) {
    try {
      body(i);
    } catch (...) {
      errors[i] = std::current_exception();
    }
  });
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace

ShardedPipeline::ShardedPipeline(ShardedConfig config,
                                 const dcsim::JobCatalog& catalog)
    : config_(std::move(config)) {
  ensure(!config_.fleet.shapes.empty(),
         "ShardedPipeline: the fleet needs at least one shape");
  for (std::size_t i = 0; i < config_.fleet.shapes.size(); ++i) {
    ensure(config_.fleet.shapes[i].num_machines > 0,
           "ShardedPipeline: every shape needs a positive machine count");
    ensure(!config_.fleet.shapes[i].machine.name.empty(),
           "ShardedPipeline: every shape needs a machine name (the shape id)");
    ensure(!config_.fleet.index_of(config_.fleet.shapes[i].machine.name)
                .has_value() ||
               *config_.fleet.index_of(config_.fleet.shapes[i].machine.name) == i,
           "ShardedPipeline: duplicate shape name in the fleet table");
  }
  if (config_.shard_threads != 1) {
    shard_pool_ = std::make_unique<util::ThreadPool>(config_.shard_threads);
  }
  shards_.reserve(config_.fleet.shapes.size());
  for (std::size_t i = 0; i < config_.fleet.shapes.size(); ++i) {
    FlareConfig shard_config = config_.base;
    shard_config.machine = config_.fleet.shapes[i].machine;
    // The shard's fingerprint lineage: shape tag in the root, so stages of
    // different shards can never splice (see AnalyzerConfig::lineage_tag).
    shard_config.analyzer.lineage_tag = shard_lineage_tag(i);
    // Shard-level and stage-level parallelism never nest: when shards run in
    // parallel, each shard computes inline on its worker slot.
    if (shard_pool_ != nullptr) shard_config.threads = 1;
    shards_.push_back(std::make_unique<FlarePipeline>(shard_config, catalog));
  }
}

std::uint64_t ShardedPipeline::shard_lineage_tag(std::size_t index) const {
  ensure(index < config_.fleet.shapes.size(),
         "ShardedPipeline::shard_lineage_tag: shape index out of range");
  return lineage_tag_for(config_.fleet.shapes[index].machine.name, index);
}

std::uint64_t ShardedPipeline::lineage_tag_for(std::string_view shape_name,
                                               std::size_t index) {
  std::uint64_t h = util::fnv1a(shape_name);
  h = util::hash_mix(h, static_cast<std::uint64_t>(index) + 1);
  return h != 0 ? h : 1;  // the tag must be nonzero to take effect
}

void ShardedPipeline::fit(const dcsim::FleetScenarioSet& fleet_set) {
  ensure(fleet_set.per_shape.size() == shards_.size(),
         "ShardedPipeline::fit: one scenario set per fleet shape, in table "
         "order");
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const dcsim::ScenarioSet& set = fleet_set.per_shape[i];
    ensure(!set.scenarios.empty(),
           "ShardedPipeline::fit: shape '" +
               config_.fleet.shapes[i].machine.name +
               "' has no scenarios — every shard needs a population to fit");
    ensure(set.machine_type == config_.fleet.shapes[i].machine.name,
           "ShardedPipeline::fit: per-shape set " + std::to_string(i) +
               " is tagged '" + set.machine_type + "' but the fleet table " +
               "expects '" + config_.fleet.shapes[i].machine.name + "'");
  }
  for_each_shard(shard_pool_.get(), shards_.size(),
                 [&](std::size_t i) { shards_[i]->fit(fleet_set.per_shape[i]); });
}

void ShardedPipeline::fit(const dcsim::ScenarioSet& mixed) {
  fit(dcsim::split_by_shape(mixed, config_.fleet));
}

FleetIngestReport ShardedPipeline::ingest(const dcsim::ScenarioSet& mixed_batch,
                                          RefitPolicy policy) {
  ensure(fitted(), "ShardedPipeline::ingest: call fit() first");
  ensure(!mixed_batch.scenarios.empty(), "ShardedPipeline::ingest: empty batch");
  const dcsim::FleetScenarioSet routed =
      dcsim::split_by_shape(mixed_batch, config_.fleet);

  FleetIngestReport report;
  report.per_shape.resize(shards_.size());
  report.appended = mixed_batch.scenarios.size();
  // Only shards the batch routed rows to run at all: an untouched shard's
  // drift gate never fires, its analysis never moves (ctest -L shard pins
  // this isolation).
  for_each_shard(shard_pool_.get(), shards_.size(), [&](std::size_t i) {
    if (routed.per_shape[i].scenarios.empty()) return;
    report.per_shape[i] = shards_[i]->ingest(routed.per_shape[i], policy);
  });
  return report;
}

FleetEstimate ShardedPipeline::evaluate(const Feature& feature) {
  ensure(fitted(), "ShardedPipeline::evaluate: call fit() first");
  const std::vector<double> w = weights();
  std::vector<ShardFeatureEstimate> shards;
  shards.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards.push_back({config_.fleet.shapes[i].machine.name, w[i],
                      shards_[i]->evaluate(feature)});
  }
  return fan_in(std::move(shards));
}

ValidatedFleetEstimate ShardedPipeline::evaluate_with_validation(
    const Feature& feature) {
  ensure(fitted(),
         "ShardedPipeline::evaluate_with_validation: call fit() first");
  const std::vector<double> w = weights();
  std::vector<ShardValidatedEstimate> shards;
  shards.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    shards.push_back({config_.fleet.shapes[i].machine.name, w[i],
                      shards_[i]->evaluate_with_validation(feature)});
  }
  return fan_in_validated(std::move(shards));
}

FleetPerJobEstimate ShardedPipeline::evaluate_per_job(const Feature& feature,
                                                      dcsim::JobType job) {
  ensure(fitted(), "ShardedPipeline::evaluate_per_job: call fit() first");
  const std::vector<double> w = weights();
  std::vector<ShardPerJobEstimate> shards;
  shards.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    ShardPerJobEstimate entry;
    entry.shape = config_.fleet.shapes[i].machine.name;
    entry.weight = w[i];
    // Cross-shard fallback: a shape whose population never ran the job
    // contributes nothing; fan_in_per_job renormalises the covering shapes.
    if (shard_has_job(i, job)) {
      entry.estimate = shards_[i]->evaluate_per_job(feature, job);
    }
    shards.push_back(std::move(entry));
  }
  return fan_in_per_job(std::move(shards));
}

bool ShardedPipeline::shard_has_job(std::size_t index,
                                    dcsim::JobType job) const {
  for (const dcsim::ColocationScenario& s :
       shards_[index]->scenario_set().scenarios) {
    if (s.mix.count(job) > 0) return true;
  }
  return false;
}

bool ShardedPipeline::fitted() const {
  if (shards_.empty()) return false;
  for (const auto& shard : shards_) {
    if (!shard->fitted()) return false;
  }
  return true;
}

const FlarePipeline& ShardedPipeline::shard(std::size_t index) const {
  ensure(index < shards_.size(), "ShardedPipeline::shard: index out of range");
  return *shards_[index];
}

std::vector<double> ShardedPipeline::weights() const {
  return config_.fleet.population_weights();
}

std::size_t ShardedPipeline::scenario_replays() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->scenario_replays();
  return total;
}

}  // namespace flare::core
