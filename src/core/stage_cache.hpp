// Budgeted spill/eviction cache for large analysis intermediates
// (DESIGN.md §12).
//
// The stage graph already proves when an intermediate is reusable: equal
// input fingerprints imply bit-equal outputs (core/stage_graph.hpp). This
// cache adds the missing storage policy for the out-of-core regime, where
// keeping every intermediate resident would defeat the memory budget:
//
//   - entries are keyed by (stage name, input fingerprint) — a hit is
//     guaranteed to be the bit-exact output the stage would recompute;
//   - a configurable budget caps resident bytes; when exceeded, cold entries
//     are *spilled* to disk (raw row-major doubles, bit-identical on reload)
//     and their RAM freed;
//   - eviction order is priority-then-LRU, where the priority is the
//     incremental-PCA subspace-drift fraction (sin θ_max / escalation limit)
//     of the basis the intermediate was projected through: a basis near the
//     limit is about to be invalidated by a cold refit, so its intermediates
//     are the first to leave RAM;
//   - a get() miss (no entry and no spill file) simply reports the miss —
//     callers recompute via get_or_compute(), which also re-inserts.
//
// Spill files are content-addressed (`<stage>-<fingerprint>.spill`), so a
// fresh cache pointed at the same spill directory transparently reloads
// intermediates spilled by an earlier process. Zero fingerprints (the
// poisoned / never-computed sentinel) are rejected: a poisoned result must
// never be spliced anywhere, including through this cache.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <string>
#include <string_view>

#include "linalg/matrix.hpp"

namespace flare::core {

struct StageCacheConfig {
  /// Resident-bytes cap. 0 = unbounded (nothing ever spills).
  std::size_t memory_budget_bytes = 0;
  /// Where spilled entries go. Empty = spilling disabled: over-budget
  /// entries are dropped outright and cost a recompute on the next miss.
  std::string spill_dir;
  /// Lineage namespace mixed into every key (and spill filename) when
  /// nonzero. The sharded data plane points each shape's cache at one shared
  /// spill directory; the tag keeps the shards' content-addressed files
  /// disjoint even when two shards compute identical fingerprints
  /// (DESIGN.md §13). 0 (default) = untagged, keys and filenames unchanged.
  std::uint64_t lineage_tag = 0;
};

struct StageCacheStats {
  std::size_t hits = 0;         ///< served from RAM
  std::size_t reloads = 0;      ///< served from a spill file
  std::size_t misses = 0;       ///< caller must recompute
  std::size_t spills = 0;       ///< entries written to disk under pressure
  std::size_t drops = 0;        ///< entries discarded (no spill dir)
  std::size_t resident_bytes = 0;
  std::size_t spilled_bytes = 0;
};

class StageOutputCache {
 public:
  explicit StageOutputCache(StageCacheConfig config = {});

  /// Inserts (or overwrites) the output of `stage` for the given input
  /// fingerprint. `eviction_priority` ∈ [0, 1]: the drift fraction of the
  /// basis behind this intermediate — higher leaves RAM first. May trigger
  /// spills of colder entries to get back under budget.
  void put(std::string_view stage, std::uint64_t fingerprint,
           linalg::Matrix value, double eviction_priority = 0.0);

  /// Re-scores an entry (the ingest path calls this as drift accumulates).
  /// Unknown keys are ignored.
  void set_priority(std::string_view stage, std::uint64_t fingerprint,
                    double eviction_priority);

  /// Returns a copy of the cached output, transparently reloading a spilled
  /// entry (which re-enters RAM and may push something else out). On a cold
  /// start the spill directory is probed too, so intermediates spilled by an
  /// earlier process are found. nullopt = miss, caller recomputes.
  [[nodiscard]] std::optional<linalg::Matrix> get(std::string_view stage,
                                                  std::uint64_t fingerprint);

  /// get() with a recompute fallback: on miss, runs `compute`, inserts the
  /// result under (stage, fingerprint, priority), and returns it.
  [[nodiscard]] linalg::Matrix get_or_compute(
      std::string_view stage, std::uint64_t fingerprint,
      double eviction_priority, const std::function<linalg::Matrix()>& compute);

  /// Forgets one entry (RAM and spill file).
  void invalidate(std::string_view stage, std::uint64_t fingerprint);

  /// Forgets everything, deleting this cache's spill files.
  void clear();

  [[nodiscard]] const StageCacheStats& stats() const { return stats_; }
  [[nodiscard]] const StageCacheConfig& config() const { return config_; }
  [[nodiscard]] std::size_t entries() const { return entries_.size(); }

  /// Spill-file path for a key, lineage tag applied (exposed for tests).
  [[nodiscard]] std::string spill_path(std::string_view stage,
                                       std::uint64_t fingerprint) const;

 private:
  /// Namespaces a caller fingerprint with config_.lineage_tag. Identity when
  /// the tag is 0 or the fingerprint is the poisoned sentinel 0 (which must
  /// stay rejectable). Applied once at every public entry point; entries
  /// store the tagged value.
  [[nodiscard]] std::uint64_t tagged(std::uint64_t fingerprint) const;

  /// spill_path for an already-tagged fingerprint (what entries store).
  [[nodiscard]] std::string tagged_spill_path(std::string_view stage,
                                              std::uint64_t fingerprint) const;

  struct Entry {
    std::string stage;
    std::uint64_t fingerprint = 0;
    double priority = 0.0;
    bool resident = false;   ///< value holds the matrix
    bool spilled = false;    ///< a spill file exists
    std::size_t bytes = 0;   ///< payload size (rows × cols × 8)
    linalg::Matrix value;
  };

  using EntryList = std::list<Entry>;  ///< front = most recently used

  [[nodiscard]] EntryList::iterator find(std::string_view stage,
                                         std::uint64_t fingerprint);
  void make_room();
  void spill(Entry& entry);
  [[nodiscard]] static std::size_t payload_bytes(const linalg::Matrix& m) {
    return m.rows() * m.cols() * sizeof(double);
  }

  StageCacheConfig config_;
  EntryList entries_;
  StageCacheStats stats_;
};

}  // namespace flare::core
