#include "core/fleet_estimator.hpp"

#include <cmath>
#include <utility>

#include "util/error.hpp"

namespace flare::core {
namespace {

constexpr double kWeightTolerance = 1e-9;

void check_weights(const std::vector<double>& weights, std::string_view who) {
  double total = 0.0;
  for (const double w : weights) {
    ensure(std::isfinite(w) && w >= 0.0,
           std::string(who) + ": shard weights must be finite and >= 0");
    total += w;
  }
  ensure(std::abs(total - 1.0) <= kWeightTolerance,
         std::string(who) + ": shard weights must sum to 1");
}

}  // namespace

ReplayLedger combine_ledgers(const std::vector<double>& weights,
                             const std::vector<const ReplayLedger*>& ledgers) {
  ensure(weights.size() == ledgers.size(),
         "combine_ledgers: one weight per ledger");
  ReplayLedger out;
  for (std::size_t s = 0; s < ledgers.size(); ++s) {
    const double w = weights[s];
    const ReplayLedger& l = *ledgers[s];
    // Masses live in cluster-weight units that sum to 1 per shard, so the
    // weighted sum conserves: Σ_s w_s · total_mass_s = Σ_s w_s = 1.
    out.direct_mass += w * l.direct_mass;
    out.fallback_mass += w * l.fallback_mass;
    out.quarantined_mass += w * l.quarantined_mass;
    out.pending_mass += w * l.pending_mass;
    out.measurement_uncertainty_pp += w * l.measurement_uncertainty_pp;
    out.quarantine_widening_pp += w * l.quarantine_widening_pp;
    out.staleness_widening_pp += w * l.staleness_widening_pp;
    // Counters and costs are physical totals, not shares.
    out.clusters_direct += l.clusters_direct;
    out.clusters_fallback += l.clusters_fallback;
    out.clusters_quarantined += l.clusters_quarantined;
    out.total_attempts += l.total_attempts;
    out.failed_attempts += l.failed_attempts;
    out.fallback_probes += l.fallback_probes;
    out.simulated_seconds += l.simulated_seconds;
  }
  return out;
}

FleetEstimate fan_in(std::vector<ShardFeatureEstimate> shards) {
  ensure(!shards.empty(), "fan_in: no shard estimates");
  std::vector<double> weights;
  std::vector<const ReplayLedger*> ledgers;
  weights.reserve(shards.size());
  ledgers.reserve(shards.size());
  FleetEstimate out;
  out.feature_name = shards.front().estimate.feature_name;
  for (const ShardFeatureEstimate& s : shards) {
    ensure(s.estimate.feature_name == out.feature_name,
           "fan_in: shards estimated different features");
    weights.push_back(s.weight);
    ledgers.push_back(&s.estimate.replay);
    out.impact_pct += s.weight * s.estimate.impact_pct;
    out.scenario_replays += s.estimate.scenario_replays;
  }
  check_weights(weights, "fan_in");
  out.replay = combine_ledgers(weights, ledgers);
  out.per_shape = std::move(shards);
  return out;
}

ValidatedFleetEstimate fan_in_validated(
    std::vector<ShardValidatedEstimate> shards) {
  ensure(!shards.empty(), "fan_in_validated: no shard estimates");
  std::vector<ShardFeatureEstimate> plain;
  plain.reserve(shards.size());
  for (const ShardValidatedEstimate& s : shards) {
    plain.push_back({s.shape, s.weight, s.estimate.estimate});
  }
  ValidatedFleetEstimate out;
  out.estimate = fan_in(std::move(plain));
  for (const ShardValidatedEstimate& s : shards) {
    out.validation_impact_pct += s.weight * s.estimate.validation_impact_pct;
    out.uncertainty_pp += s.weight * s.estimate.uncertainty_pp;
  }
  out.per_shape = std::move(shards);
  return out;
}

FleetPerJobEstimate fan_in_per_job(std::vector<ShardPerJobEstimate> shards) {
  ensure(!shards.empty(), "fan_in_per_job: no shard estimates");
  {
    std::vector<double> weights;
    weights.reserve(shards.size());
    for (const ShardPerJobEstimate& s : shards) weights.push_back(s.weight);
    check_weights(weights, "fan_in_per_job");
  }
  FleetPerJobEstimate out;
  bool seeded = false;
  for (const ShardPerJobEstimate& s : shards) {
    if (!s.estimate.has_value()) continue;
    if (!seeded) {
      out.feature_name = s.estimate->feature_name;
      out.job = s.estimate->job;
      seeded = true;
    } else {
      ensure(s.estimate->feature_name == out.feature_name &&
                 s.estimate->job == out.job,
             "fan_in_per_job: shards estimated different features or jobs");
    }
    out.covered_weight += s.weight;
  }
  if (!seeded || out.covered_weight <= 0.0) {
    throw ReplayError(
        "fan_in_per_job: the job runs on no shape of the fleet — no shard "
        "population contains it, so there is nothing to estimate");
  }
  // Renormalise over the covering shards: their fan-in must still sum to 1.
  std::vector<double> covered_weights;
  std::vector<const ReplayLedger*> ledgers;
  for (const ShardPerJobEstimate& s : shards) {
    if (!s.estimate.has_value()) continue;
    const double w = s.weight / out.covered_weight;
    covered_weights.push_back(w);
    ledgers.push_back(&s.estimate->replay);
    out.impact_pct += w * s.estimate->impact_pct;
    out.scenario_replays += s.estimate->scenario_replays;
  }
  out.replay = combine_ledgers(covered_weights, ledgers);
  out.per_shape = std::move(shards);
  return out;
}

}  // namespace flare::core
