#include "core/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <queue>
#include <set>
#include <utility>

#include "util/error.hpp"

namespace flare::core {
namespace {

constexpr double kWeightTolerance = 1e-9;

/// One schedulable replay: a single (scenario row × feature) testbed run.
/// Fallback and validation re-probes are fresh units, enqueued when their
/// parent settles — that is the backfill: they join the queue at their
/// cluster's priority and land on whichever testbed frees up first.
struct Unit {
  double priority = 0.0;  ///< shard weight × cluster weight (heavy first)
  int kind_rank = 0;      ///< 0 = representative/fallback, 1 = validation
  std::size_t shard = 0;
  std::size_t cluster = 0;
  std::size_t seq = 0;  ///< insertion order — the deterministic tiebreak
  std::size_t row = 0;  ///< scenario row to replay
  CampaignUnitKind kind = CampaignUnitKind::kRepresentative;
  double not_before = 0.0;  ///< parent's simulated end time (causality)
};

/// std::priority_queue comparator: true = a dispatches AFTER b.
struct UnitOrder {
  bool operator()(const Unit& a, const Unit& b) const {
    if (a.priority != b.priority) return a.priority < b.priority;
    if (a.kind_rank != b.kind_rank) return a.kind_rank > b.kind_rank;
    if (a.shard != b.shard) return a.shard > b.shard;
    if (a.cluster != b.cluster) return a.cluster > b.cluster;
    return a.seq > b.seq;
  }
};

/// Per-(shard, cluster) campaign bookkeeping. `h` is the anytime half-width
/// state: it starts at the prior and is only ever min-clamped, which is what
/// makes the band monotone (FP multiplication and addition are monotone, so
/// componentwise non-increasing w·h terms summed in a fixed order give a
/// non-increasing band).
struct ClusterState {
  double cluster_weight = 0.0;
  std::size_t size = 0;     ///< member count (singletons skip validation)
  double h = 0.0;           ///< current half-width contribution (pp)
  bool measured = false;
  bool quarantined = false;
  ClusterReplayStatus status = ClusterReplayStatus::kDirect;
  std::size_t rep_row = 0;   ///< the analysis' chosen representative
  std::size_t used_row = 0;  ///< row the accepted reading came from
  double impact_pct = 0.0;
  double ci_halfwidth_pp = 0.0;
  /// Outward walk (members by distance from the centroid), fetched lazily on
  /// the first fallback or validation probe.
  std::vector<std::size_t> ordered;
  bool ordered_ready = false;
  std::size_t rep_walk_pos = 0;  ///< next `ordered` index for fallback probes
  std::size_t val_walk_pos = 0;  ///< next `ordered` index for validation probes
  int rep_probes = 0;            ///< fallback probes issued (bound: policy)
  int val_probes = 0;            ///< validation probes issued (bound: 1+policy)
};

/// The anytime estimate/band/ledger over the current cluster states,
/// aggregated shard-by-shard so the clean exhausted campaign reproduces the
/// FlareEstimator → fan_in floating-point accumulation order exactly.
struct Snapshot {
  double impact_pct = 0.0;
  double band_pp = 0.0;
  double measured_mass = 0.0;
  ReplayLedger ledger;
};

}  // namespace

std::string_view to_string(CampaignUnitKind kind) {
  switch (kind) {
    case CampaignUnitKind::kRepresentative:
      return "representative";
    case CampaignUnitKind::kValidation:
      return "validation";
  }
  return "unknown";
}

std::string_view to_string(CampaignStopReason reason) {
  switch (reason) {
    case CampaignStopReason::kExhausted:
      return "exhausted";
    case CampaignStopReason::kTargetReached:
      return "target_reached";
    case CampaignStopReason::kBudgetExhausted:
      return "budget_exhausted";
  }
  return "unknown";
}

CampaignScheduler::CampaignScheduler(CampaignConfig config, ReplayPolicy policy,
                                     dcsim::ReplayFaultOptions faults)
    : config_(config), policy_(policy), faults_(faults) {
  ensure(config_.num_testbeds >= 1, "CampaignScheduler: need at least one testbed");
  ensure(config_.testbed_speed_factors.empty() ||
             config_.testbed_speed_factors.size() == config_.num_testbeds,
         "CampaignScheduler: testbed_speed_factors must be empty or match "
         "num_testbeds");
  ensure(config_.checkpoint_every >= 1,
         "CampaignScheduler: checkpoint_every must be >= 1");
  ensure(config_.prior_halfwidth_pp > 0.0,
         "CampaignScheduler: prior_halfwidth_pp must be positive");
}

void CampaignScheduler::add_shard(std::string name, double weight,
                                  const AnalysisResult& analysis,
                                  const dcsim::ScenarioSet& set,
                                  const ImpactModel& impact) {
  ensure(weight > 0.0, "CampaignScheduler::add_shard: non-positive shard weight");
  ensure(analysis.cluster_space.rows() == set.scenarios.size(),
         "CampaignScheduler::add_shard: analysis rows must match the scenario set");
  ensure(analysis.representatives.size() == analysis.chosen_k,
         "CampaignScheduler::add_shard: analysis is missing representatives");
  shards_.push_back(Shard{std::move(name), weight, &analysis, &set, &impact});
}

CampaignState CampaignScheduler::run(const Feature& feature) const {
  ensure(!shards_.empty(), "CampaignScheduler::run: no shards registered");
  {
    double total = 0.0;
    for (const Shard& s : shards_) total += s.weight;
    ensure(std::abs(total - 1.0) <= kWeightTolerance,
           "CampaignScheduler::run: shard weights must sum to 1");
  }

  // The testbed × shard Replayer grid: every testbed gets its own fault-model
  // instance built from the same options, so the fault streams — pure
  // functions of (seed, scenario, feature, attempt) — are identical on every
  // slot and the campaign's measurements are placement-invariant.
  std::vector<std::vector<Replayer>> grid(config_.num_testbeds);
  for (std::vector<Replayer>& row : grid) {
    row.reserve(shards_.size());
    for (const Shard& s : shards_) {
      row.emplace_back(*s.impact, policy_, dcsim::ReplayFaultModel(faults_));
    }
  }
  dcsim::TestbedFarm farm(config_.num_testbeds, config_.testbed_speed_factors);

  // Per-cluster states, shard-major.
  std::vector<std::vector<ClusterState>> states(shards_.size());
  std::size_t clusters_total = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const AnalysisResult& a = *shards_[s].analysis;
    states[s].resize(a.chosen_k);
    clusters_total += a.chosen_k;
    for (std::size_t c = 0; c < a.chosen_k; ++c) {
      ClusterState& cs = states[s][c];
      cs.cluster_weight = a.cluster_weights[c];
      cs.size = a.clustering.cluster_sizes[c];
      cs.h = config_.prior_halfwidth_pp;
      cs.rep_row = a.representatives[c];
      cs.used_row = cs.rep_row;
    }
  }

  // Seed the queue: one representative unit per cluster, heavy-first.
  std::priority_queue<Unit, std::vector<Unit>, UnitOrder> queue;
  std::size_t seq = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    for (std::size_t c = 0; c < states[s].size(); ++c) {
      queue.push(Unit{shards_[s].weight * states[s][c].cluster_weight, 0, s, c,
                      seq++, states[s][c].rep_row,
                      CampaignUnitKind::kRepresentative, 0.0});
    }
  }

  CampaignState out;
  out.feature_name = feature.name();
  out.num_testbeds = config_.num_testbeds;
  out.target_ci_pp = config_.target_ci_pp;
  out.budget_seconds = config_.budget_seconds;
  out.clusters_total = clusters_total;

  std::set<std::pair<std::size_t, std::size_t>> distinct;  // (shard, row)
  int total_attempts = 0;
  int failed_attempts = 0;
  int fallback_probes = 0;
  double busy = 0.0;

  const auto snapshot = [&]() -> Snapshot {
    Snapshot snap;
    double covered_weight = 0.0;    // Σ shard weights with any measured mass
    double num = 0.0, den = 0.0;    // anytime projection accumulators
    double impact_final = 0.0;      // Σ w_s · shard impact (final regimes)
    bool all_covered = true;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const double ws = shards_[s].weight;
      double sum_wr = 0.0, meas = 0.0, pend = 0.0, quar = 0.0, band = 0.0;
      double lo = std::numeric_limits<double>::infinity();
      double hi = -std::numeric_limits<double>::infinity();
      int n_direct = 0, n_fallback = 0, n_quarantined = 0;
      for (const ClusterState& cs : states[s]) {
        const double w = cs.cluster_weight;
        band += w * cs.h;
        if (cs.measured) {
          meas += w;
          sum_wr += w * cs.impact_pct;
          lo = std::min(lo, cs.impact_pct);
          hi = std::max(hi, cs.impact_pct);
          if (cs.status == ClusterReplayStatus::kDirect) {
            ++n_direct;
          } else {
            ++n_fallback;
          }
        } else if (cs.quarantined) {
          quar += w;
          ++n_quarantined;
        } else {
          pend += w;
        }
      }
      // Shard masses fan in with the shard weight, conserving Σ = 1.
      double direct = 0.0, fallback = 0.0;
      for (const ClusterState& cs : states[s]) {
        if (!cs.measured) continue;
        if (cs.status == ClusterReplayStatus::kDirect) {
          direct += cs.cluster_weight;
        } else {
          fallback += cs.cluster_weight;
        }
      }
      snap.ledger.direct_mass += ws * direct;
      snap.ledger.fallback_mass += ws * fallback;
      snap.ledger.quarantined_mass += ws * quar;
      snap.ledger.pending_mass += ws * pend;
      snap.ledger.clusters_direct += n_direct;
      snap.ledger.clusters_fallback += n_fallback;
      snap.ledger.clusters_quarantined += n_quarantined;
      snap.band_pp += ws * band;
      snap.measured_mass += ws * meas;

      // Shard impact, mirroring FlareEstimator::estimate: no renormalisation
      // on full clean coverage (the division by ≈1 would break bit-identity
      // with the eager path), renormalise to the replayed mass when clusters
      // were quarantined.
      const double renorm = (pend == 0.0 && quar > 0.0 && meas > 0.0) ? meas : 1.0;
      double meas_unc = 0.0;
      for (const ClusterState& cs : states[s]) {
        if (!cs.measured) continue;
        meas_unc += (cs.cluster_weight / renorm) * cs.ci_halfwidth_pp;
      }
      snap.ledger.measurement_uncertainty_pp += ws * meas_unc;
      if (quar > 0.0 && meas > 0.0 && pend == 0.0) {
        snap.ledger.quarantine_widening_pp += ws * (quar * (hi - lo) / 2.0);
      }

      num += ws * sum_wr;
      den += ws * meas;
      if (meas > 0.0) {
        covered_weight += ws;
        impact_final += ws * (sum_wr / renorm);
      } else {
        all_covered = false;
      }
    }
    if (snap.ledger.pending_mass > 0.0) {
      // Mid-campaign: project the measured mass over the whole population.
      snap.impact_pct = den > 0.0 ? num / den : 0.0;
    } else if (all_covered) {
      // Final, every shard covered: the fan_in accumulation, bit for bit.
      snap.impact_pct = impact_final;
    } else {
      // Final with whole shards lost: renormalise over the covering shards.
      snap.impact_pct = covered_weight > 0.0 ? impact_final / covered_weight : 0.0;
    }
    snap.ledger.total_attempts = total_attempts;
    snap.ledger.failed_attempts = failed_attempts;
    snap.ledger.fallback_probes = fallback_probes;
    snap.ledger.simulated_seconds = busy;
    return snap;
  };

  const auto record_checkpoint = [&](const Snapshot& snap) {
    CampaignCheckpoint cp;
    cp.units_completed = out.units_completed;
    cp.impact_pct = snap.impact_pct;
    cp.band_pp = snap.band_pp;
    cp.measured_mass = snap.measured_mass;
    cp.ledger = snap.ledger;
    cp.simulated_seconds = busy;
    cp.attempts = total_attempts;
    out.checkpoints.push_back(cp);
  };

  // Walks a cluster's ordered member list from `pos`, returning the next row
  // that is not `skip` (or nullopt when the walk is exhausted).
  const auto next_member = [](ClusterState& cs, const AnalysisResult& a,
                              std::size_t cluster, std::size_t& pos,
                              std::size_t skip) -> std::optional<std::size_t> {
    if (!cs.ordered_ready) {
      cs.ordered = a.members_by_distance(cluster);
      cs.ordered_ready = true;
    }
    while (pos < cs.ordered.size()) {
      const std::size_t row = cs.ordered[pos++];
      if (row != skip) return row;
    }
    return std::nullopt;
  };

  Snapshot last = snapshot();
  bool stopped = false;
  if (config_.target_ci_pp > 0.0 && last.band_pp <= config_.target_ci_pp) {
    // The prior alone already satisfies the target; nothing to replay.
    out.stop = CampaignStopReason::kTargetReached;
    stopped = true;
  }

  std::size_t last_checkpoint_units = std::numeric_limits<std::size_t>::max();
  while (!stopped && !queue.empty()) {
    if (config_.budget_seconds > 0.0 && busy >= config_.budget_seconds) {
      out.stop = CampaignStopReason::kBudgetExhausted;
      stopped = true;
      break;
    }
    const Unit u = queue.top();
    queue.pop();
    ClusterState& cs = states[u.shard][u.cluster];
    const Shard& shard = shards_[u.shard];

    const std::size_t testbed = farm.acquire();
    Replayer& replayer = grid[testbed][u.shard];
    const ReplayMeasurement m =
        replayer.replay_scenario_measured(shard.set->scenarios[u.row], feature);
    // The slot's occupancy (and bill) scales with its speed factor; the
    // homogeneous path divides by exactly 1.0 and stays bit-identical.
    const double slot_seconds =
        m.simulated_seconds / farm.speed_factor(testbed);
    const double start =
        farm.commit(testbed, m.simulated_seconds,
                    static_cast<std::size_t>(m.attempts), u.not_before);
    const double end = start + slot_seconds;
    busy += slot_seconds;
    total_attempts += m.attempts;
    failed_attempts += m.failed_attempts;
    distinct.insert({u.shard, u.row});

    CampaignUnitTrace t;
    t.order = out.units_completed;
    t.testbed = testbed;
    t.shard = u.shard;
    t.cluster = u.cluster;
    t.kind = u.kind;
    t.scenario_row = u.row;
    t.start_seconds = start;
    t.end_seconds = end;
    t.attempts = m.attempts;
    t.ok = m.ok();
    out.trace.push_back(t);
    ++out.units_completed;
    if (!m.ok()) ++out.units_failed;

    if (u.kind == CampaignUnitKind::kRepresentative) {
      if (m.ok()) {
        cs.measured = true;
        cs.status = u.row == cs.rep_row ? ClusterReplayStatus::kDirect
                                        : ClusterReplayStatus::kFallback;
        cs.used_row = u.row;
        cs.impact_pct = m.impact_pct;
        cs.ci_halfwidth_pp = m.ci_halfwidth_pp;
        const bool will_validate = config_.validation && cs.size >= 2;
        // A measured representative collapses the prior to half (the
        // remaining uncertainty is the within-cluster spread the validation
        // probe will pin down) plus the reading's own CI; singleton or
        // unvalidated clusters go straight to the reading CI — their
        // representative IS the whole spread information we will ever have.
        const double candidate =
            will_validate ? 0.5 * config_.prior_halfwidth_pp + m.ci_halfwidth_pp
                          : m.ci_halfwidth_pp;
        cs.h = std::min(cs.h, candidate);
        if (will_validate) {
          const std::optional<std::size_t> probe = next_member(
              cs, *shard.analysis, u.cluster, cs.val_walk_pos, cs.used_row);
          if (probe.has_value()) {
            ++cs.val_probes;
            queue.push(Unit{u.priority, 1, u.shard, u.cluster, seq++, *probe,
                            CampaignUnitKind::kValidation, end});
          } else {
            cs.h = std::min(cs.h, m.ci_halfwidth_pp);
          }
        }
      } else if (cs.rep_probes < policy_.max_fallback_probes) {
        // Backfill a fallback probe: the next-nearest member is the
        // next-best proxy for the cluster (same outward walk the eager
        // estimator runs).
        const std::optional<std::size_t> probe = next_member(
            cs, *shard.analysis, u.cluster, cs.rep_walk_pos, cs.rep_row);
        if (probe.has_value()) {
          ++cs.rep_probes;
          ++fallback_probes;
          queue.push(Unit{u.priority, 0, u.shard, u.cluster, seq++, *probe,
                          CampaignUnitKind::kRepresentative, end});
        } else {
          cs.quarantined = true;
          cs.status = ClusterReplayStatus::kQuarantined;
        }
      } else {
        cs.quarantined = true;
        cs.status = ClusterReplayStatus::kQuarantined;
      }
    } else {  // kValidation
      if (m.ok()) {
        // The estimator's band term for a validated cluster: half the
        // rep-vs-runner-up spread plus the representative reading's CI.
        const double candidate =
            std::abs(cs.impact_pct - m.impact_pct) / 2.0 + cs.ci_halfwidth_pp;
        cs.h = std::min(cs.h, candidate);
      } else if (cs.val_probes < 1 + policy_.max_fallback_probes) {
        const std::optional<std::size_t> probe = next_member(
            cs, *shard.analysis, u.cluster, cs.val_walk_pos, cs.used_row);
        if (probe.has_value()) {
          ++cs.val_probes;
          queue.push(Unit{u.priority, 1, u.shard, u.cluster, seq++, *probe,
                          CampaignUnitKind::kValidation, end});
        } else {
          // No healthy runner-up: no spread information for this cluster.
          cs.h = std::min(cs.h, cs.ci_halfwidth_pp);
        }
      } else {
        cs.h = std::min(cs.h, cs.ci_halfwidth_pp);
      }
    }

    last = snapshot();
    if (out.units_completed % config_.checkpoint_every == 0) {
      record_checkpoint(last);
      last_checkpoint_units = out.units_completed;
    }
    if (config_.target_ci_pp > 0.0 && last.band_pp <= config_.target_ci_pp) {
      out.stop = CampaignStopReason::kTargetReached;
      stopped = true;
    }
  }
  if (!stopped) out.stop = CampaignStopReason::kExhausted;
  if (last_checkpoint_units != out.units_completed) record_checkpoint(last);

  out.impact_pct = last.impact_pct;
  out.band_pp = last.band_pp;
  out.ledger = last.ledger;
  out.distinct_replays = distinct.size();
  out.makespan_seconds = farm.makespan_seconds();
  out.total_busy_seconds = farm.total_busy_seconds();
  out.testbeds = farm.utilisation();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    for (std::size_t c = 0; c < states[s].size(); ++c) {
      const ClusterState& cs = states[s][c];
      CampaignClusterRow row;
      row.shard = s;
      row.cluster = c;
      row.weight = shards_[s].weight * cs.cluster_weight;
      row.measured = cs.measured;
      row.status = cs.status;
      row.scenario_row = cs.used_row;
      row.impact_pct = cs.impact_pct;
      row.ci_halfwidth_pp = cs.ci_halfwidth_pp;
      row.halfwidth_pp = cs.h;
      out.clusters.push_back(row);
    }
  }
  return out;
}

CampaignState run_campaign(const FlarePipeline& pipeline, const Feature& feature,
                           const CampaignConfig& config) {
  ensure(pipeline.fitted(), "run_campaign: pipeline is not fitted");
  CampaignScheduler scheduler(config, pipeline.config().replay,
                              pipeline.config().replay_faults);
  const std::string name = pipeline.scenario_set().machine_type.empty()
                               ? std::string("all")
                               : pipeline.scenario_set().machine_type;
  scheduler.add_shard(name, 1.0, pipeline.analysis(), pipeline.scenario_set(),
                      pipeline.impact_model());
  return scheduler.run(feature);
}

CampaignState run_campaign(const ShardedPipeline& fleet, const Feature& feature,
                           const CampaignConfig& config) {
  ensure(fleet.fitted(), "run_campaign: fleet is not fitted");
  CampaignScheduler scheduler(config, fleet.config().base.replay,
                              fleet.config().base.replay_faults);
  const std::vector<double> weights = fleet.weights();
  for (std::size_t s = 0; s < fleet.num_shards(); ++s) {
    const FlarePipeline& shard = fleet.shard(s);
    scheduler.add_shard(fleet.fleet().shapes[s].machine.name, weights[s],
                        shard.analysis(), shard.scenario_set(),
                        shard.impact_model());
  }
  return scheduler.run(feature);
}

}  // namespace flare::core
