// Representative-validity monitoring.
//
// The paper is explicit that representatives age: features that change the
// machine shape invalidate them outright (§2, §5.5) and scheduler changes
// shift their weights (§5.6). In production the operator needs a cheap,
// continuous answer to "are last quarter's representatives still valid?".
// This monitor compares a *fresh* batch of profiled scenarios against a
// fitted analysis and classifies the drift:
//
//   kValid    — the new behaviours fall inside the fitted groups with
//               similar frequencies; keep using the representatives.
//   kReweight — same behaviours, different frequencies (a scheduler-like
//               change); re-derive weights/representatives from step 3
//               (FlarePipeline::apply_scheduler_change / Analyzer::recluster).
//   kRefit    — the new batch contains behaviours the fitted groups do not
//               cover (shape-change-like drift); re-profile and re-fit.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "metrics/metric_database.hpp"

namespace flare::core {

enum class DriftVerdict : unsigned char { kValid, kReweight, kRefit };

[[nodiscard]] std::string_view to_string(DriftVerdict verdict);

struct DriftConfig {
  /// A new scenario is "out of coverage" when its distance to the nearest
  /// centroid exceeds this quantile of the fitted member distances. (A fresh
  /// batch always contains genuinely new mixes, so some out-of-coverage mass
  /// is normal — the verdict keys off the *scale* of the distances instead.)
  double coverage_quantile = 0.95;
  /// kRefit when the fresh batch's median nearest-centroid distance exceeds
  /// this multiple of the fitted members' median — the behaviours moved, not
  /// just the mixes.
  double refit_distance_ratio = 2.0;
  /// ... or when out-of-coverage mass is overwhelming regardless of scale.
  double refit_coverage_fraction = 0.6;
  /// kReweight when the cluster-weight total-variation distance exceeds this.
  /// Small fresh batches estimate weights noisily (TV ≈ 0.4–0.7 between two
  /// honest draws of a few hundred scenarios), hence the high default;
  /// calibrate downward for larger batches.
  double reweight_threshold = 0.75;
  /// Maximum tolerated rotation of the incrementally tracked PCA eigenbasis
  /// away from the basis the fitted analysis projects with, measured as
  /// sin(θ_max) over the kept components (ml::Pca::subspace_drift, see
  /// DESIGN.md §9). Beyond it the kAuto PCA-update policy escalates the
  /// batch action to a refit: rows absorbed so far were projected in a basis
  /// the population has rotated away from.
  double pca_drift_limit = 0.05;
  /// Quarantine escalation: when a batch's quarantined observation-weight
  /// fraction exceeds this, ingest forces a refit — absorbing that much
  /// zero-weight mass into the fitted clusters would distort their weights
  /// against the healthy population. RefitPolicy::kNever still vetoes.
  double quarantine_refit_fraction = 0.5;
};

struct DriftReport {
  DriftVerdict verdict = DriftVerdict::kValid;
  /// Fraction of new scenarios beyond the fitted coverage radius.
  double out_of_coverage_fraction = 0.0;
  /// Median fresh nearest-centroid distance / median fitted member distance.
  double distance_ratio = 0.0;
  /// Total-variation distance between fitted and fresh cluster weights.
  double weight_shift = 0.0;
  /// Fresh batch's weight share per fitted cluster (covered scenarios only).
  std::vector<double> fresh_cluster_weights;
  /// Row indices (into the fresh batch) of the uncovered scenarios.
  std::vector<std::size_t> uncovered_rows;
  /// The per-cluster coverage radii used (squared distances).
  std::vector<double> coverage_radius_sq;
};

/// Escalates a drift verdict to kRefit when the tracked eigenbasis has
/// rotated past `config.pca_drift_limit` — the kAuto PCA-update policy's
/// second trigger, independent of the distance/coverage criteria (a slow,
/// steady rotation never trips those but still degrades every projection
/// made in the stale basis). Verdicts already at kRefit pass through.
[[nodiscard]] DriftVerdict escalate_for_basis_drift(DriftVerdict verdict,
                                                    double pca_drift,
                                                    const DriftConfig& config);

class DriftMonitor {
 public:
  /// `analysis` must come from the same schema the fresh batches will use.
  explicit DriftMonitor(const AnalysisResult& analysis, DriftConfig config = {});
  DriftMonitor(AnalysisResult&&, DriftConfig = {}) = delete;  // dangling guard

  /// Projects the fresh batch through the fitted refinement/PCA/whitening and
  /// classifies the drift. The batch's observation weights drive the
  /// weight-shift computation.
  [[nodiscard]] DriftReport inspect(const metrics::MetricDatabase& fresh) const;

 private:
  const AnalysisResult* analysis_;  ///< non-owning
  DriftConfig config_;
  std::vector<double> coverage_radius_sq_;  ///< per cluster
  double fitted_median_dist_sq_ = 0.0;      ///< fleet-wide distance scale
};

}  // namespace flare::core
