// FLARE step 4 (§4.5 + §5.3): feature-impact estimation from the
// representative scenarios.
//
// All-job estimate: replay each cluster's representative and average the
// impacts weighted by cluster observation weight.
//
// Per-job estimate: a representative may not contain the job of interest
// even when its cluster does — walk outward from the centroid to the nearest
// member that does, and weight clusters by their job-instance counts.
//
// Replay-plane fault tolerance: when a representative is unreplayable after
// the Replayer's retries (hung/crashed testbed, lost machine), the estimator
// promotes a fallback by walking outward from the centroid in whitened
// cluster space — the next-nearest member is, by clustering construction, the
// next-best proxy for the cluster. A cluster whose probes are all
// unreplayable is quarantined: its observation mass is excluded and the
// remaining cluster weights renormalised, the lost mass is reported in the
// ReplayLedger, and the uncertainty band widens by the quarantined mass times
// the observed impact spread. If quarantined mass exceeds the policy
// threshold the estimate fails loudly (ReplayError) instead of returning a
// silently hollow number. With faults disabled none of this machinery runs
// and every estimate is bit-identical to the failure-free path.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "core/replayer.hpp"
#include "dcsim/scenario.hpp"

namespace flare::core {

/// How a cluster's impact reading was obtained.
enum class ClusterReplayStatus : unsigned char {
  kDirect,       ///< the chosen representative replayed successfully
  kFallback,     ///< representative unreplayable; a runner-up member replayed
  kQuarantined,  ///< no member replayed; cluster mass excluded
};

[[nodiscard]] std::string_view to_string(ClusterReplayStatus status);

struct ClusterImpact {
  std::size_t cluster = 0;
  std::size_t representative_scenario = 0;  ///< row index into the ScenarioSet
  double impact_pct = 0.0;
  double weight = 0.0;  ///< contribution weight (Σ over clusters used = 1)
  ClusterReplayStatus status = ClusterReplayStatus::kDirect;
  int attempts = 0;            ///< replay attempts spent on this cluster
  double ci_halfwidth_pp = 0.0;  ///< measurement CI of the used reading
};

/// Accounting of how the replay campaign behind an estimate went. Masses are
/// in original cluster-weight units, so direct + fallback + quarantined
/// (+ pending, for an anytime snapshot mid-campaign) = 1.
struct ReplayLedger {
  double direct_mass = 0.0;       ///< mass estimated from chosen representatives
  double fallback_mass = 0.0;     ///< mass estimated from promoted runner-ups
  double quarantined_mass = 0.0;  ///< mass excluded (unreplayable clusters)
  /// Mass not yet measured — nonzero only in anytime campaign checkpoints
  /// (core/campaign.hpp); a finished estimate always has pending == 0, so the
  /// historical three-way ledger split is unchanged.
  double pending_mass = 0.0;
  int clusters_direct = 0;
  int clusters_fallback = 0;
  int clusters_quarantined = 0;
  int total_attempts = 0;   ///< testbed attempts billed for this estimate
  int failed_attempts = 0;  ///< of which timed out / crashed / invalid
  /// Replay probes issued beyond the chosen representatives (the outward
  /// walk), successful or not.
  int fallback_probes = 0;
  /// Σ_c w_c · (CI half-width of cluster c's reading) — measurement noise
  /// propagated into the estimate; exactly 0 on the failure-free path.
  double measurement_uncertainty_pp = 0.0;
  /// Extra band width from excluded mass: quarantined_mass × (spread of the
  /// replayed cluster impacts) / 2 — the quarantined clusters could plausibly
  /// have landed anywhere in the observed range.
  double quarantine_widening_pp = 0.0;
  /// Extra band width from model staleness: under the adaptive drift
  /// response (core/drift_response.hpp) the pipeline stamps every estimate
  /// with the staleness guard's current widening — the fitted model is this
  /// many pp less trustworthy because the stream has drifted past its
  /// batch-age budget. Exactly 0 with the response disabled or fresh models.
  double staleness_widening_pp = 0.0;
  double simulated_seconds = 0.0;  ///< testbed time consumed (simulated clock)

  [[nodiscard]] double total_mass() const {
    return direct_mass + fallback_mass + quarantined_mass + pending_mass;
  }
  [[nodiscard]] bool degraded() const {
    return clusters_fallback > 0 || clusters_quarantined > 0;
  }
};

struct FeatureEstimate {
  std::string feature_name;
  double impact_pct = 0.0;                 ///< the single-number summary
  std::vector<ClusterImpact> per_cluster;  ///< Fig. 11 series (index = cluster)
  std::size_t scenario_replays = 0;        ///< evaluation cost of this estimate
  ReplayLedger replay;                     ///< replay-campaign health
};

/// A FeatureEstimate with a cheap uncertainty band (see
/// FlareEstimator::estimate_with_validation).
struct ValidatedFeatureEstimate {
  FeatureEstimate estimate;
  /// Weighted impact using each cluster's SECOND-nearest member instead of
  /// the representative — an independent probe of within-cluster spread.
  double validation_impact_pct = 0.0;
  /// Half-width of the reported band: Σ_c w_c · |rep_c − second_c| / 2, plus
  /// (under replay faults) the ledger's measurement-noise and
  /// quarantine-widening terms. Clusters are homogeneous by construction, so
  /// the rep-vs-runner-up gap bounds how much the choice of representative
  /// moves the answer.
  double uncertainty_pp = 0.0;

  [[nodiscard]] double lower() const {
    return estimate.impact_pct - uncertainty_pp;
  }
  [[nodiscard]] double upper() const {
    return estimate.impact_pct + uncertainty_pp;
  }
};

struct PerJobEstimate {
  std::string feature_name;
  dcsim::JobType job = dcsim::JobType::kDataAnalytics;
  double impact_pct = 0.0;
  /// Clusters without any instance of the job contribute nothing (nullopt).
  std::vector<std::optional<ClusterImpact>> per_cluster;
  std::size_t scenario_replays = 0;
  ReplayLedger replay;
};

class FlareEstimator {
 public:
  /// `analysis` rows must correspond 1:1 with `set.scenarios`.
  FlareEstimator(const AnalysisResult& analysis, const dcsim::ScenarioSet& set,
                 Replayer& replayer);

  /// Comprehensive HP-job impact (Fig. 12a's FLARE bar). Throws ReplayError
  /// if every cluster is unreplayable or the quarantined mass exceeds the
  /// replay policy's max_quarantined_mass.
  [[nodiscard]] FeatureEstimate estimate(const Feature& feature) const;

  /// Like estimate(), plus an uncertainty band from one extra replay per
  /// cluster (the second-nearest member). Cost: 2k replays instead of k —
  /// still ~25× cheaper than the full datacenter. Singleton clusters
  /// contribute no spread (their representative IS the cluster).
  [[nodiscard]] ValidatedFeatureEstimate estimate_with_validation(
      const Feature& feature) const;

  /// Per-job impact (Fig. 12b's FLARE bars).
  [[nodiscard]] PerJobEstimate estimate_per_job(const Feature& feature,
                                                dcsim::JobType job) const;

 private:
  /// Replays cluster `c`: the chosen representative first, then (on failure)
  /// the outward walk over runner-up members, bounded by
  /// ReplayPolicy::max_fallback_probes. Fills `ci` and updates `ledger`
  /// attempt/probe counters (mass counters are the caller's job).
  void replay_cluster(std::size_t c, const Feature& feature, ClusterImpact& ci,
                      ReplayLedger& ledger) const;

  const AnalysisResult* analysis_;    ///< non-owning
  const dcsim::ScenarioSet* set_;     ///< non-owning
  Replayer* replayer_;                ///< non-owning, mutated (cost ledger)
};

}  // namespace flare::core
