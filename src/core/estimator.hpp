// FLARE step 4 (§4.5 + §5.3): feature-impact estimation from the
// representative scenarios.
//
// All-job estimate: replay each cluster's representative and average the
// impacts weighted by cluster observation weight.
//
// Per-job estimate: a representative may not contain the job of interest
// even when its cluster does — walk outward from the centroid to the nearest
// member that does, and weight clusters by their job-instance counts.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "core/replayer.hpp"
#include "dcsim/scenario.hpp"

namespace flare::core {

struct ClusterImpact {
  std::size_t cluster = 0;
  std::size_t representative_scenario = 0;  ///< row index into the ScenarioSet
  double impact_pct = 0.0;
  double weight = 0.0;  ///< contribution weight (Σ over clusters used = 1)
};

struct FeatureEstimate {
  std::string feature_name;
  double impact_pct = 0.0;                 ///< the single-number summary
  std::vector<ClusterImpact> per_cluster;  ///< Fig. 11 series
  std::size_t scenario_replays = 0;        ///< evaluation cost of this estimate
};

/// A FeatureEstimate with a cheap uncertainty band (see
/// FlareEstimator::estimate_with_validation).
struct ValidatedFeatureEstimate {
  FeatureEstimate estimate;
  /// Weighted impact using each cluster's SECOND-nearest member instead of
  /// the representative — an independent probe of within-cluster spread.
  double validation_impact_pct = 0.0;
  /// Half-width of the reported band: Σ_c w_c · |rep_c − second_c| / 2.
  /// Clusters are homogeneous by construction, so the rep-vs-runner-up gap
  /// bounds how much the choice of representative moves the answer.
  double uncertainty_pp = 0.0;

  [[nodiscard]] double lower() const {
    return estimate.impact_pct - uncertainty_pp;
  }
  [[nodiscard]] double upper() const {
    return estimate.impact_pct + uncertainty_pp;
  }
};

struct PerJobEstimate {
  std::string feature_name;
  dcsim::JobType job = dcsim::JobType::kDataAnalytics;
  double impact_pct = 0.0;
  /// Clusters without any instance of the job contribute nothing (nullopt).
  std::vector<std::optional<ClusterImpact>> per_cluster;
  std::size_t scenario_replays = 0;
};

class FlareEstimator {
 public:
  /// `analysis` rows must correspond 1:1 with `set.scenarios`.
  FlareEstimator(const AnalysisResult& analysis, const dcsim::ScenarioSet& set,
                 Replayer& replayer);

  /// Comprehensive HP-job impact (Fig. 12a's FLARE bar).
  [[nodiscard]] FeatureEstimate estimate(const Feature& feature) const;

  /// Like estimate(), plus an uncertainty band from one extra replay per
  /// cluster (the second-nearest member). Cost: 2k replays instead of k —
  /// still ~25× cheaper than the full datacenter. Singleton clusters
  /// contribute no spread (their representative IS the cluster).
  [[nodiscard]] ValidatedFeatureEstimate estimate_with_validation(
      const Feature& feature) const;

  /// Per-job impact (Fig. 12b's FLARE bars).
  [[nodiscard]] PerJobEstimate estimate_per_job(const Feature& feature,
                                                dcsim::JobType job) const;

 private:
  const AnalysisResult* analysis_;    ///< non-owning
  const dcsim::ScenarioSet* set_;     ///< non-owning
  Replayer* replayer_;                ///< non-owning, mutated (cost ledger)
};

}  // namespace flare::core
