#include "core/drift.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace flare::core {

std::string_view to_string(DriftVerdict verdict) {
  switch (verdict) {
    case DriftVerdict::kValid: return "valid";
    case DriftVerdict::kReweight: return "reweight";
    case DriftVerdict::kRefit: return "refit";
  }
  return "?";
}

DriftVerdict escalate_for_basis_drift(DriftVerdict verdict, double pca_drift,
                                      const DriftConfig& config) {
  ensure(config.pca_drift_limit >= 0.0,
         "escalate_for_basis_drift: pca_drift_limit must be >= 0");
  ensure(pca_drift >= 0.0, "escalate_for_basis_drift: drift must be >= 0");
  if (pca_drift > config.pca_drift_limit) return DriftVerdict::kRefit;
  return verdict;
}

DriftMonitor::DriftMonitor(const AnalysisResult& analysis, DriftConfig config)
    : analysis_(&analysis), config_(config) {
  ensure(config_.coverage_quantile > 0.0 && config_.coverage_quantile <= 1.0,
         "DriftMonitor: coverage_quantile must be in (0, 1]");
  ensure(config_.refit_distance_ratio > 1.0,
         "DriftMonitor: refit_distance_ratio must exceed 1");
  ensure(config_.refit_coverage_fraction > 0.0 &&
             config_.refit_coverage_fraction <= 1.0,
         "DriftMonitor: refit_coverage_fraction must be in (0, 1]");
  ensure(config_.reweight_threshold > 0.0 && config_.reweight_threshold <= 1.0,
         "DriftMonitor: reweight_threshold must be in (0, 1]");
  ensure(!analysis.clustering.assignment.empty(),
         "DriftMonitor: analysis has no clustering");

  // Per-cluster coverage radius: the chosen quantile of the fitted members'
  // squared distance to their centroid. Also remember the fleet-wide median
  // member distance — the scale the refit criterion compares against.
  coverage_radius_sq_.resize(analysis.chosen_k, 0.0);
  std::vector<double> all_dist_sq;
  for (std::size_t c = 0; c < analysis.chosen_k; ++c) {
    std::vector<double> dist_sq;
    for (const std::size_t m : analysis.clustering.members_of(c)) {
      dist_sq.push_back(linalg::squared_distance(
          analysis.cluster_space.row(m), analysis.clustering.centroids.row(c)));
      all_dist_sq.push_back(dist_sq.back());
    }
    coverage_radius_sq_[c] =
        dist_sq.empty() ? 0.0 : stats::percentile(dist_sq, config_.coverage_quantile);
  }
  fitted_median_dist_sq_ = stats::median(all_dist_sq);
}

DriftReport DriftMonitor::inspect(const metrics::MetricDatabase& fresh) const {
  ensure(fresh.num_rows() > 0, "DriftMonitor::inspect: empty batch");
  const AnalysisResult& a = *analysis_;

  // Project the fresh rows through the fitted pipeline stages — the same
  // stages::project_rows the incremental ingest path uses.
  const linalg::Matrix raw = fresh.to_matrix();
  ensure(raw.cols() > *std::max_element(a.kept_columns.begin(),
                                        a.kept_columns.end()),
         "DriftMonitor::inspect: batch schema is narrower than the fitted one");
  const linalg::Matrix scores = stages::project_rows(a, raw);

  DriftReport report;
  report.coverage_radius_sq = coverage_radius_sq_;
  report.fresh_cluster_weights.assign(a.chosen_k, 0.0);

  const std::vector<double> weights = fresh.weights();
  double covered_weight = 0.0;
  double uncovered_weight = 0.0;
  const stages::NearestAssignment nearest =
      stages::assign_to_nearest(a.clustering, scores);
  std::vector<double> fresh_dist_sq;
  fresh_dist_sq.reserve(scores.rows());
  for (std::size_t r = 0; r < scores.rows(); ++r) {
    const double best = nearest.dist_sq[r];
    const std::size_t best_c = nearest.cluster[r];
    fresh_dist_sq.push_back(best);
    // Weight accounting uses the nearest cluster either way; coverage only
    // decides whether the scenario also counts as unseen behaviour.
    report.fresh_cluster_weights[best_c] += weights[r];
    if (best <= coverage_radius_sq_[best_c]) {
      covered_weight += weights[r];
    } else {
      report.uncovered_rows.push_back(r);
      uncovered_weight += weights[r];
    }
  }
  report.distance_ratio =
      fitted_median_dist_sq_ > 0.0
          ? std::sqrt(stats::median(fresh_dist_sq) / fitted_median_dist_sq_)
          : std::numeric_limits<double>::infinity();
  const double total_weight = covered_weight + uncovered_weight;
  ensure(total_weight > 0.0, "DriftMonitor::inspect: zero total batch weight");
  report.out_of_coverage_fraction = uncovered_weight / total_weight;

  // Weight shift (total-variation distance) over all fresh mass.
  double tv = 0.0;
  for (std::size_t c = 0; c < a.chosen_k; ++c) {
    report.fresh_cluster_weights[c] /= total_weight;
    tv += std::abs(report.fresh_cluster_weights[c] - a.cluster_weights[c]);
  }
  report.weight_shift = tv / 2.0;

  if (report.distance_ratio > config_.refit_distance_ratio ||
      report.out_of_coverage_fraction > config_.refit_coverage_fraction) {
    report.verdict = DriftVerdict::kRefit;
  } else if (report.weight_shift > config_.reweight_threshold) {
    report.verdict = DriftVerdict::kReweight;
  } else {
    report.verdict = DriftVerdict::kValid;
  }
  return report;
}

}  // namespace flare::core
