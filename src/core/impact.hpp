// The performance definition shared by FLARE, the ground-truth evaluator and
// every baseline (paper §5.1):
//
//   Performance = Job MIPS / Job's Inherent MIPS
//
// where inherent MIPS is measured with the job alone on an empty *baseline*
// machine. A scenario's HP performance is the sum of normalised performance
// over its HP instances; a feature's impact on a scenario is the relative
// reduction of that sum. Only HP jobs count — LP batch runs on free quota.
#pragma once

#include <array>
#include <cstdint>

#include "core/feature.hpp"
#include "dcsim/interference_model.hpp"
#include "dcsim/scenario.hpp"

namespace flare::core {

/// Noise-stream labels: live-datacenter observations and testbed replays are
/// independent measurements of the same scenario, so they draw from distinct
/// deterministic noise streams.
enum class MeasurementContext : std::uint64_t {
  kDatacenter = 0x0D47A,
  kTestbed = 0x7E57B,
};

class ImpactModel {
 public:
  ImpactModel(dcsim::MachineConfig baseline_machine,
              const dcsim::JobCatalog& catalog = dcsim::default_job_catalog(),
              dcsim::ModelOptions options = {});

  /// Inherent MIPS of one instance of `type` alone on the baseline machine.
  [[nodiscard]] double inherent_mips(dcsim::JobType type) const;

  /// Σ over HP instances of (instance MIPS / inherent MIPS) for the mix
  /// evaluated on `machine` (which may carry a feature).
  [[nodiscard]] double hp_performance(const dcsim::JobMix& mix,
                                      const dcsim::MachineConfig& machine,
                                      MeasurementContext context) const;

  /// Feature impact on a scenario, in percent MIPS reduction of HP jobs:
  /// 100 × (P_baseline − P_feature) / P_baseline. Positive = degradation.
  [[nodiscard]] double scenario_impact_pct(const dcsim::JobMix& mix,
                                           const Feature& feature,
                                           MeasurementContext context) const;

  /// Feature impact on one HP job type within a scenario (percent MIPS
  /// reduction of that job's instances). The mix must contain the job.
  [[nodiscard]] double job_impact_pct(dcsim::JobType type, const dcsim::JobMix& mix,
                                      const Feature& feature,
                                      MeasurementContext context) const;

  /// Full scenario evaluation on an arbitrary (possibly featured) machine.
  [[nodiscard]] dcsim::ScenarioPerformance evaluate(
      const dcsim::JobMix& mix, const dcsim::MachineConfig& machine,
      MeasurementContext context) const;

  [[nodiscard]] const dcsim::MachineConfig& baseline_machine() const {
    return baseline_;
  }
  [[nodiscard]] const dcsim::InterferenceModel& model() const { return model_; }

 private:
  dcsim::MachineConfig baseline_;
  dcsim::InterferenceModel model_;
  std::array<double, dcsim::kNumJobTypes> inherent_{};
};

}  // namespace flare::core
