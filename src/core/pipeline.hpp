// FlarePipeline — the end-to-end facade and the library's primary entry
// point. One object owns the four steps of §4:
//
//   FlarePipeline flare(config);
//   flare.fit(scenario_set);                       // profile + analyze
//   auto est = flare.evaluate(feature_dvfs_cap()); // replay representatives
//
// plus the §5.5 heterogeneous-shape and §5.6 scheduler-change workflows.
#pragma once

#include <memory>

#include "core/analyzer.hpp"
#include "core/drift.hpp"
#include "core/drift_response.hpp"
#include "core/estimator.hpp"
#include "core/impact.hpp"
#include "core/profiler.hpp"
#include "core/replayer.hpp"
#include "dcsim/interference_model.hpp"
#include "util/thread_pool.hpp"

namespace flare::core {

/// Which raw-metric schema the Profiler collects.
enum class MetricSchema : unsigned char {
  kStandard,            ///< the Fig. 6 two-level schema (paper default)
  kWithJobMix,          ///< + per-job mix columns (§5.3 per-job accuracy opt-in)
  kTemporal,            ///< + per-metric temporal stddev columns (§4.1 note)
  kWithJobMixTemporal,  ///< both enrichments
};

/// How FlarePipeline::ingest maintains the PCA eigenbasis across batches.
/// Under every policy ingest folds each batch into a shadow basis with
/// ml::Pca::update (cheap, exact up to FP rounding — DESIGN.md §9) and
/// reports its subspace drift; the policy decides what the basis is *for*.
enum class PcaUpdatePolicy : unsigned char {
  /// kRefit actions run the cold covariance fit, bit-identical to the batch
  /// path; the tracked basis is telemetry only (default).
  kRefit,
  /// kRefit actions splice the tracked basis and replay only the downstream
  /// stages (Analyzer::refit_incremental) — never a cold PCA fit.
  kIncremental,
  /// Incremental while the tracked drift stays within
  /// DriftConfig::pca_drift_limit; beyond it the action escalates to a cold
  /// refit that refreshes the frame and rebases the tracked basis.
  kAuto,
};

[[nodiscard]] std::string_view to_string(PcaUpdatePolicy policy);

struct FlareConfig {
  dcsim::MachineConfig machine;  ///< the datacenter's (and testbed's) shape
  dcsim::ModelOptions model;
  ProfilerConfig profiler;
  AnalyzerConfig analyzer;
  MetricSchema schema = MetricSchema::kStandard;
  /// Thresholds for the ingest-time drift classification (see core/drift.hpp).
  DriftConfig drift;
  /// Adaptive response to non-stationary streams: change-point detection with
  /// refit hysteresis, anomaly-episode quarantine, and the staleness guard
  /// (off by default; see core/drift_response.hpp).
  DriftResponseConfig drift_response;
  /// Ingest-time eigenbasis maintenance (see PcaUpdatePolicy).
  PcaUpdatePolicy pca_update = PcaUpdatePolicy::kRefit;
  /// Retry / deadline / noise-gate policy for testbed replays (step 4).
  ReplayPolicy replay;
  /// Testbed fault injection for the replay plane (off by default; the clean
  /// path stays bit-identical — see dcsim/replay_faults.hpp).
  dcsim::ReplayFaultOptions replay_faults;

  /// Worker threads for the pipeline's shared pool: 1 = run inline (default),
  /// 0 = one per hardware thread. The pool is owned by FlarePipeline and
  /// shared across profiling and analysis; results are bit-identical for
  /// every value (see DESIGN.md "Performance & threading model").
  std::size_t threads = 1;

  FlareConfig() : machine(dcsim::default_machine()) {}
};

/// Resolves a schema selector to its (long-lived) catalog.
[[nodiscard]] const metrics::MetricCatalog& resolve_schema(MetricSchema schema);

/// How FlarePipeline::ingest resolves the drift verdict into an action.
enum class RefitPolicy : unsigned char {
  kAuto,    ///< act on the verdict as classified (default)
  kNever,   ///< refuse full refits: a kRefit verdict downgrades to kReweight
  kAlways,  ///< force a (warm-started) full refit on every batch
};

/// What ingest() did with one batch.
struct IngestReport {
  /// The drift classification of the freshly profiled batch.
  DriftReport drift;
  /// The action actually taken after applying the RefitPolicy — kValid:
  /// new rows assigned into the fitted space, nothing re-ran; kReweight:
  /// weights + representatives refreshed; kRefit: full warm-started refit.
  DriftVerdict action = DriftVerdict::kValid;
  /// Scenarios appended to the population.
  std::size_t appended = 0;
  /// Row index (into the combined database/ScenarioSet) of the first one.
  std::size_t first_new_row = 0;
  /// Telemetry from folding this batch into the tracked eigenbasis
  /// (ml::Pca::update) — maintained under every PcaUpdatePolicy.
  ml::PcaUpdateStats pca_update;
  /// sin(max principal angle) between the basis the analysis projects with
  /// and the tracked basis after this batch (ml::Pca::subspace_drift). The
  /// value the kAuto escalation and refit-mode choice keyed off; a refit
  /// action rebases the tracked anchor, so the *next* report starts near 0.
  double pca_drift = 0.0;
  /// The kRefit action was satisfied by splicing the tracked basis
  /// (Analyzer::refit_incremental) instead of a cold PCA fit.
  bool pca_incremental_refit = false;
  /// kAuto only: the tracked drift exceeded DriftConfig::pca_drift_limit and
  /// escalated the action to a (cold, frame-refreshing) refit.
  bool pca_drift_escalated = false;

  // --- Fault-tolerance telemetry for this batch (see DESIGN.md §10) ---
  /// Batch rows below the sample quorum, quarantined out of the fit.
  std::size_t rows_quarantined = 0;
  /// Their share of the batch's observation-weight mass.
  double quarantined_weight_fraction = 0.0;
  /// Batch cells median-imputed before analysis (partial rows + lost rows).
  std::size_t imputed_cells = 0;
  /// Batch samples that burned at least one profiler retry.
  int retried_samples = 0;
  /// Any quarantine or imputation happened — the batch entered degraded.
  bool degraded = false;
  /// The batch's quarantined weight fraction exceeded
  /// DriftConfig::quarantine_refit_fraction and forced a refit action
  /// (RefitPolicy::kNever vetoes; the telemetry still reports the breach).
  bool quarantine_escalated = false;

  // --- Adaptive drift response (populated when drift_response.enabled) ---
  /// Change-point / hysteresis / staleness / episode telemetry for this
  /// batch (see core/drift_response.hpp). Default-valued when disabled.
  DriftResponseReport response;
  /// The drift report re-measured on the batch with the fenced episode rows
  /// removed — the evidence the response policy acted on. Equals `drift`
  /// when no episode was fenced.
  DriftReport cleaned_drift;
};

class FlarePipeline {
 public:
  explicit FlarePipeline(FlareConfig config = {},
                         const dcsim::JobCatalog& catalog =
                             dcsim::default_job_catalog());

  /// Steps 1–3: profile every scenario, refine, PCA, cluster, extract
  /// representatives. Must be called before any evaluation.
  void fit(const dcsim::ScenarioSet& set);

  /// Step 4: estimate a feature's comprehensive HP impact.
  [[nodiscard]] FeatureEstimate evaluate(const Feature& feature);

  /// Step 4 with an uncertainty band (one extra replay per cluster; see
  /// FlareEstimator::estimate_with_validation).
  [[nodiscard]] ValidatedFeatureEstimate evaluate_with_validation(
      const Feature& feature);

  /// Step 4, per-job variant (§5.3).
  [[nodiscard]] PerJobEstimate evaluate_per_job(const Feature& feature,
                                                dcsim::JobType job);

  /// §5.6: the scheduler changed the scenario frequencies — re-derive the
  /// representatives from step 3 without re-profiling. `new_weights` is the
  /// per-scenario observation weight under the new scheduler (0 = no longer
  /// occurs), indexed like the fitted ScenarioSet.
  void apply_scheduler_change(const std::vector<double>& new_weights);

  /// Incremental ingestion: profiles a batch of freshly observed scenarios,
  /// appends them to the population, classifies the drift against the fitted
  /// analysis and takes the cheapest sound action per verdict (see
  /// IngestReport::action). The batch's scenario ids are reassigned to
  /// continue the fitted population's dense indexing. Requires fit() first.
  IngestReport ingest(const dcsim::ScenarioSet& batch,
                      RefitPolicy policy = RefitPolicy::kAuto);

  [[nodiscard]] bool fitted() const { return analysis_ != nullptr; }
  /// Row-indexed quarantine mask over the fitted population (all false on a
  /// clean fit). Aligned with scenario_set()/database() rows.
  [[nodiscard]] const std::vector<bool>& quarantined() const;
  [[nodiscard]] const metrics::MetricDatabase& database() const;
  [[nodiscard]] const AnalysisResult& analysis() const;
  [[nodiscard]] const dcsim::ScenarioSet& scenario_set() const;
  [[nodiscard]] const ImpactModel& impact_model() const;
  [[nodiscard]] const FlareConfig& config() const { return config_; }

  /// Evaluation-cost ledger: distinct scenarios replayed on the testbed.
  [[nodiscard]] std::size_t scenario_replays() const;

  /// The replay plane itself — attempt/failure ledgers, simulated testbed
  /// clock, and the per-replay health journal.
  [[nodiscard]] const Replayer& replayer() const { return replayer_; }

  /// Band widening (pp) the staleness guard currently applies to every
  /// estimate (0 unless drift_response.enabled and the model is stale).
  [[nodiscard]] double staleness_widening_pp() const {
    return response_.staleness_widening_pp();
  }

 private:
  FlareConfig config_;
  dcsim::JobCatalog catalog_;
  dcsim::InterferenceModel model_;
  ImpactModel impact_;
  Replayer replayer_;
  std::unique_ptr<util::ThreadPool> pool_;  ///< non-null when threads != 1

  /// Re-seats the tracked eigenbasis on the analysis' fitted basis and
  /// anchors drift measurement at the kept components (after fit() and after
  /// every cold refit — the frame may have changed under the basis).
  void rebase_tracked_pca();

  /// Median-imputes every non-finite cell of rows [first_row, …) of `db` with
  /// impute_medians_ (refreshing the medians from the healthy population
  /// first when they are stale/missing). Returns cells imputed.
  std::size_t impute_rows(metrics::MetricDatabase& db, std::size_t first_row);

  /// Rebuilds analysis_->quarantine from quarantined_ + the current true
  /// observation weights + imputed_cells_total_ (the single source of truth
  /// after in-place absorb actions).
  void refresh_quarantine_ledger();

  /// True observation weights (set_ order) with quarantined rows zeroed —
  /// what every weight-consuming stage sees while degraded.
  [[nodiscard]] std::vector<double> masked_weights(
      const std::vector<double>& true_weights) const;

  dcsim::ScenarioSet set_;
  std::unique_ptr<metrics::MetricDatabase> database_;
  std::unique_ptr<AnalysisResult> analysis_;
  std::vector<double> scheduler_weights_;  ///< §5.6 override (empty = original)
  /// Fault-tolerance bookkeeping (empty/zero on clean fits): which population
  /// rows are below the sample quorum, the fit-frame imputation medians, and
  /// the running imputed-cell count.
  std::vector<bool> quarantined_;
  std::vector<double> impute_medians_;
  std::size_t imputed_cells_total_ = 0;
  /// Shadow eigenbasis advanced by ml::Pca::update on every ingested batch,
  /// expressed in the fitted (frozen) refinement + standardisation frame.
  ml::Pca tracked_pca_;
  /// Adaptive drift response state (inert unless drift_response.enabled).
  DriftResponsePolicy response_;
};

}  // namespace flare::core
