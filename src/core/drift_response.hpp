// Adaptive drift response (DESIGN.md §17): the policy layer that makes
// FlarePipeline::ingest *survive* non-stationary scenario streams instead of
// merely classifying them. Four mechanisms, all off by default (enabled =
// false keeps every ingest bit-identical to the historical path):
//
//   * online change-point detection — the per-batch drift statistic feeds an
//     EWMA (drift-rate proxy) and a CUSUM; a refit only commits when the
//     evidence is *sustained* (confirm_batches consecutive refit-worthy
//     batches, or the CUSUM crossing its threshold for slow creep), which
//     distinguishes a transient flash-crowd burst from a real shift;
//   * hysteresis — a committed refit opens a cooldown window during which
//     further refit proposals are suppressed to kReweight, so bursty streams
//     cannot thrash full refits;
//   * anomaly-episode quarantine — cluster-coherent uncovered rows (one
//     interference episode corrupting a machine subset together) are fenced
//     as a unit via the PR-4 quarantine machinery *before* they can rotate
//     the tracked basis or poison the refit decision;
//   * staleness guard — when the fitted model's batch-age exceeds a
//     drift-rate-scaled budget, every estimate's ReplayLedger band widens by
//     a staleness term (the model is provably behind the stream).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "core/analyzer.hpp"
#include "core/drift.hpp"

namespace flare::core {

struct DriftResponseConfig {
  /// Master switch. Off = ingest behaves exactly as before this layer.
  bool enabled = false;

  // --- Change-point detector over the per-batch drift statistic ---
  /// EWMA smoothing factor for the drift-rate proxy (higher = more reactive).
  double ewma_alpha = 0.3;
  /// Consecutive refit-worthy batches required before a refit commits.
  int confirm_batches = 2;
  /// Batches after a committed refit during which further refit proposals
  /// are suppressed to kReweight (hysteresis).
  int cooldown_batches = 3;
  /// CUSUM accumulates max(0, statistic − reference); crossing `threshold`
  /// commits a refit even when no single batch was refit-worthy (slow creep).
  double cusum_reference = 0.7;
  double cusum_threshold = 2.5;

  // --- Staleness guard ---
  /// Batch-age budget at a drift-rate proxy (EWMA) of 1.0; the effective
  /// budget is this divided by max(ewma, 0.1) — faster drift, tighter budget.
  double staleness_budget_batches = 12.0;
  /// Band widening (pp) per unit of budget overrun, and its cap.
  double staleness_widening_pp = 0.5;
  double staleness_widening_cap_pp = 4.0;

  // --- Anomaly-episode quarantine ---
  /// Uncovered batch rows form a coherent episode when their RMS dispersion
  /// around their own centroid is at most this fraction of their RMS
  /// distance to the fitted centroids (tight clump, far away — the opposite
  /// of i.i.d. noise, which disperses in all directions).
  double episode_coherence_ratio = 0.5;
  /// Minimum uncovered rows before an episode can be declared.
  std::size_t episode_min_rows = 4;
  /// Candidate episode rows must sit at least this multiple of their nearest
  /// cluster's coverage radius away from it. Rows just beyond the radius are
  /// honest drift evidence (fresh batches always carry some); interference
  /// episodes land far outside. ≥ 1.
  double episode_separation_ratio = 2.5;
};

/// The detector's classification of the stream at one batch.
enum class DriftRegime : unsigned char {
  kStable,  ///< statistic below refit-worthiness; model current
  kBurst,   ///< refit-worthy evidence, not (yet) sustained — suppressed
  kShift,   ///< sustained shift confirmed — refit committed
};

[[nodiscard]] std::string_view to_string(DriftRegime regime);

/// Per-batch telemetry of the response policy (IngestReport::response).
struct DriftResponseReport {
  DriftRegime regime = DriftRegime::kStable;
  /// Refit-worthiness of this batch: max of the distance-ratio and
  /// out-of-coverage criteria, each normalised so ≥ 1 means refit-worthy.
  double statistic = 0.0;
  double ewma = 0.0;   ///< smoothed statistic (the drift-rate proxy)
  double cusum = 0.0;  ///< accumulated sustained-shift evidence
  /// Hysteresis downgraded a proposed refit to kReweight this batch.
  bool refit_suppressed = false;
  /// The change-point confirmed and a refit committed this batch.
  bool refit_committed = false;
  /// Batch rows fenced as one anomaly episode (0 = none detected).
  std::size_t episode_rows = 0;
  /// Observation-weight share of the batch those rows carried.
  double episode_weight_fraction = 0.0;
  /// Episode dispersion / separation (the coherence evidence; ≤ ratio).
  double episode_dispersion_ratio = 0.0;
  /// Batches ingested since the model was last (re)fitted.
  int batches_since_refit = 0;
  /// Batch-age over the drift-rate-scaled budget (> 1 = stale).
  double staleness = 0.0;
  /// Band widening the staleness guard currently applies (pp).
  double staleness_widening_pp = 0.0;
};

/// A cluster-coherent set of uncovered batch rows (one anomaly episode).
struct EpisodeFence {
  std::vector<std::size_t> rows;  ///< batch row indices, ascending
  double dispersion_ratio = 0.0;  ///< dispersion / separation evidence
  [[nodiscard]] bool detected() const { return !rows.empty(); }
};

/// Finds the coherent episode (if any) inside the drift report's uncovered
/// rows: at least episode_min_rows of them, clumped (RMS dispersion around
/// their own centroid ≤ episode_coherence_ratio × RMS distance to the
/// fitted centroids). Ordinary out-of-coverage drift rows mixed into the
/// uncovered set are trimmed off (farthest-from-centroid first) until the
/// coherent core remains, so a fence never quarantines honest drift
/// evidence along with the episode. `projected` is the whole batch in the
/// fitted cluster space (stages::project_rows order).
[[nodiscard]] EpisodeFence detect_anomalous_episode(
    const AnalysisResult& analysis, const linalg::Matrix& projected,
    const DriftReport& drift, const DriftResponseConfig& config);

/// The stateful per-pipeline response policy. One instance lives on
/// FlarePipeline (per shard under ShardedPipeline, rebuilt deterministically
/// by `flare serve` crash recovery since its state is a pure function of the
/// replayed ingest sequence).
class DriftResponsePolicy {
 public:
  DriftResponsePolicy() = default;
  DriftResponsePolicy(DriftResponseConfig config, DriftConfig drift);

  /// Advances the detector with one batch and resolves `proposed` (the
  /// verdict after RefitPolicy / PCA / quarantine escalations) into the
  /// final action, filling `report`. `drift` must be the episode-cleaned
  /// drift report when an episode was fenced.
  [[nodiscard]] DriftVerdict resolve(DriftVerdict proposed,
                                     const DriftReport& drift,
                                     DriftResponseReport& report);

  /// Records that ingest actually refitted (resets batch-age, CUSUM, streak,
  /// and opens the hysteresis cooldown).
  void note_refit();

  /// Band widening (pp) estimates made against the current model carry.
  [[nodiscard]] double staleness_widening_pp() const { return widening_pp_; }
  [[nodiscard]] int batches_since_refit() const { return batches_since_refit_; }
  [[nodiscard]] const DriftResponseConfig& config() const { return config_; }

 private:
  DriftResponseConfig config_;
  DriftConfig drift_;
  bool seen_batch_ = false;
  double ewma_ = 0.0;
  double cusum_ = 0.0;
  int refit_streak_ = 0;
  int cooldown_remaining_ = 0;
  int batches_since_refit_ = 0;
  double widening_pp_ = 0.0;
};

}  // namespace flare::core
