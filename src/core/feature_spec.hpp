// Textual feature specifications, shared by the CLI and the serve daemon:
//   "feature1" | "feature2" | "feature3" | "baseline"   (Table 4 presets)
// or a comma-separated knob list, e.g. "fmax=2.0,llc=20,smt=off":
//   fmax=<GHz>     cap the max clock
//   fmin=<GHz>     raise the min clock
//   llc=<MB>       set the per-socket LLC capacity
//   smt=on|off     toggle hyperthreading
//   memlat=<ns>    set the unloaded memory latency
#pragma once

#include <string_view>

#include "core/feature.hpp"

namespace flare::core {

/// Parses a feature specification. Throws flare::ParseError on unknown
/// presets, unknown knobs, or malformed values.
[[nodiscard]] Feature parse_feature(std::string_view spec);

}  // namespace flare::core
