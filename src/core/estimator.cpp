#include "core/estimator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace flare::core {

std::string_view to_string(ClusterReplayStatus status) {
  switch (status) {
    case ClusterReplayStatus::kDirect:
      return "direct";
    case ClusterReplayStatus::kFallback:
      return "fallback";
    case ClusterReplayStatus::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

FlareEstimator::FlareEstimator(const AnalysisResult& analysis,
                               const dcsim::ScenarioSet& set, Replayer& replayer)
    : analysis_(&analysis), set_(&set), replayer_(&replayer) {
  ensure(analysis.cluster_space.rows() == set.scenarios.size(),
         "FlareEstimator: analysis rows must match the scenario set");
  ensure(analysis.clustering.assignment.size() == set.scenarios.size(),
         "FlareEstimator: analysis assignment must cover the scenario set");
  ensure(analysis.representatives.size() == analysis.chosen_k,
         "FlareEstimator: analysis is missing representatives");
}

void FlareEstimator::replay_cluster(std::size_t c, const Feature& feature,
                                    ClusterImpact& ci, ReplayLedger& ledger) const {
  const std::size_t rep_row = analysis_->representatives[c];
  ci.cluster = c;
  ci.representative_scenario = rep_row;

  const ReplayMeasurement m =
      replayer_->replay_scenario_measured(set_->scenarios[rep_row], feature);
  ci.attempts += m.attempts;
  ledger.total_attempts += m.attempts;
  ledger.failed_attempts += m.failed_attempts;
  ledger.simulated_seconds += m.simulated_seconds;
  if (m.ok()) {
    ci.impact_pct = m.impact_pct;
    ci.ci_halfwidth_pp = m.ci_halfwidth_pp;
    ci.status = ClusterReplayStatus::kDirect;
    return;
  }

  // The representative is unreplayable: walk outward from the centroid in
  // whitened cluster space — the same ordering the per-job walk uses — and
  // promote the nearest member that replays.
  const std::vector<std::size_t> ordered = analysis_->members_by_distance(c);
  int probes = 0;
  for (const std::size_t member : ordered) {
    if (member == rep_row) continue;
    if (probes >= replayer_->policy().max_fallback_probes) break;
    ++probes;
    ++ledger.fallback_probes;
    const ReplayMeasurement f =
        replayer_->replay_scenario_measured(set_->scenarios[member], feature);
    ci.attempts += f.attempts;
    ledger.total_attempts += f.attempts;
    ledger.failed_attempts += f.failed_attempts;
    ledger.simulated_seconds += f.simulated_seconds;
    if (f.ok()) {
      ci.representative_scenario = member;
      ci.impact_pct = f.impact_pct;
      ci.ci_halfwidth_pp = f.ci_halfwidth_pp;
      ci.status = ClusterReplayStatus::kFallback;
      return;
    }
  }
  ci.status = ClusterReplayStatus::kQuarantined;
  ci.impact_pct = 0.0;
  ci.ci_halfwidth_pp = 0.0;
}

FeatureEstimate FlareEstimator::estimate(const Feature& feature) const {
  FeatureEstimate est;
  est.feature_name = feature.name();
  const std::size_t replays_before = replayer_->distinct_scenario_replays();

  double replayed_mass = 0.0;
  for (std::size_t c = 0; c < analysis_->chosen_k; ++c) {
    ClusterImpact ci;
    replay_cluster(c, feature, ci, est.replay);
    const double w = analysis_->cluster_weights[c];
    if (ci.status == ClusterReplayStatus::kQuarantined) {
      ci.weight = 0.0;
      est.replay.quarantined_mass += w;
      ++est.replay.clusters_quarantined;
    } else {
      ci.weight = w;
      replayed_mass += w;
      if (ci.status == ClusterReplayStatus::kDirect) {
        est.replay.direct_mass += w;
        ++est.replay.clusters_direct;
      } else {
        est.replay.fallback_mass += w;
        ++est.replay.clusters_fallback;
      }
      est.impact_pct += ci.weight * ci.impact_pct;
    }
    est.per_cluster.push_back(ci);
  }

  if (est.replay.quarantined_mass > 0.0) {
    if (replayed_mass <= 0.0) {
      throw ReplayError("FlareEstimator::estimate: every cluster is unreplayable "
                        "for feature '" + feature.name() + "'");
    }
    if (est.replay.quarantined_mass > replayer_->policy().max_quarantined_mass) {
      throw ReplayError(
          "FlareEstimator::estimate: " +
          std::to_string(est.replay.quarantined_mass * 100.0) +
          "% of observation mass is quarantined (unreplayable clusters) for "
          "feature '" + feature.name() + "', above the max_quarantined_mass "
          "threshold of " +
          std::to_string(replayer_->policy().max_quarantined_mass * 100.0) + "%");
    }
    // Renormalise the surviving clusters so their weights sum to 1 again; the
    // excluded mass stays visible in the ledger.
    est.impact_pct /= replayed_mass;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (ClusterImpact& ci : est.per_cluster) {
      if (ci.status == ClusterReplayStatus::kQuarantined) continue;
      ci.weight /= replayed_mass;
      lo = std::min(lo, ci.impact_pct);
      hi = std::max(hi, ci.impact_pct);
    }
    est.replay.quarantine_widening_pp =
        est.replay.quarantined_mass * (hi - lo) / 2.0;
  }
  for (const ClusterImpact& ci : est.per_cluster) {
    if (ci.status == ClusterReplayStatus::kQuarantined) continue;
    est.replay.measurement_uncertainty_pp += ci.weight * ci.ci_halfwidth_pp;
  }

  est.scenario_replays = replayer_->distinct_scenario_replays() - replays_before;
  return est;
}

ValidatedFeatureEstimate FlareEstimator::estimate_with_validation(
    const Feature& feature) const {
  ValidatedFeatureEstimate out;
  out.estimate = estimate(feature);
  for (std::size_t c = 0; c < analysis_->chosen_k; ++c) {
    const ClusterImpact& rep_ci = out.estimate.per_cluster[c];
    if (rep_ci.status == ClusterReplayStatus::kQuarantined) continue;
    const double weight = rep_ci.weight;
    const std::vector<std::size_t> ordered = analysis_->members_by_distance(c);
    if (ordered.size() < 2) {
      // Singleton cluster: the representative is exact for its group.
      out.validation_impact_pct += weight * rep_ci.impact_pct;
      continue;
    }
    // Probe the nearest member other than the one the estimate used; under
    // replay faults an unreplayable probe falls through to the next member.
    std::optional<double> second;
    int probes = 0;
    for (const std::size_t member : ordered) {
      if (member == rep_ci.representative_scenario) continue;
      if (probes >= 1 + replayer_->policy().max_fallback_probes) break;
      ++probes;
      const ReplayMeasurement m =
          replayer_->replay_scenario_measured(set_->scenarios[member], feature);
      out.estimate.replay.total_attempts += m.attempts;
      out.estimate.replay.failed_attempts += m.failed_attempts;
      out.estimate.replay.simulated_seconds += m.simulated_seconds;
      if (m.ok()) {
        second = m.impact_pct;
        break;
      }
    }
    if (!second.has_value()) {
      // No healthy runner-up: no spread information for this cluster.
      out.validation_impact_pct += weight * rep_ci.impact_pct;
      continue;
    }
    out.validation_impact_pct += weight * *second;
    out.uncertainty_pp += weight * std::abs(rep_ci.impact_pct - *second) / 2.0;
  }
  // Widen the band by the replay plane's own uncertainty. Both terms are
  // exactly zero on the failure-free path.
  out.uncertainty_pp += out.estimate.replay.measurement_uncertainty_pp +
                        out.estimate.replay.quarantine_widening_pp;
  return out;
}

PerJobEstimate FlareEstimator::estimate_per_job(const Feature& feature,
                                                dcsim::JobType job) const {
  PerJobEstimate est;
  est.feature_name = feature.name();
  est.job = job;
  const std::size_t replays_before = replayer_->distinct_scenario_replays();

  // Per-cluster job-instance weights: observation weight × instance count.
  double total_weight = 0.0;
  std::vector<double> job_weight(analysis_->chosen_k, 0.0);
  for (std::size_t i = 0; i < set_->scenarios.size(); ++i) {
    const std::size_t c = analysis_->clustering.assignment[i];
    job_weight[c] += set_->scenarios[i].observation_weight *
                     static_cast<double>(set_->scenarios[i].mix.count(job));
  }
  for (const double w : job_weight) total_weight += w;
  ensure(total_weight > 0.0,
         "FlareEstimator::estimate_per_job: job never appears in the datacenter");

  est.per_cluster.assign(analysis_->chosen_k, std::nullopt);
  double lost_share = 0.0;
  for (std::size_t c = 0; c < analysis_->chosen_k; ++c) {
    if (job_weight[c] <= 0.0) continue;  // cluster has no instance of the job
    // Walk outward from the centroid to the nearest member containing the
    // job; under replay faults, keep walking past unreplayable members.
    const std::vector<std::size_t> ordered = analysis_->members_by_distance(c);
    ClusterImpact ci;
    ci.cluster = c;
    ci.weight = job_weight[c] / total_weight;
    bool measured = false;
    int probes = 0;
    for (const std::size_t member : ordered) {
      if (set_->scenarios[member].mix.count(job) == 0) continue;
      if (probes >= 1 + replayer_->policy().max_fallback_probes) break;
      const bool is_first = probes == 0;
      ++probes;
      const ReplayMeasurement m =
          replayer_->replay_job_measured(job, set_->scenarios[member], feature);
      ci.attempts += m.attempts;
      est.replay.total_attempts += m.attempts;
      est.replay.failed_attempts += m.failed_attempts;
      est.replay.simulated_seconds += m.simulated_seconds;
      if (!is_first) ++est.replay.fallback_probes;
      if (m.ok()) {
        ci.representative_scenario = member;
        ci.impact_pct = m.impact_pct;
        ci.ci_halfwidth_pp = m.ci_halfwidth_pp;
        ci.status = is_first ? ClusterReplayStatus::kDirect
                             : ClusterReplayStatus::kFallback;
        measured = true;
        break;
      }
    }
    if (!measured) {
      ci.status = ClusterReplayStatus::kQuarantined;
      ci.impact_pct = 0.0;
      est.replay.quarantined_mass += ci.weight;
      ++est.replay.clusters_quarantined;
      lost_share += ci.weight;
      ci.weight = 0.0;
      est.per_cluster[c] = ci;
      continue;
    }
    if (ci.status == ClusterReplayStatus::kDirect) {
      est.replay.direct_mass += ci.weight;
      ++est.replay.clusters_direct;
    } else {
      est.replay.fallback_mass += ci.weight;
      ++est.replay.clusters_fallback;
    }
    est.impact_pct += ci.weight * ci.impact_pct;
    est.per_cluster[c] = ci;
  }

  if (lost_share > 0.0) {
    const double remaining = 1.0 - lost_share;
    if (remaining <= 0.0) {
      throw ReplayError("FlareEstimator::estimate_per_job: every cluster holding "
                        "the job is unreplayable for feature '" + feature.name() +
                        "'");
    }
    if (lost_share > replayer_->policy().max_quarantined_mass) {
      throw ReplayError(
          "FlareEstimator::estimate_per_job: " + std::to_string(lost_share * 100.0) +
          "% of the job's mass is quarantined for feature '" + feature.name() +
          "', above the max_quarantined_mass threshold of " +
          std::to_string(replayer_->policy().max_quarantined_mass * 100.0) + "%");
    }
    est.impact_pct /= remaining;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (std::optional<ClusterImpact>& entry : est.per_cluster) {
      if (!entry || entry->status == ClusterReplayStatus::kQuarantined) continue;
      entry->weight /= remaining;
      lo = std::min(lo, entry->impact_pct);
      hi = std::max(hi, entry->impact_pct);
    }
    est.replay.quarantine_widening_pp = lost_share * (hi - lo) / 2.0;
  }
  for (const std::optional<ClusterImpact>& entry : est.per_cluster) {
    if (!entry || entry->status == ClusterReplayStatus::kQuarantined) continue;
    est.replay.measurement_uncertainty_pp += entry->weight * entry->ci_halfwidth_pp;
  }

  est.scenario_replays = replayer_->distinct_scenario_replays() - replays_before;
  return est;
}

}  // namespace flare::core
