#include "core/estimator.hpp"

#include <cmath>

#include "util/error.hpp"

namespace flare::core {

FlareEstimator::FlareEstimator(const AnalysisResult& analysis,
                               const dcsim::ScenarioSet& set, Replayer& replayer)
    : analysis_(&analysis), set_(&set), replayer_(&replayer) {
  ensure(analysis.cluster_space.rows() == set.scenarios.size(),
         "FlareEstimator: analysis rows must match the scenario set");
  ensure(analysis.clustering.assignment.size() == set.scenarios.size(),
         "FlareEstimator: analysis assignment must cover the scenario set");
  ensure(analysis.representatives.size() == analysis.chosen_k,
         "FlareEstimator: analysis is missing representatives");
}

FeatureEstimate FlareEstimator::estimate(const Feature& feature) const {
  FeatureEstimate est;
  est.feature_name = feature.name();
  const std::size_t replays_before = replayer_->distinct_scenario_replays();

  for (std::size_t c = 0; c < analysis_->chosen_k; ++c) {
    const std::size_t rep_row = analysis_->representatives[c];
    const dcsim::ColocationScenario& scenario = set_->scenarios[rep_row];
    ClusterImpact ci;
    ci.cluster = c;
    ci.representative_scenario = rep_row;
    ci.weight = analysis_->cluster_weights[c];
    ci.impact_pct = replayer_->replay_scenario_impact(scenario, feature);
    est.impact_pct += ci.weight * ci.impact_pct;
    est.per_cluster.push_back(ci);
  }
  est.scenario_replays = replayer_->distinct_scenario_replays() - replays_before;
  return est;
}

ValidatedFeatureEstimate FlareEstimator::estimate_with_validation(
    const Feature& feature) const {
  ValidatedFeatureEstimate out;
  out.estimate = estimate(feature);
  for (std::size_t c = 0; c < analysis_->chosen_k; ++c) {
    const std::vector<std::size_t> ordered = analysis_->members_by_distance(c);
    const double weight = analysis_->cluster_weights[c];
    if (ordered.size() < 2) {
      // Singleton cluster: the representative is exact for its group.
      out.validation_impact_pct += weight * out.estimate.per_cluster[c].impact_pct;
      continue;
    }
    const double second = replayer_->replay_scenario_impact(
        set_->scenarios[ordered[1]], feature);
    out.validation_impact_pct += weight * second;
    out.uncertainty_pp +=
        weight * std::abs(out.estimate.per_cluster[c].impact_pct - second) / 2.0;
  }
  return out;
}

PerJobEstimate FlareEstimator::estimate_per_job(const Feature& feature,
                                                dcsim::JobType job) const {
  PerJobEstimate est;
  est.feature_name = feature.name();
  est.job = job;
  const std::size_t replays_before = replayer_->distinct_scenario_replays();

  // Per-cluster job-instance weights: observation weight × instance count.
  double total_weight = 0.0;
  std::vector<double> job_weight(analysis_->chosen_k, 0.0);
  for (std::size_t i = 0; i < set_->scenarios.size(); ++i) {
    const std::size_t c = analysis_->clustering.assignment[i];
    job_weight[c] += set_->scenarios[i].observation_weight *
                     static_cast<double>(set_->scenarios[i].mix.count(job));
  }
  for (const double w : job_weight) total_weight += w;
  ensure(total_weight > 0.0,
         "FlareEstimator::estimate_per_job: job never appears in the datacenter");

  est.per_cluster.assign(analysis_->chosen_k, std::nullopt);
  for (std::size_t c = 0; c < analysis_->chosen_k; ++c) {
    if (job_weight[c] <= 0.0) continue;  // cluster has no instance of the job
    // Walk outward from the centroid to the nearest member containing the job.
    const std::vector<std::size_t> ordered = analysis_->members_by_distance(c);
    std::optional<std::size_t> chosen;
    for (const std::size_t member : ordered) {
      if (set_->scenarios[member].mix.count(job) > 0) {
        chosen = member;
        break;
      }
    }
    ensure(chosen.has_value(),
           "FlareEstimator::estimate_per_job: job weight without a member scenario");
    ClusterImpact ci;
    ci.cluster = c;
    ci.representative_scenario = *chosen;
    ci.weight = job_weight[c] / total_weight;
    ci.impact_pct =
        replayer_->replay_job_impact(job, set_->scenarios[*chosen], feature);
    est.impact_pct += ci.weight * ci.impact_pct;
    est.per_cluster[c] = ci;
  }
  est.scenario_replays = replayer_->distinct_scenario_replays() - replays_before;
  return est;
}

}  // namespace flare::core
