#include "core/impact.hpp"

#include "util/error.hpp"

namespace flare::core {

ImpactModel::ImpactModel(dcsim::MachineConfig baseline_machine,
                         const dcsim::JobCatalog& catalog,
                         dcsim::ModelOptions options)
    : baseline_(std::move(baseline_machine)), model_(catalog, options) {
  for (const dcsim::JobType type : dcsim::all_job_types()) {
    inherent_[dcsim::job_index(type)] = model_.inherent_mips(baseline_, type);
  }
}

double ImpactModel::inherent_mips(dcsim::JobType type) const {
  return inherent_[dcsim::job_index(type)];
}

dcsim::ScenarioPerformance ImpactModel::evaluate(const dcsim::JobMix& mix,
                                                 const dcsim::MachineConfig& machine,
                                                 MeasurementContext context) const {
  return model_.evaluate(machine, mix, static_cast<std::uint64_t>(context));
}

double ImpactModel::hp_performance(const dcsim::JobMix& mix,
                                   const dcsim::MachineConfig& machine,
                                   MeasurementContext context) const {
  const dcsim::ScenarioPerformance perf = evaluate(mix, machine, context);
  double total = 0.0;
  for (const dcsim::JobTypePerformance& j : perf.jobs) {
    if (!dcsim::is_high_priority(j.type)) continue;
    total += static_cast<double>(j.instances) * j.mips_per_instance /
             inherent_mips(j.type);
  }
  return total;
}

double ImpactModel::scenario_impact_pct(const dcsim::JobMix& mix,
                                        const Feature& feature,
                                        MeasurementContext context) const {
  ensure(mix.hp_instances() > 0,
         "ImpactModel::scenario_impact_pct: scenario has no HP jobs");
  const double base = hp_performance(mix, baseline_, context);
  const double with_feature = hp_performance(mix, feature.apply(baseline_), context);
  ensure_numeric(base > 0.0, "ImpactModel: baseline HP performance is zero");
  return 100.0 * (base - with_feature) / base;
}

double ImpactModel::job_impact_pct(dcsim::JobType type, const dcsim::JobMix& mix,
                                   const Feature& feature,
                                   MeasurementContext context) const {
  ensure(mix.count(type) > 0, "ImpactModel::job_impact_pct: job not in scenario");
  const dcsim::ScenarioPerformance base = evaluate(mix, baseline_, context);
  const dcsim::ScenarioPerformance feat =
      evaluate(mix, feature.apply(baseline_), context);
  const double base_mips = base.job(type).mips_per_instance;
  const double feat_mips = feat.job(type).mips_per_instance;
  ensure_numeric(base_mips > 0.0, "ImpactModel: baseline job MIPS is zero");
  return 100.0 * (base_mips - feat_mips) / base_mips;
}

}  // namespace flare::core
