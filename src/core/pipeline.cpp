#include "core/pipeline.hpp"

#include "util/error.hpp"

namespace flare::core {

namespace {

// Eagerly built at load time (not lazy statics): resolve_schema can be hit
// concurrently from pool workers, and eager init keeps it a pure read with no
// first-call guard on the hot path.
const metrics::MetricCatalog kTemporalCatalog =
    metrics::MetricCatalog::with_temporal_stddev(
        metrics::MetricCatalog::standard());
const metrics::MetricCatalog kJobMixTemporalCatalog =
    metrics::MetricCatalog::with_temporal_stddev(
        metrics::MetricCatalog::standard_with_job_mix());

}  // namespace

FlarePipeline::FlarePipeline(FlareConfig config, const dcsim::JobCatalog& catalog)
    : config_(std::move(config)),
      catalog_(catalog),
      model_(catalog_, config_.model),
      impact_(config_.machine, catalog_, config_.model),
      replayer_(impact_),
      pool_(config_.threads != 1
                ? std::make_unique<util::ThreadPool>(config_.threads)
                : nullptr) {}

const metrics::MetricCatalog& resolve_schema(MetricSchema schema) {
  switch (schema) {
    case MetricSchema::kStandard:
      return metrics::MetricCatalog::standard();
    case MetricSchema::kWithJobMix:
      return metrics::MetricCatalog::standard_with_job_mix();
    case MetricSchema::kTemporal:
      return kTemporalCatalog;
    case MetricSchema::kWithJobMixTemporal:
      return kJobMixTemporalCatalog;
  }
  ensure(false, "resolve_schema: unknown schema selector");
  return metrics::MetricCatalog::standard();  // unreachable
}

void FlarePipeline::fit(const dcsim::ScenarioSet& set) {
  ensure(!set.scenarios.empty(), "FlarePipeline::fit: empty scenario set");
  set_ = set;
  const Profiler profiler(model_, config_.profiler);
  database_ = std::make_unique<metrics::MetricDatabase>(profiler.profile(
      set_, config_.machine, resolve_schema(config_.schema), pool_.get()));
  const Analyzer analyzer(config_.analyzer);
  analysis_ =
      std::make_unique<AnalysisResult>(analyzer.analyze(*database_, pool_.get()));
  scheduler_weights_.clear();
}

FeatureEstimate FlarePipeline::evaluate(const Feature& feature) {
  ensure(fitted(), "FlarePipeline::evaluate: call fit() first");
  const FlareEstimator estimator(*analysis_, set_, replayer_);
  return estimator.estimate(feature);
}

ValidatedFeatureEstimate FlarePipeline::evaluate_with_validation(
    const Feature& feature) {
  ensure(fitted(), "FlarePipeline::evaluate_with_validation: call fit() first");
  const FlareEstimator estimator(*analysis_, set_, replayer_);
  return estimator.estimate_with_validation(feature);
}

PerJobEstimate FlarePipeline::evaluate_per_job(const Feature& feature,
                                               dcsim::JobType job) {
  ensure(fitted(), "FlarePipeline::evaluate_per_job: call fit() first");
  const FlareEstimator estimator(*analysis_, set_, replayer_);
  return estimator.estimate_per_job(feature, job);
}

void FlarePipeline::apply_scheduler_change(const std::vector<double>& new_weights) {
  ensure(fitted(), "FlarePipeline::apply_scheduler_change: call fit() first");
  const Analyzer analyzer(config_.analyzer);
  *analysis_ = analyzer.recluster(*analysis_, new_weights, pool_.get());
  scheduler_weights_ = new_weights;
  // Estimation must also see the new frequencies.
  for (std::size_t i = 0; i < set_.scenarios.size(); ++i) {
    set_.scenarios[i].observation_weight = new_weights[i];
  }
}

IngestReport FlarePipeline::ingest(const dcsim::ScenarioSet& batch,
                                   RefitPolicy policy) {
  ensure(fitted(), "FlarePipeline::ingest: call fit() first");
  ensure(!batch.scenarios.empty(), "FlarePipeline::ingest: empty batch");

  // Re-id the batch so it continues the fitted population's dense indexing
  // (batch ids are whatever the collector used; row index is what matters).
  dcsim::ScenarioSet fresh = batch;
  fresh.machine_type = set_.machine_type;
  for (std::size_t i = 0; i < fresh.scenarios.size(); ++i) {
    fresh.scenarios[i].id = set_.size() + i;
  }

  const Profiler profiler(model_, config_.profiler);
  const metrics::MetricDatabase fresh_db = profiler.profile(
      fresh, config_.machine, resolve_schema(config_.schema), pool_.get());

  IngestReport report;
  report.appended = fresh.size();
  report.first_new_row = set_.size();
  const DriftMonitor monitor(*analysis_, config_.drift);
  report.drift = monitor.inspect(fresh_db);
  report.action = report.drift.verdict;
  if (policy == RefitPolicy::kAlways) {
    report.action = DriftVerdict::kRefit;
  } else if (policy == RefitPolicy::kNever &&
             report.action == DriftVerdict::kRefit) {
    report.action = DriftVerdict::kReweight;
  }

  // Grow the population. Observation weights for all accounting come from
  // set_ (apply_scheduler_change keeps those current; the archived database
  // rows may carry pre-change weights), so sync the database before any use.
  const linalg::Matrix fresh_raw = fresh_db.to_matrix();
  set_.scenarios.insert(set_.scenarios.end(), fresh.scenarios.begin(),
                        fresh.scenarios.end());
  database_->append(fresh_db);
  if (!scheduler_weights_.empty()) {
    for (const dcsim::ColocationScenario& s : fresh.scenarios) {
      scheduler_weights_.push_back(s.observation_weight);
    }
  }
  std::vector<double> combined;
  combined.reserve(set_.size());
  for (const dcsim::ColocationScenario& s : set_.scenarios) {
    combined.push_back(s.observation_weight);
  }
  database_->set_observation_weights(combined);

  switch (report.action) {
    case DriftVerdict::kValid:
      // Same behaviours, same frequencies: assign the new rows into the
      // fitted cluster space; no stage re-runs.
      stages::absorb_rows(*analysis_, stages::project_rows(*analysis_, fresh_raw),
                          combined, /*refresh_representatives=*/false);
      break;
    case DriftVerdict::kReweight:
      // Same behaviours, shifted frequencies: reuse every fitted stage,
      // refresh only the weights and representatives.
      stages::absorb_rows(*analysis_, stages::project_rows(*analysis_, fresh_raw),
                          combined, /*refresh_representatives=*/true);
      break;
    case DriftVerdict::kRefit: {
      // New behaviours: full refit over the combined population, warm-started
      // from the previous centroids (stage fingerprints still skip any stage
      // whose input happens to be unchanged).
      const Analyzer analyzer(config_.analyzer);
      AnalysisResult refit = analyzer.analyze(*database_, pool_.get(),
                                              analysis_.get(), /*warm_start=*/true);
      *analysis_ = std::move(refit);
      break;
    }
  }
  return report;
}

const metrics::MetricDatabase& FlarePipeline::database() const {
  ensure(fitted(), "FlarePipeline::database: call fit() first");
  return *database_;
}

const AnalysisResult& FlarePipeline::analysis() const {
  ensure(fitted(), "FlarePipeline::analysis: call fit() first");
  return *analysis_;
}

const dcsim::ScenarioSet& FlarePipeline::scenario_set() const {
  ensure(fitted(), "FlarePipeline::scenario_set: call fit() first");
  return set_;
}

const ImpactModel& FlarePipeline::impact_model() const { return impact_; }

std::size_t FlarePipeline::scenario_replays() const {
  return replayer_.distinct_scenario_replays();
}

}  // namespace flare::core
