#include "core/pipeline.hpp"

#include <cmath>

#include "ml/impute.hpp"
#include "util/error.hpp"

namespace flare::core {

namespace {

// Eagerly built at load time (not lazy statics): resolve_schema can be hit
// concurrently from pool workers, and eager init keeps it a pure read with no
// first-call guard on the hot path.
const metrics::MetricCatalog kTemporalCatalog =
    metrics::MetricCatalog::with_temporal_stddev(
        metrics::MetricCatalog::standard());
const metrics::MetricCatalog kJobMixTemporalCatalog =
    metrics::MetricCatalog::with_temporal_stddev(
        metrics::MetricCatalog::standard_with_job_mix());

}  // namespace

FlarePipeline::FlarePipeline(FlareConfig config, const dcsim::JobCatalog& catalog)
    : config_(std::move(config)),
      catalog_(catalog),
      model_(catalog_, config_.model),
      impact_(config_.machine, catalog_, config_.model),
      replayer_(impact_, config_.replay,
                dcsim::ReplayFaultModel(config_.replay_faults)),
      pool_(config_.threads != 1
                ? std::make_unique<util::ThreadPool>(config_.threads)
                : nullptr),
      response_(config_.drift_response, config_.drift) {}

std::string_view to_string(PcaUpdatePolicy policy) {
  switch (policy) {
    case PcaUpdatePolicy::kRefit: return "refit";
    case PcaUpdatePolicy::kIncremental: return "incremental";
    case PcaUpdatePolicy::kAuto: return "auto";
  }
  return "?";
}

const metrics::MetricCatalog& resolve_schema(MetricSchema schema) {
  switch (schema) {
    case MetricSchema::kStandard:
      return metrics::MetricCatalog::standard();
    case MetricSchema::kWithJobMix:
      return metrics::MetricCatalog::standard_with_job_mix();
    case MetricSchema::kTemporal:
      return kTemporalCatalog;
    case MetricSchema::kWithJobMixTemporal:
      return kJobMixTemporalCatalog;
  }
  ensure(false, "resolve_schema: unknown schema selector");
  return metrics::MetricCatalog::standard();  // unreachable
}

void FlarePipeline::fit(const dcsim::ScenarioSet& set) {
  ensure(!set.scenarios.empty(), "FlarePipeline::fit: empty scenario set");
  set_ = set;
  const Profiler profiler(model_, config_.profiler);
  ProfileReport profiled = profiler.profile_with_health(
      set_, config_.machine, resolve_schema(config_.schema), pool_.get());
  database_ =
      std::make_unique<metrics::MetricDatabase>(std::move(profiled.database));

  // Quarantine bookkeeping: rows below the sample quorum stay in the
  // population (indices must keep lining up) but are fenced out of every
  // fitted moment; their NaN cells — and partial rows' — get the healthy
  // population's per-metric medians.
  quarantined_.assign(set_.size(), false);
  impute_medians_.clear();
  imputed_cells_total_ = 0;
  bool any_quarantined = false;
  for (std::size_t i = 0; i < profiled.health.size(); ++i) {
    if (profiled.health[i].below_quorum(config_.profiler.sample_quorum)) {
      quarantined_[i] = true;
      any_quarantined = true;
    }
  }
  if (profiled.total_imputed_cells() > 0) {
    imputed_cells_total_ = impute_rows(*database_, 0);
  }

  const Analyzer analyzer(config_.analyzer);
  if (any_quarantined || imputed_cells_total_ > 0) {
    const AnalysisHealth health{quarantined_, imputed_cells_total_};
    analysis_ = std::make_unique<AnalysisResult>(analyzer.analyze(
        *database_, pool_.get(), nullptr, /*warm_start=*/false, &health));
  } else {
    // Clean path, byte-for-byte the original fit (no health hashing).
    analysis_ = std::make_unique<AnalysisResult>(
        analyzer.analyze(*database_, pool_.get()));
  }
  scheduler_weights_.clear();
  rebase_tracked_pca();
}

std::size_t FlarePipeline::impute_rows(metrics::MetricDatabase& db,
                                       std::size_t first_row) {
  if (impute_medians_.empty()) {
    // Fit-frame medians over the healthy population. During fit() `db` IS the
    // population; at ingest time the archive (already imputed) serves.
    std::vector<std::size_t> excluded;
    for (std::size_t i = 0; i < quarantined_.size(); ++i) {
      if (quarantined_[i]) excluded.push_back(i);
    }
    impute_medians_ = ml::finite_column_medians(database_->to_matrix(), excluded);
  }
  std::size_t imputed = 0;
  for (std::size_t r = first_row; r < db.num_rows(); ++r) {
    metrics::MetricRow& row = db.row_mutable(r);
    for (std::size_t c = 0; c < row.values.size(); ++c) {
      if (!std::isfinite(row.values[c])) {
        row.values[c] = impute_medians_[c];
        ++imputed;
      }
    }
  }
  return imputed;
}

void FlarePipeline::refresh_quarantine_ledger() {
  QuarantineLedger ledger;
  for (std::size_t i = 0; i < set_.size(); ++i) {
    const double w = set_.scenarios[i].observation_weight;
    ledger.total_weight += w;
    if (i < quarantined_.size() && quarantined_[i]) {
      ledger.quarantined_rows.push_back(i);
      ledger.quarantined_weight += w;
    }
  }
  ledger.imputed_cells = imputed_cells_total_;
  analysis_->quarantine = std::move(ledger);
}

std::vector<double> FlarePipeline::masked_weights(
    const std::vector<double>& true_weights) const {
  std::vector<double> masked = true_weights;
  for (std::size_t i = 0; i < masked.size() && i < quarantined_.size(); ++i) {
    if (quarantined_[i]) masked[i] = 0.0;
  }
  return masked;
}

void FlarePipeline::rebase_tracked_pca() {
  tracked_pca_ = analysis_->pca;
  tracked_pca_.set_drift_anchor(analysis_->num_components);
}

FeatureEstimate FlarePipeline::evaluate(const Feature& feature) {
  ensure(fitted(), "FlarePipeline::evaluate: call fit() first");
  const FlareEstimator estimator(*analysis_, set_, replayer_);
  FeatureEstimate est = estimator.estimate(feature);
  est.replay.staleness_widening_pp = response_.staleness_widening_pp();
  return est;
}

ValidatedFeatureEstimate FlarePipeline::evaluate_with_validation(
    const Feature& feature) {
  ensure(fitted(), "FlarePipeline::evaluate_with_validation: call fit() first");
  const FlareEstimator estimator(*analysis_, set_, replayer_);
  ValidatedFeatureEstimate out = estimator.estimate_with_validation(feature);
  // Staleness guard: a model past its drift-rate-scaled batch-age budget
  // reports a proportionally wider band (exactly +0.0 when fresh/disabled).
  out.estimate.replay.staleness_widening_pp = response_.staleness_widening_pp();
  out.uncertainty_pp += response_.staleness_widening_pp();
  return out;
}

PerJobEstimate FlarePipeline::evaluate_per_job(const Feature& feature,
                                               dcsim::JobType job) {
  ensure(fitted(), "FlarePipeline::evaluate_per_job: call fit() first");
  const FlareEstimator estimator(*analysis_, set_, replayer_);
  PerJobEstimate est = estimator.estimate_per_job(feature, job);
  est.replay.staleness_widening_pp = response_.staleness_widening_pp();
  return est;
}

void FlarePipeline::apply_scheduler_change(const std::vector<double>& new_weights) {
  ensure(fitted(), "FlarePipeline::apply_scheduler_change: call fit() first");
  bool tracking = false;
  for (const bool q : quarantined_) tracking = tracking || q;
  const Analyzer analyzer(config_.analyzer);
  // Quarantined rows stay fenced out under the new scheduler too.
  *analysis_ = analyzer.recluster(
      *analysis_, tracking ? masked_weights(new_weights) : new_weights,
      pool_.get());
  scheduler_weights_ = new_weights;
  // Estimation must also see the new frequencies.
  for (std::size_t i = 0; i < set_.scenarios.size(); ++i) {
    set_.scenarios[i].observation_weight = new_weights[i];
  }
  if (tracking) refresh_quarantine_ledger();
}

IngestReport FlarePipeline::ingest(const dcsim::ScenarioSet& batch,
                                   RefitPolicy policy) {
  ensure(fitted(), "FlarePipeline::ingest: call fit() first");
  ensure(!batch.scenarios.empty(), "FlarePipeline::ingest: empty batch");

  // Re-id the batch so it continues the fitted population's dense indexing
  // (batch ids are whatever the collector used; row index is what matters).
  dcsim::ScenarioSet fresh = batch;
  fresh.machine_type = set_.machine_type;
  for (std::size_t i = 0; i < fresh.scenarios.size(); ++i) {
    fresh.scenarios[i].id = set_.size() + i;
  }

  const Profiler profiler(model_, config_.profiler);
  ProfileReport profiled = profiler.profile_with_health(
      fresh, config_.machine, resolve_schema(config_.schema), pool_.get());
  metrics::MetricDatabase fresh_db = std::move(profiled.database);

  IngestReport report;
  report.appended = fresh.size();
  report.first_new_row = set_.size();

  // Batch measurement health: quarantine rows below the sample quorum,
  // median-impute what the profiler could not read, and report a degraded
  // batch instead of throwing mid-ingest.
  std::vector<bool> batch_quarantined(fresh.size(), false);
  double batch_weight = 0.0;
  double batch_quarantined_weight = 0.0;
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    const double w = fresh.scenarios[i].observation_weight;
    batch_weight += w;
    if (profiled.health[i].below_quorum(config_.profiler.sample_quorum)) {
      batch_quarantined[i] = true;
      ++report.rows_quarantined;
      batch_quarantined_weight += w;
    }
  }
  report.retried_samples = profiled.total_retried_samples();
  if (profiled.total_imputed_cells() > 0) {
    report.imputed_cells = impute_rows(fresh_db, 0);
    imputed_cells_total_ += report.imputed_cells;
  }
  report.quarantined_weight_fraction =
      batch_weight > 0.0 ? batch_quarantined_weight / batch_weight : 0.0;
  report.degraded = report.rows_quarantined > 0 || report.imputed_cells > 0;

  const DriftMonitor monitor(*analysis_, config_.drift);
  report.drift = monitor.inspect(fresh_db);
  report.cleaned_drift = report.drift;
  const linalg::Matrix fresh_raw = fresh_db.to_matrix();

  // Anomaly-episode fencing (drift response, any RefitPolicy): a
  // cluster-coherent clump of uncovered rows is one interference episode, not
  // population drift. Fence it into the batch quarantine BEFORE the tracked
  // basis folds the batch (so the episode cannot rotate the basis) and
  // re-measure drift on the healthy remainder — the verdict the rest of
  // ingest acts on must not be poisoned by the episode. The fenced weight is
  // deliberately kept out of quarantined_weight_fraction: an episode is
  // handled evidence, not measurement failure, and must not trip the
  // quarantine refit escalation.
  if (config_.drift_response.enabled) {
    const EpisodeFence fence = detect_anomalous_episode(
        *analysis_, stages::project_rows(*analysis_, fresh_raw), report.drift,
        config_.drift_response);
    if (fence.detected()) {
      double fenced_weight = 0.0;
      for (const std::size_t row : fence.rows) {
        fenced_weight += fresh.scenarios[row].observation_weight;
        batch_quarantined[row] = true;
      }
      report.response.episode_rows = fence.rows.size();
      report.response.episode_weight_fraction =
          batch_weight > 0.0 ? fenced_weight / batch_weight : 0.0;
      report.response.episode_dispersion_ratio = fence.dispersion_ratio;
      metrics::MetricDatabase healthy_db(fresh_db.catalog());
      for (std::size_t i = 0; i < fresh.size(); ++i) {
        if (!batch_quarantined[i]) healthy_db.add_row(fresh_db.row(i));
      }
      if (healthy_db.num_rows() > 0) {
        // Note: cleaned_drift.uncovered_rows index the healthy sub-batch.
        report.cleaned_drift = monitor.inspect(healthy_db);
      }
    }
  }

  // Fold the batch into the tracked eigenbasis first — in the frozen fitted
  // frame (fitted refinement + standardizer), the coordinates the basis has
  // been maintained in since the last rebase. Runs under every policy: the
  // drift telemetry is what lets kAuto decide when the analysis basis went
  // stale, and under kRefit it is free diagnostics (DESIGN.md §9). Only
  // healthy batch rows feed the basis — quarantined rows are median-filled
  // noise and must not rotate it.
  std::vector<std::size_t> healthy_batch;
  healthy_batch.reserve(fresh.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    if (!batch_quarantined[i]) healthy_batch.push_back(i);
  }
  if (!healthy_batch.empty()) {
    const linalg::Matrix basis_rows =
        healthy_batch.size() == fresh.size()
            ? fresh_raw
            : fresh_raw.select_rows(healthy_batch);
    const linalg::Matrix std_batch = analysis_->standardizer.transform(
        basis_rows.select_columns(analysis_->kept_columns));
    ml::Standardizer batch_moments;
    batch_moments.fit(std_batch);
    report.pca_update =
        tracked_pca_.update(std_batch, batch_moments, pool_.get());
    report.pca_drift = report.pca_update.subspace_drift;
    ++analysis_->stage_counters.pca_incremental;
  }

  report.action = report.cleaned_drift.verdict;
  if (policy == RefitPolicy::kAlways) {
    report.action = DriftVerdict::kRefit;
  } else if (policy == RefitPolicy::kNever &&
             report.action == DriftVerdict::kRefit) {
    report.action = DriftVerdict::kReweight;
  }
  // kAuto's second trigger: the basis itself rotated past the configured
  // limit even though the distance/coverage criteria stayed quiet. kNever
  // keeps its veto — basis staleness never overrides an explicit no-refit.
  if (config_.pca_update == PcaUpdatePolicy::kAuto &&
      policy != RefitPolicy::kNever && report.action != DriftVerdict::kRefit) {
    const DriftVerdict escalated = escalate_for_basis_drift(
        report.action, report.pca_drift, config_.drift);
    if (escalated != report.action) {
      report.action = escalated;
      report.pca_drift_escalated = true;
    }
  }
  // Quarantine escalation: absorbing a batch whose weight mass is mostly
  // fenced out would skew the cluster weights against the healthy
  // population — force a refit instead (kNever keeps its veto here too).
  if (report.quarantined_weight_fraction >
          config_.drift.quarantine_refit_fraction &&
      policy != RefitPolicy::kNever && report.action != DriftVerdict::kRefit) {
    report.action = DriftVerdict::kRefit;
    report.quarantine_escalated = true;
  }
  // Adaptive response (kAuto only): the change-point detector decides whether
  // the refit-worthy evidence is sustained (commit) or a transient burst
  // (suppress to reweight), and the staleness guard updates the band
  // widening. kAlways stays the always-refit baseline and kNever keeps its
  // veto — neither advances the detector.
  if (config_.drift_response.enabled && policy == RefitPolicy::kAuto) {
    report.action =
        response_.resolve(report.action, report.cleaned_drift, report.response);
  }

  // Grow the population. Observation weights for all accounting come from
  // set_ (apply_scheduler_change keeps those current; the archived database
  // rows may carry pre-change weights), so sync the database before any use.
  set_.scenarios.insert(set_.scenarios.end(), fresh.scenarios.begin(),
                        fresh.scenarios.end());
  database_->append(fresh_db);
  quarantined_.insert(quarantined_.end(), batch_quarantined.begin(),
                      batch_quarantined.end());
  if (!scheduler_weights_.empty()) {
    for (const dcsim::ColocationScenario& s : fresh.scenarios) {
      scheduler_weights_.push_back(s.observation_weight);
    }
  }
  std::vector<double> combined;
  combined.reserve(set_.size());
  for (const dcsim::ColocationScenario& s : set_.scenarios) {
    combined.push_back(s.observation_weight);
  }
  // The archive keeps TRUE weights (quarantine must not rewrite history);
  // the masked copy is what every weight-consuming stage sees.
  database_->set_observation_weights(combined);
  bool tracking = imputed_cells_total_ > 0;
  for (const bool q : quarantined_) tracking = tracking || q;
  const std::vector<double> stage_weights =
      tracking ? masked_weights(combined) : combined;
  if (tracking) {
    double mass = 0.0;
    for (const double w : stage_weights) mass += w;
    if (mass <= 0.0) {
      throw QuarantineError(
          "FlarePipeline::ingest: quarantine removed all observation-weight "
          "mass from the population");
    }
  }

  switch (report.action) {
    case DriftVerdict::kValid:
      // Same behaviours, same frequencies: assign the new rows into the
      // fitted cluster space; no stage re-runs.
      stages::absorb_rows(*analysis_, stages::project_rows(*analysis_, fresh_raw),
                          stage_weights, /*refresh_representatives=*/false);
      break;
    case DriftVerdict::kReweight:
      // Same behaviours, shifted frequencies: reuse every fitted stage,
      // refresh only the weights and representatives.
      stages::absorb_rows(*analysis_, stages::project_rows(*analysis_, fresh_raw),
                          stage_weights, /*refresh_representatives=*/true);
      break;
    case DriftVerdict::kRefit: {
      const Analyzer analyzer(config_.analyzer);
      const AnalysisHealth health{quarantined_, imputed_cells_total_};
      const AnalysisHealth* health_ptr = tracking ? &health : nullptr;
      const bool incremental =
          config_.pca_update == PcaUpdatePolicy::kIncremental ||
          (config_.pca_update == PcaUpdatePolicy::kAuto &&
           report.pca_drift <= config_.drift.pca_drift_limit);
      if (incremental) {
        // New behaviours, small basis rotation: splice the tracked basis and
        // replay only the downstream stages over the combined population.
        // The analysis now projects with the tracked basis itself, so the
        // drift anchor rebases to it (future drift measures from here).
        *analysis_ = analyzer.refit_incremental(*database_, tracked_pca_,
                                                *analysis_, pool_.get(),
                                                health_ptr);
        report.pca_incremental_refit = true;
        tracked_pca_.set_drift_anchor(analysis_->num_components);
      } else {
        // Full refit over the combined population, warm-started from the
        // previous centroids (stage fingerprints still skip any stage whose
        // input happens to be unchanged). The fitted frame may change, so
        // the tracked basis restarts from the cold fit — and the imputation
        // medians go stale with the old frame.
        AnalysisResult refit =
            analyzer.analyze(*database_, pool_.get(), analysis_.get(),
                             /*warm_start=*/true, health_ptr);
        *analysis_ = std::move(refit);
        rebase_tracked_pca();
        impute_medians_.clear();
      }
      break;
    }
  }
  if (config_.drift_response.enabled && report.action == DriftVerdict::kRefit) {
    response_.note_refit();
  }
  if (tracking) refresh_quarantine_ledger();
  return report;
}

const std::vector<bool>& FlarePipeline::quarantined() const {
  ensure(fitted(), "FlarePipeline::quarantined: call fit() first");
  return quarantined_;
}

const metrics::MetricDatabase& FlarePipeline::database() const {
  ensure(fitted(), "FlarePipeline::database: call fit() first");
  return *database_;
}

const AnalysisResult& FlarePipeline::analysis() const {
  ensure(fitted(), "FlarePipeline::analysis: call fit() first");
  return *analysis_;
}

const dcsim::ScenarioSet& FlarePipeline::scenario_set() const {
  ensure(fitted(), "FlarePipeline::scenario_set: call fit() first");
  return set_;
}

const ImpactModel& FlarePipeline::impact_model() const { return impact_; }

std::size_t FlarePipeline::scenario_replays() const {
  return replayer_.distinct_scenario_replays();
}

}  // namespace flare::core
