// Stage-graph bookkeeping for the incremental analysis data plane.
//
// The Analyzer is a chain of pure stages
//
//   raw ─▶ refine ─▶ standardize ─▶ pca ─▶ whiten ─▶ cluster ─▶ representatives
//
// and each stage's *input fingerprint* is the hash-chain of its upstream
// input fingerprint mixed with the bits of the config knobs that stage reads.
// Stages are deterministic, so equal input fingerprints imply bit-equal
// outputs — a re-analysis can splice in the previous result's outputs for
// every stage whose input fingerprint is unchanged and recompute only the
// suffix that actually changed (e.g. a Ward-vs-KMeans flip replays only the
// cluster + representative stages). Results that were extended *in place* by
// the incremental ingest path poison their fingerprints (see
// stages::absorb_rows), because their stored stage outputs no longer equal
// what a from-scratch fit over the grown population would produce.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "linalg/matrix.hpp"
#include "util/hash.hpp"

namespace flare::core {

/// Input fingerprint per analysis stage (0 = never computed). Equality of a
/// stage's field across two analyses proves the stage would recompute the
/// same output bit for bit.
struct StageFingerprints {
  std::uint64_t raw = 0;              ///< metric matrix + catalog names
  std::uint64_t refine = 0;           ///< raw ⊕ refinement knobs
  std::uint64_t standardize = 0;      ///< refine ⊕ (no knobs)
  std::uint64_t pca = 0;              ///< standardize ⊕ variance/labeler knobs
  std::uint64_t whiten = 0;           ///< pca ⊕ whiten knob
  std::uint64_t cluster = 0;          ///< whiten ⊕ clustering knobs (+ weights)
  std::uint64_t representatives = 0;  ///< cluster ⊕ observation weights

  [[nodiscard]] bool operator==(const StageFingerprints&) const = default;
};

/// How many times each stage has been (re)computed over the lifetime of an
/// analysis lineage — fit() sets every counter to 1, incremental operations
/// (ingest, scheduler changes, re-analyses) bump only the stages they
/// actually re-ran. Tests assert cheap paths by diffing these.
struct StageCounters {
  std::size_t refine = 0;
  std::size_t standardize = 0;
  std::size_t pca = 0;
  std::size_t whiten = 0;
  std::size_t cluster = 0;
  std::size_t representatives = 0;
  /// Incremental eigenbasis maintenance: ml::Pca::update folds into the
  /// tracked basis (telemetry — an O(batch·d²) fold, orders of magnitude
  /// cheaper than the pca counter's cold covariance fit) plus basis splices
  /// by Analyzer::refit_incremental. Deliberately excluded from
  /// upstream_total()/total() so cheap-path assertions over the cold-stage
  /// counters are unaffected by how often the shadow basis advanced.
  std::size_t pca_incremental = 0;

  /// Recomputations of the expensive fitted stages (everything upstream of
  /// the representative extraction).
  [[nodiscard]] std::size_t upstream_total() const {
    return refine + standardize + pca + whiten + cluster;
  }
  [[nodiscard]] std::size_t total() const {
    return upstream_total() + representatives;
  }
  [[nodiscard]] bool operator==(const StageCounters&) const = default;
};

/// Mixes a double's bit pattern into a hash chain.
[[nodiscard]] inline std::uint64_t hash_mix(std::uint64_t h, double value) {
  return util::hash_mix(h, std::bit_cast<std::uint64_t>(value));
}

/// Content hash of a dense matrix (dims + every element's bit pattern).
[[nodiscard]] std::uint64_t fingerprint_matrix(const linalg::Matrix& m,
                                               std::uint64_t seed = util::kFnvOffsetBasis);

/// Content hash of a double vector.
[[nodiscard]] std::uint64_t fingerprint_doubles(const std::vector<double>& v,
                                                std::uint64_t seed = util::kFnvOffsetBasis);

}  // namespace flare::core
