// Weighted fan-in of per-shape estimates into one datacenter-wide estimate
// (paper §5.5, DESIGN.md §13).
//
// A heterogeneous fleet is analysed per machine shape: each shape's pipeline
// replays its own representatives and produces its own FeatureEstimate with
// its own ReplayLedger. The fleet-wide number is the population-weighted
// average — shape s holding a fraction w_s of the fleet's machines
// contributes w_s of the answer:
//
//   impact_fleet = Σ_s w_s · impact_s                    (Σ_s w_s = 1)
//
// The combined ReplayLedger conserves mass by the same weighting: shard s's
// ledger sums to 1 in its own cluster-weight units, so
// Σ_s w_s · (direct_s + fallback_s + quarantined_s) = Σ_s w_s = 1 — the
// fleet ledger's direct + fallback + quarantined mass is exactly 1 whenever
// every shard's is (property-tested under ctest -L shard). Uncertainty bands
// combine linearly too: the shards replay disjoint testbeds, so the
// worst-case band of the weighted sum is the weighted sum of the bands.
//
// Per-job estimates add a wrinkle: a job may run on only some shapes (a
// placement constraint, or it simply never landed there). Shards whose
// population lacks the job contribute nothing; the weights of the covering
// shards are renormalised by the covered mass so the per-job fan-in still
// sums to 1 over the shards that actually observed the job.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/estimator.hpp"

namespace flare::core {

/// One shape's contribution to a fleet-wide estimate.
struct ShardFeatureEstimate {
  std::string shape;    ///< machine shape name (FleetConfig order)
  double weight = 0.0;  ///< population weight w_s (machine-count share)
  FeatureEstimate estimate;
};

/// Datacenter-wide feature impact over a heterogeneous fleet.
struct FleetEstimate {
  std::string feature_name;
  double impact_pct = 0.0;  ///< Σ_s w_s · impact_s
  std::vector<ShardFeatureEstimate> per_shape;
  std::size_t scenario_replays = 0;  ///< Σ over shards (evaluation cost)
  /// Population-weighted combination of the shard ledgers; total_mass() == 1
  /// whenever every shard's does.
  ReplayLedger replay;
};

/// One shape's validated contribution (estimate + uncertainty band).
struct ShardValidatedEstimate {
  std::string shape;
  double weight = 0.0;
  ValidatedFeatureEstimate estimate;
};

/// FleetEstimate with a combined uncertainty band.
struct ValidatedFleetEstimate {
  FleetEstimate estimate;
  double validation_impact_pct = 0.0;  ///< Σ_s w_s · validation_s
  double uncertainty_pp = 0.0;         ///< Σ_s w_s · uncertainty_s
  std::vector<ShardValidatedEstimate> per_shape;

  [[nodiscard]] double lower() const {
    return estimate.impact_pct - uncertainty_pp;
  }
  [[nodiscard]] double upper() const {
    return estimate.impact_pct + uncertainty_pp;
  }
};

/// One shape's per-job contribution. `estimate` is nullopt when the job never
/// ran on this shape — the shard is excluded and its weight renormalised away.
struct ShardPerJobEstimate {
  std::string shape;
  double weight = 0.0;
  std::optional<PerJobEstimate> estimate;
};

/// Fleet-wide per-job impact (§5.3 across shapes).
struct FleetPerJobEstimate {
  std::string feature_name;
  dcsim::JobType job = dcsim::JobType::kDataAnalytics;
  double impact_pct = 0.0;
  /// Σ w_s over shards whose population contains the job. 1 = the job runs
  /// everywhere; < 1 = the estimate speaks for this fraction of the fleet.
  double covered_weight = 0.0;
  std::vector<ShardPerJobEstimate> per_shape;
  std::size_t scenario_replays = 0;
  /// Combined over covering shards with renormalised weights (sums to 1).
  ReplayLedger replay;
};

/// Weighted combination of shard ledgers: masses and uncertainty terms are
/// weighted sums, counters and costs plain sums. `weights` and `ledgers`
/// pair up index-wise.
[[nodiscard]] ReplayLedger combine_ledgers(
    const std::vector<double>& weights,
    const std::vector<const ReplayLedger*>& ledgers);

/// Fans per-shape estimates into the fleet-wide estimate. Shard weights must
/// be non-negative and sum to 1 (within 1e-9); shard feature names must
/// agree. Throws std::invalid_argument otherwise.
[[nodiscard]] FleetEstimate fan_in(std::vector<ShardFeatureEstimate> shards);

/// Validated variant: bands combine linearly (see file comment).
[[nodiscard]] ValidatedFleetEstimate fan_in_validated(
    std::vector<ShardValidatedEstimate> shards);

/// Per-job variant: shards without the job are skipped and the covering
/// shards' weights renormalised by covered_weight. Throws ReplayError when no
/// shard observed the job — there is no population to speak for.
[[nodiscard]] FleetPerJobEstimate fan_in_per_job(
    std::vector<ShardPerJobEstimate> shards);

}  // namespace flare::core
