// Implementations of the composable analysis stages (core/analyzer.hpp,
// namespace stages) plus the content-fingerprint helpers of
// core/stage_graph.hpp. The Analyzer orchestrates these; each stage is a
// pure function of its arguments and produces bit for bit what the former
// monolithic Analyzer::analyze computed for the same inputs.
#include <algorithm>
#include <cmath>
#include <limits>

#include "core/analyzer.hpp"
#include "ml/cluster_quality.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace flare::core {

std::uint64_t fingerprint_matrix(const linalg::Matrix& m, std::uint64_t seed) {
  std::uint64_t h = util::hash_mix(seed, m.rows());
  h = util::hash_mix(h, m.cols());
  const std::vector<double>& data = m.data();
  return util::fnv1a(
      std::string_view(reinterpret_cast<const char*>(data.data()),
                       data.size() * sizeof(double)),
      h);
}

std::uint64_t fingerprint_doubles(const std::vector<double>& v,
                                  std::uint64_t seed) {
  const std::uint64_t h = util::hash_mix(seed, v.size());
  return util::fnv1a(
      std::string_view(reinterpret_cast<const char*>(v.data()),
                       v.size() * sizeof(double)),
      h);
}

namespace stages {
namespace {

/// Columns whose variance is numerically zero carry no information and would
/// only add dead dimensions; real deployments always have a few (e.g. the
/// nominal frequency on a homogeneous fleet).
std::vector<std::size_t> non_constant_columns(const linalg::Matrix& data,
                                              std::vector<std::size_t>* constants) {
  std::vector<std::size_t> kept;
  for (std::size_t c = 0; c < data.cols(); ++c) {
    double lo = data(0, c), hi = data(0, c);
    for (std::size_t r = 1; r < data.rows(); ++r) {
      lo = std::min(lo, data(r, c));
      hi = std::max(hi, data(r, c));
    }
    const double scale = std::max({std::abs(lo), std::abs(hi), 1.0});
    if (hi - lo <= 1e-12 * scale) {
      if (constants != nullptr) constants->push_back(c);
    } else {
      kept.push_back(c);
    }
  }
  return kept;
}

/// Adapts a Ward clustering into the KMeansResult shape so downstream code
/// (representative selection, weights) is algorithm-agnostic. Fills
/// point_distances so nearest_member/members_by_distance skip the rescan,
/// exactly as the K-means path does.
ml::KMeansResult adapt_ward(const linalg::Matrix& space, std::size_t k) {
  const ml::AgglomerativeResult ward =
      ml::agglomerative_cluster(space, k, ml::Linkage::kWard);
  ml::KMeansResult result;
  result.centroids = ward.centroids;
  result.assignment = ward.assignment;
  result.cluster_sizes = ward.cluster_sizes;
  result.point_distances.resize(space.rows());
  result.sse = 0.0;
  for (std::size_t i = 0; i < space.rows(); ++i) {
    const double d = linalg::squared_distance(
        space.row(i), result.centroids.row(result.assignment[i]));
    result.point_distances[i] = d;
    result.sse += d;
  }
  result.iterations = 0;
  result.converged = true;
  return result;
}

}  // namespace

RefineOutput refine(const linalg::Matrix& raw, const AnalyzerConfig& config,
                    const std::vector<std::size_t>* fit_rows) {
  RefineOutput out;
  const bool subset = fit_rows != nullptr;
  if (subset) {
    ensure(!fit_rows->empty(), "stages::refine: no healthy rows to fit on");
  }
  const linalg::Matrix fit_matrix =
      subset ? raw.select_rows(*fit_rows) : linalg::Matrix();
  const linalg::Matrix& fit = subset ? fit_matrix : raw;
  std::vector<std::size_t> informative =
      non_constant_columns(fit, &out.constant_columns);
  ensure(!informative.empty(), "Analyzer::analyze: all metrics are constant");
  out.refined = raw.select_columns(informative);
  if (config.use_correlation_filter) {
    const ml::CorrelationFilter filter(config.correlation_threshold);
    out.refinement = subset ? filter.fit(fit.select_columns(informative))
                            : filter.fit(out.refined);
    // Map audit-trail and kept indices back to original catalog columns.
    out.refined = out.refined.select_columns(out.refinement.kept_columns);
    out.kept_columns.reserve(out.refinement.kept_columns.size());
    for (const std::size_t c : out.refinement.kept_columns) {
      out.kept_columns.push_back(informative[c]);
    }
    for (ml::CorrelationDrop& d : out.refinement.drops) {
      d.dropped_column = informative[d.dropped_column];
      d.kept_column = informative[d.kept_column];
    }
  } else {
    out.kept_columns = std::move(informative);
  }
  return out;
}

StandardizeOutput standardize(const linalg::Matrix& refined,
                              const std::vector<std::size_t>* fit_rows) {
  StandardizeOutput out;
  if (fit_rows == nullptr) {
    out.standardized = out.standardizer.fit_transform(refined);
  } else {
    ensure(!fit_rows->empty(), "stages::standardize: no healthy rows to fit on");
    out.standardizer.fit(refined.select_rows(*fit_rows));
    out.standardized = out.standardizer.transform(refined);
  }
  return out;
}

PcaOutput fit_pca(const linalg::Matrix& standardized,
                  const std::vector<std::size_t>& kept_columns,
                  const metrics::MetricCatalog& catalog,
                  const AnalyzerConfig& config, util::ThreadPool* pool,
                  const std::vector<std::size_t>* fit_rows) {
  PcaOutput out;
  if (fit_rows == nullptr) {
    out.pca.fit(standardized, pool);
  } else {
    ensure(!fit_rows->empty(), "stages::fit_pca: no healthy rows to fit on");
    out.pca.fit(standardized.select_rows(*fit_rows), pool);
  }
  out.num_components = out.pca.num_components_for(config.variance_target);
  out.interpretations = interpret_components(out.pca, kept_columns, catalog,
                                             out.num_components, config.labeler);
  return out;
}

PcaOutput splice_pca(const ml::Pca& updated_pca,
                     const std::vector<std::size_t>& kept_columns,
                     const metrics::MetricCatalog& catalog,
                     const AnalyzerConfig& config) {
  ensure(updated_pca.fitted(), "stages::splice_pca: basis is not fitted");
  ensure(updated_pca.dimension() == kept_columns.size(),
         "stages::splice_pca: basis dimension must match the kept columns");
  PcaOutput out;
  out.pca = updated_pca;
  out.num_components = out.pca.num_components_for(config.variance_target);
  out.interpretations = interpret_components(out.pca, kept_columns, catalog,
                                             out.num_components, config.labeler);
  return out;
}

WhitenOutput whiten(const ml::Pca& pca, std::size_t num_components,
                    const linalg::Matrix& standardized,
                    const AnalyzerConfig& config,
                    const std::vector<std::size_t>* fit_rows) {
  WhitenOutput out;
  const linalg::Matrix scores = pca.transform(standardized, num_components);
  out.whitened = config.whiten;
  if (fit_rows == nullptr) {
    if (config.whiten) {
      out.cluster_space = out.whitener.fit_transform(scores);
    } else {
      out.whitener.fit(scores);  // fitted for API symmetry, not applied
      out.cluster_space = scores;
    }
  } else {
    ensure(!fit_rows->empty(), "stages::whiten: no healthy rows to fit on");
    out.whitener.fit(scores.select_rows(*fit_rows));
    out.cluster_space = config.whiten ? out.whitener.transform(scores) : scores;
  }
  return out;
}

ClusterOutput cluster(const linalg::Matrix& cluster_space,
                      const std::vector<double>& weights,
                      const AnalyzerConfig& config, util::ThreadPool* pool,
                      const linalg::Matrix& warm_centroids) {
  ClusterOutput out;
  const std::size_t n = cluster_space.rows();

  // --- Cluster-count sweep (Fig. 9) ---
  ml::KMeansParams base_params = config.kmeans;
  if (config.weight_clustering_by_observation) {
    base_params.weights = weights;
  }
  // kmeans uses the seed only for the restart whose k matches its row count,
  // so sweep points at other k are unaffected (batch fits pass no seed).
  base_params.initial_centroids = warm_centroids;

  // Million-scenario guards (DESIGN.md §12). Both default to the paper-scale
  // behavior: exact solver, exact silhouette over the shared n×n distance
  // cache. Populations beyond the thresholds switch to the coreset solver
  // and/or the sampled silhouette estimator — the n×n cache alone would be
  // 80 GB at n = 10^5.
  const bool use_minibatch =
      config.algorithm == ClusterAlgorithm::kKMeans &&
      (config.kmeans_mode == KMeansMode::kMiniBatch ||
       (config.kmeans_mode == KMeansMode::kAuto &&
        n > config.minibatch_threshold));
  const bool exact_silhouette = n <= config.silhouette_exact_threshold;
  // One fixed row sample scores every sweep point, mirroring how the exact
  // path shares one distance cache — curves stay comparable across k.
  const auto solve = [&](std::size_t k, util::ThreadPool* solver_pool) {
    if (config.algorithm != ClusterAlgorithm::kKMeans) {
      return adapt_ward(cluster_space, k);
    }
    ml::KMeansParams params = base_params;
    params.k = k;
    if (!use_minibatch) return ml::kmeans(cluster_space, params, solver_pool);
    ml::MiniBatchKMeansParams mb;
    mb.kmeans = params;
    mb.coreset = config.coreset;
    mb.refine_iterations = config.minibatch_refine_iterations;
    return ml::minibatch_kmeans(cluster_space, mb, solver_pool);
  };

  const std::size_t k_lo = config.min_clusters;
  const std::size_t k_hi = std::min(config.max_clusters, cluster_space.rows() - 1);
  const bool sweep = config.compute_quality_curve || !config.fixed_clusters;
  if (sweep && k_hi >= k_lo) {
    // Every sweep point scores the SAME fixed point set, so the O(n²·dim)
    // pairwise distances are computed once and shared across all k. Sweep
    // points are independent: each task owns its quality_curve slot, and at
    // most one task (k == fixed_clusters) writes the kept clustering. The
    // per-k kmeans runs inline in its task (nested pool use is forbidden).
    const ml::PairwiseDistances distances =
        exact_silhouette ? ml::pairwise_distances(cluster_space, pool)
                         : ml::PairwiseDistances();
    out.quality_curve.assign(k_hi - k_lo + 1, ClusterQualityPoint{});
    ml::KMeansResult kept;
    util::maybe_parallel_for(pool, out.quality_curve.size(), [&](std::size_t idx) {
      const std::size_t k = k_lo + idx;
      ml::KMeansResult kr = solve(k, nullptr);
      ClusterQualityPoint& point = out.quality_curve[idx];
      point.k = k;
      point.sse = kr.sse;
      if (exact_silhouette) {
        point.silhouette = ml::silhouette_score(distances, kr.assignment, k);
      } else {
        point.silhouette = ml::silhouette_score_sampled(
            cluster_space, kr.assignment, k, config.silhouette_sample,
            config.kmeans.seed);
        point.silhouette_estimated = true;
      }
      if (config.fixed_clusters.has_value() && k == *config.fixed_clusters) {
        kept = std::move(kr);
      }
    });
    out.clustering = std::move(kept);
  }

  out.chosen_k = config.fixed_clusters.has_value()
                     ? *config.fixed_clusters
                     : Analyzer::suggest_k(out.quality_curve);
  ensure(out.chosen_k >= config.min_clusters && out.chosen_k <= k_hi,
         "Analyzer::analyze: chosen cluster count is out of the sweep range");
  if (out.clustering.assignment.empty()) {
    out.clustering = solve(out.chosen_k, pool);
  }
  return out;
}

RepresentativesOutput representatives(const ml::KMeansResult& clustering,
                                      const linalg::Matrix& cluster_space,
                                      std::size_t k,
                                      const std::vector<double>& weights,
                                      bool require_positive_weight) {
  ensure(weights.size() == clustering.assignment.size(),
         "stages::representatives: weight count must match scenario count");
  double total = 0.0;
  for (const double w : weights) total += w;
  ensure(total > 0.0, "Analyzer::analyze: zero total observation weight");

  RepresentativesOutput out;
  out.representatives.resize(k);
  out.cluster_weights.assign(k, 0.0);
  if (require_positive_weight) {
    // Representatives must be scenarios that actually occur under the new
    // weighting: walk outward from the centroid past zero-weight members.
    for (std::size_t c = 0; c < k; ++c) {
      const std::vector<std::size_t> ordered =
          clustering.members_by_distance(cluster_space, c);
      ensure(!ordered.empty(), "stages::representatives: empty cluster");
      std::size_t chosen = ordered.front();
      for (const std::size_t member : ordered) {
        if (weights[member] > 0.0) {
          chosen = member;
          break;
        }
      }
      out.representatives[c] = chosen;
    }
  } else {
    for (std::size_t c = 0; c < k; ++c) {
      out.representatives[c] = clustering.nearest_member(cluster_space, c);
    }
  }
  for (std::size_t i = 0; i < weights.size(); ++i) {
    out.cluster_weights[clustering.assignment[i]] += weights[i] / total;
  }
  return out;
}

linalg::Matrix project_rows(const AnalysisResult& fitted,
                            const linalg::Matrix& raw) {
  ensure(fitted.standardizer.fitted() && fitted.pca.fitted(),
         "stages::project_rows: analysis is not fitted");
  ensure(!fitted.kept_columns.empty(), "stages::project_rows: no kept columns");
  ensure(raw.cols() > *std::max_element(fitted.kept_columns.begin(),
                                        fitted.kept_columns.end()),
         "stages::project_rows: batch schema is narrower than the fitted one");
  const linalg::Matrix refined = raw.select_columns(fitted.kept_columns);
  const linalg::Matrix standardized = fitted.standardizer.transform(refined);
  linalg::Matrix scores = fitted.pca.transform(standardized, fitted.num_components);
  if (fitted.whitened) scores = fitted.whitener.transform(scores);
  return scores;
}

NearestAssignment assign_to_nearest(const ml::KMeansResult& clustering,
                                    const linalg::Matrix& points) {
  ensure(!clustering.centroids.empty(),
         "stages::assign_to_nearest: clustering has no centroids");
  ensure(points.cols() == clustering.centroids.cols(),
         "stages::assign_to_nearest: dimension mismatch");
  NearestAssignment out;
  out.cluster.resize(points.rows());
  out.dist_sq.resize(points.rows());
  for (std::size_t r = 0; r < points.rows(); ++r) {
    double best = std::numeric_limits<double>::max();
    std::size_t best_c = 0;
    for (std::size_t c = 0; c < clustering.centroids.rows(); ++c) {
      const double d = linalg::squared_distance(points.row(r),
                                                clustering.centroids.row(c));
      if (d < best) {
        best = d;
        best_c = c;
      }
    }
    out.cluster[r] = best_c;
    out.dist_sq[r] = best;
  }
  return out;
}

void absorb_rows(AnalysisResult& analysis, const linalg::Matrix& projected,
                 const std::vector<double>& combined_weights,
                 bool refresh_representatives) {
  ensure(!analysis.clustering.assignment.empty(),
         "stages::absorb_rows: analysis has no clustering");
  ensure(projected.rows() > 0, "stages::absorb_rows: empty batch");
  ensure(projected.cols() == analysis.cluster_space.cols(),
         "stages::absorb_rows: projected dimension mismatch");
  ensure(combined_weights.size() ==
             analysis.cluster_space.rows() + projected.rows(),
         "stages::absorb_rows: weight count must cover old and new rows");

  const NearestAssignment nearest =
      assign_to_nearest(analysis.clustering, projected);

  // Grow the cluster space and the per-point clustering records in place.
  std::vector<double> grown = analysis.cluster_space.data();
  grown.insert(grown.end(), projected.data().begin(), projected.data().end());
  const std::size_t new_rows = analysis.cluster_space.rows() + projected.rows();
  analysis.cluster_space =
      linalg::Matrix(new_rows, projected.cols(), std::move(grown));
  for (std::size_t r = 0; r < projected.rows(); ++r) {
    analysis.clustering.assignment.push_back(nearest.cluster[r]);
    analysis.clustering.point_distances.push_back(nearest.dist_sq[r]);
    ++analysis.clustering.cluster_sizes[nearest.cluster[r]];
    analysis.clustering.sse += nearest.dist_sq[r];
  }

  // Refresh the cluster observation weights over the combined population.
  double total = 0.0;
  for (const double w : combined_weights) {
    ensure(w >= 0.0, "stages::absorb_rows: weights must be non-negative");
    total += w;
  }
  ensure(total > 0.0, "stages::absorb_rows: zero total weight");
  analysis.cluster_weights.assign(analysis.chosen_k, 0.0);
  for (std::size_t i = 0; i < combined_weights.size(); ++i) {
    analysis.cluster_weights[analysis.clustering.assignment[i]] +=
        combined_weights[i] / total;
  }

  if (refresh_representatives) {
    for (std::size_t c = 0; c < analysis.chosen_k; ++c) {
      const std::vector<std::size_t> ordered = analysis.members_by_distance(c);
      ensure(!ordered.empty(), "stages::absorb_rows: empty cluster");
      std::size_t chosen = ordered.front();
      for (const std::size_t member : ordered) {
        if (combined_weights[member] > 0.0) {
          chosen = member;
          break;
        }
      }
      analysis.representatives[c] = chosen;
    }
    ++analysis.stage_counters.representatives;
  }

  // The stored stage outputs no longer equal what a from-scratch fit over
  // the grown population would produce — no future analysis may splice them
  // in by fingerprint.
  analysis.fingerprints = StageFingerprints{};
}

linalg::Matrix centroids_to_raw(const AnalysisResult& fitted,
                                const std::vector<double>& fallback_columns) {
  ensure(!fitted.clustering.centroids.empty(),
         "stages::centroids_to_raw: analysis has no centroids");
  ensure(fitted.standardizer.fitted() && fitted.pca.fitted(),
         "stages::centroids_to_raw: analysis is not fitted");
  const linalg::Matrix scores =
      fitted.whitened ? fitted.whitener.inverse_transform(fitted.clustering.centroids)
                      : fitted.clustering.centroids;
  const linalg::Matrix standardized = fitted.pca.inverse_transform(scores);
  const linalg::Matrix refined = fitted.standardizer.inverse_transform(standardized);

  std::size_t max_kept = 0;
  for (const std::size_t c : fitted.kept_columns) max_kept = std::max(max_kept, c);
  ensure(fallback_columns.size() > max_kept,
         "stages::centroids_to_raw: fallback is narrower than the fitted schema");
  linalg::Matrix raw(refined.rows(), fallback_columns.size());
  for (std::size_t r = 0; r < raw.rows(); ++r) {
    for (std::size_t c = 0; c < raw.cols(); ++c) raw(r, c) = fallback_columns[c];
    for (std::size_t j = 0; j < fitted.kept_columns.size(); ++j) {
      raw(r, fitted.kept_columns[j]) = refined(r, j);
    }
  }
  return raw;
}

}  // namespace stages
}  // namespace flare::core
