// FLARE steps 2+3 (§4.3–§4.4): the Analyzer.
//
// Pipeline: refine raw metrics (drop constants + correlation duplicates) →
// standardise → PCA (keep components to a variance target) → label PCs →
// whiten PC scores → cluster (K-means by default, Ward as the paper's noted
// alternative) → extract the representative scenario per cluster (nearest to
// the centroid) and the cluster observation weights.
//
// The pipeline is implemented as a chain of composable stages (see
// core/stage_graph.hpp and the `stages` namespace below): every stage's
// inputs carry a content fingerprint, and an analysis given a `previous`
// result reuses each stage whose input fingerprint is unchanged instead of
// recomputing it. A plain analyze() runs every stage exactly as before —
// batch results are bit-identical to the monolithic implementation.
#pragma once

#include <cstdint>
#include <optional>

#include "core/pc_labeler.hpp"
#include "core/stage_graph.hpp"
#include "metrics/metric_database.hpp"
#include "ml/agglomerative.hpp"
#include "ml/correlation_filter.hpp"
#include "ml/kmeans.hpp"
#include "ml/minibatch_kmeans.hpp"
#include "ml/pca.hpp"
#include "ml/standardizer.hpp"
#include "ml/whitener.hpp"

namespace flare::core {

enum class ClusterAlgorithm : unsigned char {
  kKMeans,            ///< paper default
  kWardAgglomerative, ///< paper's noted alternative (§4.4)
};

/// Which K-means engine the cluster stage runs (DESIGN.md §12).
enum class KMeansMode : unsigned char {
  kExact,      ///< Elkan/Hamerly over all rows (default; bit-identical path)
  kMiniBatch,  ///< coreset solve + full-data refinement (sublinear sweep)
  kAuto,       ///< exact below minibatch_threshold rows, minibatch above
};

struct AnalyzerConfig {
  // Refinement.
  bool use_correlation_filter = true;   ///< ablation: skip refinement
  double correlation_threshold = 0.98;

  // Dimensionality reduction.
  double variance_target = 0.95;        ///< paper: 95 % -> 18 PCs
  bool whiten = true;                   ///< ablation: cluster raw PC scores

  // Clustering.
  ClusterAlgorithm algorithm = ClusterAlgorithm::kKMeans;
  /// Weight scenarios by observation time inside K-means itself (off in the
  /// paper, which weights only at estimation time; exposed for the ablation
  /// study). Ignored by the Ward alternative.
  bool weight_clustering_by_observation = false;
  /// Force the cluster count (paper: 18). nullopt -> choose automatically
  /// from the SSE/silhouette sweep.
  std::optional<std::size_t> fixed_clusters = 18;
  std::size_t min_clusters = 2;
  std::size_t max_clusters = 40;
  /// Run the full Fig. 9 SSE/silhouette sweep. Required when
  /// fixed_clusters is nullopt; optional (but informative) otherwise.
  bool compute_quality_curve = true;
  ml::KMeansParams kmeans;              ///< k is overwritten per sweep point

  // Million-scenario scale (DESIGN.md §12). The defaults keep the paper-scale
  // path bit-identical: exact solver, exact silhouette with the shared n×n
  // distance cache. Only populations beyond the thresholds change behavior.
  KMeansMode kmeans_mode = KMeansMode::kExact;
  /// kAuto switches to the coreset path above this row count.
  std::size_t minibatch_threshold = 8192;
  ml::CoresetParams coreset;            ///< coreset size/seed for minibatch
  /// Full-data Lloyd polish iterations after the coreset solve.
  int minibatch_refine_iterations = 2;
  /// Above this row count the k-sweep stops materialising the n×n pairwise
  /// distance cache (O(n²) memory!) and scores a sampled silhouette instead.
  std::size_t silhouette_exact_threshold = 4096;
  /// Rows in the sampled silhouette estimate.
  std::size_t silhouette_sample = 1024;

  /// Worker threads for analyze()/recluster() when no shared pool is passed:
  /// 1 = run inline (default), 0 = one per hardware thread. Results are
  /// bit-identical for every value — parallel loops write index-addressed
  /// slots and reductions happen serially in index order.
  std::size_t threads = 1;

  /// Lineage namespace mixed into the fingerprint root when nonzero. The
  /// sharded data plane gives every shape's pipeline a distinct tag so one
  /// shard's stage outputs can never splice into another's, even over
  /// byte-identical metric databases (DESIGN.md §13). 0 (default) leaves
  /// every fingerprint exactly as before — the single-shape path is
  /// unchanged. Numeric outputs never depend on the tag, only reuse
  /// decisions do.
  std::uint64_t lineage_tag = 0;

  PcLabelerConfig labeler;
};

/// One point of the Fig. 9 cluster-count sweep.
struct ClusterQualityPoint {
  std::size_t k = 0;
  double sse = 0.0;
  double silhouette = 0.0;
  /// True when `silhouette` is the sampled estimate (population exceeded
  /// AnalyzerConfig::silhouette_exact_threshold), not the exact O(n²) score.
  bool silhouette_estimated = false;
};

/// Measurement-health input to a degraded fit (built by FlarePipeline from
/// the profiler's RowHealth records). Quarantined rows stay in the population
/// (row indices must keep lining up with the scenario set) but contribute
/// nothing to any fitted moment or cluster weight.
struct AnalysisHealth {
  /// Row-indexed: true = below the sample quorum, fit around it.
  std::vector<bool> quarantined;
  /// Cells that were median-imputed before the fit (telemetry).
  std::size_t imputed_cells = 0;

  [[nodiscard]] bool any_quarantined() const {
    for (const bool q : quarantined) {
      if (q) return true;
    }
    return false;
  }
};

/// Where the observation-weight mass of quarantined rows went: nowhere. The
/// ledger keeps the books so nothing is silently lost — the quarantined mass
/// plus the mass behind the cluster weights always equals the population
/// total (property-tested under ctest -L faults).
struct QuarantineLedger {
  std::vector<std::size_t> quarantined_rows;  ///< population row indices
  double quarantined_weight = 0.0;            ///< Σ true weights of those rows
  double total_weight = 0.0;                  ///< Σ true weights, whole population
  std::size_t imputed_cells = 0;              ///< median-filled cells in the fit

  [[nodiscard]] double quarantined_fraction() const {
    return total_weight > 0.0 ? quarantined_weight / total_weight : 0.0;
  }
};

struct AnalysisResult {
  // Step: refinement.
  std::vector<std::size_t> kept_columns;     ///< surviving raw-metric columns
  std::vector<std::size_t> constant_columns; ///< dropped for zero variance
  ml::CorrelationFilterResult refinement;    ///< audit trail of duplicate drops

  // Step: PCA.
  ml::Standardizer standardizer;
  ml::Pca pca;
  std::size_t num_components = 0;            ///< components for variance target
  std::vector<PcInterpretation> interpretations;

  // Step: clustering.
  ml::Whitener whitener;
  bool whitened = true;                      ///< was whitening applied? (ablation)
  linalg::Matrix cluster_space;              ///< n × num_components (whitened)
  std::vector<ClusterQualityPoint> quality_curve;
  std::size_t chosen_k = 0;
  ml::KMeansResult clustering;               ///< Ward results adapted into this

  // Step: representatives.
  std::vector<std::size_t> representatives;  ///< scenario row index per cluster
  std::vector<double> cluster_weights;       ///< observation-weight share, Σ = 1

  /// Degraded-fit bookkeeping (empty for clean fits): which rows were
  /// quarantined out of the moments/weights and how much mass they carried.
  QuarantineLedger quarantine;

  // Stage-graph bookkeeping (core/stage_graph.hpp): input fingerprints that
  // decide stage reuse, and how often each stage has recomputed across the
  // lifetime of this analysis lineage.
  StageFingerprints fingerprints;
  StageCounters stage_counters;

  /// Cluster members ordered by distance from the centroid (nearest first) —
  /// the per-job estimator walks this list (§5.3).
  [[nodiscard]] std::vector<std::size_t> members_by_distance(std::size_t cluster) const;
};

class Analyzer {
 public:
  explicit Analyzer(AnalyzerConfig config = {});

  /// Runs the full analysis over a profiled metric database. Builds a
  /// private pool when config().threads != 1 (see the pool overload).
  [[nodiscard]] AnalysisResult analyze(const metrics::MetricDatabase& db) const;

  /// Same, on a caller-owned pool (FlarePipeline shares one pool across
  /// profiling and analysis). nullptr = run inline. The pool accelerates the
  /// PCA covariance, the pairwise-distance matrix shared by the k-sweep, the
  /// per-k sweep points, and K-means restarts; outputs are bit-identical to
  /// the serial path for every thread count.
  [[nodiscard]] AnalysisResult analyze(const metrics::MetricDatabase& db,
                                       util::ThreadPool* pool) const;

  /// Stage-reusing re-analysis: any stage whose input fingerprint matches
  /// `previous` splices in the previous output instead of recomputing (and
  /// leaves its recompute counter untouched). With `warm_start`, the final
  /// K-means at the chosen k seeds restart 0 from `previous`'s centroids
  /// mapped into the new cluster space (see stages::centroids_to_raw) — the
  /// drift monitor's kRefit action. `previous == nullptr` degrades to a
  /// plain cold fit with every counter set to 1.
  ///
  /// `health` (nullable) marks quarantined rows and imputation telemetry: the
  /// standardizer/PCA/whitener moments are fitted on the healthy rows only,
  /// quarantined rows keep their row slot (projected + assigned, zero weight)
  /// and representatives skip them; the books land in
  /// AnalysisResult::quarantine. Degraded fits poison their raw fingerprint
  /// with the quarantine mask so they never splice with clean fits.
  [[nodiscard]] AnalysisResult analyze(const metrics::MetricDatabase& db,
                                       util::ThreadPool* pool,
                                       const AnalysisResult* previous,
                                       bool warm_start = false,
                                       const AnalysisHealth* health = nullptr) const;

  /// Re-clusters an existing analysis under new scenario weights without
  /// re-profiling — the §5.6 scheduler-change workflow ("derive new
  /// representative scenarios starting from Step 3"). Implemented as a
  /// stage-level replay: the metric space, standardisation and PCA of `base`
  /// are reused verbatim; only the cluster + representative stages re-run
  /// over the re-weighted population (stage counters record exactly that).
  [[nodiscard]] AnalysisResult recluster(const AnalysisResult& base,
                                         const std::vector<double>& new_weights) const;

  /// Pool-sharing overload of recluster (nullptr = run inline).
  [[nodiscard]] AnalysisResult recluster(const AnalysisResult& base,
                                         const std::vector<double>& new_weights,
                                         util::ThreadPool* pool) const;

  /// Incremental-PCA refit (the ingest path's --pca-update incremental/auto
  /// kRefit action): splices `updated_pca` — an eigenbasis maintained by
  /// ml::Pca::update over the frozen refinement + standardisation frame of
  /// `previous` — in place of a cold PCA fit, then replays only the
  /// downstream whiten/cluster/representative stages over the full
  /// population, warm-starting K-means at the previous chosen k from the
  /// previous centroids (Fig. 9 sweep skipped, quality curve carried over).
  /// The refine/standardize/pca counters stay put; pca_incremental records
  /// the splice and whiten/cluster/representatives record the replay.
  /// Fingerprints are poisoned: the spliced basis matches a cold fit only up
  /// to FP rounding, never bit for bit.
  [[nodiscard]] AnalysisResult refit_incremental(const metrics::MetricDatabase& db,
                                                 const ml::Pca& updated_pca,
                                                 const AnalysisResult& previous,
                                                 util::ThreadPool* pool,
                                                 const AnalysisHealth* health =
                                                     nullptr) const;

  [[nodiscard]] const AnalyzerConfig& config() const { return config_; }

  /// The Fig. 9 k-selection rule: the smallest k whose silhouette is within
  /// `tolerance` of the sweep maximum (diminishing-returns knee).
  [[nodiscard]] static std::size_t suggest_k(
      const std::vector<ClusterQualityPoint>& curve, double tolerance = 0.05);

 private:
  AnalyzerConfig config_;
};

/// The individual analysis stages. Each is a pure function of its declared
/// inputs — the Analyzer composes them, and tests exercise them in
/// isolation. Outputs are bit-identical to the former monolithic
/// Analyzer::analyze for the same inputs.
namespace stages {

/// Stage 1 — refinement (§4.2): drop numerically constant columns, then
/// correlation duplicates. `kept_columns` indexes the original catalog.
/// With `fit_rows` (degraded fits) the column selection is computed from
/// those rows only — quarantined rows are imputed to per-metric medians, and
/// those synthetic values would both hide truly-constant columns and
/// decorrelate duplicate columns, inflating the kept set relative to a clean
/// fit. Every row is still projected onto the selected columns.
struct RefineOutput {
  std::vector<std::size_t> kept_columns;
  std::vector<std::size_t> constant_columns;
  ml::CorrelationFilterResult refinement;
  linalg::Matrix refined;  ///< raw columns `kept_columns`, in order
};
[[nodiscard]] RefineOutput refine(
    const linalg::Matrix& raw, const AnalyzerConfig& config,
    const std::vector<std::size_t>* fit_rows = nullptr);

/// Stage 2 — standardisation (§4.3): zero mean / unit variance. With
/// `fit_rows` (degraded fits) the moments come from those rows only while
/// every row is still transformed — quarantined rows must not bend the scale
/// they are measured against.
struct StandardizeOutput {
  ml::Standardizer standardizer;
  linalg::Matrix standardized;
};
[[nodiscard]] StandardizeOutput standardize(
    const linalg::Matrix& refined,
    const std::vector<std::size_t>* fit_rows = nullptr);

/// Stage 3 — PCA + component labelling (§4.3, Fig. 8).
struct PcaOutput {
  ml::Pca pca;
  std::size_t num_components = 0;
  std::vector<PcInterpretation> interpretations;
};
[[nodiscard]] PcaOutput fit_pca(const linalg::Matrix& standardized,
                                const std::vector<std::size_t>& kept_columns,
                                const metrics::MetricCatalog& catalog,
                                const AnalyzerConfig& config,
                                util::ThreadPool* pool,
                                const std::vector<std::size_t>* fit_rows = nullptr);

/// Stage 3′ — basis splice for the incremental-PCA refit: adopts an
/// eigenbasis maintained by ml::Pca::update in place of a cold fit and
/// re-derives the variance-target component count and the PC labels from
/// its (incrementally merged) spectrum.
[[nodiscard]] PcaOutput splice_pca(const ml::Pca& updated_pca,
                                   const std::vector<std::size_t>& kept_columns,
                                   const metrics::MetricCatalog& catalog,
                                   const AnalyzerConfig& config);

/// Stage 4 — whitened clustering space (§4.4).
struct WhitenOutput {
  ml::Whitener whitener;
  bool whitened = true;
  linalg::Matrix cluster_space;
};
[[nodiscard]] WhitenOutput whiten(const ml::Pca& pca, std::size_t num_components,
                                  const linalg::Matrix& standardized,
                                  const AnalyzerConfig& config,
                                  const std::vector<std::size_t>* fit_rows = nullptr);

/// Stage 5 — cluster-count sweep (Fig. 9) + the kept clustering. `weights`
/// are the observation weights (used only when
/// config.weight_clustering_by_observation). `warm_centroids`, when non-empty
/// with one row per chosen cluster, seeds K-means restart 0 (kRefit path).
struct ClusterOutput {
  std::vector<ClusterQualityPoint> quality_curve;
  std::size_t chosen_k = 0;
  ml::KMeansResult clustering;
};
[[nodiscard]] ClusterOutput cluster(const linalg::Matrix& cluster_space,
                                    const std::vector<double>& weights,
                                    const AnalyzerConfig& config,
                                    util::ThreadPool* pool,
                                    const linalg::Matrix& warm_centroids = {});

/// Stage 6 — representative scenarios + cluster observation weights
/// (§4.4–§4.5). With `require_positive_weight` (the §5.6 scheduler-change
/// replay), each representative walks outward from the centroid past
/// zero-weight members so it is a scenario that actually occurs.
struct RepresentativesOutput {
  std::vector<std::size_t> representatives;
  std::vector<double> cluster_weights;
};
[[nodiscard]] RepresentativesOutput representatives(
    const ml::KMeansResult& clustering, const linalg::Matrix& cluster_space,
    std::size_t k, const std::vector<double>& weights,
    bool require_positive_weight);

/// Projects fresh catalog-ordered raw rows through the fitted
/// refine → standardize → PCA → whiten stages into the fitted cluster space
/// (used by the drift monitor and the incremental ingest path).
[[nodiscard]] linalg::Matrix project_rows(const AnalysisResult& fitted,
                                          const linalg::Matrix& raw);

/// Nearest fitted centroid per projected row (ties to the lowest index).
struct NearestAssignment {
  std::vector<std::size_t> cluster;  ///< winning centroid per row
  std::vector<double> dist_sq;       ///< squared distance to it
};
[[nodiscard]] NearestAssignment assign_to_nearest(
    const ml::KMeansResult& clustering, const linalg::Matrix& points);

/// Absorbs projected fresh rows into a fitted analysis IN PLACE without
/// refitting any upstream stage: rows are assigned to their nearest fitted
/// centroid, the cluster space / assignment / distance cache / sizes grow,
/// and the cluster observation weights are refreshed from
/// `combined_weights` (old rows then new rows). With
/// `refresh_representatives` (the kReweight action) representatives are
/// re-derived as the nearest positive-weight member and the representative
/// stage counter bumps; otherwise (kValid) they stay put and no stage
/// recomputes. Fingerprints are poisoned — the grown result is no longer a
/// pure function of any single fit input.
void absorb_rows(AnalysisResult& analysis, const linalg::Matrix& projected,
                 const std::vector<double>& combined_weights,
                 bool refresh_representatives);

/// Maps a fitted clustering's centroids back to full-catalog raw-metric
/// space: whitener/PCA/standardizer inverses recover the fitted refined
/// columns; columns the fit dropped are filled from `fallback_columns`
/// (catalog-width, e.g. the new population's column means). Used to seed the
/// warm-started refit.
[[nodiscard]] linalg::Matrix centroids_to_raw(
    const AnalysisResult& fitted, const std::vector<double>& fallback_columns);

}  // namespace stages

}  // namespace flare::core
