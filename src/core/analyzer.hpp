// FLARE steps 2+3 (§4.3–§4.4): the Analyzer.
//
// Pipeline: refine raw metrics (drop constants + correlation duplicates) →
// standardise → PCA (keep components to a variance target) → label PCs →
// whiten PC scores → cluster (K-means by default, Ward as the paper's noted
// alternative) → extract the representative scenario per cluster (nearest to
// the centroid) and the cluster observation weights.
#pragma once

#include <cstdint>
#include <optional>

#include "core/pc_labeler.hpp"
#include "metrics/metric_database.hpp"
#include "ml/agglomerative.hpp"
#include "ml/correlation_filter.hpp"
#include "ml/kmeans.hpp"
#include "ml/pca.hpp"
#include "ml/standardizer.hpp"
#include "ml/whitener.hpp"

namespace flare::core {

enum class ClusterAlgorithm : unsigned char {
  kKMeans,            ///< paper default
  kWardAgglomerative, ///< paper's noted alternative (§4.4)
};

struct AnalyzerConfig {
  // Refinement.
  bool use_correlation_filter = true;   ///< ablation: skip refinement
  double correlation_threshold = 0.98;

  // Dimensionality reduction.
  double variance_target = 0.95;        ///< paper: 95 % -> 18 PCs
  bool whiten = true;                   ///< ablation: cluster raw PC scores

  // Clustering.
  ClusterAlgorithm algorithm = ClusterAlgorithm::kKMeans;
  /// Weight scenarios by observation time inside K-means itself (off in the
  /// paper, which weights only at estimation time; exposed for the ablation
  /// study). Ignored by the Ward alternative.
  bool weight_clustering_by_observation = false;
  /// Force the cluster count (paper: 18). nullopt -> choose automatically
  /// from the SSE/silhouette sweep.
  std::optional<std::size_t> fixed_clusters = 18;
  std::size_t min_clusters = 2;
  std::size_t max_clusters = 40;
  /// Run the full Fig. 9 SSE/silhouette sweep. Required when
  /// fixed_clusters is nullopt; optional (but informative) otherwise.
  bool compute_quality_curve = true;
  ml::KMeansParams kmeans;              ///< k is overwritten per sweep point

  /// Worker threads for analyze()/recluster() when no shared pool is passed:
  /// 1 = run inline (default), 0 = one per hardware thread. Results are
  /// bit-identical for every value — parallel loops write index-addressed
  /// slots and reductions happen serially in index order.
  std::size_t threads = 1;

  PcLabelerConfig labeler;
};

/// One point of the Fig. 9 cluster-count sweep.
struct ClusterQualityPoint {
  std::size_t k = 0;
  double sse = 0.0;
  double silhouette = 0.0;
};

struct AnalysisResult {
  // Step: refinement.
  std::vector<std::size_t> kept_columns;     ///< surviving raw-metric columns
  std::vector<std::size_t> constant_columns; ///< dropped for zero variance
  ml::CorrelationFilterResult refinement;    ///< audit trail of duplicate drops

  // Step: PCA.
  ml::Standardizer standardizer;
  ml::Pca pca;
  std::size_t num_components = 0;            ///< components for variance target
  std::vector<PcInterpretation> interpretations;

  // Step: clustering.
  ml::Whitener whitener;
  bool whitened = true;                      ///< was whitening applied? (ablation)
  linalg::Matrix cluster_space;              ///< n × num_components (whitened)
  std::vector<ClusterQualityPoint> quality_curve;
  std::size_t chosen_k = 0;
  ml::KMeansResult clustering;               ///< Ward results adapted into this

  // Step: representatives.
  std::vector<std::size_t> representatives;  ///< scenario row index per cluster
  std::vector<double> cluster_weights;       ///< observation-weight share, Σ = 1

  /// Cluster members ordered by distance from the centroid (nearest first) —
  /// the per-job estimator walks this list (§5.3).
  [[nodiscard]] std::vector<std::size_t> members_by_distance(std::size_t cluster) const;
};

class Analyzer {
 public:
  explicit Analyzer(AnalyzerConfig config = {});

  /// Runs the full analysis over a profiled metric database. Builds a
  /// private pool when config().threads != 1 (see the pool overload).
  [[nodiscard]] AnalysisResult analyze(const metrics::MetricDatabase& db) const;

  /// Same, on a caller-owned pool (FlarePipeline shares one pool across
  /// profiling and analysis). nullptr = run inline. The pool accelerates the
  /// PCA covariance, the pairwise-distance matrix shared by the k-sweep, the
  /// per-k sweep points, and K-means restarts; outputs are bit-identical to
  /// the serial path for every thread count.
  [[nodiscard]] AnalysisResult analyze(const metrics::MetricDatabase& db,
                                       util::ThreadPool* pool) const;

  /// Re-clusters an existing analysis under new scenario weights without
  /// re-profiling — the §5.6 scheduler-change workflow ("derive new
  /// representative scenarios starting from Step 3"). The metric space,
  /// standardisation and PCA of `base` are reused; clustering and
  /// representative extraction re-run over the re-weighted population.
  [[nodiscard]] AnalysisResult recluster(const AnalysisResult& base,
                                         const std::vector<double>& new_weights) const;

  /// Pool-sharing overload of recluster (nullptr = run inline).
  [[nodiscard]] AnalysisResult recluster(const AnalysisResult& base,
                                         const std::vector<double>& new_weights,
                                         util::ThreadPool* pool) const;

  [[nodiscard]] const AnalyzerConfig& config() const { return config_; }

  /// The Fig. 9 k-selection rule: the smallest k whose silhouette is within
  /// `tolerance` of the sweep maximum (diminishing-returns knee).
  [[nodiscard]] static std::size_t suggest_k(
      const std::vector<ClusterQualityPoint>& curve, double tolerance = 0.05);

 private:
  AnalyzerConfig config_;
};

}  // namespace flare::core
