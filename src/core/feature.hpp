// Datacenter-improving features (paper Table 4).
//
// A feature is any change that does not alter the machine's scheduling shape
// (§2): hardware knobs, configuration updates, software upgrades. In this
// library a feature is a named transformation of the MachineConfig's
// microarchitectural knobs; the three presets mirror the paper's Table 4.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dcsim/machine_config.hpp"

namespace flare::core {

class Feature {
 public:
  using ApplyFn = std::function<dcsim::MachineConfig(dcsim::MachineConfig)>;

  Feature(std::string name, std::string description, ApplyFn apply);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& description() const { return description_; }

  /// Returns the machine with the feature applied. Throws
  /// std::invalid_argument if the feature would change the scheduling shape
  /// (vCPU quota or DRAM capacity) — that is outside FLARE's scope (§2/§5.5).
  [[nodiscard]] dcsim::MachineConfig apply(const dcsim::MachineConfig& machine) const;

  /// Stable content fingerprint of the feature's *effect* on `baseline`: a
  /// hash over every knob of the applied machine. Two features that configure
  /// the testbed identically share a fingerprint regardless of their names;
  /// two distinct features that happen to share a name do not. The Replayer
  /// keys its cost ledger on this (a name collision must not dedupe billing)
  /// and the replay fault streams are salted with it.
  [[nodiscard]] std::uint64_t fingerprint(const dcsim::MachineConfig& baseline) const;

 private:
  std::string name_;
  std::string description_;
  ApplyFn apply_;
};

/// No-op feature (the baseline row of Table 4).
[[nodiscard]] Feature baseline_feature();

/// Feature 1: LLC shrunk 30 -> 12 MB per socket (Intel CAT-style cache
/// sizing). On non-default shapes the LLC is scaled by the same 0.4 ratio.
[[nodiscard]] Feature feature_cache_sizing();

/// Feature 2: DVFS ceiling lowered 2.9 -> 1.8 GHz (min 1.2 GHz unchanged).
/// On non-default shapes the ceiling is scaled by the same 1.8/2.9 ratio.
[[nodiscard]] Feature feature_dvfs_cap();

/// Feature 3: Hyperthreading disabled.
[[nodiscard]] Feature feature_smt_off();

/// The paper's three features, in Table 4 order.
[[nodiscard]] std::vector<Feature> standard_features();

}  // namespace flare::core
