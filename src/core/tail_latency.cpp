#include "core/tail_latency.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace flare::core {

TailLatencyModel::TailLatencyModel(const ImpactModel& impact,
                                   TailLatencyConfig config)
    : impact_(&impact), config_(config) {
  ensure(config_.utilization_cap > 0.0 && config_.utilization_cap < 1.0,
         "TailLatencyModel: utilization_cap must be in (0, 1)");
  ensure(config_.p99_factor > 0.0, "TailLatencyModel: p99_factor must be positive");
}

bool TailLatencyModel::is_latency_sensitive(dcsim::JobType job) const {
  return impact_->model().catalog().profile(job).base_service_ms > 0.0;
}

TailLatencyResult TailLatencyModel::evaluate(dcsim::JobType job,
                                             const dcsim::JobMix& mix,
                                             const dcsim::MachineConfig& machine,
                                             MeasurementContext context) const {
  const dcsim::JobProfile& profile = impact_->model().catalog().profile(job);
  ensure(profile.base_service_ms > 0.0,
         "TailLatencyModel: job has no latency semantics (base_service_ms == 0)");
  ensure(mix.count(job) > 0, "TailLatencyModel: job not present in the mix");

  // Per-thread throughput: uncontended (the service-time calibration point)
  // vs inside this scenario on this machine.
  const double threads =
      static_cast<double>(profile.vcpus) * profile.cpu_utilization;
  const double solo_thread_mips = impact_->inherent_mips(job) / threads;
  const dcsim::ScenarioPerformance perf = impact_->evaluate(mix, machine, context);
  const double actual_thread_mips = perf.job(job).mips_per_instance / threads;
  ensure_numeric(actual_thread_mips > 0.0,
                 "TailLatencyModel: zero throughput in scenario");

  const double slowdown = solo_thread_mips / actual_thread_mips;

  TailLatencyResult result;
  result.job = job;
  result.service_ms = profile.base_service_ms * slowdown;
  const double rho = profile.cpu_utilization * slowdown;
  result.saturated = rho >= config_.utilization_cap;
  result.utilization = std::min(rho, config_.utilization_cap);
  result.p99_ms =
      result.service_ms *
      (1.0 + config_.p99_factor * result.utilization / (1.0 - result.utilization));
  return result;
}

double TailLatencyModel::job_p99_impact_pct(dcsim::JobType job,
                                            const dcsim::JobMix& mix,
                                            const Feature& feature,
                                            MeasurementContext context) const {
  const TailLatencyResult base =
      evaluate(job, mix, impact_->baseline_machine(), context);
  const TailLatencyResult feat =
      evaluate(job, mix, feature.apply(impact_->baseline_machine()), context);
  const double impact = 100.0 * (feat.p99_ms - base.p99_ms) / base.p99_ms;
  return std::min(impact, 10000.0);
}

}  // namespace flare::core
