// ShardedPipeline — the sharded, shape-aware data plane (paper §5.5,
// DESIGN.md §13).
//
// A heterogeneous fleet mixes machine shapes whose microarchitectural axes
// (LLC, bandwidth, SMT, clocks) differ enough that pooling their scenarios
// into one PCA/K-means space blurs exactly the structure the clusters are
// meant to separate. The sharded plane keeps one complete FlarePipeline per
// shape — its own profiler, drift gate, incremental PCA, quarantine and
// replay ledgers, and a distinct fingerprint lineage (the shape's tag is
// mixed into the fingerprint root, so two shards can never splice each
// other's stage outputs even over byte-identical databases).
//
// Routing: every scenario row carries its shape id (the machine name the
// dcsim scheduler stamped on it); fit and ingest split their input by that
// id and hand each shard exactly its own rows. A row naming an unknown shape
// is a hard ParseError — silently coercing it into another shape's space is
// the bug this refactor exists to prevent.
//
// Estimates fan back in with shape-population weights (core/fleet_estimator
// .hpp): impact = Σ_s w_s · impact_s, ledger mass conserved to 1.
//
// Behaviour preservation: a one-shape ShardedPipeline is bit-identical to a
// plain FlarePipeline over the same rows — the shard's lineage tag renames
// fingerprints but never changes a numeric output, and everything else is
// the same code path (tested under ctest -L shard).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/fleet_estimator.hpp"
#include "core/pipeline.hpp"
#include "dcsim/fleet.hpp"

namespace flare::core {

struct ShardedConfig {
  /// Per-shard template: every shard copies this and overrides `machine`
  /// with its shape and `analyzer.lineage_tag` with the shape's tag.
  FlareConfig base;
  /// The shape-population table; also the source of the fan-in weights.
  dcsim::FleetConfig fleet;
  /// Worker threads for the shard-level pool: 1 = shards fit/refit serially
  /// (default), 0 = one per hardware thread. When != 1 each shard is forced
  /// to run single-threaded inside its slot (nested data parallelism is
  /// forbidden — DESIGN.md "Performance & threading model"); results are
  /// bit-identical for every value either way.
  std::size_t shard_threads = 1;
};

/// What one ingest batch did across the fleet: per-shape reports in
/// FleetConfig order, nullopt for shards the batch routed no rows to (their
/// pipelines were not touched — drift in shape A never refits shape B).
struct FleetIngestReport {
  std::vector<std::optional<IngestReport>> per_shape;
  std::size_t appended = 0;  ///< rows routed and appended, whole batch

  [[nodiscard]] std::size_t shards_touched() const {
    std::size_t n = 0;
    for (const auto& r : per_shape) n += r.has_value() ? 1 : 0;
    return n;
  }
};

class ShardedPipeline {
 public:
  explicit ShardedPipeline(ShardedConfig config,
                           const dcsim::JobCatalog& catalog =
                               dcsim::default_job_catalog());

  /// Fits every shard on its shape's population (per_shape must align with
  /// the fleet's shape table). Shards fit independently — in parallel when
  /// shard_threads != 1.
  void fit(const dcsim::FleetScenarioSet& fleet_set);

  /// Convenience: splits a mixed shape-tagged set by shape id first.
  /// Throws ParseError on rows with absent/unknown shape ids.
  void fit(const dcsim::ScenarioSet& mixed);

  /// Routes a mixed batch to its shards by shape id; each touched shard runs
  /// its own drift classification and takes its own action. Untouched
  /// shards' reports are nullopt. Throws ParseError on unknown shape ids.
  FleetIngestReport ingest(const dcsim::ScenarioSet& mixed_batch,
                           RefitPolicy policy = RefitPolicy::kAuto);

  /// Fleet-wide feature impact: per-shard estimates fanned in with
  /// population weights (see core/fleet_estimator.hpp).
  [[nodiscard]] FleetEstimate evaluate(const Feature& feature);

  /// Fleet-wide estimate with a combined uncertainty band.
  [[nodiscard]] ValidatedFleetEstimate evaluate_with_validation(
      const Feature& feature);

  /// Fleet-wide per-job impact. Shards whose population never ran the job
  /// are skipped and the remaining weights renormalised; throws ReplayError
  /// when no shape ran it.
  [[nodiscard]] FleetPerJobEstimate evaluate_per_job(const Feature& feature,
                                                     dcsim::JobType job);

  [[nodiscard]] bool fitted() const;
  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }
  [[nodiscard]] const FlarePipeline& shard(std::size_t index) const;
  [[nodiscard]] const dcsim::FleetConfig& fleet() const { return config_.fleet; }
  [[nodiscard]] const ShardedConfig& config() const { return config_; }
  /// Fan-in weights (machine-count shares, FleetConfig order).
  [[nodiscard]] std::vector<double> weights() const;
  /// Σ distinct scenario replays across shards (evaluation-cost ledger).
  [[nodiscard]] std::size_t scenario_replays() const;

  /// The lineage tag shard `index` stamps on its fingerprint roots and cache
  /// keys — a nonzero mix of the shape name and the shard index (exposed so
  /// callers can tag shard-adjacent caches consistently).
  [[nodiscard]] std::uint64_t shard_lineage_tag(std::size_t index) const;

  /// The tag derivation itself, for callers running per-shape analyses
  /// outside a ShardedPipeline (e.g. `flare analyze --shapes`): nonzero mix
  /// of the shape name and its fleet-table index.
  [[nodiscard]] static std::uint64_t lineage_tag_for(std::string_view shape_name,
                                                     std::size_t index);

 private:
  /// True if shard `index`'s fitted population contains `job`.
  [[nodiscard]] bool shard_has_job(std::size_t index, dcsim::JobType job) const;

  ShardedConfig config_;
  std::vector<std::unique_ptr<FlarePipeline>> shards_;  ///< fleet order
  std::unique_ptr<util::ThreadPool> shard_pool_;  ///< non-null when != 1
};

}  // namespace flare::core
