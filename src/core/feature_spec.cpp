#include "core/feature_spec.hpp"

#include <functional>
#include <vector>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace flare::core {

Feature parse_feature(std::string_view spec) {
  const std::string trimmed(util::trim(spec));
  if (trimmed == "feature1" || trimmed == "cache") return feature_cache_sizing();
  if (trimmed == "feature2" || trimmed == "dvfs") return feature_dvfs_cap();
  if (trimmed == "feature3" || trimmed == "smt") return feature_smt_off();
  if (trimmed == "baseline") return baseline_feature();

  // Knob list: build a composed transformation.
  std::vector<std::function<void(dcsim::MachineConfig&)>> knobs;
  for (const std::string& part : util::split(trimmed, ',')) {
    const std::vector<std::string> kv = util::split(part, '=');
    if (kv.size() != 2) {
      throw ParseError("malformed feature knob '" + part +
                       "' (expected key=value or a Table 4 preset name)");
    }
    const std::string key(util::trim(kv[0]));
    const std::string value(util::trim(kv[1]));
    if (key == "fmax") {
      const double ghz = util::parse_double(value);
      ensure(ghz > 0.0, "fmax must be positive");
      knobs.push_back([ghz](dcsim::MachineConfig& m) { m.max_freq_ghz = ghz; });
    } else if (key == "fmin") {
      const double ghz = util::parse_double(value);
      ensure(ghz > 0.0, "fmin must be positive");
      knobs.push_back([ghz](dcsim::MachineConfig& m) { m.min_freq_ghz = ghz; });
    } else if (key == "llc") {
      const double mb = util::parse_double(value);
      ensure(mb > 0.0, "llc must be positive");
      knobs.push_back([mb](dcsim::MachineConfig& m) { m.llc_mb_per_socket = mb; });
    } else if (key == "smt") {
      if (value != "on" && value != "off") {
        throw ParseError("smt knob takes on|off, got '" + value + "'");
      }
      const bool on = value == "on";
      knobs.push_back([on](dcsim::MachineConfig& m) { m.smt_enabled = on; });
    } else if (key == "memlat") {
      const double ns = util::parse_double(value);
      ensure(ns > 0.0, "memlat must be positive");
      knobs.push_back([ns](dcsim::MachineConfig& m) { m.mem_latency_ns = ns; });
    } else {
      throw ParseError("unknown feature knob '" + key + "'");
    }
  }
  ensure(!knobs.empty(), "empty feature specification");
  return Feature("custom:" + trimmed, "custom knob set: " + trimmed,
                 [knobs](dcsim::MachineConfig m) {
                   for (const auto& knob : knobs) knob(m);
                   return m;
                 });
}

}  // namespace flare::core
