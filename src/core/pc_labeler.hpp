// Automatic PC interpretation (paper §4.3 / Fig. 8).
//
// The paper manually labels each principal component from its strongest
// signed raw-metric loadings ("HP job: more LLC misses + machine: frontend
// efficient ..."). This labeller mechanises that: it reports the top signed
// contributors per PC and composes a human-readable phrase from the metric
// names, levels and signs.
#pragma once

#include <string>
#include <vector>

#include "metrics/metric_catalog.hpp"
#include "ml/pca.hpp"

namespace flare::core {

struct PcContributor {
  std::size_t column = 0;   ///< column in the refined (post-filter) matrix
  std::string metric_name;  ///< fully qualified raw metric name
  double loading = 0.0;     ///< signed weight on the PC
};

struct PcInterpretation {
  std::size_t component = 0;
  double explained_variance_ratio = 0.0;
  std::vector<PcContributor> top_contributors;  ///< by |loading|, descending
  std::string label;                            ///< composed phrase
};

struct PcLabelerConfig {
  std::size_t max_contributors = 6;
  /// Contributors below this |loading| are omitted ("we omit the metrics
  /// with small weights" — Fig. 8 caption).
  double min_abs_loading = 0.15;
};

/// Interprets the first `num_components` PCs of a fitted PCA whose input
/// columns are `kept_columns` of `catalog`.
[[nodiscard]] std::vector<PcInterpretation> interpret_components(
    const ml::Pca& pca, const std::vector<std::size_t>& kept_columns,
    const metrics::MetricCatalog& catalog, std::size_t num_components,
    PcLabelerConfig config = {});

}  // namespace flare::core
