// Streaming out-of-core analysis (DESIGN.md §12).
//
// `analyze_out_of_core` runs the full FLARE analysis over a
// metrics::ColumnStore without ever materialising the n × d dense matrix the
// in-RAM Analyzer starts from. Two streaming passes replace it:
//
//   Pass 1 — moments. Every block contributes per-column min/max, the running
//   mean and the d × d comoment matrix (Chan's parallel merge — the same
//   identity Standardizer::merge uses), plus a chained content hash of every
//   value and weight read. From those moments alone:
//     · constant columns fall out of the min/max rule (bit-identical
//       decisions to stages::refine — the rule is order-independent);
//     · correlation duplicates fall out of r_ij = C_ij / √(C_ii·C_jj) via
//       CorrelationFilter::fit_from_correlation;
//     · the standardizer is assembled by Standardizer::from_moments;
//     · PCA is an eigensolve of the kept columns' correlation matrix
//       (Pca::fit_from_covariance) — the covariance of standardised data
//       *is* the correlation matrix of the raw data, exactly.
//
//   Pass 2 — scores. Blocks stream again through refine-select → standardise
//   → PCA projection, landing in the n × num_components score matrix: the
//   only O(n) allocation of the whole analysis (n·18 doubles instead of n·d).
//   Whitening, the cluster sweep and representative extraction then run on
//   that compact matrix exactly as the in-RAM stages do.
//
// Both passes can be skipped via an optional StageOutputCache: the packed
// moment matrix is keyed by the store's structural signature (append-aware),
// the raw score matrix by the content hash chained with the refine/PCA knobs.
// Equal keys imply bit-equal reloads, so a re-analysis of an unchanged store
// costs two cache probes and the (sub-linear) cluster stage.
//
// The result is a fully populated AnalysisResult — representatives, cluster
// weights, quality curve, fitted transforms — whose fingerprints are chained
// from a *distinct* out-of-core seed: numerically the fit matches the in-RAM
// path to rounding, but it is not bit-identical (moment reassociation), so
// its stages must never splice into an in-RAM lineage or vice versa.
//
// Not supported here: quarantine/health masking (the degraded-fit path stays
// in-RAM — below-quorum populations are small by construction) and warm
// starts from a previous result.
#pragma once

#include <cstdint>

#include "core/analyzer.hpp"
#include "core/stage_cache.hpp"
#include "metrics/column_store.hpp"

namespace flare::core {

struct OutOfCoreOptions {
  /// Advisory cap on the resident working set (the score + cluster-space
  /// matrices). 0 = unchecked. When > 0 and the post-refine projection alone
  /// cannot fit, the analysis throws NumericalError up front instead of
  /// thrashing.
  std::size_t memory_budget_bytes = 0;
  /// Optional spill cache for the moment and score intermediates (owned by
  /// the caller; shared across analyses and processes via its spill_dir).
  StageOutputCache* cache = nullptr;
  /// Eviction priority for intermediates this analysis inserts — the
  /// caller's incremental-PCA drift fraction (see StageOutputCache).
  double drift_priority = 0.0;
};

struct OutOfCoreTelemetry {
  std::size_t passes = 0;           ///< streaming passes actually executed
  std::size_t blocks_streamed = 0;  ///< blocks decoded across those passes
  std::uint64_t content_hash = 0;   ///< chained hash of every value + weight
  bool moments_reused = false;      ///< pass 1 skipped (cache hit)
  bool scores_reused = false;       ///< pass 2 skipped (cache hit)
  std::size_t dense_bytes = 0;      ///< what the n × d matrix would have cost
  std::size_t resident_bytes = 0;   ///< peak score/cluster-space residency
};

/// Streams the store through the two-pass analysis described above. `config`
/// is honoured exactly as by Analyzer::analyze — at out-of-core scale the
/// caller almost always wants kmeans_mode = kAuto so the cluster sweep stays
/// sub-quadratic. Throws ParseError on malformed stores and NumericalError
/// when the working set cannot fit the memory budget.
[[nodiscard]] AnalysisResult analyze_out_of_core(
    const metrics::ColumnStore& store, const AnalyzerConfig& config,
    const OutOfCoreOptions& options = {}, util::ThreadPool* pool = nullptr,
    OutOfCoreTelemetry* telemetry = nullptr);

}  // namespace flare::core
