// FLARE step 1 (§4.2): the Profiler daemon.
//
// In the paper this is a per-machine daemon that periodically samples perf
// counters, top-down events and /proc, and writes averaged rows into a
// relational database. Here it drives the interference model once per
// sampling period per scenario and averages the synthesized counter rows —
// the same averaging semantics ("for each job in each scenario, we log the
// average performance and resource metrics").
#pragma once

#include <cstdint>

#include "dcsim/counters.hpp"
#include "dcsim/interference_model.hpp"
#include "dcsim/scenario.hpp"
#include "metrics/metric_database.hpp"

namespace flare::util {
class ThreadPool;
}  // namespace flare::util

namespace flare::core {

struct ProfilerConfig {
  /// Sampling periods averaged per scenario (the daemon's periodic reads).
  int samples_per_scenario = 4;
  dcsim::CounterOptions counters;
  /// Base noise stream; each (scenario, sample) gets an independent stream.
  std::uint64_t noise_stream = 0x0D47A;  // datacenter measurement context
  /// Worker threads for profile(): 1 = sequential (default), 0 = one per
  /// hardware thread. Rows are written by index, so results are identical
  /// regardless of the thread count.
  std::size_t threads = 1;
};

class Profiler {
 public:
  explicit Profiler(const dcsim::InterferenceModel& model, ProfilerConfig config = {});
  /// The Profiler keeps a reference to the model; a temporary would dangle.
  explicit Profiler(dcsim::InterferenceModel&& model, ProfilerConfig config = {}) =
      delete;

  /// Profiles every scenario of the set on `machine` and returns the filled
  /// metric database (rows in scenario order, observation weights copied).
  /// With `shared_pool`, scenarios run on the caller's pool (FlarePipeline
  /// shares one pool across profiling and analysis) and `threads` is ignored;
  /// otherwise a private pool is built when `threads != 1`. Rows are written
  /// by index, so every path produces identical output.
  [[nodiscard]] metrics::MetricDatabase profile(
      const dcsim::ScenarioSet& set, const dcsim::MachineConfig& machine,
      const metrics::MetricCatalog& schema = metrics::MetricCatalog::standard(),
      util::ThreadPool* shared_pool = nullptr) const;

  /// Profiles a single scenario (one averaged row).
  [[nodiscard]] metrics::MetricRow profile_scenario(
      const dcsim::ColocationScenario& scenario, const dcsim::MachineConfig& machine,
      const metrics::MetricCatalog& schema) const;

 private:
  const dcsim::InterferenceModel* model_;  ///< non-owning
  ProfilerConfig config_;
};

}  // namespace flare::core
