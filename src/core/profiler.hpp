// FLARE step 1 (§4.2): the Profiler daemon.
//
// In the paper this is a per-machine daemon that periodically samples perf
// counters, top-down events and /proc, and writes averaged rows into a
// relational database. Here it drives the interference model once per
// sampling period per scenario and averages the synthesized counter rows —
// the same averaging semantics ("for each job in each scenario, we log the
// average performance and resource metrics").
//
// Real fleets deliver glitchy counters (multiplexed events, stuck or
// non-finite readings, dropped samples, machines that never report). The
// profiler therefore validates every reading, retries invalid samples on a
// fresh noise substream, averages only what survived, and records a
// `RowHealth` per row so downstream stages can quarantine rows that fell
// below the sample quorum. With faults disabled the path is bit-identical to
// the original clean profiler.
#pragma once

#include <cstdint>
#include <vector>

#include "dcsim/counters.hpp"
#include "dcsim/interference_model.hpp"
#include "dcsim/scenario.hpp"
#include "metrics/metric_database.hpp"

namespace flare::util {
class ThreadPool;
}  // namespace flare::util

namespace flare::core {

struct ProfilerConfig {
  /// Sampling periods averaged per scenario (the daemon's periodic reads).
  int samples_per_scenario = 4;
  dcsim::CounterOptions counters;
  /// Base noise stream; each (scenario, sample) gets an independent stream.
  std::uint64_t noise_stream = 0x0D47A;  // datacenter measurement context
  /// Worker threads for profile(): 1 = sequential (default), 0 = one per
  /// hardware thread. Rows are written by index, so results are identical
  /// regardless of the thread count.
  std::size_t threads = 1;

  /// Deterministic fault injection (off by default; see dcsim::FaultOptions).
  dcsim::FaultOptions faults;
  /// Extra attempts per invalid sample, each on a fresh noise substream.
  int max_retries = 2;
  /// Minimum samples (fully or partially valid) a row needs to be trusted;
  /// rows below the quorum are flagged for quarantine downstream.
  int sample_quorum = 1;
  /// Readings outside ±max_abs_reading are treated as glitches (a counter
  /// cannot legitimately report ~1e18 of anything per sampling period).
  double max_abs_reading = 1e18;
};

/// Measurement-quality record for one profiled row. A "sample" is one
/// periodic read of the whole counter schema; samples_per_scenario of them
/// are averaged into the row.
struct RowHealth {
  /// Samples whose final attempt had every reading valid.
  int valid_samples = 0;
  /// Samples that contributed some but not all metrics (retries exhausted
  /// with residual glitches; the valid readings still count).
  int partial_samples = 0;
  /// Samples that contributed nothing (all attempts dropped or fully bad).
  int dropped_samples = 0;
  /// Samples that burned at least one retry attempt.
  int retried_samples = 0;
  /// The machine never reported this round (whole-row loss): every sample
  /// dropped, every metric imputed, no retry can help.
  bool row_lost = false;
  /// Schema-indexed mask: true where no valid reading survived and the cell
  /// holds NaN awaiting imputation (covers derived _Std columns too).
  std::vector<bool> imputed_metrics;

  /// Rows below the quorum are quarantined out of fits downstream.
  [[nodiscard]] bool below_quorum(int quorum) const {
    return valid_samples + partial_samples < quorum;
  }
  [[nodiscard]] bool clean() const {
    return !row_lost && partial_samples == 0 && dropped_samples == 0 &&
           retried_samples == 0;
  }
  [[nodiscard]] int imputed_count() const {
    int n = 0;
    for (const bool b : imputed_metrics) n += b ? 1 : 0;
    return n;
  }
};

/// A profiled database plus per-row measurement health (index-aligned).
struct ProfileReport {
  metrics::MetricDatabase database;
  std::vector<RowHealth> health;

  [[nodiscard]] int rows_below_quorum(int quorum) const {
    int n = 0;
    for (const RowHealth& h : health) n += h.below_quorum(quorum) ? 1 : 0;
    return n;
  }
  [[nodiscard]] int total_retried_samples() const {
    int n = 0;
    for (const RowHealth& h : health) n += h.retried_samples;
    return n;
  }
  [[nodiscard]] int total_imputed_cells() const {
    int n = 0;
    for (const RowHealth& h : health) n += h.imputed_count();
    return n;
  }
};

class Profiler {
 public:
  explicit Profiler(const dcsim::InterferenceModel& model, ProfilerConfig config = {});
  /// The Profiler keeps a reference to the model; a temporary would dangle.
  explicit Profiler(dcsim::InterferenceModel&& model, ProfilerConfig config = {}) =
      delete;

  /// Profiles every scenario of the set on `machine` and returns the filled
  /// metric database (rows in scenario order, observation weights copied).
  /// With `shared_pool`, scenarios run on the caller's pool (FlarePipeline
  /// shares one pool across profiling and analysis) and `threads` is ignored;
  /// otherwise a private pool is built when `threads != 1`. Rows are written
  /// by index, so every path produces identical output.
  [[nodiscard]] metrics::MetricDatabase profile(
      const dcsim::ScenarioSet& set, const dcsim::MachineConfig& machine,
      const metrics::MetricCatalog& schema = metrics::MetricCatalog::standard(),
      util::ThreadPool* shared_pool = nullptr) const;

  /// Like profile(), but also returns the per-row health records. Cells with
  /// no surviving reading hold NaN and are flagged in `imputed_metrics`;
  /// callers must impute (ml::impute_non_finite) or quarantine before fitting.
  [[nodiscard]] ProfileReport profile_with_health(
      const dcsim::ScenarioSet& set, const dcsim::MachineConfig& machine,
      const metrics::MetricCatalog& schema = metrics::MetricCatalog::standard(),
      util::ThreadPool* shared_pool = nullptr) const;

  /// Profiles a single scenario (one averaged row).
  [[nodiscard]] metrics::MetricRow profile_scenario(
      const dcsim::ColocationScenario& scenario, const dcsim::MachineConfig& machine,
      const metrics::MetricCatalog& schema) const;

 private:
  const dcsim::InterferenceModel* model_;  ///< non-owning
  ProfilerConfig config_;
  dcsim::CounterFaultModel fault_model_;
};

}  // namespace flare::core
