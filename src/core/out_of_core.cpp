// Two-pass streaming analysis over a ColumnStore (core/out_of_core.hpp).
#include "core/out_of_core.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/pc_labeler.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/thread_pool.hpp"

namespace flare::core {
namespace {

// Root seed for out-of-core fingerprints. The streamed fit matches the
// in-RAM path only up to floating-point reassociation (Chan-merged moments,
// eigensolve of the assembled correlation), so its stage outputs must never
// splice into an in-RAM lineage — a distinct root makes collision impossible
// by construction.
constexpr std::uint64_t kOutOfCoreTag = 0x00C5EED0FC0DE5ULL;

// Cache stage names (see StageOutputCache: keys are (stage, fingerprint)).
constexpr std::string_view kMomentsStage = "ooc-moments";
constexpr std::string_view kScoresStage = "ooc-scores";

/// Streaming per-column statistics over the whole store: extrema, mean and
/// the full d × d comoment matrix  C(i,j) = Σ (x_i - μ_i)(x_j - μ_j),
/// merged block by block with Chan's identity (the same algebra
/// Standardizer::merge applies column-wise, extended to cross terms).
struct StreamedMoments {
  std::size_t count = 0;
  std::vector<double> mean, lo, hi;
  linalg::Matrix comoment;
  std::uint64_t content_hash = 0;
};

void fold_block(StreamedMoments& m, const linalg::Matrix& values,
                util::ThreadPool* pool) {
  const std::size_t rows = values.rows();
  const std::size_t d = values.cols();
  std::vector<double> block_mean(d, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::span<const double> row = values.row(r);
    for (std::size_t c = 0; c < d; ++c) {
      block_mean[c] += row[c];
      m.lo[c] = std::min(m.lo[c], row[c]);
      m.hi[c] = std::max(m.hi[c], row[c]);
    }
  }
  for (double& v : block_mean) v /= static_cast<double>(rows);

  // Block comoment, then the Chan merge into the running moments. The i-loop
  // parallelises cleanly: every (i, j) slot is owned by exactly one task and
  // the serial reduction order within a slot is fixed, so results are
  // bit-identical for any thread count (the repo-wide contract).
  const double n1 = static_cast<double>(m.count);
  const double n2 = static_cast<double>(rows);
  const double n = n1 + n2;
  util::maybe_parallel_for(pool, d, [&](std::size_t i) {
    for (std::size_t j = i; j < d; ++j) {
      double cij = 0.0;
      for (std::size_t r = 0; r < rows; ++r) {
        cij += (values(r, i) - block_mean[i]) * (values(r, j) - block_mean[j]);
      }
      const double delta_i = block_mean[i] - m.mean[i];
      const double delta_j = block_mean[j] - m.mean[j];
      const double merged =
          m.comoment(i, j) + cij + delta_i * delta_j * n1 * n2 / n;
      m.comoment(i, j) = merged;
      m.comoment(j, i) = merged;
    }
  });
  for (std::size_t c = 0; c < d; ++c) {
    m.mean[c] = (n1 * m.mean[c] + n2 * block_mean[c]) / n;
  }
  m.count += rows;
}

/// Packs the streamed moments into one cacheable matrix:
///   row 0 = mean, row 1 = lo, row 2 = hi,
///   row 3 = [count, bit_cast(content_hash), 0, ...],
///   rows 4.. = the d × d comoment.
linalg::Matrix pack_moments(const StreamedMoments& m) {
  const std::size_t d = m.mean.size();
  linalg::Matrix packed(d + 4, d);
  packed.set_row(0, m.mean);
  packed.set_row(1, m.lo);
  packed.set_row(2, m.hi);
  packed(3, 0) = static_cast<double>(m.count);
  if (d >= 2) packed(3, 1) = std::bit_cast<double>(m.content_hash);
  for (std::size_t i = 0; i < d; ++i) {
    packed.set_row(4 + i, m.comoment.row(i));
  }
  return packed;
}

bool unpack_moments(const linalg::Matrix& packed, std::size_t d,
                    StreamedMoments& m) {
  if (d < 2 || packed.rows() != d + 4 || packed.cols() != d) return false;
  const std::span<const double> mean = packed.row(0);
  const std::span<const double> lo = packed.row(1);
  const std::span<const double> hi = packed.row(2);
  m.mean.assign(mean.begin(), mean.end());
  m.lo.assign(lo.begin(), lo.end());
  m.hi.assign(hi.begin(), hi.end());
  m.count = static_cast<std::size_t>(packed(3, 0));
  m.content_hash = std::bit_cast<std::uint64_t>(packed(3, 1));
  m.comoment = linalg::Matrix(d, d);
  for (std::size_t i = 0; i < d; ++i) m.comoment.set_row(i, packed.row(4 + i));
  return m.count >= 2;
}

/// Pearson r of two (original-index) columns from the comoment matrix.
double correlation_from_comoment(const linalg::Matrix& comoment, std::size_t i,
                                 std::size_t j) {
  if (i == j) return 1.0;
  const double denom = std::sqrt(comoment(i, i) * comoment(j, j));
  return denom > 0.0 ? comoment(i, j) / denom : 0.0;
}

/// The clustering-knob hash chain, mirroring the in-RAM cluster fingerprint
/// (core/analyzer.cpp) — equal fingerprints within the out-of-core lineage
/// imply the cluster stage would emit the same bits.
std::uint64_t ooc_cluster_fingerprint(std::uint64_t whiten_fp,
                                      const AnalyzerConfig& cfg,
                                      const std::vector<double>& weights) {
  std::uint64_t h =
      util::hash_mix(whiten_fp, static_cast<std::uint64_t>(cfg.algorithm));
  h = util::hash_mix(h, cfg.fixed_clusters ? *cfg.fixed_clusters + 1 : 0u);
  h = util::hash_mix(h, cfg.min_clusters);
  h = util::hash_mix(h, cfg.max_clusters);
  h = util::hash_mix(h, cfg.compute_quality_curve ? 1u : 0u);
  h = util::hash_mix(h, static_cast<std::uint64_t>(cfg.kmeans.max_iterations));
  h = util::hash_mix(h, static_cast<std::uint64_t>(cfg.kmeans.restarts));
  h = hash_mix(h, cfg.kmeans.tolerance);
  h = util::hash_mix(h, cfg.kmeans.seed);
  h = util::hash_mix(h, static_cast<std::uint64_t>(cfg.kmeans.init));
  h = util::hash_mix(h, static_cast<std::uint64_t>(cfg.kmeans_mode));
  h = util::hash_mix(h, cfg.minibatch_threshold);
  h = util::hash_mix(h, cfg.coreset.size);
  h = util::hash_mix(h, cfg.coreset.seed);
  h = util::hash_mix(h,
                     static_cast<std::uint64_t>(cfg.minibatch_refine_iterations));
  h = util::hash_mix(h, cfg.silhouette_exact_threshold);
  h = util::hash_mix(h, cfg.silhouette_sample);
  h = util::hash_mix(h, cfg.weight_clustering_by_observation ? 1u : 0u);
  if (cfg.weight_clustering_by_observation) h = fingerprint_doubles(weights, h);
  return h;
}

std::uint64_t nonzero(std::uint64_t h) { return h == 0 ? 1 : h; }

}  // namespace

AnalysisResult analyze_out_of_core(const metrics::ColumnStore& store,
                                   const AnalyzerConfig& config,
                                   const OutOfCoreOptions& options,
                                   util::ThreadPool* pool,
                                   OutOfCoreTelemetry* telemetry) {
  const std::size_t n = store.num_rows();
  const std::size_t d = store.num_metrics();
  ensure(n >= config.min_clusters,
         "analyze_out_of_core: fewer scenarios than clusters");
  ensure(n >= 2, "analyze_out_of_core: need at least two rows");

  OutOfCoreTelemetry local;
  OutOfCoreTelemetry& tel = telemetry != nullptr ? *telemetry : local;
  tel = OutOfCoreTelemetry{};
  tel.dense_bytes = n * d * sizeof(double);

  // ---- Pass 1: moments (or a cache hit keyed by the store's structure) ----
  // The shard lineage tag namespaces every out-of-core key and fingerprint:
  // per-shape OOC analyses sharing one cache/spill directory stay disjoint
  // (tag 0 = unsharded, keys unchanged).
  const std::uint64_t root = config.lineage_tag != 0
                                 ? util::hash_mix(kOutOfCoreTag, config.lineage_tag)
                                 : kOutOfCoreTag;
  const std::uint64_t moments_key = nonzero(util::hash_mix(
      util::hash_mix(root, store.structural_signature()),
      metrics::catalog_hash(store.catalog())));
  StreamedMoments moments;
  std::vector<double> weights;
  bool have_moments = false;
  if (options.cache != nullptr) {
    if (std::optional<linalg::Matrix> packed =
            options.cache->get(kMomentsStage, moments_key)) {
      have_moments = unpack_moments(*packed, d, moments) && moments.count == n;
      tel.moments_reused = have_moments;
    }
  }
  if (have_moments) {
    weights = store.weights();
  } else {
    moments.count = 0;
    moments.mean.assign(d, 0.0);
    moments.lo.assign(d, std::numeric_limits<double>::infinity());
    moments.hi.assign(d, -std::numeric_limits<double>::infinity());
    moments.comoment = linalg::Matrix(d, d);
    moments.content_hash = util::kFnvOffsetBasis;
    weights.reserve(n);
    store.for_each_block([&](std::size_t /*first_row*/,
                             const linalg::Matrix& values,
                             std::span<const double> w) {
      moments.content_hash = fingerprint_matrix(values, moments.content_hash);
      moments.content_hash = util::fnv1a(
          std::string_view(reinterpret_cast<const char*>(w.data()),
                           w.size() * sizeof(double)),
          util::hash_mix(moments.content_hash, w.size()));
      fold_block(moments, values, pool);
      weights.insert(weights.end(), w.begin(), w.end());
      ++tel.blocks_streamed;
    });
    ++tel.passes;
    if (options.cache != nullptr) {
      options.cache->put(kMomentsStage, moments_key, pack_moments(moments),
                         options.drift_priority);
    }
  }
  tel.content_hash = moments.content_hash;

  AnalysisResult result;
  result.stage_counters = StageCounters{};

  // ---- Refinement from moments (bit-identical decisions to stages::refine:
  // the constant rule reads only extrema, the duplicate rule only r) ----
  std::vector<std::size_t> informative;
  for (std::size_t c = 0; c < d; ++c) {
    const double scale =
        std::max({std::abs(moments.lo[c]), std::abs(moments.hi[c]), 1.0});
    if (moments.hi[c] - moments.lo[c] <= 1e-12 * scale) {
      result.constant_columns.push_back(c);
    } else {
      informative.push_back(c);
    }
  }
  ensure(!informative.empty(), "analyze_out_of_core: all metrics are constant");
  if (config.use_correlation_filter) {
    linalg::Matrix corr(informative.size(), informative.size());
    for (std::size_t i = 0; i < informative.size(); ++i) {
      for (std::size_t j = 0; j < informative.size(); ++j) {
        corr(i, j) =
            correlation_from_comoment(moments.comoment, informative[i],
                                      informative[j]);
      }
    }
    const ml::CorrelationFilter filter(config.correlation_threshold);
    result.refinement = filter.fit_from_correlation(corr);
    result.kept_columns.reserve(result.refinement.kept_columns.size());
    for (const std::size_t c : result.refinement.kept_columns) {
      result.kept_columns.push_back(informative[c]);
    }
    for (ml::CorrelationDrop& drop : result.refinement.drops) {
      drop.dropped_column = informative[drop.dropped_column];
      drop.kept_column = informative[drop.kept_column];
    }
  } else {
    result.kept_columns = informative;
  }
  ++result.stage_counters.refine;
  const std::size_t kept = result.kept_columns.size();

  // ---- Standardizer + PCA from the same moments. The covariance of the
  // standardised kept columns (n−1 normalisation throughout) is exactly
  // their correlation matrix:  C_ij / √(C_ii·C_jj). ----
  {
    std::vector<double> kept_means(kept), kept_m2(kept);
    for (std::size_t i = 0; i < kept; ++i) {
      kept_means[i] = moments.mean[result.kept_columns[i]];
      kept_m2[i] =
          moments.comoment(result.kept_columns[i], result.kept_columns[i]);
    }
    result.standardizer = ml::Standardizer::from_moments(
        std::move(kept_means), std::move(kept_m2), n);
  }
  ++result.stage_counters.standardize;

  {
    linalg::Matrix corr_kept(kept, kept);
    for (std::size_t i = 0; i < kept; ++i) {
      for (std::size_t j = 0; j < kept; ++j) {
        corr_kept(i, j) =
            correlation_from_comoment(moments.comoment, result.kept_columns[i],
                                      result.kept_columns[j]);
      }
    }
    result.pca.fit_from_covariance(std::vector<double>(kept, 0.0), corr_kept, n);
  }
  result.num_components = result.pca.num_components_for(config.variance_target);
  result.interpretations =
      interpret_components(result.pca, result.kept_columns, store.catalog(),
                           result.num_components, config.labeler);
  ++result.stage_counters.pca;

  // ---- Budget check: the score matrix is the only O(n) allocation. ----
  const std::size_t score_bytes = n * result.num_components * sizeof(double);
  tel.resident_bytes = score_bytes;
  if (options.memory_budget_bytes > 0 &&
      score_bytes > options.memory_budget_bytes) {
    throw NumericalError(
        "analyze_out_of_core: the " + std::to_string(score_bytes) +
        "-byte score matrix (" + std::to_string(n) + " rows × " +
        std::to_string(result.num_components) +
        " components) exceeds the memory budget of " +
        std::to_string(options.memory_budget_bytes) + " bytes");
  }

  // ---- Pass 2: project every block into the score matrix (or reload) ----
  std::uint64_t scores_key = util::hash_mix(root, moments.content_hash);
  scores_key = util::hash_mix(scores_key, config.use_correlation_filter ? 1u : 0u);
  scores_key = hash_mix(scores_key, config.correlation_threshold);
  scores_key = nonzero(hash_mix(scores_key, config.variance_target));
  linalg::Matrix scores;
  if (options.cache != nullptr) {
    if (std::optional<linalg::Matrix> cached =
            options.cache->get(kScoresStage, scores_key)) {
      if (cached->rows() == n && cached->cols() == result.num_components) {
        scores = std::move(*cached);
        tel.scores_reused = true;
      }
    }
  }
  if (scores.empty()) {
    scores = linalg::Matrix(n, result.num_components);
    store.for_each_block([&](std::size_t first_row, const linalg::Matrix& values,
                             std::span<const double> /*w*/) {
      const linalg::Matrix block_scores = result.pca.transform(
          result.standardizer.transform(
              values.select_columns(result.kept_columns)),
          result.num_components);
      for (std::size_t r = 0; r < block_scores.rows(); ++r) {
        scores.set_row(first_row + r, block_scores.row(r));
      }
      ++tel.blocks_streamed;
    });
    ++tel.passes;
    if (options.cache != nullptr) {
      options.cache->put(kScoresStage, scores_key, scores,
                         options.drift_priority);
    }
  }

  // ---- Whiten → cluster → representatives on the compact matrix, exactly
  // as the in-RAM stages run them. ----
  result.whitener.fit(scores);
  result.whitened = config.whiten;
  // Whitening is per-element (x − mean)/scale, so it runs in place on the
  // moved score matrix: the peak residency stays one n × ncomp matrix, and
  // each element matches Whitener::transform bit for bit (same expression,
  // no accumulation to reassociate).
  result.cluster_space = std::move(scores);
  if (config.whiten) {
    const std::vector<double>& means = result.whitener.means();
    const std::vector<double>& scales = result.whitener.scales();
    for (std::size_t r = 0; r < result.cluster_space.rows(); ++r) {
      for (std::size_t c = 0; c < result.cluster_space.cols(); ++c) {
        result.cluster_space(r, c) =
            (result.cluster_space(r, c) - means[c]) / scales[c];
      }
    }
  }
  ++result.stage_counters.whiten;

  stages::ClusterOutput co =
      stages::cluster(result.cluster_space, weights, config, pool);
  result.quality_curve = std::move(co.quality_curve);
  result.chosen_k = co.chosen_k;
  result.clustering = std::move(co.clustering);
  ++result.stage_counters.cluster;

  stages::RepresentativesOutput rep = stages::representatives(
      result.clustering, result.cluster_space, result.chosen_k, weights,
      /*require_positive_weight=*/false);
  result.representatives = std::move(rep.representatives);
  result.cluster_weights = std::move(rep.cluster_weights);
  ++result.stage_counters.representatives;

  // ---- Fingerprints: the in-RAM chain shape, rooted at the distinct
  // out-of-core tag (see the header — these must never splice across). ----
  StageFingerprints fp;
  {
    std::uint64_t h = util::hash_mix(root, moments.content_hash);
    for (const metrics::MetricInfo& m : store.catalog().metrics()) {
      h = util::fnv1a(m.name, h);
    }
    fp.raw = h;
    h = util::hash_mix(fp.raw, config.use_correlation_filter ? 1u : 0u);
    fp.refine = hash_mix(h, config.correlation_threshold);
    fp.standardize = util::hash_mix(fp.refine, 0x5354Du);
    h = hash_mix(fp.standardize, config.variance_target);
    h = util::hash_mix(h, config.labeler.max_contributors);
    fp.pca = hash_mix(h, config.labeler.min_abs_loading);
    fp.whiten = util::hash_mix(fp.pca, config.whiten ? 1u : 0u);
    fp.cluster = ooc_cluster_fingerprint(fp.whiten, config, weights);
    fp.representatives =
        fingerprint_doubles(weights, util::hash_mix(fp.cluster, 0x52455052u));
  }
  result.fingerprints = fp;
  return result;
}

}  // namespace flare::core
