// Replay campaign scheduler (DESIGN.md §14): the cost/accuracy dial over the
// PR-5 replay plane.
//
// A campaign replays the (scenario × feature) units behind a feature estimate
// on a simulated testbed farm (dcsim/testbed_farm.hpp) instead of eagerly
// measuring everything: units are ordered by a priority queue on cluster
// observation weight (heavy clusters bound the estimate error, so measure
// them first), fallback and validation probes backfill into idle testbed
// slots as earlier units settle, and the campaign stops early once the
// anytime uncertainty band crosses a target half-width or the simulated
// testbed-time budget runs out.
//
// Anytime estimates: after every completed unit the campaign knows a point
// estimate (measured clusters renormalised to the measured mass) and a band
// built from per-cluster half-width states h_c that only ever tighten —
// unmeasured clusters sit at the prior half-width, a measured representative
// clamps h_c down, a validation probe clamps it further to the
// rep-vs-runner-up spread — so the reported band is monotonically
// non-widening across checkpoints, and `flare report --campaign-state` can
// answer before the campaign finishes. The ReplayLedger at every checkpoint
// is mass-conserving: direct + fallback + quarantined + pending = 1.
//
// Determinism and placement invariance: units are processed synchronously in
// dispatch order, and every measurement is a pure function of
// (seed, scenario, feature, attempt) — never of the testbed id — so the
// estimate, band, checkpoints, stop reason, and ledger are bit-identical for
// 1 and N testbeds. The farm only shapes the simulated timeline (makespan,
// per-testbed utilisation); the testbed-time bill is placement-invariant.
// A campaign that runs to exhaustion with validation on reproduces
// FlareEstimator::estimate_with_validation's clean-path numbers exactly.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "core/estimator.hpp"
#include "core/fleet_estimator.hpp"
#include "core/pipeline.hpp"
#include "core/sharded_pipeline.hpp"
#include "dcsim/testbed_farm.hpp"

namespace flare::core {

/// Knobs of the cost/accuracy dial.
struct CampaignConfig {
  /// Testbed-farm size. Changes the makespan and utilisation telemetry only —
  /// never a measurement (see the placement-invariance note above).
  std::size_t num_testbeds = 1;
  /// Per-testbed speed factors for a heterogeneous farm (empty = homogeneous;
  /// otherwise one positive factor per testbed — see TestbedFarm). Scales
  /// occupancy and billed seconds per slot, never a measurement; all-1.0
  /// factors are bit-identical to the homogeneous farm.
  std::vector<double> testbed_speed_factors;
  /// Early stop: finish once the anytime band half-width is at or under this
  /// (percentage points of impact). <= 0 disables the target (the campaign
  /// runs to exhaustion or budget).
  double target_ci_pp = 0.0;
  /// Early stop: simulated testbed-seconds the campaign may bill (summed over
  /// all testbeds). The check runs before each dispatch, so the last unit may
  /// overrun the line. <= 0 = unlimited.
  double budget_seconds = 0.0;
  /// Record a CampaignCheckpoint every this many completed units (a final
  /// checkpoint is always recorded). Must be >= 1.
  std::size_t checkpoint_every = 1;
  /// Half-width (pp) an unmeasured cluster contributes to the band — the
  /// prior uncertainty before any testbed time is spent on it. Must exceed
  /// the plausible per-cluster spread for the band to stay conservative.
  double prior_halfwidth_pp = 40.0;
  /// Schedule a validation probe (the second-nearest member) per non-singleton
  /// cluster, tightening the band to the estimator's rep-vs-runner-up spread.
  /// Off = representative-only campaign (half the units, wider final band).
  bool validation = true;
};

/// What a campaign unit replays.
enum class CampaignUnitKind : unsigned char {
  kRepresentative,  ///< a cluster's representative (or fallback probe)
  kValidation,      ///< the band-tightening runner-up probe
};

[[nodiscard]] std::string_view to_string(CampaignUnitKind kind);

/// Why the campaign stopped.
enum class CampaignStopReason : unsigned char {
  kExhausted,        ///< every scheduled unit ran
  kTargetReached,    ///< anytime band crossed target_ci_pp
  kBudgetExhausted,  ///< simulated testbed-time budget consumed
};

[[nodiscard]] std::string_view to_string(CampaignStopReason reason);

/// One dispatched unit, in dispatch (logical) order — the campaign's journal.
struct CampaignUnitTrace {
  std::size_t order = 0;         ///< dispatch sequence number (0-based)
  std::size_t testbed = 0;       ///< farm slot the unit ran on
  std::size_t shard = 0;
  std::size_t cluster = 0;
  CampaignUnitKind kind = CampaignUnitKind::kRepresentative;
  std::size_t scenario_row = 0;  ///< row replayed (rep, fallback, or probe)
  double start_seconds = 0.0;    ///< simulated start on the farm timeline
  double end_seconds = 0.0;
  int attempts = 0;              ///< attempts billed by this unit
  bool ok = false;               ///< did the unit yield a valid reading?
};

/// Anytime snapshot after a fixed number of completed units.
struct CampaignCheckpoint {
  std::size_t units_completed = 0;
  double impact_pct = 0.0;    ///< measured clusters, renormalised to their mass
  double band_pp = 0.0;       ///< Σ w_c · h_c — monotonically non-widening
  double measured_mass = 0.0; ///< direct + fallback mass at this point
  ReplayLedger ledger;        ///< mass-conserving incl. pending_mass
  double simulated_seconds = 0.0;  ///< testbed-time billed so far (all slots)
  int attempts = 0;                ///< attempts billed so far
};

/// Per-(shard, cluster) outcome row of a finished campaign.
struct CampaignClusterRow {
  std::size_t shard = 0;
  std::size_t cluster = 0;
  double weight = 0.0;          ///< shard weight × cluster weight (Σ = 1)
  bool measured = false;        ///< false = pending (unscheduled) or quarantined
  ClusterReplayStatus status = ClusterReplayStatus::kDirect;  ///< when measured
  std::size_t scenario_row = 0; ///< row the reading came from (when measured)
  double impact_pct = 0.0;
  double ci_halfwidth_pp = 0.0;
  double halfwidth_pp = 0.0;    ///< final h_c (prior if never measured)
};

/// The campaign's full result — everything `flare report` needs, mid-run or
/// final.
struct CampaignState {
  std::string feature_name;
  std::size_t num_testbeds = 1;
  CampaignStopReason stop = CampaignStopReason::kExhausted;
  double target_ci_pp = 0.0;    ///< config echo (0 = no target)
  double budget_seconds = 0.0;  ///< config echo (0 = unlimited)

  double impact_pct = 0.0;  ///< anytime point estimate at stop
  double band_pp = 0.0;     ///< anytime band half-width at stop
  ReplayLedger ledger;      ///< final mass-conserving accounting

  std::size_t units_completed = 0;
  std::size_t units_failed = 0;       ///< completed units with no valid reading
  std::size_t clusters_total = 0;     ///< Σ chosen_k over shards
  std::size_t distinct_replays = 0;   ///< distinct (shard, scenario) testbed setups
  double makespan_seconds = 0.0;      ///< farm timeline length (shrinks with N)
  double total_busy_seconds = 0.0;    ///< testbed-time bill (invariant to N)

  std::vector<CampaignCheckpoint> checkpoints;      ///< anytime history
  std::vector<dcsim::TestbedUtilisation> testbeds;  ///< per-slot telemetry
  std::vector<CampaignUnitTrace> trace;             ///< dispatch journal
  std::vector<CampaignClusterRow> clusters;         ///< per-cluster outcomes

  [[nodiscard]] double lower() const { return impact_pct - band_pp; }
  [[nodiscard]] double upper() const { return impact_pct + band_pp; }
};

/// The scheduler. Shards are registered with their fan-in weights (one shard
/// of weight 1 = the single-shape campaign), then run(feature) executes one
/// campaign per call — runs are independent and share no testbed state.
class CampaignScheduler {
 public:
  /// `policy` and `faults` govern every testbed on the farm: each testbed
  /// constructs its own ReplayFaultModel from the same options, and fault
  /// streams are per (scenario, feature, attempt) — identical on every slot,
  /// which is what makes campaigns placement-invariant.
  CampaignScheduler(CampaignConfig config, ReplayPolicy policy,
                    dcsim::ReplayFaultOptions faults = {});

  /// Registers one shard. `analysis` rows must correspond 1:1 with
  /// `set.scenarios`; `weight` is the shard's fan-in share (Σ over shards
  /// must be 1 by run() time). The referenced analysis, set, and impact
  /// model must outlive the scheduler.
  void add_shard(std::string name, double weight, const AnalysisResult& analysis,
                 const dcsim::ScenarioSet& set, const ImpactModel& impact);

  /// Runs one campaign for `feature` over every registered shard.
  [[nodiscard]] CampaignState run(const Feature& feature) const;

  [[nodiscard]] const CampaignConfig& config() const { return config_; }
  [[nodiscard]] std::size_t num_shards() const { return shards_.size(); }

 private:
  struct Shard {
    std::string name;
    double weight = 0.0;
    const AnalysisResult* analysis = nullptr;
    const dcsim::ScenarioSet* set = nullptr;
    const ImpactModel* impact = nullptr;
  };

  CampaignConfig config_;
  ReplayPolicy policy_;
  dcsim::ReplayFaultOptions faults_;
  std::vector<Shard> shards_;
};

/// Campaign over a fitted single-shape pipeline, replaying under the
/// pipeline's own ReplayPolicy and fault options (so a campaign run to
/// exhaustion reproduces pipeline.evaluate_with_validation's numbers). The
/// pipeline's replay ledgers are untouched — the campaign bills its own farm.
[[nodiscard]] CampaignState run_campaign(const FlarePipeline& pipeline,
                                         const Feature& feature,
                                         const CampaignConfig& config);

/// Fleet campaign over a fitted ShardedPipeline: one shard per shape,
/// fan-in weights from the fleet's machine-count shares.
[[nodiscard]] CampaignState run_campaign(const ShardedPipeline& fleet,
                                         const Feature& feature,
                                         const CampaignConfig& config);

}  // namespace flare::core
