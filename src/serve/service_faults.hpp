// Fault injection for the service plane — the serve-daemon counterpart of
// CounterFaultModel (profiling side) and ReplayFaultModel (testbed side).
// These faults exercise the daemon's robustness contract: clients that stall
// mid-frame, clients that send malformed frames, bursty arrival patterns
// that overflow the admission queues, and a daemon process killed at a
// chosen point inside the ingest commit protocol. Everything is off by
// default so the clean service path stays bit-identical; `ctest -L serve`
// turns the rates up and asserts every request still reaches a terminal
// outcome.
#pragma once

#include <cstdint>
#include <string_view>

namespace flare::serve {

/// Where inside the ingest commit protocol the daemon kills itself (via
/// _exit, mimicking SIGKILL — no destructors, no flushes). Used by the
/// crash-safety tests to place a kill in a specific durability window.
enum class KillPoint : unsigned char {
  kNone,
  /// After the coalesced group file is durably renamed into the state dir
  /// but before its manifest append — recovery must treat the orphan group
  /// as unacknowledged and leave it out of the model.
  kAfterGroupFile,
  /// After the journaled manifest append commits but before any client ack
  /// is sent — recovery must include the group (commit point passed), and
  /// clients that never saw an ack observe at-least-once semantics.
  kAfterCommit,
};

/// Deterministic service-fault knobs. Client-side rates are probabilities in
/// [0, 1]; stall and malformed partition one uniform draw per request so
/// streams stay layout-stable when individual rates change.
struct ServiceFaultOptions {
  bool enabled = false;
  /// Per request: the client writes only a prefix of the frame, stalls for
  /// `stall_ms`, then completes it. The daemon must neither wedge on the
  /// half-frame nor misparse the eventual completion.
  double stall_rate = 0.0;
  std::uint32_t stall_ms = 50;
  /// Per request: the client sends a deliberately corrupted frame (bad
  /// magic). The daemon must answer kFailed and close that connection
  /// without disturbing others.
  double malformed_rate = 0.0;
  /// Per request: the client fires a burst of `burst_size` back-to-back
  /// requests on separate connections instead of one, pressing on the
  /// admission caps. Shed responses are the expected, accounted outcome.
  double burst_rate = 0.0;
  std::uint32_t burst_size = 4;
  /// Daemon-side: _exit(137) at `kill_point` during the Nth (0-based)
  /// coalesced ingest commit. -1 disables. One-shot and deterministic —
  /// a crash is a point event, not a rate.
  int kill_after_ingest = -1;
  KillPoint kill_point = KillPoint::kNone;
  /// Seeded independently of the profiling / replay fault streams so the
  /// same client fault pattern can overlay any workload.
  std::uint64_t seed = 0x5E27EEull;
};

/// What the fault model decided for one client request.
enum class ClientFaultKind : unsigned char {
  kNone,       ///< send the frame normally
  kStall,      ///< send a prefix, sleep stall_ms, send the rest
  kMalformed,  ///< send a corrupted frame instead
};

/// Seeded fault injector for the service plane. Client decisions are a pure
/// function of (seed, client key, request index); the daemon kill decision
/// is a pure function of (kill_after_ingest, commit index). Bit-reproducible
/// across runs and thread schedules.
class ServiceFaultModel {
 public:
  ServiceFaultModel() = default;
  explicit ServiceFaultModel(ServiceFaultOptions options);

  /// False when injection is disabled or every knob is off.
  [[nodiscard]] bool active() const { return active_; }

  /// Per-request client fault (stall / malformed partition one draw).
  [[nodiscard]] ClientFaultKind client_fault(std::string_view client_key,
                                             std::uint64_t request_index) const;

  /// Per-request burst decision (independent draw — a burst can also stall).
  [[nodiscard]] bool burst(std::string_view client_key,
                           std::uint64_t request_index) const;

  /// True when the daemon must _exit at `point` during coalesced-ingest
  /// commit number `commit_index` (0-based).
  [[nodiscard]] bool kill_now(KillPoint point, std::uint64_t commit_index) const;

  [[nodiscard]] const ServiceFaultOptions& options() const { return options_; }

 private:
  [[nodiscard]] double uniform(std::string_view client_key,
                               std::uint64_t request_index,
                               std::uint64_t salt) const;

  ServiceFaultOptions options_{};
  bool active_ = false;
};

}  // namespace flare::serve
