// The `flare serve` daemon (DESIGN.md §16): a resident FlarePipeline behind
// a Unix-domain socket, built for three properties the one-shot CLI cannot
// give:
//
//   * amortised ingest — all batches that arrive while one profiler pass
//     runs are coalesced into a single ingest (one profiling pass, one drift
//     verdict) instead of N;
//   * bounded overload — per-class admission caps with explicit kShed
//     answers, a watchdog that answers kTimeout for requests whose deadline
//     passes in the queue, and inline `status` that stays responsive while
//     ingest backs up. Every admitted or refused request gets exactly one
//     terminal outcome;
//   * crash safety — acknowledged ingests are durable (serve/state.hpp)
//     before the ack leaves the daemon, so a SIGKILL at any instant recovers
//     to a model bit-identical to replaying the acknowledged groups.
//
// Threading: the constructor recovers + fits; run() starts four roles —
// the IO thread (this thread: accept, frame assembly, inline status/
// shutdown, response writes), the ingest worker (owns the pipeline), the
// eval worker (reads published snapshots only), and the watchdog. Workers
// hand responses back through a mutex-guarded outbox + self-pipe wakeup; no
// state is shared unsynchronised (the TSan job runs this suite).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "serve/admission.hpp"
#include "serve/protocol.hpp"
#include "serve/service_faults.hpp"
#include "serve/snapshot.hpp"
#include "serve/state.hpp"

namespace flare::serve {

struct DaemonConfig {
  std::string socket_path;
  std::string state_dir;
  core::FlareConfig flare;
  /// Refit policy applied to every coalesced ingest (recorded per group in
  /// the manifest so offline replay uses the same).
  core::RefitPolicy refit = core::RefitPolicy::kAuto;
  AdmissionLimits limits;
  /// Deadline applied when a request frame carries deadline_ms == 0.
  std::uint32_t default_deadline_ms = 5000;
  /// Budget for completing a started frame; a client stalled mid-frame
  /// longer than this gets kFailed + close instead of wedging the reader.
  std::uint32_t frame_timeout_ms = 2000;
  /// Daemon-side fault injection (kill points); client-side knobs are
  /// consulted by the test clients, not here.
  ServiceFaultOptions faults;
};

/// Monotonic daemon counters (a coherent copy; see Daemon::stats_snapshot).
struct DaemonStats {
  std::uint64_t connections = 0;
  /// Gauge, not a counter: connections currently registered with the IO
  /// loop. The disconnect tests pivot on this returning to baseline — a
  /// dead client's fd must be reaped, never parked forever.
  std::uint64_t open_connections = 0;
  std::uint64_t requests = 0;   ///< complete frames parsed off sockets
  // Terminal outcomes. ok + shed + failed + timeout + shutting_down ==
  // responses issued; the accounting tests pivot on this.
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;
  std::uint64_t timeout = 0;
  std::uint64_t shutting_down = 0;
  std::uint64_t ingest_requests = 0;   ///< ingest frames admitted
  std::uint64_t coalesced_groups = 0;  ///< ingest passes actually executed
  std::uint64_t max_coalesced_batches = 0;  ///< largest single coalescing

  // --- Drift / refit / quarantine telemetry (cumulative across coalesced
  // ingest groups; the `status` verb reports every field as a kv pair) ---
  std::uint64_t actions_valid = 0;     ///< ingests absorbed without re-running
  std::uint64_t actions_reweight = 0;  ///< ingests that refreshed weights/reps
  std::uint64_t actions_refit = 0;     ///< ingests that refitted the model
  /// Refit proposals the adaptive response downgraded to reweight
  /// (hysteresis / unconfirmed change-point).
  std::uint64_t refits_suppressed = 0;
  /// Anomaly episodes fenced by the episode quarantine, and the rows they
  /// carried.
  std::uint64_t episodes_quarantined = 0;
  std::uint64_t episode_rows_quarantined = 0;
  /// Batch rows quarantined for measurement health (below sample quorum).
  std::uint64_t rows_quarantined = 0;
  // Last-ingest verdict telemetry ("" / 0 until the first coalesced group).
  std::string last_verdict;   ///< drift verdict of the last ingested group
  std::string last_action;    ///< action actually taken on it
  std::string last_regime;    ///< response regime (stable/burst/shift)
  double last_drift_statistic = 0.0;
  double staleness_widening_pp = 0.0;  ///< current staleness band widening
};

/// What construction-time recovery found.
struct StartReport {
  std::uint64_t epoch = 0;  ///< committed groups replayed over the base fit
  /// Orphan group files: ingest data that reached disk but never its commit
  /// point. Reported, never folded in.
  std::vector<std::string> unacknowledged;
  bool recovered = false;   ///< a manifest journal was found and cleared
};

class Daemon {
 public:
  /// Prepares the state dir, runs crash recovery, fits `base`, and replays
  /// every committed group in manifest order — the daemon is serving the
  /// recovered model before the socket exists. Throws FlareError subtypes on
  /// unrecoverable state.
  Daemon(DaemonConfig config, const dcsim::ScenarioSet& base);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Serves until a shutdown request arrives. Blocking; owns the calling
  /// thread as the IO thread.
  void run();

  [[nodiscard]] const StartReport& start_report() const { return start_report_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_.load(); }
  [[nodiscard]] DaemonStats stats_snapshot() const;
  [[nodiscard]] const DaemonConfig& config() const { return config_; }

 private:
  struct Conn;

  void ingest_loop();
  void eval_loop();
  void watchdog_loop();

  /// Handles one complete request frame from `conn` (IO thread).
  void handle_frame(Conn& conn, RequestFrame frame);
  /// Routes a worker/watchdog response to the IO thread (any thread).
  void push_response(std::uint64_t conn_id, ResponseFrame response);
  void record_outcome(Outcome outcome);
  [[nodiscard]] std::string status_payload();
  void publish_snapshot();
  [[nodiscard]] std::shared_ptr<const ModelSnapshot> snapshot() const;
  void initiate_shutdown();

  DaemonConfig config_;
  ResidentState state_;
  core::FlarePipeline pipeline_;     ///< ingest worker only (after run())
  core::ImpactModel eval_impact_;    ///< eval worker's own testbed model
  AdmissionQueue queue_;
  ServiceFaultModel faults_;
  StartReport start_report_;

  std::atomic<std::uint64_t> epoch_{0};
  mutable std::mutex snapshot_mutex_;
  std::shared_ptr<const ModelSnapshot> snapshot_;

  // Outbox: responses produced off the IO thread, drained by it.
  std::mutex outbox_mutex_;
  std::vector<std::pair<std::uint64_t, ResponseFrame>> outbox_;
  /// Self-pipe write end (valid while running). Atomic: workers read it in
  /// push_response while the IO thread installs/invalidates it.
  std::atomic<int> wake_write_fd_{-1};

  std::atomic<bool> shutting_down_{false};
  std::atomic<bool> stop_watchdog_{false};
  std::uint64_t next_request_id_ = 0;  ///< IO thread only

  mutable std::mutex stats_mutex_;
  DaemonStats stats_;
};

}  // namespace flare::serve
