#include "serve/admission.hpp"

#include <algorithm>

namespace flare::serve {

AdmitResult AdmissionQueue::try_push(PendingRequest request) {
  std::unique_lock<std::mutex> lock(mutex_);
  AdmitResult result;
  if (closed_) {
    result.shed_reason = "daemon shutting down";
    return result;
  }
  switch (request.frame.type) {
    case RequestType::kIngest:
      if (ingest_.size() >= limits_.max_ingest) {
        result.shed_reason = "ingest queue full (" +
                             std::to_string(limits_.max_ingest) + ")";
        return result;
      }
      ingest_.push_back(std::move(request));
      lock.unlock();
      ingest_cv_.notify_one();
      break;
    case RequestType::kEvaluate:
    case RequestType::kReport:
      if (eval_.size() >= limits_.max_eval) {
        result.shed_reason = "eval queue full (" +
                             std::to_string(limits_.max_eval) + ")";
        return result;
      }
      eval_.push_back(std::move(request));
      lock.unlock();
      eval_cv_.notify_one();
      break;
    case RequestType::kStatus:
    case RequestType::kShutdown:
      // Control requests are answered inline by the IO thread; queuing one
      // is a daemon bug, not a client error.
      result.shed_reason = "control requests are not queued";
      return result;
  }
  result.accepted = true;
  return result;
}

std::vector<PendingRequest> AdmissionQueue::drain_ingest() {
  std::unique_lock<std::mutex> lock(mutex_);
  ingest_cv_.wait(lock, [this] { return closed_ || !ingest_.empty(); });
  std::vector<PendingRequest> drained;
  drained.reserve(ingest_.size());
  for (PendingRequest& r : ingest_) drained.push_back(std::move(r));
  ingest_.clear();
  return drained;
}

std::optional<PendingRequest> AdmissionQueue::pop_eval() {
  std::unique_lock<std::mutex> lock(mutex_);
  eval_cv_.wait(lock, [this] { return closed_ || !eval_.empty(); });
  if (eval_.empty()) return std::nullopt;
  PendingRequest request = std::move(eval_.front());
  eval_.pop_front();
  return request;
}

std::vector<PendingRequest> AdmissionQueue::take_expired(
    std::chrono::steady_clock::time_point now) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<PendingRequest> expired;
  const auto sweep = [&](std::deque<PendingRequest>& queue) {
    auto keep = queue.begin();
    for (auto it = queue.begin(); it != queue.end(); ++it) {
      if (it->deadline <= now) {
        expired.push_back(std::move(*it));
      } else {
        if (keep != it) *keep = std::move(*it);
        ++keep;
      }
    }
    queue.erase(keep, queue.end());
  };
  sweep(ingest_);
  sweep(eval_);
  return expired;
}

std::vector<PendingRequest> AdmissionQueue::close() {
  std::unique_lock<std::mutex> lock(mutex_);
  std::vector<PendingRequest> remaining;
  if (!closed_) {
    closed_ = true;
    remaining.reserve(ingest_.size() + eval_.size());
    for (PendingRequest& r : ingest_) remaining.push_back(std::move(r));
    for (PendingRequest& r : eval_) remaining.push_back(std::move(r));
    ingest_.clear();
    eval_.clear();
  }
  lock.unlock();
  ingest_cv_.notify_all();
  eval_cv_.notify_all();
  return remaining;
}

std::size_t AdmissionQueue::ingest_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ingest_.size();
}

std::size_t AdmissionQueue::eval_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return eval_.size();
}

}  // namespace flare::serve
