#include "serve/protocol.hpp"

namespace flare::serve {
namespace {

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint16_t get_u16(std::string_view b, std::size_t at) {
  return static_cast<std::uint16_t>(static_cast<unsigned char>(b[at]) |
                                    (static_cast<unsigned char>(b[at + 1]) << 8));
}

std::uint32_t get_u32(std::string_view b, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(b[at + static_cast<std::size_t>(i)]);
  }
  return v;
}

std::uint64_t get_u64(std::string_view b, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(b[at + static_cast<std::size_t>(i)]);
  }
  return v;
}

}  // namespace

std::string_view to_string(RequestType type) {
  switch (type) {
    case RequestType::kIngest: return "ingest";
    case RequestType::kEvaluate: return "evaluate";
    case RequestType::kReport: return "report";
    case RequestType::kStatus: return "status";
    case RequestType::kShutdown: return "shutdown";
  }
  return "unknown";
}

bool is_known_request_type(std::uint8_t raw) {
  return raw >= static_cast<std::uint8_t>(RequestType::kIngest) &&
         raw <= static_cast<std::uint8_t>(RequestType::kShutdown);
}

std::string_view to_string(Outcome outcome) {
  switch (outcome) {
    case Outcome::kOk: return "ok";
    case Outcome::kShed: return "shed";
    case Outcome::kFailed: return "failed";
    case Outcome::kTimeout: return "timeout";
    case Outcome::kShuttingDown: return "shutting-down";
  }
  return "unknown";
}

std::string encode_request(const RequestFrame& frame) {
  std::string out;
  out.reserve(kRequestHeaderBytes + frame.payload.size());
  put_u16(out, kFrameMagic);
  out.push_back(static_cast<char>(frame.type));
  put_u32(out, frame.deadline_ms);
  put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  out += frame.payload;
  return out;
}

std::string encode_response(const ResponseFrame& frame) {
  std::string out;
  out.reserve(kResponseHeaderBytes + frame.payload.size());
  put_u16(out, kFrameMagic);
  out.push_back(static_cast<char>(frame.outcome));
  out.push_back(static_cast<char>(frame.type));
  put_u64(out, frame.epoch);
  put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  out += frame.payload;
  return out;
}

HeaderParse parse_request_header(std::string_view bytes, RequestFrame& frame) {
  HeaderParse result;
  if (bytes.size() != kRequestHeaderBytes) {
    result.error = "request header: expected " +
                   std::to_string(kRequestHeaderBytes) + " bytes, got " +
                   std::to_string(bytes.size());
    return result;
  }
  if (get_u16(bytes, 0) != kFrameMagic) {
    result.error = "request header: bad magic (not a flare-serve frame)";
    return result;
  }
  const std::uint8_t raw_type = static_cast<std::uint8_t>(bytes[2]);
  if (!is_known_request_type(raw_type)) {
    result.error = "request header: unknown request type " +
                   std::to_string(static_cast<int>(raw_type));
    return result;
  }
  const std::uint32_t len = get_u32(bytes, 7);
  if (len > kMaxPayloadBytes) {
    result.error = "request header: payload length " + std::to_string(len) +
                   " exceeds cap " + std::to_string(kMaxPayloadBytes);
    return result;
  }
  frame.type = static_cast<RequestType>(raw_type);
  frame.deadline_ms = get_u32(bytes, 3);
  result.ok = true;
  result.payload_len = len;
  return result;
}

HeaderParse parse_response_header(std::string_view bytes, ResponseFrame& frame) {
  HeaderParse result;
  if (bytes.size() != kResponseHeaderBytes) {
    result.error = "response header: expected " +
                   std::to_string(kResponseHeaderBytes) + " bytes, got " +
                   std::to_string(bytes.size());
    return result;
  }
  if (get_u16(bytes, 0) != kFrameMagic) {
    result.error = "response header: bad magic (not a flare-serve frame)";
    return result;
  }
  const std::uint8_t raw_outcome = static_cast<std::uint8_t>(bytes[2]);
  if (raw_outcome > static_cast<std::uint8_t>(Outcome::kShuttingDown)) {
    result.error = "response header: unknown outcome " +
                   std::to_string(static_cast<int>(raw_outcome));
    return result;
  }
  const std::uint8_t raw_type = static_cast<std::uint8_t>(bytes[3]);
  if (!is_known_request_type(raw_type)) {
    result.error = "response header: unknown request type " +
                   std::to_string(static_cast<int>(raw_type));
    return result;
  }
  const std::uint32_t len = get_u32(bytes, 12);
  if (len > kMaxPayloadBytes) {
    result.error = "response header: payload length " + std::to_string(len) +
                   " exceeds cap " + std::to_string(kMaxPayloadBytes);
    return result;
  }
  frame.outcome = static_cast<Outcome>(raw_outcome);
  frame.type = static_cast<RequestType>(raw_type);
  frame.epoch = get_u64(bytes, 4);
  result.ok = true;
  result.payload_len = len;
  return result;
}

std::map<std::string, std::string> parse_kv_payload(std::string_view payload) {
  std::map<std::string, std::string> kv;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    std::size_t end = payload.find('\n', pos);
    if (end == std::string_view::npos) end = payload.size();
    std::string_view line = payload.substr(pos, end - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    const std::size_t eq = line.find('=');
    if (eq != std::string_view::npos && eq > 0) {
      kv[std::string(line.substr(0, eq))] = std::string(line.substr(eq + 1));
    }
    pos = end + 1;
  }
  return kv;
}

std::optional<std::string> kv_get(const std::map<std::string, std::string>& kv,
                                  const std::string& key) {
  const auto it = kv.find(key);
  if (it == kv.end()) return std::nullopt;
  return it->second;
}

std::string error_payload(std::string_view error_class, std::string_view message) {
  std::string out = "error=";
  out += error_class;
  out += "\nmessage=";
  // Keep the payload line-oriented: fold the message onto one line so the
  // key=value parse on the client side cannot split it.
  for (const char c : message) out.push_back(c == '\n' ? ' ' : c);
  out += "\n";
  return out;
}

}  // namespace flare::serve
