// Wire protocol of the `flare serve` daemon (DESIGN.md §16).
//
// Both directions speak length-prefixed binary frames over a SOCK_STREAM
// Unix socket; payloads are UTF-8 text (CSV for scenario batches, key=value
// lines for everything else) so frames stay greppable in a capture.
//
//   request:   magic u16 | type u8 | deadline_ms u32 | len u32 | payload
//   response:  magic u16 | outcome u8 | type u8 | epoch u64 | len u32 | payload
//
// All integers little-endian. `deadline_ms` is the client's patience budget
// (0 = server default); the daemon's watchdog answers a typed kTimeout once
// it passes instead of leaving the request wedged in the queue. Every
// response carries the model epoch it was served from (snapshot-consistent
// reads: an evaluate running concurrently with a refit reports the epoch it
// actually read). A frame that fails to parse — wrong magic, unknown type,
// oversized length — is answered with kFailed + an error payload, never
// silently dropped.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace flare::serve {

inline constexpr std::uint16_t kFrameMagic = 0xF17A;
/// Hard cap on a single frame's payload; larger lengths are malformed (a
/// corrupted length field would otherwise make the daemon try to buffer
/// gigabytes for one client).
inline constexpr std::uint32_t kMaxPayloadBytes = 16u << 20;

/// Request kinds a client can send.
enum class RequestType : std::uint8_t {
  kIngest = 1,    ///< payload: scenario CSV batch (trace/scenario_io format)
  kEvaluate = 2,  ///< payload: "feature=SPEC\n" [+ "validate=1\n"]
  kReport = 3,    ///< payload: "features=SPEC;SPEC;...\n" (may be empty)
  kStatus = 4,    ///< payload empty; answered inline, never queued
  kShutdown = 5,  ///< payload empty; acks then stops the daemon
};

[[nodiscard]] std::string_view to_string(RequestType type);
[[nodiscard]] bool is_known_request_type(std::uint8_t raw);

/// Terminal outcome of a request — every request gets exactly one.
enum class Outcome : std::uint8_t {
  kOk = 0,           ///< served; payload is the answer
  kShed = 1,         ///< load-shedding refusal; payload names the limit hit
  kFailed = 2,       ///< typed error; payload: "error=<class>\nmessage=..."
  kTimeout = 3,      ///< deadline passed before service; watchdog answered
  kShuttingDown = 4, ///< daemon stopping; request not served
};

[[nodiscard]] std::string_view to_string(Outcome outcome);

struct RequestFrame {
  RequestType type = RequestType::kStatus;
  std::uint32_t deadline_ms = 0;  ///< 0 = server default
  std::string payload;
};

struct ResponseFrame {
  Outcome outcome = Outcome::kOk;
  RequestType type = RequestType::kStatus;  ///< echoes the request kind
  std::uint64_t epoch = 0;  ///< model epoch the answer was served from
  std::string payload;
};

/// Fixed header sizes (frames are header + payload).
inline constexpr std::size_t kRequestHeaderBytes = 2 + 1 + 4 + 4;
inline constexpr std::size_t kResponseHeaderBytes = 2 + 1 + 1 + 8 + 4;

/// Serialises a frame to wire bytes.
[[nodiscard]] std::string encode_request(const RequestFrame& frame);
[[nodiscard]] std::string encode_response(const ResponseFrame& frame);

/// What a header parse found. On kOk, `payload_len` tells the caller how many
/// payload bytes follow. Parse failures carry a diagnostic — the daemon
/// answers kFailed with it and closes the connection (the stream offset is
/// unrecoverable after a malformed header).
struct HeaderParse {
  bool ok = false;
  std::string error;          ///< set when !ok
  std::uint32_t payload_len = 0;
};

/// Parses a request header from exactly kRequestHeaderBytes bytes; fills
/// `frame.type` / `frame.deadline_ms`.
[[nodiscard]] HeaderParse parse_request_header(std::string_view bytes,
                                               RequestFrame& frame);

/// Parses a response header from exactly kResponseHeaderBytes bytes.
[[nodiscard]] HeaderParse parse_response_header(std::string_view bytes,
                                                ResponseFrame& frame);

/// key=value payload helpers (one pair per line; later keys win).
[[nodiscard]] std::map<std::string, std::string> parse_kv_payload(
    std::string_view payload);
[[nodiscard]] std::optional<std::string> kv_get(
    const std::map<std::string, std::string>& kv, const std::string& key);

/// Builds the kFailed payload for a typed error: "error=<class>\nmessage=…".
[[nodiscard]] std::string error_payload(std::string_view error_class,
                                        std::string_view message);

}  // namespace flare::serve
