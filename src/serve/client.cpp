#include "serve/client.hpp"

#include <thread>
#include <utility>

#include "util/error.hpp"
#include "util/socket.hpp"

namespace flare::serve {
namespace {

void require_ok(util::IoStatus status, const char* step) {
  switch (status) {
    case util::IoStatus::kOk:
      return;
    case util::IoStatus::kTimeout:
      throw ServeError(std::string("serve client: ") + step + " timed out");
    case util::IoStatus::kClosed:
      throw ServeError(std::string("serve client: connection closed during ") +
                       step);
    case util::IoStatus::kError:
      throw ServeError(std::string("serve client: socket error during ") + step);
  }
}

ResponseFrame read_response(int fd, util::IoDeadline deadline) {
  char header[kResponseHeaderBytes];
  require_ok(util::recv_all(fd, header, sizeof(header), deadline),
             "response header read");
  ResponseFrame response;
  const HeaderParse parsed = parse_response_header(
      std::string_view(header, sizeof(header)), response);
  if (!parsed.ok) {
    throw ServeError("serve client: " + parsed.error);
  }
  response.payload.resize(parsed.payload_len);
  if (parsed.payload_len > 0) {
    require_ok(util::recv_all(fd, response.payload.data(), parsed.payload_len,
                              deadline),
               "response payload read");
  }
  return response;
}

}  // namespace

ServeClient::ServeClient(std::string socket_path,
                         std::chrono::milliseconds timeout)
    : socket_path_(std::move(socket_path)), timeout_(timeout) {}

ResponseFrame ServeClient::call(const RequestFrame& request) {
  return call_with_fault(request, ClientFaultKind::kNone, 0);
}

ResponseFrame ServeClient::call_with_fault(const RequestFrame& request,
                                           ClientFaultKind kind,
                                           std::uint32_t stall_ms) {
  const util::IoDeadline deadline = util::io_deadline_in(timeout_);
  util::Fd fd = util::connect_unix(socket_path_, deadline);
  std::string wire = encode_request(request);

  switch (kind) {
    case ClientFaultKind::kNone: {
      require_ok(util::send_all(fd.get(), wire.data(), wire.size(), deadline),
                 "request send");
      break;
    }
    case ClientFaultKind::kStall: {
      // Half the frame, a stall, then the rest — the daemon must assemble
      // the completed frame (its stall budget permitting), not misparse it.
      const std::size_t split = wire.size() / 2;
      require_ok(util::send_all(fd.get(), wire.data(), split, deadline),
                 "request send (stall prefix)");
      std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
      require_ok(util::send_all(fd.get(), wire.data() + split,
                                wire.size() - split, deadline),
                 "request send (stall suffix)");
      break;
    }
    case ClientFaultKind::kMalformed: {
      // Corrupt the magic: the daemon answers a typed kFailed and closes.
      wire[0] = static_cast<char>(~wire[0]);
      require_ok(util::send_all(fd.get(), wire.data(), wire.size(), deadline),
                 "request send (malformed)");
      break;
    }
  }
  return read_response(fd.get(), deadline);
}

RequestFrame make_status_request() {
  RequestFrame frame;
  frame.type = RequestType::kStatus;
  return frame;
}

RequestFrame make_shutdown_request() {
  RequestFrame frame;
  frame.type = RequestType::kShutdown;
  return frame;
}

RequestFrame make_ingest_request(std::string scenario_csv,
                                 std::uint32_t deadline_ms) {
  RequestFrame frame;
  frame.type = RequestType::kIngest;
  frame.deadline_ms = deadline_ms;
  frame.payload = std::move(scenario_csv);
  return frame;
}

RequestFrame make_evaluate_request(const std::string& feature_spec,
                                   bool validate, std::uint32_t deadline_ms) {
  RequestFrame frame;
  frame.type = RequestType::kEvaluate;
  frame.deadline_ms = deadline_ms;
  frame.payload = "feature=" + feature_spec + "\n";
  if (validate) frame.payload += "validate=1\n";
  return frame;
}

RequestFrame make_report_request(const std::string& feature_specs,
                                 std::uint32_t deadline_ms) {
  RequestFrame frame;
  frame.type = RequestType::kReport;
  frame.deadline_ms = deadline_ms;
  if (!feature_specs.empty()) frame.payload = "features=" + feature_specs + "\n";
  return frame;
}

bool wait_until_ready(const std::string& socket_path,
                      std::chrono::milliseconds timeout) {
  const auto give_up = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < give_up) {
    try {
      ServeClient client(socket_path, std::chrono::milliseconds(500));
      const ResponseFrame response = client.call(make_status_request());
      if (response.outcome == Outcome::kOk) return true;
    } catch (const ServeError&) {
      // Not up yet (or mid-recovery); retry until the timeout.
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return false;
}

}  // namespace flare::serve
