// Crash-safe resident state for the serve daemon (DESIGN.md §16).
//
// The daemon's model is a deterministic function of (base scenario archive,
// FlareConfig, the ordered sequence of coalesced ingest groups it executed).
// Only the last part is runtime state, so that is all that is persisted: a
// state directory holding one CSV per coalesced group plus a `manifest.csv`
// whose journaled appends are the commit points.
//
//   state_dir/
//     manifest.csv        # header + one row per committed group, appended
//                         # under an AppendJournal (trace/journal.hpp)
//     group_000000.csv    # coalesced batch, written tmp -> fsync -> rename
//     group_000001.csv
//
// Commit protocol for one coalesced group (the order is the invariant):
//   1. write group_<id>.csv.tmp, fsync, rename to group_<id>.csv, fsync dir
//   2. journaled append of the manifest row, fsync manifest, commit journal
//   3. (daemon) send acks to every client whose batch is in the group
//
// A SIGKILL between 1 and 2 leaves an *orphan* group file: present on disk,
// absent from the manifest — recovery reports it as unacknowledged and the
// model excludes it. A kill between 2 and 3 leaves a committed-but-unacked
// group: recovery includes it (the commit point passed), and clients that
// never saw the ack observe at-least-once semantics. A kill mid-append is
// rolled back by recover_append. In every window, the recovered model is
// bit-identical to replaying the manifest's groups in order — the property
// tests/serve asserts with a fork-SIGKILL harness.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/service_faults.hpp"

namespace flare::serve {

/// One committed coalesced-ingest group (a manifest row).
struct GroupRecord {
  std::uint64_t id = 0;
  std::string file;          ///< file name inside the state dir
  std::size_t rows = 0;      ///< scenario rows in the group
  std::string refit_policy;  ///< "auto" | "never" | "always", as executed
};

/// What recovery found in a state directory.
struct StateRecovery {
  /// Committed groups, in manifest (= execution) order. Replaying these over
  /// the base fit reconstructs the pre-crash model bit-identically.
  std::vector<GroupRecord> committed;
  /// Group files present on disk but absent from the manifest: ingests whose
  /// data survived but whose commit point was never reached. Never folded
  /// into the model; reported so no acknowledged/unacknowledged ambiguity is
  /// silent.
  std::vector<std::string> orphan_files;
  /// recover_append found (and cleared) a manifest journal.
  bool manifest_recovered = false;
  /// The manifest had a torn append rolled back.
  bool manifest_truncated = false;
};

/// Called at each durability boundary during commit_group; the daemon's hook
/// consults its ServiceFaultModel and _exit()s to simulate SIGKILL at that
/// point. Default no-op.
using KillHook = std::function<void(KillPoint)>;

/// Owns the state directory of one daemon instance.
class ResidentState {
 public:
  /// Creates `state_dir` (and an empty manifest) if absent. Throws
  /// flare::ServeError when the directory cannot be prepared. Does NOT
  /// recover — call recover_state first when reopening an existing dir.
  explicit ResidentState(std::string state_dir);

  /// Durably persists one coalesced group and commits it to the manifest.
  /// `csv_text` is the group's scenario CSV (scenario_set_to_csv format).
  /// Returns the committed record. `kill_hook` fires after step 1
  /// (kAfterGroupFile) and after step 2 (kAfterCommit).
  GroupRecord commit_group(const std::string& csv_text, std::size_t rows,
                           const std::string& refit_policy,
                           const KillHook& kill_hook = {});

  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] std::uint64_t next_group_id() const { return next_id_; }

  /// Absolute path of a group file.
  [[nodiscard]] std::string group_path(const std::string& file) const;

 private:
  std::string dir_;
  std::string manifest_path_;
  std::uint64_t next_id_ = 0;

  friend StateRecovery recover_state(ResidentState& state);
};

/// Rolls back any torn manifest append, parses the manifest, and classifies
/// group files into committed vs orphan. Leaves orphan files on disk (they
/// are evidence, not garbage) but never replays them. Also fast-forwards the
/// state's next group id past both committed and orphan ids so a recovered
/// daemon cannot reuse an orphan's name. Throws flare::ServeError on a
/// manifest that does not parse even after journal recovery.
[[nodiscard]] StateRecovery recover_state(ResidentState& state);

}  // namespace flare::serve
