#include "serve/state.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <sstream>

#include "trace/csv.hpp"
#include "trace/journal.hpp"
#include "util/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define FLARE_SERVE_HAVE_FSYNC 1
#endif

namespace flare::serve {
namespace {

constexpr const char* kManifestName = "manifest.csv";
constexpr const char* kManifestHeader = "group_id,file,rows,refit_policy";

std::string group_file_name(std::uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "group_%06llu.csv",
                static_cast<unsigned long long>(id));
  return buf;
}

/// Parses "group_NNNNNN.csv" back to its id; nullopt for anything else.
std::optional<std::uint64_t> parse_group_file_name(const std::string& name) {
  constexpr std::string_view kPrefix = "group_";
  constexpr std::string_view kSuffix = ".csv";
  if (name.size() <= kPrefix.size() + kSuffix.size()) return std::nullopt;
  if (name.rfind(kPrefix, 0) != 0) return std::nullopt;
  if (name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) != 0) {
    return std::nullopt;
  }
  std::uint64_t id = 0;
  for (std::size_t i = kPrefix.size(); i < name.size() - kSuffix.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return std::nullopt;
    id = id * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return id;
}

/// Writes `text` to `path` durably: fwrite + fflush + fsync + close. Throws
/// ServeError on any failure (a partially durable group file must not be
/// renamed into place).
void write_file_durably(const std::string& path, const std::string& text) {
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) {
    throw ServeError("ResidentState: cannot create " + path);
  }
  bool ok = std::fwrite(text.data(), 1, text.size(), out) == text.size();
  ok = (std::fflush(out) == 0) && ok;
#ifdef FLARE_SERVE_HAVE_FSYNC
  ok = (::fsync(::fileno(out)) == 0) && ok;
#endif
  ok = (std::fclose(out) == 0) && ok;
  if (!ok) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
    throw ServeError("ResidentState: cannot durably write " + path);
  }
}

}  // namespace

ResidentState::ResidentState(std::string state_dir) : dir_(std::move(state_dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw ServeError("ResidentState: cannot create state dir " + dir_ + ": " +
                     ec.message());
  }
  manifest_path_ = (std::filesystem::path(dir_) / kManifestName).string();
  if (!std::filesystem::exists(manifest_path_, ec)) {
    write_file_durably(manifest_path_, std::string(kManifestHeader) + "\n");
    trace::fsync_parent_dir(manifest_path_);
  }
}

std::string ResidentState::group_path(const std::string& file) const {
  return (std::filesystem::path(dir_) / file).string();
}

GroupRecord ResidentState::commit_group(const std::string& csv_text,
                                        std::size_t rows,
                                        const std::string& refit_policy,
                                        const KillHook& kill_hook) {
  GroupRecord record;
  record.id = next_id_++;
  record.file = group_file_name(record.id);
  record.rows = rows;
  record.refit_policy = refit_policy;

  // Step 1: the group's data, durable under a name the manifest will point
  // at. tmp -> fsync -> rename -> dir fsync, so no reader can ever observe a
  // half-written group file.
  const std::string final_path = group_path(record.file);
  const std::string tmp_path = final_path + ".tmp";
  write_file_durably(tmp_path, csv_text);
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    std::filesystem::remove(tmp_path, ec);
    throw ServeError("ResidentState: cannot rename " + tmp_path + ": " +
                     ec.message());
  }
  trace::fsync_parent_dir(final_path);
  if (kill_hook) kill_hook(KillPoint::kAfterGroupFile);

  // Step 2: the commit point — a journaled, fsync'd manifest append.
  {
    trace::AppendJournal journal(manifest_path_);
    std::FILE* out = std::fopen(manifest_path_.c_str(), "ab");
    if (out == nullptr) {
      throw ServeError("ResidentState: cannot open manifest " + manifest_path_);
    }
    std::ostringstream row;
    trace::write_csv_row(row, {std::to_string(record.id), record.file,
                               std::to_string(record.rows), record.refit_policy});
    const std::string line = row.str();
    bool ok = std::fwrite(line.data(), 1, line.size(), out) == line.size();
    ok = (std::fflush(out) == 0) && ok;
#ifdef FLARE_SERVE_HAVE_FSYNC
    ok = (::fsync(::fileno(out)) == 0) && ok;
#endif
    ok = (std::fclose(out) == 0) && ok;
    if (!ok) {
      throw ServeError("ResidentState: manifest append failed for group " +
                       std::to_string(record.id) +
                       " — journal left for rollback");
    }
    journal.commit();
  }
  if (kill_hook) kill_hook(KillPoint::kAfterCommit);
  return record;
}

StateRecovery recover_state(ResidentState& state) {
  StateRecovery result;
  const std::string manifest = state.manifest_path_;

  const trace::JournalRecovery journal = trace::recover_append(manifest);
  result.manifest_recovered = journal.recovered;
  result.manifest_truncated = journal.truncated;

  const trace::CsvContent content = trace::read_csv_content(manifest);
  if (!content.complete_final_line) {
    // recover_append only rolls back appends it has a journal for; a torn
    // tail with no journal means the manifest was written outside the commit
    // protocol. Refuse rather than guess which groups are committed.
    throw ServeError("recover_state: manifest " + manifest +
                     " has a truncated final line and no journal to roll back");
  }
  if (content.lines.empty() || content.lines.front() != kManifestHeader) {
    throw ServeError("recover_state: missing or wrong manifest header in " +
                     manifest);
  }
  std::uint64_t max_id_seen = 0;
  bool any_id_seen = false;
  for (std::size_t i = 1; i < content.lines.size(); ++i) {
    const std::size_t line_no = i + 1;
    const std::vector<std::string> fields =
        trace::parse_csv_row(content.lines[i], manifest, line_no);
    if (fields.size() != 4) {
      throw ServeError("recover_state: " + manifest + ":" +
                       std::to_string(line_no) + ": expected 4 fields, got " +
                       std::to_string(fields.size()));
    }
    GroupRecord record;
    record.id = static_cast<std::uint64_t>(
        trace::parse_csv_int(fields[0], manifest, line_no));
    record.file = fields[1];
    record.rows = static_cast<std::size_t>(
        trace::parse_csv_int(fields[2], manifest, line_no));
    record.refit_policy = fields[3];
    std::error_code ec;
    if (!std::filesystem::exists(state.group_path(record.file), ec)) {
      // The manifest committed a group whose file is gone: the model cannot
      // be reconstructed. This is data loss, not a recoverable tear.
      throw ServeError("recover_state: manifest lists " + record.file +
                       " but the file is missing from " + state.dir());
    }
    max_id_seen = any_id_seen ? std::max(max_id_seen, record.id) : record.id;
    any_id_seen = true;
    result.committed.push_back(std::move(record));
  }

  // Orphans: group files on disk the manifest never committed.
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(state.dir(), ec)) {
    const std::string name = entry.path().filename().string();
    const std::optional<std::uint64_t> id = parse_group_file_name(name);
    if (!id) continue;
    const bool committed = std::any_of(
        result.committed.begin(), result.committed.end(),
        [&](const GroupRecord& r) { return r.file == name; });
    if (!committed) result.orphan_files.push_back(name);
    max_id_seen = any_id_seen ? std::max(max_id_seen, *id) : *id;
    any_id_seen = true;
  }
  std::sort(result.orphan_files.begin(), result.orphan_files.end());
  state.next_id_ = any_id_seen ? max_id_seen + 1 : 0;
  return result;
}

}  // namespace flare::serve
