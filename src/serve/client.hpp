// Client side of the serve protocol — used by `flare client`, the serve
// tests, and the soak/bench harnesses. One request per connection: the
// protocol allows pipelining, but a fresh connection per call keeps client
// failure modes independent (a malformed frame closes only its own
// connection) and is cheap over a Unix socket.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "serve/protocol.hpp"
#include "serve/service_faults.hpp"

namespace flare::serve {

class ServeClient {
 public:
  /// `timeout` bounds every transport step (connect, send, response read).
  /// Throws nothing here; errors surface on call().
  explicit ServeClient(std::string socket_path,
                       std::chrono::milliseconds timeout =
                           std::chrono::milliseconds(10000));

  /// Sends one request over a fresh connection and reads its response.
  /// Throws flare::ServeError on transport failure (daemon absent, timeout,
  /// connection reset, malformed response) — a *protocol-level* non-ok
  /// outcome is returned, not thrown: shed/timeout are answers, not errors.
  [[nodiscard]] ResponseFrame call(const RequestFrame& request);

  /// call() with an injected client fault (test harness): kStall sends a
  /// frame prefix, sleeps `stall_ms`, then completes it; kMalformed corrupts
  /// the frame magic and expects the daemon's typed kFailed answer.
  [[nodiscard]] ResponseFrame call_with_fault(const RequestFrame& request,
                                              ClientFaultKind kind,
                                              std::uint32_t stall_ms);

  [[nodiscard]] const std::string& socket_path() const { return socket_path_; }

 private:
  std::string socket_path_;
  std::chrono::milliseconds timeout_;
};

/// Request builders for the five verbs.
[[nodiscard]] RequestFrame make_status_request();
[[nodiscard]] RequestFrame make_shutdown_request();
[[nodiscard]] RequestFrame make_ingest_request(std::string scenario_csv,
                                               std::uint32_t deadline_ms = 0);
[[nodiscard]] RequestFrame make_evaluate_request(const std::string& feature_spec,
                                                 bool validate = false,
                                                 std::uint32_t deadline_ms = 0);
[[nodiscard]] RequestFrame make_report_request(const std::string& feature_specs,
                                               std::uint32_t deadline_ms = 0);

/// Polls the daemon with status requests until it answers or `timeout`
/// elapses. Returns true when the daemon is serving.
[[nodiscard]] bool wait_until_ready(const std::string& socket_path,
                                    std::chrono::milliseconds timeout);

}  // namespace flare::serve
