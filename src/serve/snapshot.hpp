// Immutable model snapshots for snapshot-consistent reads (DESIGN.md §16).
//
// The ingest worker owns the live FlarePipeline; readers never touch it.
// After every successful coalesced ingest the worker publishes a new
// ModelSnapshot — a value copy of exactly what evaluation needs — under a
// fresh epoch. The eval worker grabs the current shared_ptr per request and
// serves the whole request from it, so an evaluate that overlaps a refit
// reads one coherent model and reports the epoch it actually used; it is
// never torn across two epochs.
#pragma once

#include <cstdint>

#include "core/analyzer.hpp"
#include "dcsim/scenario.hpp"

namespace flare::serve {

struct ModelSnapshot {
  /// Number of coalesced ingest groups folded in (base fit = epoch 0).
  std::uint64_t epoch = 0;
  dcsim::ScenarioSet set;
  core::AnalysisResult analysis;
};

}  // namespace flare::serve
