// Immutable model snapshots for snapshot-consistent reads (DESIGN.md §16).
//
// The ingest worker owns the live FlarePipeline; readers never touch it.
// After every successful coalesced ingest the worker publishes a new
// ModelSnapshot — a value copy of exactly what evaluation needs — under a
// fresh epoch. The eval worker grabs the current shared_ptr per request and
// serves the whole request from it, so an evaluate that overlaps a refit
// reads one coherent model and reports the epoch it actually used; it is
// never torn across two epochs.
#pragma once

#include <cstdint>

#include "core/analyzer.hpp"
#include "dcsim/scenario.hpp"

namespace flare::serve {

struct ModelSnapshot {
  /// Number of coalesced ingest groups folded in (base fit = epoch 0).
  std::uint64_t epoch = 0;
  dcsim::ScenarioSet set;
  core::AnalysisResult analysis;
  /// Staleness band widening (pp) the pipeline's drift response carried when
  /// this snapshot was published — evaluations served from the snapshot add
  /// it to their uncertainty band (0 with the response disabled).
  double staleness_widening_pp = 0.0;
};

}  // namespace flare::serve
