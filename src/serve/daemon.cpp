#include "serve/daemon.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <thread>
#include <utility>

#include "core/feature_spec.hpp"
#include "trace/scenario_io.hpp"
#include "util/error.hpp"
#include "util/socket.hpp"
#include "util/strings.hpp"

#ifdef FLARE_HAVE_UNIX_SOCKETS
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace flare::serve {
namespace {

using Clock = std::chrono::steady_clock;

std::string_view refit_policy_name(core::RefitPolicy policy) {
  switch (policy) {
    case core::RefitPolicy::kAuto: return "auto";
    case core::RefitPolicy::kNever: return "never";
    case core::RefitPolicy::kAlways: return "always";
  }
  return "auto";
}

core::RefitPolicy refit_policy_from_name(const std::string& name) {
  if (name == "auto") return core::RefitPolicy::kAuto;
  if (name == "never") return core::RefitPolicy::kNever;
  if (name == "always") return core::RefitPolicy::kAlways;
  throw ServeError("unknown refit policy in manifest: '" + name + "'");
}

/// The wire name of a typed error — the `error=` value of kFailed payloads.
std::string_view error_class_of(const FlareError& e) {
  if (dynamic_cast<const ParseError*>(&e)) return "parse";
  if (dynamic_cast<const NumericalError*>(&e)) return "numerical";
  if (dynamic_cast<const CapacityError*>(&e)) return "capacity";
  if (dynamic_cast<const FaultError*>(&e)) return "fault";
  if (dynamic_cast<const QuarantineError*>(&e)) return "quarantine";
  if (dynamic_cast<const ReplayError*>(&e)) return "replay";
  if (dynamic_cast<const JournalError*>(&e)) return "journal";
  if (dynamic_cast<const ServeError*>(&e)) return "serve";
  return "flare";
}

}  // namespace

// Per-connection IO state (IO thread only).
struct Daemon::Conn {
  util::Fd fd;
  std::uint64_t id = 0;
  std::string inbuf;
  std::string outbuf;
  /// The frame currently being assembled (valid once the header parsed).
  RequestFrame frame;
  bool header_parsed = false;
  std::uint32_t payload_len = 0;
  /// Deadline for completing a started frame (set at first byte, cleared
  /// when the frame completes) — the mid-frame stall watchdog.
  Clock::time_point frame_deadline{};
  bool has_partial = false;
  bool closing = false;  ///< close once outbuf drains
};

Daemon::Daemon(DaemonConfig config, const dcsim::ScenarioSet& base)
    : config_(std::move(config)),
      state_(config_.state_dir),
      pipeline_(config_.flare),
      eval_impact_(config_.flare.machine, dcsim::default_job_catalog(),
                   config_.flare.model),
      queue_(config_.limits),
      faults_(config_.faults) {
  StateRecovery recovery = recover_state(state_);
  start_report_.recovered = recovery.manifest_recovered;
  start_report_.unacknowledged = std::move(recovery.orphan_files);

  // The model is (base fit) + (committed groups, in manifest order, each
  // under the policy it originally ran with). This is exactly the offline
  // replay the crash-safety tests compare against — recovery IS the replay.
  pipeline_.fit(base);
  for (const GroupRecord& group : recovery.committed) {
    const dcsim::ScenarioSet batch =
        trace::load_scenario_set(state_.group_path(group.file));
    (void)pipeline_.ingest(batch, refit_policy_from_name(group.refit_policy));
  }
  epoch_.store(recovery.committed.size());
  start_report_.epoch = recovery.committed.size();
  publish_snapshot();
}

Daemon::~Daemon() = default;

DaemonStats Daemon::stats_snapshot() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void Daemon::record_outcome(Outcome outcome) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  switch (outcome) {
    case Outcome::kOk: ++stats_.ok; break;
    case Outcome::kShed: ++stats_.shed; break;
    case Outcome::kFailed: ++stats_.failed; break;
    case Outcome::kTimeout: ++stats_.timeout; break;
    case Outcome::kShuttingDown: ++stats_.shutting_down; break;
  }
}

void Daemon::push_response(std::uint64_t conn_id, ResponseFrame response) {
  record_outcome(response.outcome);
  {
    std::lock_guard<std::mutex> lock(outbox_mutex_);
    outbox_.emplace_back(conn_id, std::move(response));
  }
#ifdef FLARE_HAVE_UNIX_SOCKETS
  const int wake_fd = wake_write_fd_.load();
  if (wake_fd >= 0) {
    const char byte = 1;
    // A full pipe already guarantees a pending wakeup; EAGAIN is fine.
    (void)!::write(wake_fd, &byte, 1);
  }
#endif
}

void Daemon::publish_snapshot() {
  auto snapshot = std::make_shared<const ModelSnapshot>(
      ModelSnapshot{epoch_.load(), pipeline_.scenario_set(),
                    pipeline_.analysis(), pipeline_.staleness_widening_pp()});
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  snapshot_ = std::move(snapshot);
}

std::shared_ptr<const ModelSnapshot> Daemon::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

std::string Daemon::status_payload() {
  const DaemonStats stats = stats_snapshot();
  const std::shared_ptr<const ModelSnapshot> snap = snapshot();
  std::ostringstream out;
  out << "epoch=" << epoch_.load() << '\n'
      << "scenarios=" << snap->set.scenarios.size() << '\n'
      << "clusters=" << snap->analysis.chosen_k << '\n'
      << "ingest_depth=" << queue_.ingest_depth() << '\n'
      << "eval_depth=" << queue_.eval_depth() << '\n'
      << "ingest_limit=" << queue_.limits().max_ingest << '\n'
      << "eval_limit=" << queue_.limits().max_eval << '\n'
      << "connections=" << stats.connections << '\n'
      << "open_connections=" << stats.open_connections << '\n'
      << "requests=" << stats.requests << '\n'
      << "ok=" << stats.ok << '\n'
      << "shed=" << stats.shed << '\n'
      << "failed=" << stats.failed << '\n'
      << "timeout=" << stats.timeout << '\n'
      << "shutting_down=" << stats.shutting_down << '\n'
      << "ingest_requests=" << stats.ingest_requests << '\n'
      << "coalesced_groups=" << stats.coalesced_groups << '\n'
      << "max_coalesced_batches=" << stats.max_coalesced_batches << '\n'
      << "unacknowledged_groups=" << start_report_.unacknowledged.size() << '\n'
      << "actions_valid=" << stats.actions_valid << '\n'
      << "actions_reweight=" << stats.actions_reweight << '\n'
      << "actions_refit=" << stats.actions_refit << '\n'
      << "refits_suppressed=" << stats.refits_suppressed << '\n'
      << "episodes_quarantined=" << stats.episodes_quarantined << '\n'
      << "episode_rows_quarantined=" << stats.episode_rows_quarantined << '\n'
      << "rows_quarantined=" << stats.rows_quarantined << '\n'
      << "last_verdict=" << stats.last_verdict << '\n'
      << "last_action=" << stats.last_action << '\n'
      << "last_regime=" << stats.last_regime << '\n'
      << "last_drift_statistic="
      << util::format_double_exact(stats.last_drift_statistic) << '\n'
      << "staleness_widening_pp="
      << util::format_double_exact(stats.staleness_widening_pp) << '\n';
  return out.str();
}

void Daemon::initiate_shutdown() {
  if (shutting_down_.exchange(true)) return;
  // Everything still queued gets its terminal outcome now; the workers see
  // the closed queue and exit after their current pass.
  for (PendingRequest& request : queue_.close()) {
    ResponseFrame response;
    response.outcome = Outcome::kShuttingDown;
    response.type = request.frame.type;
    response.epoch = epoch_.load();
    response.payload = "reason=daemon shutting down\n";
    push_response(request.conn_id, std::move(response));
  }
  stop_watchdog_.store(true);
}

void Daemon::handle_frame(Conn& conn, RequestFrame frame) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests;
  }
  const std::uint64_t current_epoch = epoch_.load();

  if (shutting_down_.load()) {
    ResponseFrame response{Outcome::kShuttingDown, frame.type, current_epoch,
                           "reason=daemon shutting down\n"};
    push_response(conn.id, std::move(response));
    return;
  }

  switch (frame.type) {
    case RequestType::kStatus: {
      push_response(conn.id, ResponseFrame{Outcome::kOk, RequestType::kStatus,
                                           current_epoch, status_payload()});
      return;
    }
    case RequestType::kShutdown: {
      push_response(conn.id, ResponseFrame{Outcome::kOk, RequestType::kShutdown,
                                           current_epoch, "stopping=1\n"});
      initiate_shutdown();
      return;
    }
    case RequestType::kIngest:
    case RequestType::kEvaluate:
    case RequestType::kReport:
      break;
  }

  PendingRequest request;
  request.request_id = ++next_request_id_;
  request.conn_id = conn.id;
  const std::uint32_t deadline_ms =
      frame.deadline_ms != 0 ? frame.deadline_ms : config_.default_deadline_ms;
  request.deadline = Clock::now() + std::chrono::milliseconds(deadline_ms);
  const RequestType type = frame.type;
  request.frame = std::move(frame);

  const AdmitResult admitted = queue_.try_push(std::move(request));
  if (!admitted.accepted) {
    ResponseFrame response{Outcome::kShed, type, current_epoch,
                           "reason=" + admitted.shed_reason + "\n"};
    push_response(conn.id, std::move(response));
    return;
  }
  if (type == RequestType::kIngest) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.ingest_requests;
  }
}

void Daemon::ingest_loop() {
  std::uint64_t commit_index = 0;
  const KillHook kill_hook = [this, &commit_index](KillPoint point) {
    // Simulated SIGKILL: no destructors, no flushes, no acks. The recovery
    // tests fork the daemon and let this fire inside the commit protocol.
    if (faults_.kill_now(point, commit_index)) std::_Exit(137);
  };

  while (true) {
    std::vector<PendingRequest> pending = queue_.drain_ingest();
    if (pending.empty()) return;  // queue closed

    // Requests whose deadline passed while queued get kTimeout even here —
    // the watchdog sweeps periodically, this closes the race at the edge.
    const Clock::time_point now = Clock::now();
    struct ParsedBatch {
      PendingRequest request;
      dcsim::ScenarioSet set;
    };
    std::vector<ParsedBatch> batches;
    for (PendingRequest& request : pending) {
      if (request.deadline <= now) {
        push_response(request.conn_id,
                      ResponseFrame{Outcome::kTimeout, RequestType::kIngest,
                                    epoch_.load(),
                                    "reason=deadline expired in ingest queue\n"});
        continue;
      }
      try {
        dcsim::ScenarioSet set = trace::parse_scenario_set_csv(
            request.frame.payload,
            "ingest request " + std::to_string(request.request_id));
        if (set.scenarios.empty()) {
          throw ParseError("ingest request " +
                           std::to_string(request.request_id) +
                           ": empty batch");
        }
        batches.push_back(ParsedBatch{std::move(request), std::move(set)});
      } catch (const FlareError& e) {
        push_response(request.conn_id,
                      ResponseFrame{Outcome::kFailed, RequestType::kIngest,
                                    epoch_.load(),
                                    error_payload(error_class_of(e), e.what())});
      }
    }
    if (batches.empty()) continue;

    // Coalesce: every batch that queued up while the previous pass ran is
    // merged into ONE ingest — one profiling pass, one drift verdict.
    dcsim::ScenarioSet merged;
    for (const ParsedBatch& batch : batches) {
      for (dcsim::ColocationScenario scenario : batch.set.scenarios) {
        scenario.id = merged.scenarios.size();
        merged.scenarios.push_back(std::move(scenario));
      }
    }
    merged.machine_type = merged.scenarios.front().machine_type;

    core::IngestReport report;
    try {
      report = pipeline_.ingest(merged, config_.refit);
    } catch (const FlareError& e) {
      const std::string payload = error_payload(error_class_of(e), e.what());
      for (const ParsedBatch& batch : batches) {
        push_response(batch.request.conn_id,
                      ResponseFrame{Outcome::kFailed, RequestType::kIngest,
                                    epoch_.load(), payload});
      }
      continue;
    }

    // Durable commit BEFORE any ack: a client that saw kOk must find its
    // batch in the recovered model after any crash.
    GroupRecord group;
    try {
      group = state_.commit_group(
          trace::scenario_set_to_csv(merged), merged.scenarios.size(),
          std::string(refit_policy_name(config_.refit)), kill_hook);
    } catch (const FlareError& e) {
      // The in-memory model now contains a group the disk does not: the two
      // have diverged and no later answer can be trusted. Fail every waiter
      // and stop the daemon rather than serve from unrecoverable state.
      const std::string payload = error_payload(
          error_class_of(e),
          std::string(e.what()) + " — state diverged, daemon stopping");
      for (const ParsedBatch& batch : batches) {
        push_response(batch.request.conn_id,
                      ResponseFrame{Outcome::kFailed, RequestType::kIngest,
                                    epoch_.load(), payload});
      }
      initiate_shutdown();
      return;
    }
    ++commit_index;

    const std::uint64_t new_epoch = epoch_.fetch_add(1) + 1;
    publish_snapshot();
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.coalesced_groups;
      stats_.max_coalesced_batches =
          std::max<std::uint64_t>(stats_.max_coalesced_batches, batches.size());
      switch (report.action) {
        case core::DriftVerdict::kValid: ++stats_.actions_valid; break;
        case core::DriftVerdict::kReweight: ++stats_.actions_reweight; break;
        case core::DriftVerdict::kRefit: ++stats_.actions_refit; break;
      }
      if (report.response.refit_suppressed) ++stats_.refits_suppressed;
      if (report.response.episode_rows > 0) {
        ++stats_.episodes_quarantined;
        stats_.episode_rows_quarantined += report.response.episode_rows;
      }
      stats_.rows_quarantined += report.rows_quarantined;
      stats_.last_verdict = core::to_string(report.cleaned_drift.verdict);
      stats_.last_action = core::to_string(report.action);
      stats_.last_regime = core::to_string(report.response.regime);
      stats_.last_drift_statistic = report.response.statistic;
      stats_.staleness_widening_pp = report.response.staleness_widening_pp;
    }

    std::ostringstream ack;
    ack << "group=" << group.id << '\n'
        << "appended=" << report.appended << '\n'
        << "action=" << core::to_string(report.action) << '\n'
        << "coalesced_batches=" << batches.size() << '\n';
    const std::string ack_payload = ack.str();
    for (const ParsedBatch& batch : batches) {
      push_response(batch.request.conn_id,
                    ResponseFrame{Outcome::kOk, RequestType::kIngest, new_epoch,
                                  ack_payload});
    }
  }
}

void Daemon::eval_loop() {
  while (true) {
    std::optional<PendingRequest> popped = queue_.pop_eval();
    if (!popped) return;  // queue closed
    PendingRequest& request = *popped;
    if (request.deadline <= Clock::now()) {
      push_response(request.conn_id,
                    ResponseFrame{Outcome::kTimeout, request.frame.type,
                                  epoch_.load(),
                                  "reason=deadline expired in eval queue\n"});
      continue;
    }

    // The whole request is served from one immutable snapshot: a refit
    // publishing a new epoch mid-request cannot tear this answer.
    const std::shared_ptr<const ModelSnapshot> snap = snapshot();
    ResponseFrame response;
    response.type = request.frame.type;
    response.epoch = snap->epoch;
    try {
      const auto kv = parse_kv_payload(request.frame.payload);
      core::Replayer replayer(eval_impact_, config_.flare.replay,
                              dcsim::ReplayFaultModel(config_.flare.replay_faults));
      core::FlareEstimator estimator(snap->analysis, snap->set, replayer);
      std::ostringstream out;
      if (request.frame.type == RequestType::kEvaluate) {
        const std::optional<std::string> spec = kv_get(kv, "feature");
        if (!spec) throw ParseError("evaluate request: missing feature=SPEC");
        const core::Feature feature = core::parse_feature(*spec);
        const bool validate = kv_get(kv, "validate").value_or("0") == "1";
        if (validate) {
          core::ValidatedFeatureEstimate est =
              estimator.estimate_with_validation(feature);
          // The snapshot carries the staleness widening the resident
          // pipeline reported when it was published — the band served to
          // clients reflects the model's batch-age, not just replay noise.
          est.estimate.replay.staleness_widening_pp =
              snap->staleness_widening_pp;
          est.uncertainty_pp += snap->staleness_widening_pp;
          out << "feature=" << est.estimate.feature_name << '\n'
              << "impact_pct="
              << util::format_double_exact(est.estimate.impact_pct) << '\n'
              << "uncertainty_pp="
              << util::format_double_exact(est.uncertainty_pp) << '\n'
              << "lower=" << util::format_double_exact(est.lower()) << '\n'
              << "upper=" << util::format_double_exact(est.upper()) << '\n'
              << "replays=" << est.estimate.scenario_replays << '\n';
        } else {
          const core::FeatureEstimate est = estimator.estimate(feature);
          out << "feature=" << est.feature_name << '\n'
              << "impact_pct=" << util::format_double_exact(est.impact_pct)
              << '\n'
              << "replays=" << est.scenario_replays << '\n'
              << "clusters=" << est.per_cluster.size() << '\n';
        }
      } else {  // kReport
        std::vector<core::Feature> features;
        const std::optional<std::string> specs = kv_get(kv, "features");
        if (specs && !specs->empty()) {
          for (const std::string& spec : util::split(*specs, ';')) {
            features.push_back(core::parse_feature(spec));
          }
        } else {
          features = core::standard_features();
        }
        out << "count=" << features.size() << '\n';
        for (std::size_t i = 0; i < features.size(); ++i) {
          const core::FeatureEstimate est = estimator.estimate(features[i]);
          out << "name_" << i << '=' << est.feature_name << '\n'
              << "impact_" << i << '='
              << util::format_double_exact(est.impact_pct) << '\n';
        }
      }
      response.outcome = Outcome::kOk;
      response.payload = out.str();
    } catch (const FlareError& e) {
      response.outcome = Outcome::kFailed;
      response.payload = error_payload(error_class_of(e), e.what());
    }
    push_response(request.conn_id, std::move(response));
  }
}

void Daemon::watchdog_loop() {
  while (!stop_watchdog_.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    for (PendingRequest& request : queue_.take_expired(Clock::now())) {
      push_response(request.conn_id,
                    ResponseFrame{Outcome::kTimeout, request.frame.type,
                                  epoch_.load(),
                                  "reason=deadline expired before service\n"});
    }
  }
}

#ifdef FLARE_HAVE_UNIX_SOCKETS

void Daemon::run() {
  util::Fd listener = util::listen_unix(config_.socket_path);

  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) {
    throw ServeError("Daemon::run: cannot create wakeup pipe");
  }
  util::Fd wake_read(pipe_fds[0]);
  util::Fd wake_write(pipe_fds[1]);
  util::set_nonblocking(wake_read.get());
  util::set_nonblocking(wake_write.get());
  wake_write_fd_.store(wake_write.get());

  std::thread ingest_thread([this] { ingest_loop(); });
  std::thread eval_thread([this] { eval_loop(); });
  std::thread watchdog_thread([this] { watchdog_loop(); });

  std::map<std::uint64_t, Conn> conns;
  std::uint64_t next_conn_id = 1;
  const auto frame_timeout = std::chrono::milliseconds(config_.frame_timeout_ms);
  Clock::time_point shutdown_grace_end{};

  while (true) {
    // Drain the outbox into connection write buffers.
    {
      std::vector<std::pair<std::uint64_t, ResponseFrame>> drained;
      {
        std::lock_guard<std::mutex> lock(outbox_mutex_);
        drained.swap(outbox_);
      }
      for (auto& [conn_id, response] : drained) {
        const auto it = conns.find(conn_id);
        // A vanished connection already got its outcome recorded; the bytes
        // just have nowhere to go.
        if (it != conns.end()) it->second.outbuf += encode_response(response);
      }
    }

    // Mid-frame stall watchdog: a client that started a frame and went
    // silent gets a typed kFailed and its connection closed.
    const Clock::time_point now = Clock::now();
    for (auto& [id, conn] : conns) {
      if (conn.has_partial && !conn.closing && now >= conn.frame_deadline) {
        // The half-frame counts as an arrived request: it gets a terminal
        // outcome, so it must be in the denominator the accounting pivots on.
        {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.requests;
        }
        ResponseFrame response{Outcome::kFailed, RequestType::kStatus,
                               epoch_.load(),
                               error_payload("serve",
                                             "frame timeout: client stalled "
                                             "mid-frame")};
        record_outcome(response.outcome);
        conn.outbuf += encode_response(response);
        conn.closing = true;
      }
    }

    // Close connections that are done (closing + flushed).
    for (auto it = conns.begin(); it != conns.end();) {
      if (it->second.closing && it->second.outbuf.empty()) {
        it = conns.erase(it);
        std::lock_guard<std::mutex> lock(stats_mutex_);
        --stats_.open_connections;
      } else {
        ++it;
      }
    }

    if (shutting_down_.load()) {
      if (shutdown_grace_end == Clock::time_point{}) {
        listener.reset();  // stop accepting; flush what we owe, then leave
        // Quiesce the workers before the final flush: one may still be
        // serving a request it popped before the queue closed, and its
        // response must reach the outbox before all_flushed can be trusted
        // — otherwise that client sees EOF instead of a terminal outcome.
        if (ingest_thread.joinable()) ingest_thread.join();
        if (eval_thread.joinable()) eval_thread.join();
        stop_watchdog_.store(true);
        if (watchdog_thread.joinable()) watchdog_thread.join();
        shutdown_grace_end = Clock::now() + std::chrono::milliseconds(500);
        continue;  // drain what the workers just pushed, then flush it
      }
      const bool all_flushed = std::all_of(
          conns.begin(), conns.end(),
          [](const auto& entry) { return entry.second.outbuf.empty(); });
      if (all_flushed || now >= shutdown_grace_end) break;
    }

    std::vector<pollfd> fds;
    std::vector<std::uint64_t> fd_conn;  // conn id per pollfd (0 = control)
    if (listener.valid()) {
      fds.push_back(pollfd{listener.get(), POLLIN, 0});
      fd_conn.push_back(0);
    }
    fds.push_back(pollfd{wake_read.get(), POLLIN, 0});
    fd_conn.push_back(0);
    for (auto& [id, conn] : conns) {
      short events = 0;
      if (!conn.closing) events |= POLLIN;
      if (!conn.outbuf.empty()) events |= POLLOUT;
      if (events == 0) continue;
      fds.push_back(pollfd{conn.fd.get(), events, 0});
      fd_conn.push_back(id);
    }
    (void)::poll(fds.data(), static_cast<nfds_t>(fds.size()), 20);

    // Wakeup pipe: drain it; the outbox swap above does the real work.
    {
      char buf[256];
      while (::read(wake_read.get(), buf, sizeof(buf)) > 0) {
      }
    }

    // Accept new connections.
    if (listener.valid()) {
      while (true) {
        util::Fd accepted = util::accept_unix(listener.get());
        if (!accepted.valid()) break;
        Conn conn;
        conn.fd = std::move(accepted);
        conn.id = next_conn_id++;
        {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.connections;
          ++stats_.open_connections;
        }
        conns.emplace(conn.id, std::move(conn));
      }
    }

    // Per-connection IO.
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fd_conn[i] == 0) continue;
      const auto it = conns.find(fd_conn[i]);
      if (it == conns.end()) continue;
      Conn& conn = it->second;

      if ((fds[i].revents & (POLLERR | POLLHUP)) != 0) {
        // The peer is gone: bytes still owed have nowhere to go. Drop them
        // so the fd is reaped this round — keeping it registered for POLLOUT
        // would turn every poll() into an instant POLLERR busy-spin. The
        // outcomes were already recorded when the responses were produced.
        conn.outbuf.clear();
        conn.closing = true;
      }

      if ((fds[i].revents & POLLIN) != 0 && !conn.closing) {
        char buf[4096];
        while (true) {
          const ssize_t got = ::recv(conn.fd.get(), buf, sizeof(buf), 0);
          if (got > 0) {
            conn.inbuf.append(buf, static_cast<std::size_t>(got));
            if (!conn.has_partial) {
              conn.has_partial = true;
              conn.frame_deadline = Clock::now() + frame_timeout;
            }
            continue;
          }
          if (got == 0) {
            conn.closing = true;  // peer closed; flush anything owed
          }
          break;  // EAGAIN or error or EOF
        }

        // Assemble as many complete frames as the buffer holds.
        while (true) {
          if (!conn.header_parsed) {
            if (conn.inbuf.size() < kRequestHeaderBytes) break;
            const HeaderParse header = parse_request_header(
                std::string_view(conn.inbuf).substr(0, kRequestHeaderBytes),
                conn.frame);
            if (!header.ok) {
              // Malformed frame: typed answer, then close — the stream
              // offset is unrecoverable. Never a silent drop.
              {
                std::lock_guard<std::mutex> lock(stats_mutex_);
                ++stats_.requests;
              }
              ResponseFrame response{Outcome::kFailed, RequestType::kStatus,
                                     epoch_.load(),
                                     error_payload("serve", header.error)};
              record_outcome(response.outcome);
              conn.outbuf += encode_response(response);
              conn.closing = true;
              break;
            }
            conn.header_parsed = true;
            conn.payload_len = header.payload_len;
            conn.inbuf.erase(0, kRequestHeaderBytes);
          }
          if (conn.inbuf.size() < conn.payload_len) break;
          conn.frame.payload = conn.inbuf.substr(0, conn.payload_len);
          conn.inbuf.erase(0, conn.payload_len);
          conn.header_parsed = false;
          conn.has_partial = !conn.inbuf.empty();
          if (conn.has_partial) {
            conn.frame_deadline = Clock::now() + frame_timeout;
          }
          handle_frame(conn, std::move(conn.frame));
          conn.frame = RequestFrame{};
        }
      }

      // Flush pending writes opportunistically (POLLOUT or fresh data).
      while (!conn.outbuf.empty()) {
        const ssize_t sent =
            ::send(conn.fd.get(), conn.outbuf.data(), conn.outbuf.size(),
#ifdef MSG_NOSIGNAL
                   MSG_NOSIGNAL
#else
                   0
#endif
            );
        if (sent > 0) {
          conn.outbuf.erase(0, static_cast<std::size_t>(sent));
          continue;
        }
        if (sent < 0 && errno == EINTR) continue;
        if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          break;  // kernel buffer full; retry when POLLOUT fires
        }
        // Hard error (EPIPE/ECONNRESET/...): the client disconnected with
        // response bytes still queued. Drop them and close — leaving the
        // outbuf non-empty would keep the dead fd registered for POLLOUT
        // forever (instant-POLLERR busy-spin, one leaked fd per client).
        conn.outbuf.clear();
        conn.closing = true;
        break;
      }
    }
  }

  // Teardown: the shutdown branch above already joined the workers on every
  // path that reaches here; the guards keep this safe regardless. The wake
  // fd is only invalidated after the joins — workers may call push_response
  // right up until they exit (the pipe itself outlives them via the local
  // Fd objects).
  initiate_shutdown();  // no-op when a shutdown request got here first
  if (ingest_thread.joinable()) ingest_thread.join();
  if (eval_thread.joinable()) eval_thread.join();
  if (watchdog_thread.joinable()) watchdog_thread.join();
  wake_write_fd_.store(-1);
  std::remove(config_.socket_path.c_str());
}

#else  // !FLARE_HAVE_UNIX_SOCKETS

void Daemon::run() {
  throw ServeError("flare serve requires Unix-domain sockets on this platform");
}

#endif

}  // namespace flare::serve
