#include "serve/service_faults.hpp"

#include "util/seed_stream.hpp"

namespace flare::serve {

ServiceFaultModel::ServiceFaultModel(ServiceFaultOptions options)
    : options_(options) {
  active_ = options_.enabled &&
            (options_.stall_rate > 0.0 || options_.malformed_rate > 0.0 ||
             options_.burst_rate > 0.0 || options_.kill_after_ingest >= 0);
}

double ServiceFaultModel::uniform(std::string_view client_key,
                                  std::uint64_t request_index,
                                  std::uint64_t salt) const {
  // Top 53 bits of the derived stream -> uniform double in [0, 1).
  return util::uniform_from_stream(
      util::derive_stream(client_key, options_.seed ^ salt, request_index));
}

ClientFaultKind ServiceFaultModel::client_fault(std::string_view client_key,
                                               std::uint64_t request_index) const {
  if (!active_) return ClientFaultKind::kNone;
  const double draw = uniform(client_key, request_index, 0x11u);
  if (draw < options_.stall_rate) return ClientFaultKind::kStall;
  if (draw < options_.stall_rate + options_.malformed_rate) {
    return ClientFaultKind::kMalformed;
  }
  return ClientFaultKind::kNone;
}

bool ServiceFaultModel::burst(std::string_view client_key,
                              std::uint64_t request_index) const {
  if (!active_ || options_.burst_rate <= 0.0) return false;
  return uniform(client_key, request_index, 0x22u) < options_.burst_rate;
}

bool ServiceFaultModel::kill_now(KillPoint point,
                                 std::uint64_t commit_index) const {
  if (!active_ || options_.kill_after_ingest < 0) return false;
  return point == options_.kill_point &&
         commit_index == static_cast<std::uint64_t>(options_.kill_after_ingest);
}

}  // namespace flare::serve
