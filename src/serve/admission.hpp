// Bounded admission control for the serve daemon (DESIGN.md §16).
//
// Requests are admitted into per-class queues with explicit caps: ingest
// (writes) and eval (evaluate/report reads) back up independently, so a
// flood of ingest batches cannot starve reads — and `status` never enters a
// queue at all (the IO thread answers it inline). When a class is full the
// push is refused with a named shed reason that the daemon turns into a
// kShed response: overload is always *answered*, never a silent drop.
//
// The ingest worker drains its whole queue in one call (drain_ingest), which
// is what makes batch coalescing possible: everything that queued up while
// the previous profiler pass ran is merged into a single ingest. The eval
// worker pops one request at a time. A watchdog thread periodically calls
// take_expired() and answers each expired request with a typed kTimeout —
// a slow refit can delay service, but it can never wedge a request into
// silence.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace flare::serve {

/// A request admitted into a queue, tagged with enough identity for the
/// daemon to route the eventual response back to its connection.
struct PendingRequest {
  std::uint64_t request_id = 0;  ///< daemon-global, monotonically increasing
  std::uint64_t conn_id = 0;     ///< owning connection
  RequestFrame frame;
  /// Hard deadline derived from the frame's deadline_ms at admission time.
  std::chrono::steady_clock::time_point deadline{};
};

/// Outcome of an admission attempt.
struct AdmitResult {
  bool accepted = false;
  std::string shed_reason;  ///< set when !accepted, names the limit hit
};

/// Per-class queue caps.
struct AdmissionLimits {
  std::size_t max_ingest = 64;
  std::size_t max_eval = 64;
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(AdmissionLimits limits) : limits_(limits) {}

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Admits into the class derived from `request.frame.type` (kIngest →
  /// ingest queue; kEvaluate/kReport → eval queue). Refuses with a shed
  /// reason when that class is at its cap or the queue is closed.
  [[nodiscard]] AdmitResult try_push(PendingRequest request);

  /// Blocks until at least one ingest is pending (or the queue closes), then
  /// returns *all* pending ingests — the coalescing contract. Empty result
  /// means closed.
  [[nodiscard]] std::vector<PendingRequest> drain_ingest();

  /// Blocks until an eval request is pending (or the queue closes). nullopt
  /// means closed.
  [[nodiscard]] std::optional<PendingRequest> pop_eval();

  /// Removes and returns every queued request whose deadline is <= now.
  /// The caller (watchdog) answers each with kTimeout.
  [[nodiscard]] std::vector<PendingRequest> take_expired(
      std::chrono::steady_clock::time_point now);

  /// Closes the queue: wakes blocked workers and returns everything still
  /// pending so the daemon can answer each with kShuttingDown. Idempotent
  /// (later calls return empty).
  [[nodiscard]] std::vector<PendingRequest> close();

  /// Instantaneous depths, for `status`.
  [[nodiscard]] std::size_t ingest_depth() const;
  [[nodiscard]] std::size_t eval_depth() const;
  [[nodiscard]] const AdmissionLimits& limits() const { return limits_; }

 private:
  AdmissionLimits limits_;
  mutable std::mutex mutex_;
  std::condition_variable ingest_cv_;
  std::condition_variable eval_cv_;
  std::deque<PendingRequest> ingest_;
  std::deque<PendingRequest> eval_;
  bool closed_ = false;
};

}  // namespace flare::serve
